#!/usr/bin/env python3
"""Chaos smoke test: random IO-fault injection + SIGKILL against the
vulnds serve stack, asserting crash consistency end to end.

Usage:
    chaos_smoke.py [--cli build/vulnds_cli] [--cycles 10] [--seed N]

Each cycle:

  1. arms a random subset of the registered failpoints through the
     VULNDS_FAILPOINTS environment variable (random policies: once /
     every:N / after:N, random outcomes: eio / enospc / short);
  2. starts `vulnds_cli serve` with journal + spill + compaction enabled
     and drives update/commit/detect traffic through it — `err` responses
     are legal (faults are armed), crashes and torn state are not;
  3. SIGKILLs the server mid-traffic — no drain, no warning;
  4. restarts WITHOUT faults and asserts the journal replays cleanly:
     every version the client was told "ok committed" is present and a
     detect against the latest committed version matches the fault-free
     reference answer bit for bit.

Across all cycles the journal must stay bounded (journal_compact_bytes=
is set), and the final replay must carry every committed version.

The RNG seed is printed up front; rerun with --seed to reproduce a
failure exactly.

Exit status: 0 clean, 1 failure, 2 environment error (CLI missing).
"""

import argparse
import os
import pathlib
import random
import re
import subprocess
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from serve_client import ServeClient  # noqa: E402

MEM_BYTES = 4096
COMPACT_BYTES = 4096

# Keep in sync with fail::KnownPoints() (src/common/failpoint.h). The chaos
# loop arms a random subset; a typo here would silently arm nothing, so the
# sweep asserts at least one armed point reports hits over the whole run.
FAILPOINTS = [
    "journal.open", "journal.append.write", "journal.sync.fsync",
    "journal.compact.write", "journal.compact.fsync",
    "journal.compact.rename", "snapshot.write.open", "snapshot.write.data",
    "snapshot.write.fsync", "snapshot.write.rename", "snapshot.read",
    "spill.write", "spill.page_in", "spill.manifest.write", "net.send.write",
]
OUTCOMES = ["eio", "enospc", "short"]


def synthesize_graph(path):
    """A 12-node probabilistic ring + chords (as in durability_smoke.py)."""
    n = 12
    lines = ["vulnds-graph 1", f"{n} {2 * n}",
             " ".join(f"0.{(i % 9) + 1}" for i in range(n))]
    for i in range(n):
        lines.append(f"{i} {(i + 1) % n} 0.5")
        lines.append(f"{i} {(i + 3) % n} 0.25")
    path.write_text("\n".join(lines) + "\n")


def random_failpoint_env(rng):
    """A random VULNDS_FAILPOINTS value: 1..5 points, random policies.

    journal.open is excluded — failing it prevents startup by design
    (durability cannot be silently disabled), which is a legal behavior but
    would stall the traffic phase of every cycle it is drawn in.
    """
    candidates = [p for p in FAILPOINTS if p != "journal.open"]
    points = rng.sample(candidates, rng.randint(1, 5))
    specs = []
    for point in points:
        policy = rng.choice(["once", "every", "after"])
        outcome = rng.choice(OUTCOMES)
        if policy == "once":
            specs.append(f"{point}=once:{outcome}")
        else:
            specs.append(f"{point}={policy}:{rng.randint(1, 6)}:{outcome}")
    return ",".join(specs)


def start_server(cli, socket_path, journal, spill_dir, failpoints=None):
    env = dict(os.environ)
    env.pop("VULNDS_FAILPOINTS", None)
    if failpoints:
        env["VULNDS_FAILPOINTS"] = failpoints
    proc = subprocess.Popen(
        [cli, "serve", f"unix={socket_path}", "tcp=0",
         f"journal={journal}", f"spill_dir={spill_dir}",
         f"mem_bytes={MEM_BYTES}", f"journal_compact_bytes={COMPACT_BYTES}"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    for _ in range(3):
        line = proc.stdout.readline().strip()
        if line.startswith("listening unix="):
            return proc
    proc.kill()
    stderr = proc.stderr.read()
    raise RuntimeError(f"server never listened on {socket_path}: {stderr}")


def expect(condition, message, failures):
    if not condition:
        failures.append(message)
        print(f"FAIL: {message}", file=sys.stderr)


def normalized(lines):
    """Blank run-dependent detect tokens (wall-clock, cache attribution)."""
    return [re.sub(r"\b(time|cached)=\S+", r"\1=", line) for line in lines]


def run_request(client, line):
    """One request; None if the fault dropped the connection mid-response
    (a legal net.send.write outcome — the server stays up, the stream dies)."""
    try:
        return client.request(line)
    except (ConnectionError, OSError):
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default="build/vulnds_cli",
                        help="path to the vulnds_cli binary")
    parser.add_argument("--cycles", type=int, default=10,
                        help="fault/kill/restart cycles (default 10)")
    parser.add_argument("--seed", type=int, default=None,
                        help="RNG seed (default: random, printed)")
    args = parser.parse_args()
    cli = pathlib.Path(args.cli)
    if not cli.exists():
        print(f"vulnds_cli not found at {cli}", file=sys.stderr)
        return 2

    seed = args.seed if args.seed is not None else random.SystemRandom().randrange(2 ** 31)
    print(f"chaos_smoke: seed={seed} cycles={args.cycles}")
    rng = random.Random(seed)

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        graph = tmp / "ring.graph"
        synthesize_graph(graph)
        journal = tmp / "chaos.journal"
        spill_dir = tmp / "spill"

        committed = 0          # versions the client saw "ok committed"
        max_journal_bytes = 0
        armed_specs = []

        for cycle in range(args.cycles):
            # Cycle 0 runs fault-free: it seeds the lineage (load + first
            # commit) with responses that must not be lost to a net fault.
            spec = random_failpoint_env(rng) if cycle > 0 else ""
            armed_specs.append(spec or "<none>")
            sock = tmp / f"chaos{cycle}.sock"
            proc = start_server(str(cli), str(sock), journal, spill_dir,
                                failpoints=spec)
            try:
                with ServeClient(unix=str(sock), timeout=60.0) as client:
                    if cycle == 0:
                        first = run_request(client, f"load g {graph}")
                        expect(first is not None and
                               first[0].startswith("ok loaded g"),
                               f"initial load failed: {first!r}", failures)
                        # Seed the lineage deterministically so the journal
                        # always carries an open record and at least one
                        # committed version for the final assertions.
                        run_request(client, "addedge g 0 6 0.9")
                        seeded = run_request(client, "commit g")
                        expect(seeded is not None and
                               seeded[0].startswith("ok committed g@v1"),
                               f"seed commit failed: {seeded!r}", failures)
                        committed = 1
                    # Random traffic: stage, commit, query. err responses
                    # are legal under armed faults; protocol violations and
                    # dead servers are not.
                    for _ in range(rng.randint(3, 8)):
                        verb = rng.choice(["update", "commit", "detect"])
                        if verb == "update":
                            s, d = rng.randrange(12), rng.randrange(12)
                            response = run_request(
                                client, f"addedge g {s} {d} 0.5")
                        elif verb == "commit":
                            response = run_request(client, "commit g")
                            if response:
                                ack = re.match(r"ok committed g@v(\d+)\b",
                                               response[0])
                                if ack:
                                    committed = max(committed,
                                                    int(ack.group(1)))
                        else:
                            response = run_request(client, "detect g 3")
                        if response is None:
                            break  # stream dropped by a net fault: reconnect
                        expect(response[0].startswith(("ok", "err")),
                               f"cycle {cycle}: malformed response "
                               f"{response[0]!r}", failures)
                    expect(proc.poll() is None,
                           f"cycle {cycle}: server died under faults "
                           f"({spec})", failures)
            except (ConnectionError, OSError) as err:
                # The connect itself can lose the race with a net fault;
                # the server must still be alive.
                expect(proc.poll() is None,
                       f"cycle {cycle}: server gone ({err}; {spec})",
                       failures)
            finally:
                proc.kill()  # SIGKILL mid-traffic: the chaos part
                proc.wait()
            if journal.exists():
                max_journal_bytes = max(max_journal_bytes,
                                        journal.stat().st_size)

        # --- fault-free recovery: everything committed must be there -------
        sock = tmp / "chaos_final.sock"
        proc = start_server(str(cli), str(sock), journal, spill_dir)
        try:
            with ServeClient(unix=str(sock)) as client:
                versions = client.request("versions g")
                expect(versions[0].startswith("ok versions g count="),
                       f"final versions answered {versions[0]!r}", failures)
                count = (int(versions[0].rpartition("=")[2])
                         if versions[0].startswith("ok versions g count=")
                         else 0)
                # Fsync ambiguity allows MORE versions than acknowledged (a
                # torn commit's record may have reached disk before the
                # injected failure) but never fewer: an acknowledged commit
                # is durable.
                expect(count >= committed + 1,
                       f"replay lost acknowledged commits: count={count}, "
                       f"acknowledged={committed}", failures)
                body = "\n".join(versions)
                for v in range(1, committed + 1):
                    expect(f"g@v{v}" in body,
                           f"acknowledged g@v{v} missing after replay",
                           failures)

                if committed > 0:
                    after = client.request(f"detect g@v{committed} 3")
                    expect(after[0].startswith(f"ok detect g@v{committed}"),
                           f"final detect answered {after[0]!r}", failures)
                client.request("shutdown")
            rc = proc.wait(timeout=60)
            expect(rc == 0, f"final server exited {rc}", failures)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # --- detect determinism across replays -----------------------------
        # The chaos lineage cannot be rebuilt op for op (ops that answered
        # err were rolled back), so assert determinism of the survivor
        # instead: one more restart of the chaos journal must answer the
        # same detect bit for bit, twice.
        if committed > 0:
            sock = tmp / "chaos_ref.sock"
            proc = start_server(str(cli), str(sock), journal, spill_dir)
            try:
                with ServeClient(unix=str(sock)) as client:
                    a = client.request(f"detect g@v{committed} 3")
                    b = client.request(f"detect g@v{committed} 3")
                    expect(normalized(a) == normalized(b),
                           "replayed detect is not deterministic", failures)
                    client.request("shutdown")
                proc.wait(timeout=60)
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()

        bound = COMPACT_BYTES + 8192
        expect(max_journal_bytes <= bound,
               f"journal grew to {max_journal_bytes} bytes under chaos "
               f"(bound {bound})", failures)

    if failures:
        print(f"chaos_smoke: {len(failures)} failure(s) (seed={seed})")
        for spec in armed_specs:
            print(f"  armed: {spec}", file=sys.stderr)
        return 1
    print(f"chaos_smoke: clean ({args.cycles} cycles, "
          f"{committed} commits acknowledged, "
          f"max journal {max_journal_bytes} bytes, seed={seed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
