#!/usr/bin/env python3
"""End-to-end crash-durability smoke test of the vulnds storage hierarchy.

Usage:
    durability_smoke.py [--cli build/vulnds_cli]

Exercises the journal + spill + byte-budget path the way a crash would:

  1. starts `vulnds_cli serve unix=... journal=... spill_dir=...` with a
     tiny `mem_bytes=` budget, so cold snapshots spill to disk;
  2. loads a graph, commits two versions through the update verbs, runs a
     detect against a committed version, and stages one uncommitted op;
  3. SIGKILLs the server — no drain, no fsync beyond the commit barriers;
  4. restarts against the same journal and asserts `versions` still lists
     every committed version, the recomputed detect matches the pre-crash
     answer bit for bit, the staged tail survives into the next commit,
     and the `stats` verb reports the storage-hierarchy gauges;
  5. truncates the journal tail and restarts once more: startup must
     succeed, keeping the longest valid prefix;
  6. runs commit/kill/restart cycles against a `journal_compact_bytes=`
     server and asserts the journal stays bounded across all of them while
     every committed version still replays.

Exit status: 0 clean, 1 failure, 2 environment error (CLI missing).
"""

import argparse
import pathlib
import re
import subprocess
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from serve_client import STORE_FIELDS, ServeClient  # noqa: E402

# Small enough that the committed snapshots cannot all stay hot, so the
# spill path runs; large enough that a pinned in-flight graph always fits.
MEM_BYTES = 4096


def synthesize_graph(path):
    """A 12-node probabilistic ring + chords, as in socket_smoke.py."""
    n = 12
    lines = ["vulnds-graph 1", f"{n} {2 * n}",
             " ".join(f"0.{(i % 9) + 1}" for i in range(n))]
    for i in range(n):
        lines.append(f"{i} {(i + 1) % n} 0.5")
        lines.append(f"{i} {(i + 3) % n} 0.25")
    path.write_text("\n".join(lines) + "\n")


def start_server(cli, socket_path, journal, spill_dir, extra=()):
    proc = subprocess.Popen(
        [cli, "serve", f"unix={socket_path}", "tcp=0",
         f"journal={journal}", f"spill_dir={spill_dir}",
         f"mem_bytes={MEM_BYTES}", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    for _ in range(2):
        line = proc.stdout.readline().strip()
        if line.startswith("listening unix="):
            return proc
    proc.kill()
    stderr = proc.stderr.read()
    raise RuntimeError(f"server never listened on {socket_path}: {stderr}")


def expect(condition, message, failures):
    if not condition:
        failures.append(message)
        print(f"FAIL: {message}", file=sys.stderr)


def normalized(lines):
    """A detect response with the run-dependent tokens blanked: wall-clock
    time and cache attribution may differ across a restart, scores not."""
    return [re.sub(r"\b(time|cached)=\S+", r"\1=", line) for line in lines]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default="build/vulnds_cli",
                        help="path to the vulnds_cli binary")
    args = parser.parse_args()
    cli = pathlib.Path(args.cli)
    if not cli.exists():
        print(f"vulnds_cli not found at {cli}", file=sys.stderr)
        return 2

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        graph = tmp / "ring.graph"
        synthesize_graph(graph)
        journal = tmp / "updates.journal"
        spill_dir = tmp / "spill"

        # --- build state worth losing --------------------------------------
        proc = start_server(str(cli), str(tmp / "a.sock"), journal, spill_dir)
        try:
            with ServeClient(unix=str(tmp / "a.sock")) as client:
                expect(client.request(f"load g {graph}")[0].startswith(
                    "ok loaded g"), "load failed", failures)
                client.request("addedge g 0 6 0.9")
                expect(client.request("commit g")[0].startswith(
                    "ok committed g@v1"), "first commit failed", failures)
                client.request("addedge g 1 7 0.8")
                expect(client.request("commit g")[0].startswith(
                    "ok committed g@v2"), "second commit failed", failures)
                before = client.request("detect g@v1 3")
                expect(before[0].startswith("ok detect g@v1"),
                       f"pre-crash detect answered {before[0]!r}", failures)
                # A staged-but-uncommitted tail the journal must also carry.
                client.request("addedge g 2 8 0.7")
        finally:
            proc.kill()  # SIGKILL: the whole point
            proc.wait()

        # --- restart: replay must reconstruct everything -------------------
        proc = start_server(str(cli), str(tmp / "b.sock"), journal, spill_dir)
        try:
            with ServeClient(unix=str(tmp / "b.sock")) as client:
                versions = client.request("versions g")
                expect(versions[0] == "ok versions g count=3",
                       f"versions answered {versions[0]!r}", failures)
                body = "\n".join(versions)
                for name in ("g@v1", "g@v2"):
                    expect(name in body, f"{name} missing after replay",
                           failures)

                after = client.request("detect g@v1 3")
                expect(normalized(after) == normalized(before),
                       "recomputed detect diverged from the pre-crash "
                       f"answer: {after!r} vs {before!r}", failures)

                # The staged tail op must be sitting in the overlay: the next
                # commit carries it into g@v3.
                commit = client.request("commit g")
                expect(commit[0].startswith("ok committed g@v3"),
                       f"post-replay commit answered {commit[0]!r}", failures)
                expect(" ops=1 " in commit[0] or commit[0].rstrip().endswith(
                    "ops=1"), f"staged tail lost: {commit[0]!r}", failures)

                fields = client.stats_fields()
                for key in STORE_FIELDS:
                    expect(key in fields, f"stats lacks {key}", failures)
                expect(fields.get("journal_bytes", 0) > 0,
                       "journal_bytes not positive after replay", failures)
                expect(fields.get("store_budget_bytes") == MEM_BYTES,
                       f"store budget gauge is "
                       f"{fields.get('store_budget_bytes')!r}", failures)
                client.request("shutdown")
            rc = proc.wait(timeout=60)
            expect(rc == 0, f"drained server exited {rc}", failures)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # --- torn tail: chop bytes off the journal, startup must survive ---
        size = journal.stat().st_size
        with journal.open("r+b") as fh:
            fh.truncate(max(size - 5, 0))
        proc = start_server(str(cli), str(tmp / "c.sock"), journal, spill_dir)
        try:
            with ServeClient(unix=str(tmp / "c.sock")) as client:
                versions = client.request("versions g")
                expect(versions[0].startswith("ok versions g count="),
                       f"post-truncation versions answered {versions[0]!r}",
                       failures)
                client.request("shutdown")
            rc = proc.wait(timeout=60)
            expect(rc == 0, f"post-truncation server exited {rc}", failures)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # --- bounded journal: commit/kill/restart cycles must not grow it ---
        # With journal_compact_bytes= armed, every commit that leaves the
        # journal over the threshold triggers a compaction, so the journal
        # stays bounded no matter how many commit cycles (and crashes)
        # accumulate — and the compacted journal still replays every version.
        compact_threshold = 2048
        journal2 = tmp / "bounded.journal"
        cycles, commits_per_cycle = 6, 3
        max_journal_bytes = 0
        for cycle in range(cycles):
            sock = tmp / f"bound{cycle}.sock"
            proc = start_server(
                str(cli), str(sock), journal2, spill_dir,
                extra=[f"journal_compact_bytes={compact_threshold}"])
            try:
                with ServeClient(unix=str(sock)) as client:
                    if cycle == 0:
                        expect(client.request(f"load g2 {graph}")[0]
                               .startswith("ok loaded g2"),
                               "bounded-phase load failed", failures)
                    for c in range(commits_per_cycle):
                        client.request("addedge g2 0 6 0.9")
                        client.request("deledge g2 0 6")
                        version = cycle * commits_per_cycle + c + 1
                        commit = client.request("commit g2")
                        expect(commit[0].startswith(
                            f"ok committed g2@v{version}"),
                            f"cycle {cycle} commit answered {commit[0]!r}",
                            failures)
            finally:
                proc.kill()  # crash mid-lifetime, never a clean drain
                proc.wait()
            max_journal_bytes = max(max_journal_bytes,
                                    journal2.stat().st_size)

        # Generous slack: threshold + one uncompacted commit burst.
        bound = compact_threshold + 4096
        expect(max_journal_bytes <= bound,
               f"journal grew to {max_journal_bytes} bytes across "
               f"{cycles} crash cycles (bound {bound})", failures)

        # Every version from every cycle replays out of the bounded journal.
        sock = tmp / "bound_final.sock"
        proc = start_server(str(cli), str(sock), journal2, spill_dir,
                            extra=[f"journal_compact_bytes={compact_threshold}"])
        try:
            with ServeClient(unix=str(sock)) as client:
                total = cycles * commits_per_cycle
                versions = client.request("versions g2")
                expect(versions[0] == f"ok versions g2 count={total + 1}",
                       f"bounded-journal replay answered {versions[0]!r} "
                       f"(wanted count={total + 1})", failures)
                expect(client.request(f"detect g2@v{total} 3")[0].startswith(
                    f"ok detect g2@v{total}"),
                    "detect on last bounded-journal version failed", failures)
                client.request("shutdown")
            rc = proc.wait(timeout=60)
            expect(rc == 0, f"bounded-journal server exited {rc}", failures)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    if failures:
        print(f"durability_smoke: {len(failures)} failure(s)")
        return 1
    print("durability_smoke: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
