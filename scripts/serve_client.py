#!/usr/bin/env python3
"""Minimal blocking client for the vulnds line-oriented serve protocol.

Speaks to a `vulnds_cli serve tcp=PORT` / `serve unix=PATH` front end: one
request per line; responses start with an "ok ..." or "err ..." line, and
the block verbs (detect, truth, stats, metrics, catalog, versions) follow
the header with payload lines terminated by a lone "." line.

Library use:

    from serve_client import ServeClient
    with ServeClient(unix="/tmp/vulnds.sock") as client:
        lines = client.request("detect g 5")   # full response, header first

CLI use (commands from arguments or stdin, responses to stdout):

    serve_client.py --unix /tmp/vulnds.sock load g a.graph 'detect g 5'
    echo 'stats' | serve_client.py --tcp 127.0.0.1:7070
    serve_client.py --unix /tmp/vulnds.sock --store-stats   # memory hierarchy

Exit status: 0 if every request got a response, 1 on protocol/socket errors,
2 on usage errors.
"""

import argparse
import socket
import sys

# Verbs whose "ok" response carries a dot-terminated multi-line payload.
BLOCK_VERBS = {"detect", "truth", "stats", "metrics", "catalog", "versions"}

# Storage-hierarchy gauges in the `stats` block: hot bytes in RAM, cold
# snapshot bytes spilled to disk, and the durability journal's size.
STORE_FIELDS = ("resident_bytes", "spilled_bytes", "journal_bytes")


class ServeClient:
    """One blocking connection to a serve front end."""

    def __init__(self, tcp=None, unix=None, timeout=60.0):
        """tcp is a (host, port) pair or "host:port" string; unix a path."""
        if (tcp is None) == (unix is None):
            raise ValueError("exactly one of tcp= or unix= is required")
        if unix is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix)
        else:
            if isinstance(tcp, str):
                host, _, port = tcp.rpartition(":")
                tcp = (host, int(port))
            self._sock = socket.create_connection(tcp, timeout=timeout)
        self._recv_buf = b""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def close(self):
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def _read_line(self):
        """One protocol line, newline stripped. None on server EOF."""
        while b"\n" not in self._recv_buf:
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._recv_buf:
                    line, self._recv_buf = self._recv_buf, b""
                    return line.decode()
                return None
            self._recv_buf += chunk
        line, self._recv_buf = self._recv_buf.split(b"\n", 1)
        return line.decode()

    def request(self, line):
        """Sends one request line; returns the response as a list of lines
        (header first, the terminating "." included for block responses).
        Raises ConnectionError if the server closed before answering."""
        self._sock.sendall(line.encode() + b"\n")
        header = self._read_line()
        if header is None:
            raise ConnectionError(f"server closed before answering {line!r}")
        lines = [header]
        parts = header.split()
        is_block = (len(parts) >= 2 and parts[0] == "ok"
                    and parts[1] in BLOCK_VERBS)
        while is_block and lines[-1] != ".":
            payload = self._read_line()
            if payload is None:
                raise ConnectionError(
                    f"server closed inside the {parts[1]} block")
            lines.append(payload)
        return lines

    def stats_fields(self):
        """Runs `stats` and returns its `key=value` payload lines as a dict,
        values parsed to int where they are integers. The storage-hierarchy
        gauges (STORE_FIELDS) land here once the server exposes them."""
        fields = {}
        for line in self.request("stats"):
            for token in line.split():
                key, sep, value = token.partition("=")
                if not sep or not key:
                    continue  # header words and the closing "."
                try:
                    fields[key] = int(value)
                except ValueError:
                    fields[key] = value
        return fields

    def drain_eof(self):
        """Reads (and discards) until the server closes the connection —
        what follows `quit`/`shutdown` or precedes a timeout close."""
        tail = self._recv_buf.decode()
        self._recv_buf = b""
        while True:
            chunk = self._sock.recv(65536)
            if not chunk:
                return tail
            tail += chunk.decode()


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--tcp", metavar="HOST:PORT",
                        help="connect over TCP")
    target.add_argument("--unix", metavar="PATH",
                        help="connect to a Unix-domain socket")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="socket timeout in seconds (default 60)")
    parser.add_argument("--store-stats", action="store_true",
                        help="print the storage-hierarchy gauges "
                             "(resident/spilled/journal bytes) and exit")
    parser.add_argument("commands", nargs="*",
                        help="request lines; stdin is read when omitted")
    args = parser.parse_args()

    if args.store_stats:
        try:
            with ServeClient(tcp=args.tcp, unix=args.unix,
                             timeout=args.timeout) as client:
                fields = client.stats_fields()
        except (OSError, ConnectionError) as err:
            print(f"serve_client: {err}", file=sys.stderr)
            return 1
        for key in STORE_FIELDS:
            print(f"{key}={fields.get(key, 'absent')}")
        return 0 if all(key in fields for key in STORE_FIELDS) else 1

    commands = args.commands or [line.rstrip("\n") for line in sys.stdin]
    try:
        with ServeClient(tcp=args.tcp, unix=args.unix,
                         timeout=args.timeout) as client:
            for command in commands:
                if not command.strip():
                    continue
                for line in client.request(command):
                    print(line)
                if command.strip() in ("quit", "exit", "shutdown"):
                    break
    except (OSError, ConnectionError) as err:
        print(f"serve_client: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
