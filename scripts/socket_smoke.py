#!/usr/bin/env python3
"""End-to-end smoke test of the vulnds socket front end.

Usage:
    socket_smoke.py [--cli build/vulnds_cli]

Exercises the production serving path the way an operator would:

  1. starts `vulnds_cli serve unix=... tcp=0 max_conns=...` in the
     background and parses its "listening ..." lines (ephemeral TCP port);
  2. drives a load / cold detect / cached detect / stats / metrics script
     over the Unix socket with scripts/serve_client.py and checks the
     responses, including that the cached detect answers cached=1 and the
     vulnds_net_* families appear in the scrape;
  3. opens the same session over TCP and checks the two fronts agree;
  4. fills the connection cap and asserts the over-cap client gets exactly
     "err busy" followed by a clean close;
  5. drains with the `shutdown` verb and asserts the server exits 0 and
     unlinks its socket file;
  6. repeats the drain via SIGTERM with a second server instance.

Exit status: 0 clean, 1 failure, 2 environment error (CLI missing).
"""

import argparse
import os
import pathlib
import re
import signal
import socket
import subprocess
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from serve_client import ServeClient  # noqa: E402


def synthesize_graph(path):
    """A small vulnds text graph: a 12-node probabilistic ring + chords."""
    n = 12
    lines = ["vulnds-graph 1", f"{n} {2 * n}",
             " ".join(f"0.{(i % 9) + 1}" for i in range(n))]
    for i in range(n):
        lines.append(f"{i} {(i + 1) % n} 0.5")
        lines.append(f"{i} {(i + 3) % n} 0.25")
    path.write_text("\n".join(lines) + "\n")


def start_server(cli, socket_path, extra=()):
    proc = subprocess.Popen(
        [cli, "serve", f"unix={socket_path}", "tcp=0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    transports = {}
    for _ in range(2):
        line = proc.stdout.readline().strip()
        if line.startswith("listening tcp="):
            host, _, port = line[len("listening tcp="):].rpartition(":")
            transports["tcp"] = (host, int(port))
        elif line.startswith("listening unix="):
            transports["unix"] = line[len("listening unix="):]
    if set(transports) != {"tcp", "unix"}:
        proc.kill()
        raise RuntimeError(f"missing listening lines, got {transports}")
    return proc, transports


def expect(condition, message, failures):
    if not condition:
        failures.append(message)
        print(f"FAIL: {message}", file=sys.stderr)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default="build/vulnds_cli",
                        help="path to the vulnds_cli binary")
    args = parser.parse_args()
    cli = pathlib.Path(args.cli)
    if not cli.exists():
        print(f"vulnds_cli not found at {cli}", file=sys.stderr)
        return 2

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        graph = pathlib.Path(tmp) / "ring.graph"
        synthesize_graph(graph)
        sock_path = str(pathlib.Path(tmp) / "serve.sock")

        # --- serve a session over the Unix socket --------------------------
        proc, transports = start_server(str(cli), sock_path,
                                        extra=("max_conns=2",))
        holders = []
        try:
            with ServeClient(unix=sock_path) as client:
                ok = client.request(f"load g {graph}")
                expect(ok[0].startswith("ok loaded g"),
                       f"load answered {ok[0]!r}", failures)
                cold = client.request("detect g 3")
                expect(cold[0].startswith("ok detect g") and
                       "cached=0" in cold[0],
                       f"cold detect answered {cold[0]!r}", failures)
                cached = client.request("detect g 3")
                expect("cached=1" in cached[0],
                       f"cached detect answered {cached[0]!r}", failures)
                expect(cached[1:] == cold[1:],
                       "cached payload diverged from the cold payload",
                       failures)
                stats = client.request("stats")
                expect(any(l.startswith("server sessions_started=")
                           for l in stats),
                       "stats block lacks the server counters", failures)
                metrics = client.request("metrics")
                for family in ("vulnds_net_accepted_total",
                               "vulnds_net_connections",
                               "vulnds_net_requests_per_connection_count"):
                    expect(any(l.startswith(family) for l in metrics),
                           f"metrics scrape lacks {family}", failures)

                # --- the TCP front answers the same cached block (the
                # wall-clock time= token is the one legitimate difference
                # outside a zero-clock harness) ----------------------------
                with ServeClient(tcp=transports["tcp"]) as tcp_client:
                    tcp_cached = tcp_client.request("detect g 3")
                    strip = lambda ls: [re.sub(r"\btime=\S+", "time=", l)
                                        for l in ls]
                    expect(strip(tcp_cached) == strip(cached),
                           "TCP front diverged from the Unix front", failures)

                # --- admission control: cap is 2, third client bounces ----
                holders = [ServeClient(unix=sock_path)]  # 2nd live conn
                holders[0].request("catalog")  # prove it was admitted
                raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                raw.settimeout(30)
                raw.connect(sock_path)
                rejected = b""
                while True:
                    chunk = raw.recv(4096)
                    if not chunk:
                        break
                    rejected += chunk
                raw.close()
                expect(rejected == b"err busy\n",
                       f"over-cap client got {rejected!r}", failures)

                # --- graceful drain via the shutdown verb ------------------
                expect(client.request("shutdown") == ["ok draining"],
                       "shutdown did not answer ok draining", failures)
            rc = proc.wait(timeout=60)
            expect(rc == 0, f"drained server exited {rc}", failures)
            expect(not os.path.exists(sock_path),
                   "socket file survived the drain", failures)
        finally:
            for holder in holders:
                holder.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # --- SIGTERM drain: finish in-flight work, exit 0 ------------------
        proc, transports = start_server(str(cli), sock_path)
        try:
            with ServeClient(tcp=transports["tcp"]) as client:
                client.request(f"load g {graph}")
                proc.send_signal(signal.SIGTERM)
                # The already-admitted session still answers until the close.
                tail = client.drain_eof()
            rc = proc.wait(timeout=60)
            expect(rc == 0, f"SIGTERM server exited {rc} (tail {tail!r})",
                   failures)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    if failures:
        print(f"socket_smoke: {len(failures)} failure(s)")
        return 1
    print("socket_smoke: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
