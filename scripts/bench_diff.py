#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json records against committed baselines.

Usage:
    bench_diff.py --baseline-dir bench/baselines --current-dir build \
                  [--tolerance 0.20] [--all-keys]
    bench_diff.py --baseline-dir bench/baselines --current-dir build \
                  --update-baselines

For every BENCH_<name>.json present in the baseline directory, the current
directory must contain the same record (a missing record fails the run —
a bench silently dropping out of CI is itself a regression). Each shared
numeric key is classified by name:

  higher-is-better:  *qps*, *speedup*, *scaling*, *hit_rate*
  lower-is-better:   *_ms, *_s, *latency*, *time*
  informational:     everything else (never compared)

By default only the *portable* metrics — the higher-is-better ratio/rate
family — are compared, because absolute latencies and throughputs measured
on the committing machine do not transfer to an arbitrary CI runner;
--all-keys opts into comparing the absolute metrics too (for same-machine
trajectories).

A key "regresses" by the fraction it got worse. The run fails when the
MEDIAN regression across a record's compared keys exceeds the tolerance
(default 20%): a single noisy percentile cannot fail the build, a broad
slowdown will.

--update-baselines flips the tool into refresh mode: every BENCH_*.json in
the current directory is copied over (or added to) the baseline directory,
and nothing is compared. Run the benches with --json on a machine of the
same class as the CI runner, then commit the rewritten records — see
bench/baselines/README.md for the refresh discipline.

Exit status: 0 clean, 1 regression or missing record, 2 usage error.
"""

import argparse
import json
import pathlib
import re
import statistics
import sys

HIGHER_BETTER = re.compile(r"(qps|speedup|scaling|hit_rate)")
LOWER_BETTER = re.compile(r"(_ms|_s$|latency|time|p50|p99)")
# Ratio/rate metrics transfer across machines; absolutes (qps, latencies)
# do not and are only compared with --all-keys.
PORTABLE = re.compile(r"(speedup|scaling|hit_rate)")
# Parallel-scaling and contention-storm floors are meaningless when the
# baseline was recorded on a single hardware thread: every ratio degenerates
# to ~1.0 there, so enforcing it against a multi-core run (or vice versa)
# compares physics, not code. Such keys are skipped with a warning. SIMD
# speedups are exempt: kernel-tier ratios compare scalar vs avx2 on ONE
# thread, so a 1-core baseline carries full signal for them.
PARALLELISM_ONLY = re.compile(r"(scaling|storm|speedup)")
THREAD_INDEPENDENT = re.compile(r"simd")


def classify(key):
    """Returns 'higher', 'lower', or None (informational)."""
    if HIGHER_BETTER.search(key):
        return "higher"
    if LOWER_BETTER.search(key):
        return "lower"
    return None


def regression(direction, base, cur):
    """Fraction by which `cur` is worse than `base` (>= 0)."""
    if base == 0:
        return 0.0
    if direction == "higher":
        return max(0.0, (base - cur) / abs(base))
    return max(0.0, (cur - base) / abs(base))


def compare_record(name, baseline, current, tolerance, portable_only):
    rows, regressions = [], []
    base_hw = baseline.get("hardware_threads")
    cur_hw = current.get("hardware_threads")
    if base_hw is not None and cur_hw is not None and base_hw != cur_hw:
        print(f"NOTE: {name} baseline recorded on {base_hw} hardware "
              f"threads, current run has {cur_hw}; ratio floors from a "
              "narrower machine are weak — re-record baselines on a "
              "machine matching the CI runner.")
    for key in sorted(baseline):
        direction = classify(key)
        if direction is None or key not in current:
            continue
        base, cur = baseline[key], current[key]
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            continue
        if not isinstance(cur, (int, float)) or isinstance(cur, bool):
            continue
        if portable_only and not PORTABLE.search(key):
            continue
        if (base_hw == 1 and PARALLELISM_ONLY.search(key)
                and not THREAD_INDEPENDENT.search(key)):
            print(f"WARN: {name}: skipping '{key}' — the baseline was "
                  "recorded on 1 hardware thread, so scaling/storm floors "
                  "carry no signal; re-record on a multi-core machine to "
                  "restore this gate.")
            continue
        reg = regression(direction, float(base), float(cur))
        regressions.append(reg)
        rows.append((key, direction, float(base), float(cur), reg))

    print(f"== {name} ==")
    if not rows:
        print("  (no comparable keys)")
        return True
    for key, direction, base, cur, reg in rows:
        marker = " <-- regressed" if reg > tolerance else ""
        print(f"  {key:<24} {direction:<6} baseline={base:<12.6g} "
              f"current={cur:<12.6g} regression={reg * 100:6.1f}%{marker}")
    median = statistics.median(regressions)
    verdict = "FAIL" if median > tolerance else "ok"
    print(f"  median regression: {median * 100:.1f}% "
          f"(tolerance {tolerance * 100:.0f}%) -> {verdict}")
    return median <= tolerance


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--current-dir", required=True)
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--all-keys", action="store_true",
                        help="compare absolute metrics too (same-machine runs)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="rewrite the committed baseline records from "
                             "--current-dir instead of comparing")
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baseline_dir)
    current_dir = pathlib.Path(args.current_dir)

    if args.update_baselines:
        records = sorted(current_dir.glob("BENCH_*.json"))
        if not records:
            print(f"no BENCH_*.json records under {current_dir}",
                  file=sys.stderr)
            return 2
        baseline_dir.mkdir(parents=True, exist_ok=True)
        for record in records:
            with open(record) as f:
                data = json.load(f)  # refuse to commit malformed JSON
            target = baseline_dir / record.name
            verb = "updated" if target.exists() else "added"
            target.write_text(record.read_text())
            hw = data.get("hardware_threads")
            print(f"{verb} {target}"
                  + (f" (recorded on {hw} hardware threads)"
                     if hw is not None else ""))
        print(f"\nbaselines rewritten from {current_dir}; review the diff "
              "and commit (see bench/baselines/README.md)")
        return 0

    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no BENCH_*.json baselines under {baseline_dir}", file=sys.stderr)
        return 2

    ok = True
    for baseline_path in baselines:
        current_path = current_dir / baseline_path.name
        if not current_path.exists():
            print(f"== {baseline_path.name} ==\n  MISSING from {current_dir} "
                  "(bench dropped out of CI?)")
            ok = False
            continue
        with open(baseline_path) as f:
            baseline = json.load(f)
        with open(current_path) as f:
            current = json.load(f)
        if not compare_record(baseline_path.name, baseline, current,
                              args.tolerance, not args.all_keys):
            ok = False

    print("\nbench-diff:", "clean" if ok else "REGRESSION / MISSING RECORDS")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
