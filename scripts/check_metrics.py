#!/usr/bin/env python3
"""Lint the serve stack's Prometheus exposition end to end.

Usage:
    check_metrics.py [--cli build/vulnds_cli]

Starts a real `vulnds_cli serve unix=...` socket front end, loads a
synthesized graph over the wire, runs a cold and a cached detect plus a
truth query, scrapes the `metrics` verb, drains the server with the
`shutdown` verb (asserting exit 0), and validates the exposition a scraper
would see:

  * every series line belongs to a family with exactly one # HELP and one
    # TYPE line, emitted before the series (no orphan or duplicate families);
  * family names follow vulnds_<subsystem>_..., counters end in _total,
    and the TYPE matches the suffix convention;
  * no duplicate series (same name + label set twice);
  * histogram buckets are cumulative (monotone in le order, le="+Inf"
    present) and agree with the family's _count;
  * the families the serve stack promises are all present: engine requests
    and per-stage latency histograms, result-cache and catalog families
    (aggregate + per-shard), the server session counters, and the socket
    front end's vulnds_net_* connection/timeout families.

Exit status: 0 clean, 1 lint failure, 2 environment error (CLI missing).
"""

import argparse
import pathlib
import re
import subprocess
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from serve_client import ServeClient  # noqa: E402

# Families the instrumented serve stack must always export (the acceptance
# surface: engine, server, catalog shards, cache shards, stage latencies).
REQUIRED_FAMILIES = [
    "vulnds_engine_requests_total",
    "vulnds_engine_request_micros",
    "vulnds_engine_stage_micros",
    "vulnds_engine_batched_queries_total",
    "vulnds_engine_waves_issued_total",
    "vulnds_engine_worlds_wasted_total",
    "vulnds_simd_tier",
    "vulnds_simd_batched_coins_total",
    "vulnds_simd_scalar_tail_coins_total",
    "vulnds_cache_hits_total",
    "vulnds_cache_misses_total",
    "vulnds_cache_entries",
    "vulnds_cache_shard_entries",
    "vulnds_cache_shard_hits_total",
    "vulnds_catalog_hits_total",
    "vulnds_catalog_resident_graphs",
    "vulnds_catalog_resident_bytes",
    "vulnds_catalog_shard_entries",
    "vulnds_catalog_shard_hits_total",
    "vulnds_store_budget_bytes",
    "vulnds_store_resident_bytes",
    "vulnds_store_charged_bytes",
    "vulnds_store_spilled_bytes",
    "vulnds_store_spilled_graphs",
    "vulnds_store_spills_total",
    "vulnds_store_page_ins_total",
    "vulnds_store_page_in_micros",
    "vulnds_store_rejected_oversize_total",
    "vulnds_store_io_errors_total",
    "vulnds_store_spill_orphans_reclaimed_total",
    "vulnds_server_requests_total",
    "vulnds_server_sessions_started_total",
    "vulnds_net_connections",
    "vulnds_net_accepted_total",
    "vulnds_net_rejected_total",
    "vulnds_net_timeouts_total",
    "vulnds_net_requests_per_connection",
]

NAME_RE = re.compile(r"^vulnds_[a-z0-9_]+$")
SERIES_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$")


def synthesize_graph(path):
    """Writes a small vulnds text graph: a 6-node probabilistic ring."""
    n = 6
    lines = [f"vulnds-graph 1", f"{n} {n}",
             " ".join(f"0.{i + 1}" for i in range(n))]
    for i in range(n):
        lines.append(f"{i} {(i + 1) % n} 0.5")
    path.write_text("\n".join(lines) + "\n")


def scrape(cli, graph_path, socket_path):
    """Runs the probe script against a real `serve unix=...` front end and
    returns the metrics exposition; the server is drained via `shutdown`
    and must exit 0. The vulnds_net_* families only exist on this path —
    scraping over a socket is what makes them part of the lint surface."""
    proc = subprocess.Popen([cli, "serve", f"unix={socket_path}"],
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)
    try:
        listening = proc.stdout.readline()
        if not listening.startswith("listening unix="):
            raise RuntimeError(f"no listening line, got: {listening!r}")
        with ServeClient(unix=socket_path, timeout=120) as client:
            for line in (f"load g {graph_path}", "detect g 2", "detect g 2",
                         "truth g 2 50 7"):
                response = client.request(line)
                if not response[0].startswith("ok"):
                    raise RuntimeError(f"{line!r} answered {response[0]!r}")
            metrics = client.request("metrics")
            if metrics[0] != "ok metrics" or metrics[-1] != ".":
                raise RuntimeError("metrics block is not '.'-terminated")
            drained = client.request("shutdown")
            if drained != ["ok draining"]:
                raise RuntimeError(f"shutdown answered {drained!r}")
        rc = proc.wait(timeout=60)
        if rc != 0:
            raise RuntimeError(
                f"drained server exited {rc}:\n{proc.stderr.read()}")
        return "\n".join(metrics[1:-1]) + "\n"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def base_family(name):
    """Histogram series names map back to their family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint(text):
    errors = []
    families = {}  # name -> {"help": bool, "type": str}
    seen_series = set()
    histogram_buckets = {}  # (family, labels-sans-le) -> [(le, value)]
    histogram_counts = {}  # (family, labels) -> value
    current_family = None

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            errors.append(f"line {lineno}: blank line inside exposition")
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            # ['#', 'HELP'|'TYPE', name, text]
            parts = line.split(" ", 3)
            kind, name = parts[1], parts[2]
            meta = families.setdefault(name, {"help": 0, "type": None})
            if kind == "HELP":
                meta["help"] += 1
                if meta["help"] > 1:
                    errors.append(f"line {lineno}: duplicate HELP for {name}")
            else:
                if meta["type"] is not None:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                meta["type"] = parts[3].strip()
                if not NAME_RE.match(name):
                    errors.append(
                        f"line {lineno}: family '{name}' breaks the "
                        "vulnds_<subsystem>_<name> naming convention")
                if name.endswith("_total") and meta["type"] != "counter":
                    errors.append(
                        f"line {lineno}: '{name}' ends in _total but TYPE "
                        f"is {meta['type']}")
                current_family = name
            continue
        if line.startswith("#"):
            errors.append(f"line {lineno}: unexpected comment: {line}")
            continue

        m = SERIES_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable series line: {line}")
            continue
        series_name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        family = base_family(series_name)
        if family not in families or families[family]["type"] is None:
            errors.append(
                f"line {lineno}: series '{series_name}' has no preceding "
                "HELP/TYPE")
            continue
        if family != current_family:
            errors.append(
                f"line {lineno}: series '{series_name}' appears outside its "
                f"family block (current: {current_family})")
        if (series_name, labels) in seen_series:
            errors.append(
                f"line {lineno}: duplicate series {series_name}{labels}")
        seen_series.add((series_name, labels))

        ftype = families[family]["type"]
        if ftype == "histogram":
            if series_name.endswith("_bucket"):
                le = re.search(r'le="([^"]+)"', labels)
                if not le:
                    errors.append(f"line {lineno}: _bucket without le label")
                    continue
                key_labels = re.sub(r',?le="[^"]+"', "", labels)
                if key_labels == "{}":  # le was the only label
                    key_labels = ""
                histogram_buckets.setdefault((family, key_labels), []).append(
                    (le.group(1), float(value)))
            elif series_name.endswith("_count"):
                histogram_counts[(family, labels)] = float(value)
        else:
            try:
                v = float(value)
            except ValueError:
                errors.append(f"line {lineno}: non-numeric value: {line}")
                continue
            if ftype == "counter" and v < 0:
                errors.append(f"line {lineno}: negative counter: {line}")

    # Histogram invariants: buckets monotone, +Inf present and == _count.
    for (family, labels), buckets in histogram_buckets.items():
        values = [v for _, v in buckets]
        if values != sorted(values):
            errors.append(f"{family}{labels}: buckets are not cumulative")
        les = [le for le, _ in buckets]
        if les.count("+Inf") != 1 or les[-1] != "+Inf":
            errors.append(f"{family}{labels}: le=\"+Inf\" missing or not last")
            continue
        count = histogram_counts.get((family, labels))
        if count is None:
            errors.append(f"{family}{labels}: histogram without _count")
        elif count != values[-1]:
            errors.append(
                f"{family}{labels}: _count={count} != +Inf bucket "
                f"{values[-1]}")

    for name in REQUIRED_FAMILIES:
        if name not in families:
            errors.append(f"required family '{name}' missing from exposition")

    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default="build/vulnds_cli",
                        help="path to the vulnds_cli binary")
    args = parser.parse_args()

    cli = pathlib.Path(args.cli)
    if not cli.exists():
        print(f"vulnds_cli not found at {cli}", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory() as tmp:
        graph = pathlib.Path(tmp) / "ring.graph"
        socket_path = pathlib.Path(tmp) / "metrics.sock"
        synthesize_graph(graph)
        try:
            text = scrape(str(cli), graph, str(socket_path))
        except (RuntimeError, OSError, ConnectionError) as err:
            print(f"scrape failed: {err}", file=sys.stderr)
            return 1

    errors = lint(text)
    series_lines = sum(1 for line in text.splitlines()
                       if line and not line.startswith("#"))
    print(f"check_metrics: {len(text.splitlines())} exposition lines, "
          f"{series_lines} series")
    if errors:
        for err in errors:
            print(f"FAIL: {err}")
        return 1
    print("check_metrics: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
