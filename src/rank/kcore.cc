#include "rank/kcore.h"

#include <algorithm>

namespace vulnds {

std::vector<std::size_t> CoreNumbers(const UncertainGraph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::size_t> degree(n, 0);
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = graph.OutDegree(v) + graph.InDegree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort nodes by degree (Batagelj-Zaversnik).
  std::vector<std::size_t> bin(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin[degree[v]];
  std::size_t start = 0;
  for (std::size_t d = 0; d <= max_degree; ++d) {
    const std::size_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> order(n);           // nodes sorted by current degree
  std::vector<std::size_t> position(n);   // node -> index in `order`
  for (NodeId v = 0; v < n; ++v) {
    position[v] = bin[degree[v]];
    order[position[v]] = v;
    ++bin[degree[v]];
  }
  for (std::size_t d = max_degree; d >= 1; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  std::vector<std::size_t> core = degree;
  auto decrease = [&](NodeId u, NodeId v) {
    // Peel v's effect on u if u is still unprocessed with higher degree.
    if (core[u] > core[v]) {
      const std::size_t du = core[u];
      const std::size_t pu = position[u];
      const std::size_t pw = bin[du];
      const NodeId w = order[pw];
      if (u != w) {
        std::swap(order[pu], order[pw]);
        position[u] = pw;
        position[w] = pu;
      }
      ++bin[du];
      --core[u];
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    for (const Arc& arc : graph.OutArcs(v)) decrease(arc.neighbor, v);
    for (const Arc& arc : graph.InArcs(v)) decrease(arc.neighbor, v);
  }
  return core;
}

}  // namespace vulnds
