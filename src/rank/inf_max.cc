#include "rank/inf_max.h"

#include <algorithm>
#include <queue>

#include "common/rng.h"

namespace vulnds {

RisSketches::RisSketches(const UncertainGraph& graph, std::size_t num_sets,
                         uint64_t seed)
    : graph_(graph), covers_(graph.num_nodes()) {
  const std::size_t n = graph.num_nodes();
  sets_.reserve(num_sets);
  if (n == 0) return;
  Rng base(seed);
  std::vector<uint64_t> visited_stamp(n, 0);
  uint64_t stamp = 0;
  std::vector<NodeId> queue;
  for (std::size_t s = 0; s < num_sets; ++s) {
    Rng rng = base.Fork(s);
    const auto target = static_cast<NodeId>(rng.NextBounded(n));
    ++stamp;
    queue.clear();
    queue.push_back(target);
    visited_stamp[target] = stamp;
    std::vector<NodeId> members;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      members.push_back(v);
      for (const Arc& arc : graph.InArcs(v)) {
        if (visited_stamp[arc.neighbor] == stamp) continue;
        if (!rng.Bernoulli(arc.prob)) continue;
        visited_stamp[arc.neighbor] = stamp;
        queue.push_back(arc.neighbor);
      }
    }
    const auto set_id = static_cast<uint32_t>(sets_.size());
    for (const NodeId v : members) covers_[v].push_back(set_id);
    sets_.push_back(std::move(members));
  }
}

double RisSketches::EstimateInfluence(NodeId v) const {
  if (sets_.empty()) return 0.0;
  return static_cast<double>(graph_.num_nodes()) *
         static_cast<double>(covers_[v].size()) /
         static_cast<double>(sets_.size());
}

std::vector<double> RisSketches::InfluenceScores() const {
  std::vector<double> scores(graph_.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    scores[v] = EstimateInfluence(v);
  }
  return scores;
}

std::vector<NodeId> RisSketches::SelectSeeds(std::size_t k) const {
  const std::size_t n = graph_.num_nodes();
  k = std::min(k, n);
  std::vector<NodeId> seeds;
  std::vector<char> set_covered(sets_.size(), 0);

  // CELF-style lazy greedy: priority queue of (stale gain, node, round).
  struct Entry {
    std::size_t gain;
    NodeId node;
    std::size_t round;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return node > other.node;  // deterministic tie-break: smaller id wins
    }
  };
  std::priority_queue<Entry> heap;
  for (NodeId v = 0; v < n; ++v) {
    heap.push({covers_[v].size(), v, 0});
  }
  auto current_gain = [&](NodeId v) {
    std::size_t gain = 0;
    for (const uint32_t s : covers_[v]) {
      if (!set_covered[s]) ++gain;
    }
    return gain;
  };
  while (seeds.size() < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.round == seeds.size()) {
      seeds.push_back(top.node);
      for (const uint32_t s : covers_[top.node]) set_covered[s] = 1;
    } else {
      top.gain = current_gain(top.node);
      top.round = seeds.size();
      heap.push(top);
    }
  }
  return seeds;
}

}  // namespace vulnds
