// Classical centrality baselines used in the paper's case study (Table 3):
// betweenness [30] and PageRank [31]. Both treat the uncertain graph as a
// plain directed graph (probabilities ignored), matching how the baselines
// were applied in the paper.

#ifndef VULNDS_RANK_CENTRALITY_H_
#define VULNDS_RANK_CENTRALITY_H_

#include <vector>

#include "graph/uncertain_graph.h"

namespace vulnds {

/// Exact betweenness centrality (Brandes' algorithm, unweighted, directed).
/// O(n m) time, O(n + m) memory.
std::vector<double> BetweennessCentrality(const UncertainGraph& graph);

/// PageRank options.
struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 100;
  double tolerance = 1e-10;  ///< L1 change that counts as converged
};

/// Power-iteration PageRank with uniform teleport; dangling mass is
/// redistributed uniformly. Scores sum to 1.
std::vector<double> PageRank(const UncertainGraph& graph,
                             const PageRankOptions& options = {});

}  // namespace vulnds

#endif  // VULNDS_RANK_CENTRALITY_H_
