#include "rank/centrality.h"

#include <cmath>
#include <vector>

namespace vulnds {

std::vector<double> BetweennessCentrality(const UncertainGraph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<double> centrality(n, 0.0);
  if (n == 0) return centrality;

  // Brandes (2001): one BFS + dependency accumulation per source.
  std::vector<NodeId> stack_order;
  stack_order.reserve(n);
  std::vector<std::vector<NodeId>> predecessors(n);
  std::vector<double> sigma(n, 0.0);  // shortest-path counts
  std::vector<int64_t> dist(n, -1);
  std::vector<double> delta(n, 0.0);
  std::vector<NodeId> queue;
  queue.reserve(n);

  for (NodeId s = 0; s < n; ++s) {
    stack_order.clear();
    queue.clear();
    for (NodeId v = 0; v < n; ++v) {
      predecessors[v].clear();
      sigma[v] = 0.0;
      dist[v] = -1;
      delta[v] = 0.0;
    }
    sigma[s] = 1.0;
    dist[s] = 0;
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      stack_order.push_back(v);
      for (const Arc& arc : graph.OutArcs(v)) {
        const NodeId w = arc.neighbor;
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          predecessors[w].push_back(v);
        }
      }
    }
    // Accumulate dependencies in reverse BFS order.
    for (auto it = stack_order.rbegin(); it != stack_order.rend(); ++it) {
      const NodeId w = *it;
      for (const NodeId v : predecessors[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) centrality[w] += delta[w];
    }
  }
  return centrality;
}

std::vector<double> PageRank(const UncertainGraph& graph,
                             const PageRankOptions& options) {
  const std::size_t n = graph.num_nodes();
  if (n == 0) return {};
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (graph.OutDegree(v) == 0) dangling += rank[v];
      next[v] = 0.0;
    }
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t out = graph.OutDegree(v);
      if (out == 0) continue;
      const double share = rank[v] / static_cast<double>(out);
      for (const Arc& arc : graph.OutArcs(v)) {
        next[arc.neighbor] += share;
      }
    }
    const double base = (1.0 - options.damping) * uniform +
                        options.damping * dangling * uniform;
    double change = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      next[v] = base + options.damping * next[v];
      change += std::fabs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (change < options.tolerance) break;
  }
  return rank;
}

}  // namespace vulnds
