// k-core decomposition baseline [32] for the case study.

#ifndef VULNDS_RANK_KCORE_H_
#define VULNDS_RANK_KCORE_H_

#include <vector>

#include "graph/uncertain_graph.h"

namespace vulnds {

/// Core number per node on the underlying undirected multigraph (degree =
/// in + out). Batagelj–Zaveršnik bucket algorithm, O(n + m).
std::vector<std::size_t> CoreNumbers(const UncertainGraph& graph);

}  // namespace vulnds

#endif  // VULNDS_RANK_KCORE_H_
