// Influence maximization baseline [14, 18] under the independent-cascade
// model, via reverse-influence sampling (RIS).
//
// An RR (reverse-reachable) set is produced by picking a uniform target node
// and walking the transpose over edges that survive their diffusion coin;
// a node's influence is proportional to the fraction of RR sets containing
// it. Seeds are selected by lazy greedy maximum coverage (CELF-style).
// The per-node coverage count doubles as the "InfMax" risk score in the
// Table 3 case study.

#ifndef VULNDS_RANK_INF_MAX_H_
#define VULNDS_RANK_INF_MAX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Collection of RR sets plus the inverted index used for greedy coverage.
class RisSketches {
 public:
  /// Draws `num_sets` RR sets; deterministic in `seed`.
  RisSketches(const UncertainGraph& graph, std::size_t num_sets, uint64_t seed);

  /// Number of RR sets drawn.
  std::size_t num_sets() const { return sets_.size(); }

  /// Estimated influence spread of a single node: n * coverage / num_sets.
  double EstimateInfluence(NodeId v) const;

  /// Per-node influence scores (same scale as EstimateInfluence).
  std::vector<double> InfluenceScores() const;

  /// Greedy max-coverage seed selection; returns k node ids in pick order.
  std::vector<NodeId> SelectSeeds(std::size_t k) const;

 private:
  const UncertainGraph& graph_;
  std::vector<std::vector<NodeId>> sets_;        // RR set -> members
  std::vector<std::vector<uint32_t>> covers_;    // node -> RR set ids
};

}  // namespace vulnds

#endif  // VULNDS_RANK_INF_MAX_H_
