// Bottom-k (KMV) sketch for distinct-value estimation (paper §2.2, [17]).
//
// Items are hashed into (0, 1) by a seeded UniformHash; the sketch keeps the
// bk smallest hash values. With L(A, bk) the bk-th smallest value, the
// number of distinct items is estimated by (bk - 1) / L(A, bk), with
// expected relative error sqrt(2 / (pi * (bk - 2))) and coefficient of
// variation at most 1 / sqrt(bk - 2).
//
// BSRBK (src/vulnds/bsrbk.*) uses the *threshold* form of this sketch: it
// assigns each sample id a hash, processes samples in ascending hash order,
// and reads a node's default-probability estimate off the hash value of the
// bk-th sample in which the node defaulted.

#ifndef VULNDS_SKETCH_BOTTOM_K_H_
#define VULNDS_SKETCH_BOTTOM_K_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace vulnds {

/// Streaming bottom-k sketch over 64-bit item identifiers.
class BottomKSketch {
 public:
  /// Creates a sketch keeping the `bk` smallest hashes; `bk` must be >= 3
  /// for the estimator to be defined. Hashing is seeded by `hash_seed`.
  BottomKSketch(int bk, uint64_t hash_seed);

  /// Number of retained minima (the sketch parameter bk).
  int bk() const { return bk_; }

  /// Inserts an item; duplicate ids hash identically and are rejected, so
  /// re-inserting an item never changes the sketch (multiset semantics of
  /// the original bottom-k construction).
  void Add(uint64_t id);

  /// Inserts a pre-hashed value in (0, 1); exposed for callers that manage
  /// their own hashing (e.g. sample-id streams in BSRBK).
  void AddHashed(double unit_hash);

  /// Number of items currently retained (min(bk, #distinct inserted)).
  int size() const { return static_cast<int>(values_.size()); }

  /// True once bk values are retained, i.e. L(A, bk) is defined.
  bool Saturated() const { return size() >= bk_; }

  /// The bk-th smallest hash L(A, bk); requires Saturated().
  double KthSmallest() const;

  /// Distinct-count estimate (bk - 1) / L(A, bk); requires Saturated().
  /// When not saturated the exact retained count is the answer and
  /// EstimateDistinct returns it.
  double EstimateDistinct() const;

  /// Expected relative error of the estimator for a given bk.
  static double ExpectedRelativeError(int bk);

  /// Upper bound on the coefficient of variation for a given bk.
  static double CoefficientOfVariationBound(int bk);

  /// The retained hash values in ascending order (copies; O(bk)).
  std::vector<double> RetainedHashes() const;

 private:
  int bk_;
  UniformHash hash_;
  // The bk smallest distinct values; *rbegin() is the current threshold.
  std::set<double> values_;
};

}  // namespace vulnds

#endif  // VULNDS_SKETCH_BOTTOM_K_H_
