#include "sketch/bottom_k.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vulnds {

BottomKSketch::BottomKSketch(int bk, uint64_t hash_seed)
    : bk_(bk), hash_(hash_seed) {
  assert(bk >= 3 && "bottom-k estimator requires bk >= 3");
}

void BottomKSketch::Add(uint64_t id) { AddHashed(hash_.HashUnit(id)); }

void BottomKSketch::AddHashed(double unit_hash) {
  // KMV keeps the bk smallest *distinct* hash values; a re-inserted item
  // hashes to an already-retained value and must be ignored, otherwise
  // duplicates would crowd out genuine minima and bias the estimate.
  if (static_cast<int>(values_.size()) < bk_) {
    values_.insert(unit_hash);  // set semantics reject exact duplicates
    return;
  }
  const double threshold = *values_.rbegin();
  if (unit_hash >= threshold) return;
  if (values_.insert(unit_hash).second) {
    values_.erase(std::prev(values_.end()));
  }
}

double BottomKSketch::KthSmallest() const {
  assert(Saturated());
  return *values_.rbegin();
}

double BottomKSketch::EstimateDistinct() const {
  if (!Saturated()) return static_cast<double>(size());
  return static_cast<double>(bk_ - 1) / KthSmallest();
}

double BottomKSketch::ExpectedRelativeError(int bk) {
  assert(bk > 2);
  return std::sqrt(2.0 / (M_PI * (bk - 2)));
}

double BottomKSketch::CoefficientOfVariationBound(int bk) {
  assert(bk > 2);
  return 1.0 / std::sqrt(static_cast<double>(bk - 2));
}

std::vector<double> BottomKSketch::RetainedHashes() const {
  return {values_.begin(), values_.end()};
}

}  // namespace vulnds
