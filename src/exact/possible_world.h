// Exact default probabilities by full possible-world enumeration.
//
// A possible world fixes, for every node, whether it self-defaults and, for
// every edge, whether it survives. A node defaults in the world iff it
// self-defaults or is reachable from a self-defaulted node over surviving
// edges. p(v) is the probability-weighted fraction of worlds in which v
// defaults (the paper's Definition 1 aggregated over worlds).
//
// Enumeration is exponential in the number of *uncertain* entities (nodes
// with 0 < ps < 1 plus edges with 0 < p < 1); deterministic entities cost no
// bits. This module is the test oracle for every sampler and bound in the
// library — it is intentionally simple and obviously correct.

#ifndef VULNDS_EXACT_POSSIBLE_WORLD_H_
#define VULNDS_EXACT_POSSIBLE_WORLD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Hard cap on the number of uncertain entities (2^26 worlds ~ 67M).
inline constexpr int kMaxUncertainBits = 26;

/// Computes the exact default probability of every node. Fails with
/// InvalidArgument if the graph has more than kMaxUncertainBits uncertain
/// entities.
Result<std::vector<double>> ExactDefaultProbabilities(const UncertainGraph& graph);

/// Exact top-k node ids, ordered by decreasing default probability (ties
/// broken by node id for determinism). Requires k <= num_nodes.
Result<std::vector<NodeId>> ExactTopK(const UncertainGraph& graph, std::size_t k);

/// Deterministic world evaluation helper: given which nodes self-default and
/// which edges survive, marks every defaulted node (forward reachability).
/// Exposed so tests can cross-check samplers world-by-world.
std::vector<char> EvaluateWorld(const UncertainGraph& graph,
                                const std::vector<char>& self_defaults,
                                const std::vector<char>& edge_survives);

}  // namespace vulnds

#endif  // VULNDS_EXACT_POSSIBLE_WORLD_H_
