#include "exact/possible_world.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace vulnds {

std::vector<char> EvaluateWorld(const UncertainGraph& graph,
                                const std::vector<char>& self_defaults,
                                const std::vector<char>& edge_survives) {
  const std::size_t n = graph.num_nodes();
  std::vector<char> defaulted(n, 0);
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (self_defaults[v]) {
      defaulted[v] = 1;
      queue.push_back(v);
    }
  }
  // BFS over surviving edges.
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const Arc& arc : graph.OutArcs(u)) {
      if (!edge_survives[arc.edge]) continue;
      if (defaulted[arc.neighbor]) continue;
      defaulted[arc.neighbor] = 1;
      queue.push_back(arc.neighbor);
    }
  }
  return defaulted;
}

Result<std::vector<double>> ExactDefaultProbabilities(const UncertainGraph& graph) {
  const std::size_t n = graph.num_nodes();
  const std::size_t m = graph.num_edges();

  // Collect uncertain entities; deterministic ones are fixed up-front.
  std::vector<NodeId> random_nodes;
  std::vector<EdgeId> random_edges;
  std::vector<char> self_defaults(n, 0);
  std::vector<char> edge_survives(m, 0);
  for (NodeId v = 0; v < n; ++v) {
    const double p = graph.self_risk(v);
    if (p <= 0.0) {
      self_defaults[v] = 0;
    } else if (p >= 1.0) {
      self_defaults[v] = 1;
    } else {
      random_nodes.push_back(v);
    }
  }
  const auto& edges = graph.edges();
  for (EdgeId e = 0; e < m; ++e) {
    const double p = edges[e].prob;
    if (p <= 0.0) {
      edge_survives[e] = 0;
    } else if (p >= 1.0) {
      edge_survives[e] = 1;
    } else {
      random_edges.push_back(e);
    }
  }

  const int bits = static_cast<int>(random_nodes.size() + random_edges.size());
  if (bits > kMaxUncertainBits) {
    return Status::InvalidArgument(
        "graph has " + std::to_string(bits) + " uncertain entities; exact " +
        "enumeration is capped at " + std::to_string(kMaxUncertainBits));
  }

  std::vector<double> acc(n, 0.0);
  const uint64_t worlds = 1ULL << bits;
  const int node_bits = static_cast<int>(random_nodes.size());
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    double world_prob = 1.0;
    for (int i = 0; i < node_bits; ++i) {
      const NodeId v = random_nodes[i];
      const bool on = (mask >> i) & 1ULL;
      self_defaults[v] = on ? 1 : 0;
      world_prob *= on ? graph.self_risk(v) : 1.0 - graph.self_risk(v);
    }
    for (std::size_t i = 0; i < random_edges.size(); ++i) {
      const EdgeId e = random_edges[i];
      const bool on = (mask >> (node_bits + i)) & 1ULL;
      edge_survives[e] = on ? 1 : 0;
      world_prob *= on ? edges[e].prob : 1.0 - edges[e].prob;
    }
    if (world_prob == 0.0) continue;
    const std::vector<char> defaulted = EvaluateWorld(graph, self_defaults, edge_survives);
    for (NodeId v = 0; v < n; ++v) {
      if (defaulted[v]) acc[v] += world_prob;
    }
  }
  return acc;
}

Result<std::vector<NodeId>> ExactTopK(const UncertainGraph& graph, std::size_t k) {
  if (k > graph.num_nodes()) {
    return Status::InvalidArgument("k exceeds node count");
  }
  Result<std::vector<double>> probs = ExactDefaultProbabilities(graph);
  if (!probs.ok()) return probs.status();
  std::vector<NodeId> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if ((*probs)[a] != (*probs)[b]) return (*probs)[a] > (*probs)[b];
    return a < b;
  });
  order.resize(k);
  return order;
}

}  // namespace vulnds
