// Serialization of uncertain graphs: a human-readable text format (v1) and a
// compact binary snapshot format (v2) for the serving layer.
//
// Text format (whitespace separated, '#' comments allowed):
//   vulnds-graph 1
//   <num_nodes> <num_edges>
//   <ps(0)> <ps(1)> ... <ps(n-1)>        (may span multiple lines)
//   <src> <dst> <prob>                    (num_edges lines)
//
// Binary format (v2), all integers and doubles little-endian:
//   magic   8 bytes  "VULNDSG\n"
//   u32     version  (2)
//   u64     num_nodes n
//   u64     num_edges m
//   f64[n]  self risks
//   u64[n+1] out-CSR offsets
//   u32[m]  arc destination, out-CSR order (grouped by src)
//   f64[m]  arc diffusion probability, out-CSR order
//   u32[m]  arc global edge id, out-CSR order
// The edge-id column makes the dump lossless: the insertion-order edge list
// (and hence the exact dual-CSR layout the builder produces) is recovered,
// so a graph loaded from a snapshot is indistinguishable from one loaded
// from text — detection results are bit-identical.

#ifndef VULNDS_GRAPH_GRAPH_IO_H_
#define VULNDS_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// On-disk representations understood by WriteGraphFile / ReadGraphFile.
enum class GraphFileFormat {
  kText = 0,   ///< vulnds-graph v1, human readable
  kBinary,     ///< v2 binary snapshot, I/O-bound to load
};

/// Writes `graph` in the vulnds-graph text format.
Status WriteGraph(const UncertainGraph& graph, std::ostream& out);

/// Writes `graph` as a v2 binary snapshot. `out` must be a binary stream.
Status WriteGraphBinary(const UncertainGraph& graph, std::ostream& out);

/// Writes `graph` to `path` in the requested format; overwrites existing
/// content.
Status WriteGraphFile(const UncertainGraph& graph, const std::string& path,
                      GraphFileFormat format = GraphFileFormat::kText);

/// Parses a graph from the vulnds-graph text format.
Result<UncertainGraph> ReadGraph(std::istream& in);

/// Parses a graph from the v2 binary snapshot format.
Result<UncertainGraph> ReadGraphBinary(std::istream& in);

/// Reads a graph from `path`, auto-detecting text vs binary by magic.
Result<UncertainGraph> ReadGraphFile(const std::string& path);

}  // namespace vulnds

#endif  // VULNDS_GRAPH_GRAPH_IO_H_
