// Text serialization of uncertain graphs.
//
// Format (whitespace separated, '#' comments allowed):
//   vulnds-graph 1
//   <num_nodes> <num_edges>
//   <ps(0)> <ps(1)> ... <ps(n-1)>        (may span multiple lines)
//   <src> <dst> <prob>                    (num_edges lines)

#ifndef VULNDS_GRAPH_GRAPH_IO_H_
#define VULNDS_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Writes `graph` in the vulnds-graph text format.
Status WriteGraph(const UncertainGraph& graph, std::ostream& out);

/// Writes `graph` to `path`; overwrites existing content.
Status WriteGraphFile(const UncertainGraph& graph, const std::string& path);

/// Parses a graph from the vulnds-graph text format.
Result<UncertainGraph> ReadGraph(std::istream& in);

/// Reads a graph from `path`.
Result<UncertainGraph> ReadGraphFile(const std::string& path);

}  // namespace vulnds

#endif  // VULNDS_GRAPH_GRAPH_IO_H_
