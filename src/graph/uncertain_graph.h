// UncertainGraph: the directed uncertain graph of the paper (§2.1).
//
// Each node v carries a self-risk probability ps(v); each edge (u, v) carries
// a diffusion probability p(v|u). The graph is stored in CSR form in both
// directions so forward sampling (Algorithm 1) and reverse sampling
// (Algorithm 5) both enumerate incident edges in O(degree).
//
// Instances are immutable after construction; build them with
// UncertainGraphBuilder (builder.h) or the generators in src/gen.

#ifndef VULNDS_GRAPH_UNCERTAIN_GRAPH_H_
#define VULNDS_GRAPH_UNCERTAIN_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/derived_cache.h"

namespace vulnds {

/// Node identifier; dense in [0, num_nodes).
using NodeId = uint32_t;

/// Edge identifier; dense in [0, num_edges), shared between the forward and
/// reverse CSR so that per-edge sampled state can be memoized once per world.
using EdgeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A directed uncertain edge: src defaults may diffuse to dst with prob.
struct UncertainEdge {
  NodeId src = 0;
  NodeId dst = 0;
  double prob = 0.0;  ///< diffusion probability p(dst | src), in [0, 1]
};

/// One incident edge as seen from a node: the neighbor, the diffusion
/// probability, and the global edge id (stable across both directions).
struct Arc {
  NodeId neighbor;
  double prob;
  EdgeId edge;
};

/// Immutable directed uncertain graph in dual-CSR form.
class UncertainGraph {
 public:
  UncertainGraph() = default;

  /// Number of nodes n = |V|.
  std::size_t num_nodes() const { return self_risk_.size(); }
  /// Number of edges m = |E|.
  std::size_t num_edges() const { return out_arcs_.size(); }

  /// Self-risk probability ps(v).
  double self_risk(NodeId v) const { return self_risk_[v]; }

  /// All self-risk probabilities, indexed by node.
  std::span<const double> self_risks() const { return self_risk_; }

  /// Out-arcs of v: edges (v, w) with their diffusion probabilities.
  std::span<const Arc> OutArcs(NodeId v) const {
    return {out_arcs_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// In-arcs of v: edges (u, v); Arc::neighbor is the in-neighbor u.
  /// This is the paper's N(v) together with p(v|u).
  std::span<const Arc> InArcs(NodeId v) const {
    return {in_arcs_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Out-degree of v.
  std::size_t OutDegree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  /// In-degree of v.
  std::size_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// The edge list in insertion order (edge id == index).
  std::span<const UncertainEdge> edges() const { return edge_list_; }

  /// Returns a copy with every edge reversed (p(v|u) becomes an edge v->u).
  /// The detectors never need this — InArcs already exposes the transpose —
  /// but it is useful for tests and for callers that want an explicit Gt.
  UncertainGraph Transposed() const;

  /// Assembles a graph directly from prebuilt dual-CSR arrays, bypassing the
  /// builder's counting sort. The caller is trusted to supply a consistent
  /// layout (exactly what UncertainGraphBuilder::Build produces): offsets of
  /// size n + 1, arcs grouped by src / dst in ascending edge-id order, and
  /// edge id == position in `edge_list`. Used by the dynamic-update write
  /// path (src/dyn), which patches a validated base layout instead of
  /// rebuilding it.
  static UncertainGraph FromParts(std::vector<double> self_risk,
                                  std::vector<std::size_t> out_offsets,
                                  std::vector<Arc> out_arcs,
                                  std::vector<std::size_t> in_offsets,
                                  std::vector<Arc> in_arcs,
                                  std::vector<UncertainEdge> edge_list);

  /// Lazily-built immutable structures derived from this graph (e.g. the
  /// sampling kernels' coin columns). Safe to use from concurrent readers;
  /// content is a pure function of the graph, so sharing it never changes
  /// results. See graph/derived_cache.h.
  DerivedCache& derived() const { return derived_; }

 private:
  friend class UncertainGraphBuilder;

  std::vector<double> self_risk_;
  std::vector<std::size_t> out_offsets_;  // size n + 1
  std::vector<Arc> out_arcs_;             // size m, grouped by src
  std::vector<std::size_t> in_offsets_;   // size n + 1
  std::vector<Arc> in_arcs_;              // size m, grouped by dst
  std::vector<UncertainEdge> edge_list_;  // size m, insertion order
  mutable DerivedCache derived_;          // lazy derived data, copies cold
};

}  // namespace vulnds

#endif  // VULNDS_GRAPH_UNCERTAIN_GRAPH_H_
