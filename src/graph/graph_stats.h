// Degree statistics matching the columns of Table 2.

#ifndef VULNDS_GRAPH_GRAPH_STATS_H_
#define VULNDS_GRAPH_GRAPH_STATS_H_

#include <cstddef>

#include "graph/uncertain_graph.h"

namespace vulnds {

/// Summary statistics of a graph (the paper reports avg and max degree,
/// where degree counts both directions).
struct GraphStats {
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  double avg_degree = 0.0;      ///< m / n (directed edges per node)
  std::size_t max_degree = 0;   ///< max over v of in(v) + out(v)
  std::size_t max_out_degree = 0;
  std::size_t max_in_degree = 0;
};

/// Computes GraphStats in O(n).
GraphStats ComputeStats(const UncertainGraph& graph);

}  // namespace vulnds

#endif  // VULNDS_GRAPH_GRAPH_STATS_H_
