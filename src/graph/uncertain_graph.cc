#include "graph/uncertain_graph.h"

#include "graph/builder.h"

namespace vulnds {

UncertainGraph UncertainGraph::Transposed() const {
  UncertainGraphBuilder builder(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    builder.SetSelfRisk(v, self_risk_[v]);
  }
  for (const UncertainEdge& e : edge_list_) {
    builder.AddEdge(e.dst, e.src, e.prob);
  }
  return builder.Build().MoveValue();
}

UncertainGraph UncertainGraph::FromParts(std::vector<double> self_risk,
                                         std::vector<std::size_t> out_offsets,
                                         std::vector<Arc> out_arcs,
                                         std::vector<std::size_t> in_offsets,
                                         std::vector<Arc> in_arcs,
                                         std::vector<UncertainEdge> edge_list) {
  UncertainGraph g;
  g.self_risk_ = std::move(self_risk);
  g.out_offsets_ = std::move(out_offsets);
  g.out_arcs_ = std::move(out_arcs);
  g.in_offsets_ = std::move(in_offsets);
  g.in_arcs_ = std::move(in_arcs);
  g.edge_list_ = std::move(edge_list);
  return g;
}

}  // namespace vulnds
