#include "graph/uncertain_graph.h"

#include "graph/builder.h"

namespace vulnds {

UncertainGraph UncertainGraph::Transposed() const {
  UncertainGraphBuilder builder(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    builder.SetSelfRisk(v, self_risk_[v]);
  }
  for (const UncertainEdge& e : edge_list_) {
    builder.AddEdge(e.dst, e.src, e.prob);
  }
  return builder.Build().MoveValue();
}

}  // namespace vulnds
