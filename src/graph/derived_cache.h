// A lazy, type-erased slot for immutable structures derived from a graph.
//
// Higher layers precompute graph-shaped acceleration structures (e.g. the
// sampling kernels' CoinColumns) that are pure functions of the graph's
// content. Rebuilding one per query is measurable overhead on small graphs,
// and caching it in per-session state re-charges graph-sized bytes to
// every session that touches the graph. The natural owner is the graph
// itself: derived data lives exactly as long as the structure it is derived
// from, and every reader of the same graph shares one copy.
//
// graph/ must not depend on those higher layers, so the slot is type-erased:
// the caller supplies the type and the build function, the cache supplies
// identity and thread safety. The build runs under the slot's mutex —
// concurrent first readers wait for one build instead of racing duplicate
// O(m) passes.
//
// Copied graphs start with a cold slot: the copy shares no state with the
// original, which keeps the copy semantics of UncertainGraph value-like.
// Moves transfer the slot — the moved-from graph's identity (and anything
// derived from it) moves with it, so e.g. columns seeded on a commit
// snapshot survive the move into the serving catalog.

#ifndef VULNDS_GRAPH_DERIVED_CACHE_H_
#define VULNDS_GRAPH_DERIVED_CACHE_H_

#include <memory>
#include <mutex>
#include <typeindex>
#include <utility>

namespace vulnds {

class DerivedCache {
 public:
  DerivedCache() = default;
  DerivedCache(const DerivedCache&) {}
  DerivedCache& operator=(const DerivedCache&) { return *this; }
  DerivedCache(DerivedCache&& other) noexcept {
    std::lock_guard<std::mutex> lock(other.mu_);
    slot_ = std::move(other.slot_);
    type_ = std::exchange(other.type_, std::type_index(typeid(void)));
  }
  DerivedCache& operator=(DerivedCache&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lock(mu_, other.mu_);
      slot_ = std::move(other.slot_);
      type_ = std::exchange(other.type_, std::type_index(typeid(void)));
    }
    return *this;
  }

  /// Returns the cached T, building it with `build` (a callable returning
  /// T by value) on first use. The slot holds one type at a time; asking
  /// for a different T replaces the previous occupant.
  template <typename T, typename Build>
  std::shared_ptr<const T> GetOrBuild(Build&& build) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (slot_ != nullptr && type_ == std::type_index(typeid(T))) {
      return std::static_pointer_cast<const T>(slot_);
    }
    auto built = std::make_shared<const T>(std::forward<Build>(build)());
    slot_ = built;
    type_ = std::type_index(typeid(T));
    return built;
  }

  /// The cached T if one is present, nullptr otherwise. Never builds.
  template <typename T>
  std::shared_ptr<const T> Peek() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (slot_ != nullptr && type_ == std::type_index(typeid(T))) {
      return std::static_pointer_cast<const T>(slot_);
    }
    return nullptr;
  }

  /// Seeds the slot, replacing any occupant. For producers that can derive
  /// the structure cheaper than a fresh build (e.g. a dynamic-update commit
  /// patching the previous version's instance forward).
  template <typename T>
  void Put(std::shared_ptr<const T> value) const {
    std::lock_guard<std::mutex> lock(mu_);
    slot_ = std::move(value);
    type_ = std::type_index(typeid(T));
  }

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<const void> slot_;
  mutable std::type_index type_{typeid(void)};
};

}  // namespace vulnds

#endif  // VULNDS_GRAPH_DERIVED_CACHE_H_
