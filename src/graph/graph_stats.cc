#include "graph/graph_stats.h"

#include <algorithm>

namespace vulnds {

GraphStats ComputeStats(const UncertainGraph& graph) {
  GraphStats s;
  s.num_nodes = graph.num_nodes();
  s.num_edges = graph.num_edges();
  s.avg_degree = s.num_nodes == 0
                     ? 0.0
                     : static_cast<double>(s.num_edges) / static_cast<double>(s.num_nodes);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const std::size_t out = graph.OutDegree(v);
    const std::size_t in = graph.InDegree(v);
    s.max_out_degree = std::max(s.max_out_degree, out);
    s.max_in_degree = std::max(s.max_in_degree, in);
    s.max_degree = std::max(s.max_degree, in + out);
  }
  return s;
}

}  // namespace vulnds
