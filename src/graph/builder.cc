#include "graph/builder.h"

#include <string>

namespace vulnds {

namespace {
bool ValidProb(double p) { return p >= 0.0 && p <= 1.0; }
}  // namespace

void BuildInCsr(const std::vector<UncertainEdge>& edges, std::size_t n,
                std::vector<std::size_t>* in_offsets, std::vector<Arc>* in_arcs) {
  const std::size_t m = edges.size();
  in_offsets->assign(n + 1, 0);
  for (const UncertainEdge& e : edges) ++(*in_offsets)[e.dst + 1];
  for (std::size_t v = 0; v < n; ++v) (*in_offsets)[v + 1] += (*in_offsets)[v];
  in_arcs->resize(m);
  std::vector<std::size_t> in_pos(in_offsets->begin(), in_offsets->end() - 1);
  for (EdgeId id = 0; id < m; ++id) {
    const UncertainEdge& e = edges[id];
    (*in_arcs)[in_pos[e.dst]++] = Arc{e.src, e.prob, id};
  }
}

UncertainGraphBuilder::UncertainGraphBuilder(std::size_t num_nodes)
    : self_risk_(num_nodes, 0.0) {}

Status UncertainGraphBuilder::SetSelfRisk(NodeId v, double p) {
  if (v >= self_risk_.size()) {
    return Status::OutOfRange("node " + std::to_string(v) + " >= " +
                              std::to_string(self_risk_.size()));
  }
  if (!ValidProb(p)) {
    return Status::InvalidArgument("self-risk probability " + std::to_string(p) +
                                   " outside [0,1]");
  }
  self_risk_[v] = p;
  return Status::OK();
}

Status UncertainGraphBuilder::SetAllSelfRisks(const std::vector<double>& ps) {
  if (ps.size() != self_risk_.size()) {
    return Status::InvalidArgument("expected " + std::to_string(self_risk_.size()) +
                                   " self-risks, got " + std::to_string(ps.size()));
  }
  for (std::size_t v = 0; v < ps.size(); ++v) {
    VULNDS_RETURN_NOT_OK(SetSelfRisk(static_cast<NodeId>(v), ps[v]));
  }
  return Status::OK();
}

Status UncertainGraphBuilder::AddEdge(NodeId src, NodeId dst, double p) {
  if (src >= self_risk_.size() || dst >= self_risk_.size()) {
    return Status::OutOfRange("edge (" + std::to_string(src) + "," +
                              std::to_string(dst) + ") outside graph of " +
                              std::to_string(self_risk_.size()) + " nodes");
  }
  if (src == dst) {
    return Status::InvalidArgument("self-loop on node " + std::to_string(src));
  }
  if (!ValidProb(p)) {
    return Status::InvalidArgument("diffusion probability " + std::to_string(p) +
                                   " outside [0,1]");
  }
  edges_.push_back({src, dst, p});
  return Status::OK();
}

Result<UncertainGraph> UncertainGraphBuilder::Build() const {
  UncertainGraph g;
  const std::size_t n = self_risk_.size();
  const std::size_t m = edges_.size();
  g.self_risk_ = self_risk_;
  g.edge_list_ = edges_;

  // Counting sort into CSR, both directions; edge id == position in edges_.
  g.out_offsets_.assign(n + 1, 0);
  for (const UncertainEdge& e : edges_) ++g.out_offsets_[e.src + 1];
  for (std::size_t v = 0; v < n; ++v) g.out_offsets_[v + 1] += g.out_offsets_[v];
  g.out_arcs_.resize(m);
  std::vector<std::size_t> out_pos(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
  for (EdgeId id = 0; id < m; ++id) {
    const UncertainEdge& e = edges_[id];
    g.out_arcs_[out_pos[e.src]++] = {e.dst, e.prob, id};
  }
  BuildInCsr(edges_, n, &g.in_offsets_, &g.in_arcs_);
  return g;
}

}  // namespace vulnds
