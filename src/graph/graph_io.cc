#include "graph/graph_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <span>
#include <sstream>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "graph/builder.h"

namespace vulnds {

namespace {

// Skips whitespace and '#'-to-end-of-line comments.
void SkipCommentsAndSpace(std::istream& in) {
  for (;;) {
    const int c = in.peek();
    if (c == '#') {
      in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      in.get();
    } else {
      return;
    }
  }
}

template <typename T>
Status ReadToken(std::istream& in, T* out, const char* what) {
  SkipCommentsAndSpace(in);
  if (!(in >> *out)) {
    return Status::IOError(std::string("failed to read ") + what);
  }
  return Status::OK();
}

// --- binary helpers --------------------------------------------------------

constexpr char kBinaryMagic[8] = {'V', 'U', 'L', 'N', 'D', 'S', 'G', '\n'};
constexpr uint32_t kBinaryVersion = 2;

// The dump is defined as little-endian; on the (rare) big-endian host we
// refuse rather than silently write a byte-swapped file.
Status CheckLittleEndian() {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotImplemented("binary snapshots require a little-endian host");
  }
  return Status::OK();
}

template <typename T>
void PutPod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void PutArray(std::ostream& out, const std::vector<T>& values) {
  if (values.empty()) return;
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
Status GetPod(std::istream& in, T* value, const char* what) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T))) {
    return Status::IOError(std::string("truncated snapshot: ") + what);
  }
  return Status::OK();
}

// Reads `count` elements in bounded chunks, so memory grows only as data
// actually arrives: a forged element count on a non-seekable stream (where
// the up-front size check cannot run) fails with IOError when the stream
// ends, never by over-allocating first.
template <typename T>
Status GetArray(std::istream& in, std::vector<T>* values, std::size_t count,
                const char* what) {
  constexpr std::size_t kChunkElements = (std::size_t{1} << 20) / sizeof(T);
  values->clear();
  std::size_t done = 0;
  while (done < count) {
    const std::size_t chunk = std::min(count - done, kChunkElements);
    values->resize(done + chunk);
    const auto bytes = static_cast<std::streamsize>(chunk * sizeof(T));
    in.read(reinterpret_cast<char*>(values->data() + done), bytes);
    if (in.gcount() != bytes) {
      return Status::IOError(std::string("truncated snapshot: ") + what);
    }
    done += chunk;
  }
  return Status::OK();
}

}  // namespace

Status WriteGraph(const UncertainGraph& graph, std::ostream& out) {
  out << "vulnds-graph 1\n";
  out << graph.num_nodes() << ' ' << graph.num_edges() << '\n';
  out.precision(17);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << graph.self_risk(v) << (v + 1 == graph.num_nodes() ? '\n' : ' ');
  }
  if (graph.num_nodes() == 0) out << '\n';
  for (const UncertainEdge& e : graph.edges()) {
    out << e.src << ' ' << e.dst << ' ' << e.prob << '\n';
  }
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteGraphBinary(const UncertainGraph& graph, std::ostream& out) {
  VULNDS_RETURN_NOT_OK(CheckLittleEndian());
  const std::size_t n = graph.num_nodes();
  const std::size_t m = graph.num_edges();

  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  PutPod(out, kBinaryVersion);
  PutPod(out, static_cast<uint64_t>(n));
  PutPod(out, static_cast<uint64_t>(m));

  // Stream each column straight out of the CSR through a bounded buffer, so
  // a save issued to a serving process never doubles the graph's footprint.
  const std::span<const double> risks = graph.self_risks();
  if (!risks.empty()) {
    out.write(reinterpret_cast<const char*>(risks.data()),
              static_cast<std::streamsize>(risks.size() * sizeof(double)));
  }

  const auto write_column = [&](auto project) {
    using T = decltype(project(std::declval<const Arc&>()));
    std::vector<T> buffer;
    buffer.reserve(std::min<std::size_t>(m, std::size_t{1} << 16));
    for (NodeId v = 0; v < n; ++v) {
      for (const Arc& arc : graph.OutArcs(v)) {
        buffer.push_back(project(arc));
        if (buffer.size() == buffer.capacity()) {
          PutArray(out, buffer);
          buffer.clear();
        }
      }
    }
    PutArray(out, buffer);
  };

  uint64_t offset = 0;
  PutPod(out, offset);
  for (NodeId v = 0; v < n; ++v) {
    offset += graph.OutDegree(v);
    PutPod(out, offset);
  }
  write_column([](const Arc& arc) { return arc.neighbor; });
  write_column([](const Arc& arc) { return arc.prob; });
  write_column([](const Arc& arc) { return arc.edge; });

  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteGraphFile(const UncertainGraph& graph, const std::string& path,
                      GraphFileFormat format) {
  // Crash-safe: write a sibling temp file, fsync it, then rename() over the
  // destination. A reader (or a restart paging a spilled snapshot back in)
  // therefore only ever sees the complete old file or the complete new one —
  // never a truncated snapshot that ReadGraphBinary would reject. The temp
  // name is pid- and serial-qualified so concurrent writers to one path
  // cannot clobber each other's temp file.
  static std::atomic<uint64_t> temp_serial{0};
  const std::string temp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(temp_serial.fetch_add(1, std::memory_order_relaxed));
  if (const auto o = fail::Check(fail::points::kSnapshotWriteOpen);
      o != fail::Outcome::kNone) {
    return Status::IOError("cannot open " + temp_path + " for writing: " +
                           std::strerror(fail::InjectedErrno(o)) +
                           " (injected)");
  }
  {
    std::ofstream out(temp_path, format == GraphFileFormat::kBinary
                                     ? std::ios::out | std::ios::binary
                                     : std::ios::out);
    if (!out) {
      return Status::IOError("cannot open " + temp_path + " for writing");
    }
    Status written = format == GraphFileFormat::kBinary
                         ? WriteGraphBinary(graph, out)
                         : WriteGraph(graph, out);
    if (written.ok()) {
      if (const auto o = fail::Check(fail::points::kSnapshotWriteData);
          o != fail::Outcome::kNone) {
        // kShortWrite leaves the truncated temp behind the error so callers
        // see the same world a crashed writer leaves: a temp file that never
        // got renamed over the destination.
        written =
            Status::IOError("write to " + temp_path + " failed: " +
                            std::strerror(fail::InjectedErrno(o)) +
                            " (injected)");
      }
    }
    if (written.ok()) out.flush();
    if (!written.ok() || !out) {
      out.close();
      std::remove(temp_path.c_str());
      return written.ok() ? Status::IOError("write to " + temp_path + " failed")
                          : written;
    }
  }
  // ofstream has no portable fsync; reopen the flushed file by fd to force
  // its bytes down before the rename publishes it.
  if (const auto o = fail::Check(fail::points::kSnapshotWriteFsync);
      o != fail::Outcome::kNone) {
    std::remove(temp_path.c_str());
    return Status::IOError("cannot fsync " + temp_path + ": " +
                           std::strerror(fail::InjectedErrno(o)) +
                           " (injected)");
  }
  const int fd = ::open(temp_path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  if (const auto o = fail::Check(fail::points::kSnapshotWriteRename);
      o != fail::Outcome::kNone) {
    std::remove(temp_path.c_str());
    return Status::IOError("cannot rename " + temp_path + " to " + path +
                           ": " + std::strerror(fail::InjectedErrno(o)) +
                           " (injected)");
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return Status::IOError("cannot rename " + temp_path + " to " + path);
  }
  return Status::OK();
}

Result<UncertainGraph> ReadGraph(std::istream& in) {
  std::string magic;
  int version = 0;
  VULNDS_RETURN_NOT_OK(ReadToken(in, &magic, "magic"));
  if (magic != "vulnds-graph") {
    return Status::InvalidArgument("bad magic '" + magic + "'");
  }
  VULNDS_RETURN_NOT_OK(ReadToken(in, &version, "version"));
  if (version != 1) {
    return Status::InvalidArgument("unsupported version " + std::to_string(version));
  }
  std::size_t n = 0;
  std::size_t m = 0;
  VULNDS_RETURN_NOT_OK(ReadToken(in, &n, "node count"));
  VULNDS_RETURN_NOT_OK(ReadToken(in, &m, "edge count"));
  UncertainGraphBuilder builder(n);
  for (std::size_t v = 0; v < n; ++v) {
    double p = 0.0;
    VULNDS_RETURN_NOT_OK(ReadToken(in, &p, "self-risk"));
    VULNDS_RETURN_NOT_OK(builder.SetSelfRisk(static_cast<NodeId>(v), p));
  }
  for (std::size_t i = 0; i < m; ++i) {
    NodeId src = 0;
    NodeId dst = 0;
    double p = 0.0;
    VULNDS_RETURN_NOT_OK(ReadToken(in, &src, "edge src"));
    VULNDS_RETURN_NOT_OK(ReadToken(in, &dst, "edge dst"));
    VULNDS_RETURN_NOT_OK(ReadToken(in, &p, "edge prob"));
    VULNDS_RETURN_NOT_OK(builder.AddEdge(src, dst, p));
  }
  return builder.Build();
}

Result<UncertainGraph> ReadGraphBinary(std::istream& in) {
  VULNDS_RETURN_NOT_OK(CheckLittleEndian());
  char magic[sizeof(kBinaryMagic)] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(magic)) ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("bad binary snapshot magic");
  }
  uint32_t version = 0;
  VULNDS_RETURN_NOT_OK(GetPod(in, &version, "version"));
  if (version != kBinaryVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  uint64_t n = 0;
  uint64_t m = 0;
  VULNDS_RETURN_NOT_OK(GetPod(in, &n, "node count"));
  VULNDS_RETURN_NOT_OK(GetPod(in, &m, "edge count"));
  if (n > std::numeric_limits<NodeId>::max() ||
      m > std::numeric_limits<EdgeId>::max()) {
    return Status::InvalidArgument("snapshot dimensions exceed id width");
  }

  // Bound the declared payload against the actual stream size before any
  // allocation: a corrupt or hostile header must fail cleanly, not OOM the
  // serving process. (n, m fit in 32 bits, so the sum cannot overflow.)
  const uint64_t expected_bytes = n * sizeof(double) +                // risks
                                  (n + 1) * sizeof(uint64_t) +       // offsets
                                  m * (2 * sizeof(uint32_t) + sizeof(double));
  const std::istream::pos_type data_pos = in.tellg();
  if (data_pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end_pos = in.tellg();
    in.seekg(data_pos);
    if (end_pos == std::istream::pos_type(-1) ||
        static_cast<uint64_t>(end_pos - data_pos) < expected_bytes) {
      return Status::IOError("truncated snapshot: header declares " +
                             std::to_string(expected_bytes) +
                             " payload bytes, stream has fewer");
    }
  }

  std::vector<double> risks;
  std::vector<uint64_t> offsets;
  std::vector<uint32_t> dsts;
  std::vector<double> probs;
  std::vector<uint32_t> edge_ids;
  VULNDS_RETURN_NOT_OK(GetArray(in, &risks, n, "self risks"));
  VULNDS_RETURN_NOT_OK(GetArray(in, &offsets, n + 1, "CSR offsets"));
  VULNDS_RETURN_NOT_OK(GetArray(in, &dsts, m, "arc destinations"));
  VULNDS_RETURN_NOT_OK(GetArray(in, &probs, m, "arc probabilities"));
  VULNDS_RETURN_NOT_OK(GetArray(in, &edge_ids, m, "arc edge ids"));

  // The arrays came off disk, so nothing in them may be trusted: validate
  // every probability and every CSR invariant the builder would have
  // enforced on a text load, naming the offending index, before the graph
  // is assembled. FromParts then adopts the columns directly — no counting
  // sort, no per-edge revalidation — which keeps snapshot loads I/O-bound.
  for (std::size_t v = 0; v < n; ++v) {
    if (!(risks[v] >= 0.0 && risks[v] <= 1.0)) {  // NaN fails both
      return Status::InvalidArgument(
          "corrupt snapshot: self-risk of node " + std::to_string(v) + " is " +
          std::to_string(risks[v]) + ", outside [0,1]");
    }
  }
  if (offsets[0] != 0) {
    return Status::InvalidArgument("corrupt snapshot: CSR offset 0 is " +
                                   std::to_string(offsets[0]) + ", want 0");
  }
  if (offsets[n] != m) {
    return Status::InvalidArgument(
        "corrupt snapshot: CSR offset " + std::to_string(n) + " is " +
        std::to_string(offsets[n]) + ", want edge count " + std::to_string(m));
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument(
          "corrupt snapshot: CSR offsets decrease at node " + std::to_string(v));
    }
  }

  // Recover the insertion-order edge list through the edge-id column while
  // checking it is a permutation of [0, m); simultaneously validate each
  // arc's endpoint and probability and the builder's canonical within-group
  // order (ascending edge id), which samplers rely on for bit-identical
  // coin-flip sequences.
  std::vector<UncertainEdge> edge_list(m);
  std::vector<Arc> out_arcs(m);
  std::vector<char> seen(m, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const uint32_t dst = dsts[i];
      const double prob = probs[i];
      const uint32_t e = edge_ids[i];
      if (dst >= n) {
        return Status::InvalidArgument(
            "corrupt snapshot: arc " + std::to_string(i) + " points at node " +
            std::to_string(dst) + " outside the graph of " + std::to_string(n) +
            " nodes");
      }
      if (dst == v) {
        return Status::InvalidArgument("corrupt snapshot: arc " +
                                       std::to_string(i) + " is a self-loop on node " +
                                       std::to_string(v));
      }
      if (!(prob >= 0.0 && prob <= 1.0)) {  // NaN fails both
        return Status::InvalidArgument(
            "corrupt snapshot: arc " + std::to_string(i) + " has probability " +
            std::to_string(prob) + ", outside [0,1]");
      }
      if (e >= m || seen[e]) {
        return Status::InvalidArgument(
            "corrupt snapshot: edge ids are not a permutation (arc " +
            std::to_string(i) + " carries id " + std::to_string(e) + ")");
      }
      if (i > offsets[v] && edge_ids[i - 1] >= e) {
        return Status::InvalidArgument(
            "corrupt snapshot: edge ids of node " + std::to_string(v) +
            " not ascending at arc " + std::to_string(i));
      }
      seen[e] = 1;
      edge_list[e] = UncertainEdge{v, dst, prob};
      out_arcs[i] = Arc{dst, prob, e};
    }
  }

  // The reverse CSR is rebuilt through the builder's own canonical helper,
  // so the snapshot path can never drift from a from-scratch build.
  std::vector<std::size_t> out_offsets(offsets.begin(), offsets.end());
  std::vector<std::size_t> in_offsets;
  std::vector<Arc> in_arcs;
  BuildInCsr(edge_list, n, &in_offsets, &in_arcs);
  return UncertainGraph::FromParts(std::move(risks), std::move(out_offsets),
                                   std::move(out_arcs), std::move(in_offsets),
                                   std::move(in_arcs), std::move(edge_list));
}

Result<UncertainGraph> ReadGraphFile(const std::string& path) {
  if (const auto o = fail::Check(fail::points::kSnapshotRead);
      o != fail::Outcome::kNone) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(fail::InjectedErrno(o)) +
                           " (injected)");
  }
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[sizeof(kBinaryMagic)] = {};
  in.read(magic, sizeof(magic));
  const bool binary = in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
                      std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0;
  in.clear();
  in.seekg(0);
  return binary ? ReadGraphBinary(in) : ReadGraph(in);
}

}  // namespace vulnds
