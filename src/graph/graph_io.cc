#include "graph/graph_io.h"

#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "graph/builder.h"

namespace vulnds {

namespace {

// Skips whitespace and '#'-to-end-of-line comments.
void SkipCommentsAndSpace(std::istream& in) {
  for (;;) {
    const int c = in.peek();
    if (c == '#') {
      in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      in.get();
    } else {
      return;
    }
  }
}

template <typename T>
Status ReadToken(std::istream& in, T* out, const char* what) {
  SkipCommentsAndSpace(in);
  if (!(in >> *out)) {
    return Status::IOError(std::string("failed to read ") + what);
  }
  return Status::OK();
}

}  // namespace

Status WriteGraph(const UncertainGraph& graph, std::ostream& out) {
  out << "vulnds-graph 1\n";
  out << graph.num_nodes() << ' ' << graph.num_edges() << '\n';
  out.precision(17);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << graph.self_risk(v) << (v + 1 == graph.num_nodes() ? '\n' : ' ');
  }
  if (graph.num_nodes() == 0) out << '\n';
  for (const UncertainEdge& e : graph.edges()) {
    out << e.src << ' ' << e.dst << ' ' << e.prob << '\n';
  }
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteGraphFile(const UncertainGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return WriteGraph(graph, out);
}

Result<UncertainGraph> ReadGraph(std::istream& in) {
  std::string magic;
  int version = 0;
  VULNDS_RETURN_NOT_OK(ReadToken(in, &magic, "magic"));
  if (magic != "vulnds-graph") {
    return Status::InvalidArgument("bad magic '" + magic + "'");
  }
  VULNDS_RETURN_NOT_OK(ReadToken(in, &version, "version"));
  if (version != 1) {
    return Status::InvalidArgument("unsupported version " + std::to_string(version));
  }
  std::size_t n = 0;
  std::size_t m = 0;
  VULNDS_RETURN_NOT_OK(ReadToken(in, &n, "node count"));
  VULNDS_RETURN_NOT_OK(ReadToken(in, &m, "edge count"));
  UncertainGraphBuilder builder(n);
  for (std::size_t v = 0; v < n; ++v) {
    double p = 0.0;
    VULNDS_RETURN_NOT_OK(ReadToken(in, &p, "self-risk"));
    VULNDS_RETURN_NOT_OK(builder.SetSelfRisk(static_cast<NodeId>(v), p));
  }
  for (std::size_t i = 0; i < m; ++i) {
    NodeId src = 0;
    NodeId dst = 0;
    double p = 0.0;
    VULNDS_RETURN_NOT_OK(ReadToken(in, &src, "edge src"));
    VULNDS_RETURN_NOT_OK(ReadToken(in, &dst, "edge dst"));
    VULNDS_RETURN_NOT_OK(ReadToken(in, &p, "edge prob"));
    VULNDS_RETURN_NOT_OK(builder.AddEdge(src, dst, p));
  }
  return builder.Build();
}

Result<UncertainGraph> ReadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadGraph(in);
}

}  // namespace vulnds
