// UncertainGraphBuilder: validated construction of UncertainGraph.

#ifndef VULNDS_GRAPH_BUILDER_H_
#define VULNDS_GRAPH_BUILDER_H_

#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Builds the reverse (in-) CSR of `edges` over `n` nodes: counting sort by
/// destination, filled in ascending edge-id order (edge id == index into
/// `edges`). This is THE canonical in-CSR layout — shared by
/// UncertainGraphBuilder::Build and the binary-snapshot loader so the two
/// construction paths cannot drift apart (samplers rely on arc order for
/// reproducible coin-flip sequences).
void BuildInCsr(const std::vector<UncertainEdge>& edges, std::size_t n,
                std::vector<std::size_t>* in_offsets, std::vector<Arc>* in_arcs);

/// Accumulates nodes and edges, validates them, and assembles the dual-CSR
/// representation. Parallel edges are allowed (they act as independent
/// diffusion channels); self-loops are rejected because a node's own default
/// cannot re-cause it.
class UncertainGraphBuilder {
 public:
  /// Creates a builder for a graph with `num_nodes` nodes, all with
  /// self-risk 0 until SetSelfRisk is called.
  explicit UncertainGraphBuilder(std::size_t num_nodes);

  /// Number of nodes the graph will have.
  std::size_t num_nodes() const { return self_risk_.size(); }
  /// Number of edges added so far.
  std::size_t num_edges() const { return edges_.size(); }

  /// Sets ps(v); fails if v is out of range or p is not in [0, 1].
  Status SetSelfRisk(NodeId v, double p);

  /// Sets every node's self-risk; `ps` must have num_nodes() entries in [0,1].
  Status SetAllSelfRisks(const std::vector<double>& ps);

  /// Adds a directed edge src -> dst with diffusion probability `p`.
  /// Fails on out-of-range endpoints, self-loops, or p outside [0, 1].
  Status AddEdge(NodeId src, NodeId dst, double p);

  /// Assembles the graph. The builder remains usable afterwards (Build can
  /// be called repeatedly while adding more edges, e.g. in generator tests).
  Result<UncertainGraph> Build() const;

 private:
  std::vector<double> self_risk_;
  std::vector<UncertainEdge> edges_;
};

}  // namespace vulnds

#endif  // VULNDS_GRAPH_BUILDER_H_
