// Gradient-boosted decision trees ("GBDT" [28]) with logistic loss.
//
// Classic Friedman boosting: each round fits a depth-limited regression
// tree to the negative gradient (residual) and applies a Newton leaf
// update. Exact greedy splits over sorted feature values.

#ifndef VULNDS_ML_GBDT_H_
#define VULNDS_ML_GBDT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace vulnds {

/// GBDT hyper-parameters.
struct GbdtOptions {
  int num_trees = 60;
  int max_depth = 3;
  std::size_t min_leaf = 8;     ///< minimum samples per leaf
  double learning_rate = 0.1;
  double min_gain = 1e-7;       ///< minimum variance-reduction to split
};

/// Boosted binary classifier.
class Gbdt {
 public:
  explicit Gbdt(GbdtOptions options = {}) : options_(options) {}

  /// Trains on X (n x d), y in {0, 1}.
  Status Fit(const Matrix& features, const std::vector<double>& labels);

  /// P(y = 1 | x) per row.
  std::vector<double> PredictProba(const Matrix& features) const;

  /// Number of trees actually grown.
  std::size_t num_trees() const { return trees_.size(); }

 private:
  struct Node {
    int feature = -1;        // -1 for leaf
    double threshold = 0.0;  // go left if x[feature] <= threshold
    double value = 0.0;      // leaf output
    int left = -1;
    int right = -1;
  };
  using Tree = std::vector<Node>;

  int BuildNode(const Matrix& features, const std::vector<double>& gradients,
                const std::vector<double>& hessians,
                std::vector<std::size_t>& rows, int depth, Tree* tree);
  static double Predict(const Tree& tree, std::span<const double> x);

  GbdtOptions options_;
  double base_score_ = 0.0;  // initial log-odds
  std::vector<Tree> trees_;
};

}  // namespace vulnds

#endif  // VULNDS_ML_GBDT_H_
