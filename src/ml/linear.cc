#include "ml/linear.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace vulnds {

double Sigmoid(double x) {
  if (x >= 0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

namespace {

// Adam state for a flat parameter vector.
struct Adam {
  explicit Adam(std::size_t size) : m(size, 0.0), v(size, 0.0) {}
  std::vector<double> m;
  std::vector<double> v;
  int t = 0;
  static constexpr double kBeta1 = 0.9;
  static constexpr double kBeta2 = 0.999;
  static constexpr double kEps = 1e-8;

  void Step(std::vector<double>* params, const std::vector<double>& grads,
            double lr) {
    ++t;
    const double correction1 = 1.0 - std::pow(kBeta1, t);
    const double correction2 = 1.0 - std::pow(kBeta2, t);
    for (std::size_t i = 0; i < params->size(); ++i) {
      m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * grads[i];
      v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * grads[i] * grads[i];
      const double mhat = m[i] / correction1;
      const double vhat = v[i] / correction2;
      (*params)[i] -= lr * mhat / (std::sqrt(vhat) + kEps);
    }
  }
};

}  // namespace

Status LogisticRegression::Fit(const Matrix& features,
                               const std::vector<double>& labels) {
  const std::size_t n = features.rows();
  const std::size_t d = features.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("labels/features row mismatch");
  }
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  // Parameters flattened as [w..., b].
  std::vector<double> params(d + 1, 0.0);
  std::vector<double> grads(d + 1, 0.0);
  Adam adam(d + 1);
  Rng rng(options_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    for (std::size_t start = 0; start < n; start += options_.batch_size) {
      const std::size_t end = std::min(n, start + options_.batch_size);
      std::fill(grads.begin(), grads.end(), 0.0);
      for (std::size_t b = start; b < end; ++b) {
        const std::size_t row = order[b];
        double logit = params[d];
        const auto x = features.Row(row);
        for (std::size_t j = 0; j < d; ++j) logit += params[j] * x[j];
        const double err = Sigmoid(logit) - labels[row];
        for (std::size_t j = 0; j < d; ++j) grads[j] += err * x[j];
        grads[d] += err;
      }
      const double scale = 1.0 / static_cast<double>(end - start);
      for (std::size_t j = 0; j < d; ++j) {
        grads[j] = grads[j] * scale + options_.l2 * params[j];
      }
      grads[d] *= scale;
      adam.Step(&params, grads, options_.learning_rate);
    }
  }
  weights_.assign(params.begin(), params.begin() + static_cast<std::ptrdiff_t>(d));
  bias_ = params[d];
  return Status::OK();
}

std::vector<double> LogisticRegression::PredictProba(const Matrix& features) const {
  std::vector<double> out(features.rows(), 0.0);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    double logit = bias_;
    const auto x = features.Row(i);
    for (std::size_t j = 0; j < weights_.size() && j < x.size(); ++j) {
      logit += weights_[j] * x[j];
    }
    out[i] = Sigmoid(logit);
  }
  return out;
}

}  // namespace vulnds
