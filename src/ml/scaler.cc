#include "ml/scaler.h"

#include <cassert>
#include <cmath>

namespace vulnds {

void StandardScaler::Fit(const Matrix& features) {
  const std::size_t n = features.rows();
  const std::size_t d = features.cols();
  means_.assign(d, 0.0);
  stds_.assign(d, 1.0);
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) means_[j] += features.At(i, j);
  }
  for (std::size_t j = 0; j < d; ++j) means_[j] /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = features.At(i, j) - means_[j];
      var[j] += delta * delta;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    stds_[j] = std::max(std::sqrt(var[j] / static_cast<double>(n)), 1e-12);
  }
}

Matrix StandardScaler::Transform(const Matrix& features) const {
  assert(features.cols() == means_.size());
  Matrix out = features;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      out.At(i, j) = (out.At(i, j) - means_[j]) / stds_[j];
    }
  }
  return out;
}

Matrix StandardScaler::FitTransform(const Matrix& features) {
  Fit(features);
  return Transform(features);
}

}  // namespace vulnds
