// Graph-aware feature construction for the network baselines.
//
// INDDP [15] augments node features with neighborhood information; HGAR [10]
// builds a high-order attention-weighted representation. We reproduce both
// as deterministic feature transforms feeding standard classifiers:
//   * NeighborMeanFeatures  — mean over in-neighbors (1 hop), the INDDP-style
//     smoothing;
//   * HighOrderFeatures     — concatenation of degree-normalized aggregates
//     over 1..hops in-neighborhoods with attention-like softmax weighting by
//     feature similarity, the HGAR-style representation.
// DESIGN.md documents the substitution (TensorFlow GAT -> C++ transform +
// MLP head).

#ifndef VULNDS_ML_GRAPH_FEATURES_H_
#define VULNDS_ML_GRAPH_FEATURES_H_

#include "graph/uncertain_graph.h"
#include "ml/matrix.h"

namespace vulnds {

/// Mean of in-neighbor feature rows (zeros when no in-neighbors), plus the
/// node's own in/out degree appended as two extra columns.
Matrix NeighborMeanFeatures(const UncertainGraph& graph, const Matrix& features);

/// Multi-hop attention-weighted aggregation: for each hop h in [1, hops],
/// aggregates in-neighbor features with weights softmax(cosine similarity),
/// then concatenates [self | hop1 | ... | hopH]. `hops` >= 1.
Matrix HighOrderFeatures(const UncertainGraph& graph, const Matrix& features,
                         int hops);

}  // namespace vulnds

#endif  // VULNDS_ML_GRAPH_FEATURES_H_
