// Minimal dense row-major matrix used by the ML baselines.
//
// This is intentionally a small, obviously-correct kernel library: the
// baselines train on thousands of rows with tens of features, so cache
// blocking and SIMD dispatch would be noise.

#ifndef VULNDS_ML_MATRIX_H_
#define VULNDS_ML_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

namespace vulnds {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Row r as a span of cols() doubles.
  std::span<const double> Row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> MutableRow(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  /// Raw storage (row-major).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// this * other; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Transpose copy.
  Matrix Transposed() const;

  /// Appends the rows of `other` (must match cols(); empty *this adopts).
  void AppendRows(const Matrix& other);

  /// Horizontal concatenation [this | other]; requires equal row counts.
  Matrix ConcatColumns(const Matrix& other) const;

  /// Selects a subset of rows by index.
  Matrix SelectRows(std::span<const std::size_t> indices) const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace vulnds

#endif  // VULNDS_ML_MATRIX_H_
