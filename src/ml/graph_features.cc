#include "ml/graph_features.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace vulnds {

namespace {

double Dot(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(std::span<const double> a) { return std::sqrt(Dot(a, a)) + 1e-12; }

}  // namespace

Matrix NeighborMeanFeatures(const UncertainGraph& graph, const Matrix& features) {
  assert(features.rows() == graph.num_nodes());
  const std::size_t d = features.cols();
  Matrix out(graph.num_nodes(), d + 2);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const auto in = graph.InArcs(v);
    if (!in.empty()) {
      for (const Arc& arc : in) {
        const auto row = features.Row(arc.neighbor);
        for (std::size_t j = 0; j < d; ++j) out.At(v, j) += row[j];
      }
      for (std::size_t j = 0; j < d; ++j) {
        out.At(v, j) /= static_cast<double>(in.size());
      }
    }
    out.At(v, d) = static_cast<double>(graph.InDegree(v));
    out.At(v, d + 1) = static_cast<double>(graph.OutDegree(v));
  }
  return out;
}

Matrix HighOrderFeatures(const UncertainGraph& graph, const Matrix& features,
                         int hops) {
  assert(features.rows() == graph.num_nodes());
  assert(hops >= 1);
  const std::size_t n = graph.num_nodes();
  const std::size_t d = features.cols();
  Matrix out(n, d * static_cast<std::size_t>(hops + 1));
  // Column block 0: the node's own features.
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 0; j < d; ++j) out.At(v, j) = features.At(v, j);
  }
  // Hop h aggregates the previous hop's representation over in-neighbors
  // with attention-like weights: softmax over cosine similarity to self.
  Matrix current = features;  // representation being propagated
  std::vector<double> weights;
  for (int h = 1; h <= hops; ++h) {
    Matrix next(n, d);
    for (NodeId v = 0; v < n; ++v) {
      const auto in = graph.InArcs(v);
      if (in.empty()) continue;
      const auto self = features.Row(v);
      weights.assign(in.size(), 0.0);
      double max_sim = -1e300;
      for (std::size_t i = 0; i < in.size(); ++i) {
        const auto nb = current.Row(in[i].neighbor);
        const double sim = Dot(self, nb) / (Norm(self) * Norm(nb));
        weights[i] = sim;
        max_sim = std::max(max_sim, sim);
      }
      double total = 0.0;
      for (auto& w : weights) {
        w = std::exp(w - max_sim);
        total += w;
      }
      for (std::size_t i = 0; i < in.size(); ++i) {
        const double a = weights[i] / total;
        const auto nb = current.Row(in[i].neighbor);
        for (std::size_t j = 0; j < d; ++j) next.At(v, j) += a * nb[j];
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      for (std::size_t j = 0; j < d; ++j) {
        out.At(v, static_cast<std::size_t>(h) * d + j) = next.At(v, j);
      }
    }
    current = std::move(next);
  }
  return out;
}

}  // namespace vulnds
