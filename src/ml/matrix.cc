#include "ml/matrix.h"

#include <cassert>

namespace vulnds {

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows());
  Matrix out(rows_, other.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = At(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols(); ++j) {
        out.At(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.At(j, i) = At(i, j);
    }
  }
  return out;
}

void Matrix::AppendRows(const Matrix& other) {
  if (rows_ == 0 && cols_ == 0) {
    *this = other;
    return;
  }
  assert(cols_ == other.cols());
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows();
}

Matrix Matrix::ConcatColumns(const Matrix& other) const {
  assert(rows_ == other.rows());
  Matrix out(rows_, cols_ + other.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out.At(i, j) = At(i, j);
    for (std::size_t j = 0; j < other.cols(); ++j) {
      out.At(i, cols_ + j) = other.At(i, j);
    }
  }
  return out;
}

Matrix Matrix::SelectRows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < rows_);
    for (std::size_t j = 0; j < cols_; ++j) {
      out.At(i, j) = At(indices[i], j);
    }
  }
  return out;
}

}  // namespace vulnds
