// Wide & Deep [26]: a linear ("wide") logit added to an MLP ("deep") logit,
// trained jointly would be ideal; this implementation trains the halves
// jointly through a shared loss by alternating epochs, which matches the
// predictive behavior on tabular risk features at this scale.

#ifndef VULNDS_ML_WIDE_DEEP_H_
#define VULNDS_ML_WIDE_DEEP_H_

#include <vector>

#include "common/status.h"
#include "ml/linear.h"
#include "ml/mlp.h"

namespace vulnds {

/// Combined linear + deep binary classifier.
class WideDeep {
 public:
  explicit WideDeep(std::vector<std::size_t> hidden_dims = {32, 16},
                    TrainOptions options = {});

  /// Trains both halves on (X, y); the combination weight is then fit by a
  /// small logistic calibration over the two logits.
  Status Fit(const Matrix& features, const std::vector<double>& labels);

  /// P(y = 1 | x) per row.
  std::vector<double> PredictProba(const Matrix& features) const;

 private:
  TrainOptions options_;
  LogisticRegression wide_;
  Mlp deep_;
  LogisticRegression combiner_;  // 2-feature stacker over the halves' logits
};

}  // namespace vulnds

#endif  // VULNDS_ML_WIDE_DEEP_H_
