#include "ml/wide_deep.h"

#include <algorithm>
#include <cmath>

namespace vulnds {

WideDeep::WideDeep(std::vector<std::size_t> hidden_dims, TrainOptions options)
    : options_(options), wide_(options), deep_(std::move(hidden_dims), options),
      combiner_(TrainOptions{40, 64, 0.05, 1e-4, options.seed ^ 0x51}) {}

Status WideDeep::Fit(const Matrix& features, const std::vector<double>& labels) {
  VULNDS_RETURN_NOT_OK(wide_.Fit(features, labels));
  VULNDS_RETURN_NOT_OK(deep_.Fit(features, labels));
  // Stack the two halves: logistic calibration over their logits.
  const std::vector<double> wide_p = wide_.PredictProba(features);
  const std::vector<double> deep_logit = deep_.PredictLogit(features);
  Matrix stacked(features.rows(), 2);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    const double p = std::clamp(wide_p[i], 1e-9, 1.0 - 1e-9);
    stacked.At(i, 0) = std::log(p / (1.0 - p));
    stacked.At(i, 1) = deep_logit[i];
  }
  return combiner_.Fit(stacked, labels);
}

std::vector<double> WideDeep::PredictProba(const Matrix& features) const {
  const std::vector<double> wide_p = wide_.PredictProba(features);
  const std::vector<double> deep_logit = deep_.PredictLogit(features);
  Matrix stacked(features.rows(), 2);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    const double p = std::clamp(wide_p[i], 1e-9, 1.0 - 1e-9);
    stacked.At(i, 0) = std::log(p / (1.0 - p));
    stacked.At(i, 1) = deep_logit[i];
  }
  return combiner_.PredictProba(stacked);
}

}  // namespace vulnds
