// Logistic regression ("Wide" [25] in the case study).
//
// Trained with mini-batch Adam on binary cross-entropy with optional L2.
// Also the self-risk / diffusion probability estimator feeding the
// detectors in the Table 3 pipeline (the paper obtains these probabilities
// from previously-published models; a calibrated linear model is the
// standard stand-in).

#ifndef VULNDS_ML_LINEAR_H_
#define VULNDS_ML_LINEAR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace vulnds {

/// Hyper-parameters shared by the gradient-trained models.
struct TrainOptions {
  int epochs = 60;
  std::size_t batch_size = 64;
  double learning_rate = 0.01;
  double l2 = 1e-4;
  uint64_t seed = 1;
};

/// Binary logistic regression.
class LogisticRegression {
 public:
  explicit LogisticRegression(TrainOptions options = {}) : options_(options) {}

  /// Fits on features X (n x d) and labels y in {0, 1}. Fails on size
  /// mismatch or empty input.
  Status Fit(const Matrix& features, const std::vector<double>& labels);

  /// P(y = 1 | x) per row; requires a prior successful Fit.
  std::vector<double> PredictProba(const Matrix& features) const;

  /// Learned weights (d entries) and bias.
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  TrainOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Numerically-stable logistic function.
double Sigmoid(double x);

}  // namespace vulnds

#endif  // VULNDS_ML_LINEAR_H_
