#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/linear.h"

namespace vulnds {

namespace {
constexpr double kHessianFloor = 1e-9;
}

int Gbdt::BuildNode(const Matrix& features, const std::vector<double>& gradients,
                    const std::vector<double>& hessians,
                    std::vector<std::size_t>& rows, int depth, Tree* tree) {
  double grad_sum = 0.0;
  double hess_sum = 0.0;
  for (const std::size_t r : rows) {
    grad_sum += gradients[r];
    hess_sum += hessians[r];
  }
  const int node_id = static_cast<int>(tree->size());
  tree->push_back({});
  // Newton step for the leaf value: -G / H.
  (*tree)[node_id].value = -grad_sum / (hess_sum + kHessianFloor);

  if (depth >= options_.max_depth || rows.size() < 2 * options_.min_leaf) {
    return node_id;
  }

  // Exact greedy split: maximize gain = GL^2/HL + GR^2/HR - G^2/H.
  const double parent_score = grad_sum * grad_sum / (hess_sum + kHessianFloor);
  double best_gain = options_.min_gain;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::size_t> sorted = rows;
  for (std::size_t f = 0; f < features.cols(); ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return features.At(a, f) < features.At(b, f);
    });
    double gl = 0.0;
    double hl = 0.0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      gl += gradients[sorted[i]];
      hl += hessians[sorted[i]];
      const double x_here = features.At(sorted[i], f);
      const double x_next = features.At(sorted[i + 1], f);
      if (x_here == x_next) continue;  // cannot split inside a tie group
      const std::size_t left_count = i + 1;
      const std::size_t right_count = sorted.size() - left_count;
      if (left_count < options_.min_leaf || right_count < options_.min_leaf) {
        continue;
      }
      const double gr = grad_sum - gl;
      const double hr = hess_sum - hl;
      const double gain = gl * gl / (hl + kHessianFloor) +
                          gr * gr / (hr + kHessianFloor) - parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (x_here + x_next) / 2.0;
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (const std::size_t r : rows) {
    if (features.At(r, static_cast<std::size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  rows.clear();
  rows.shrink_to_fit();

  (*tree)[node_id].feature = best_feature;
  (*tree)[node_id].threshold = best_threshold;
  const int left = BuildNode(features, gradients, hessians, left_rows, depth + 1, tree);
  (*tree)[node_id].left = left;
  const int right =
      BuildNode(features, gradients, hessians, right_rows, depth + 1, tree);
  (*tree)[node_id].right = right;
  return node_id;
}

double Gbdt::Predict(const Tree& tree, std::span<const double> x) {
  int node = 0;
  while (tree[node].feature >= 0) {
    node = x[static_cast<std::size_t>(tree[node].feature)] <= tree[node].threshold
               ? tree[node].left
               : tree[node].right;
  }
  return tree[node].value;
}

Status Gbdt::Fit(const Matrix& features, const std::vector<double>& labels) {
  const std::size_t n = features.rows();
  if (n == 0 || features.cols() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (labels.size() != n) {
    return Status::InvalidArgument("labels/features row mismatch");
  }
  trees_.clear();
  const double positives = std::accumulate(labels.begin(), labels.end(), 0.0);
  const double prior = std::clamp(positives / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(prior / (1.0 - prior));

  std::vector<double> margin(n, base_score_);
  std::vector<double> gradients(n, 0.0);
  std::vector<double> hessians(n, 0.0);
  for (int round = 0; round < options_.num_trees; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(margin[i]);
      gradients[i] = p - labels[i];
      hessians[i] = std::max(p * (1.0 - p), kHessianFloor);
    }
    std::vector<std::size_t> rows(n);
    std::iota(rows.begin(), rows.end(), 0);
    Tree tree;
    BuildNode(features, gradients, hessians, rows, 0, &tree);
    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += options_.learning_rate * Predict(tree, features.Row(i));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

std::vector<double> Gbdt::PredictProba(const Matrix& features) const {
  std::vector<double> out(features.rows(), 0.0);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    double margin = base_score_;
    for (const Tree& tree : trees_) {
      margin += options_.learning_rate * Predict(tree, features.Row(i));
    }
    out[i] = Sigmoid(margin);
  }
  return out;
}

}  // namespace vulnds
