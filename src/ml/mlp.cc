#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace vulnds {

namespace {

// Adam over a collection of parameter blocks (one per layer tensor).
struct BlockAdam {
  std::vector<std::vector<double>> m;
  std::vector<std::vector<double>> v;
  int t = 0;

  void Register(std::size_t size) {
    m.emplace_back(size, 0.0);
    v.emplace_back(size, 0.0);
  }

  void Step(std::size_t block, std::vector<double>* params,
            const std::vector<double>& grads, double lr) {
    const double c1 = 1.0 - std::pow(0.9, t);
    const double c2 = 1.0 - std::pow(0.999, t);
    auto& mb = m[block];
    auto& vb = v[block];
    for (std::size_t i = 0; i < params->size(); ++i) {
      mb[i] = 0.9 * mb[i] + 0.1 * grads[i];
      vb[i] = 0.999 * vb[i] + 0.001 * grads[i] * grads[i];
      (*params)[i] -= lr * (mb[i] / c1) / (std::sqrt(vb[i] / c2) + 1e-8);
    }
  }
};

}  // namespace

Mlp::Mlp(std::vector<std::size_t> hidden_dims, TrainOptions options)
    : hidden_dims_(std::move(hidden_dims)), options_(options) {}

void Mlp::InitLayers(std::size_t input_dim, uint64_t seed) {
  layers_.clear();
  Rng rng(seed);
  std::size_t in = input_dim;
  auto make_layer = [&rng](std::size_t in_dim, std::size_t out_dim) {
    Layer layer;
    layer.in = in_dim;
    layer.out = out_dim;
    layer.weights.resize(in_dim * out_dim);
    layer.bias.assign(out_dim, 0.0);
    // He initialization for ReLU layers (also fine for the linear head).
    const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
    for (auto& w : layer.weights) w = rng.NextGaussian() * scale;
    return layer;
  };
  for (const std::size_t width : hidden_dims_) {
    layers_.push_back(make_layer(in, width));
    in = width;
  }
  layers_.push_back(make_layer(in, 1));  // logit head
}

double Mlp::Forward(std::span<const double> x,
                    std::vector<std::vector<double>>* activations) const {
  std::vector<double> current(x.begin(), x.end());
  if (activations != nullptr) {
    activations->clear();
    activations->push_back(current);
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.out, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double sum = layer.bias[o];
      const double* w = layer.weights.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) sum += w[i] * current[i];
      // ReLU on hidden layers, identity on the head.
      next[o] = (l + 1 < layers_.size()) ? std::max(0.0, sum) : sum;
    }
    current.swap(next);
    if (activations != nullptr) activations->push_back(current);
  }
  return current[0];
}

Status Mlp::Fit(const Matrix& features, const std::vector<double>& labels) {
  const std::size_t n = features.rows();
  const std::size_t d = features.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("empty training data");
  if (labels.size() != n) {
    return Status::InvalidArgument("labels/features row mismatch");
  }
  InitLayers(d, options_.seed);

  BlockAdam adam;
  for (const Layer& layer : layers_) {
    adam.Register(layer.weights.size());
    adam.Register(layer.bias.size());
  }

  std::vector<std::vector<double>> weight_grads(layers_.size());
  std::vector<std::vector<double>> bias_grads(layers_.size());
  Rng rng(options_.seed ^ 0xD1B54A32D192ED03ULL);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::vector<double>> activations;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    for (std::size_t start = 0; start < n; start += options_.batch_size) {
      const std::size_t end = std::min(n, start + options_.batch_size);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        weight_grads[l].assign(layers_[l].weights.size(), 0.0);
        bias_grads[l].assign(layers_[l].bias.size(), 0.0);
      }
      for (std::size_t b = start; b < end; ++b) {
        const std::size_t row = order[b];
        const double logit = Forward(features.Row(row), &activations);
        // dL/dlogit for BCE on sigmoid(logit).
        double upstream_scalar = Sigmoid(logit) - labels[row];
        std::vector<double> upstream = {upstream_scalar};
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const std::vector<double>& input = activations[l];
          std::vector<double> downstream(layer.in, 0.0);
          for (std::size_t o = 0; o < layer.out; ++o) {
            const double g = upstream[o];
            if (g == 0.0) continue;
            double* wg = weight_grads[l].data() + o * layer.in;
            const double* w = layer.weights.data() + o * layer.in;
            for (std::size_t i2 = 0; i2 < layer.in; ++i2) {
              wg[i2] += g * input[i2];
              downstream[i2] += g * w[i2];
            }
            bias_grads[l][o] += g;
          }
          if (l > 0) {
            // ReLU derivative gates the gradient flowing into layer l-1.
            const std::vector<double>& act = activations[l];
            (void)act;
            for (std::size_t i2 = 0; i2 < layer.in; ++i2) {
              if (activations[l][i2] <= 0.0) downstream[i2] = 0.0;
            }
          }
          upstream.swap(downstream);
        }
      }
      const double scale = 1.0 / static_cast<double>(end - start);
      ++adam.t;
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        for (std::size_t i = 0; i < weight_grads[l].size(); ++i) {
          weight_grads[l][i] =
              weight_grads[l][i] * scale + options_.l2 * layers_[l].weights[i];
        }
        for (auto& g : bias_grads[l]) g *= scale;
        adam.Step(2 * l, &layers_[l].weights, weight_grads[l],
                  options_.learning_rate);
        adam.Step(2 * l + 1, &layers_[l].bias, bias_grads[l],
                  options_.learning_rate);
      }
    }
  }
  return Status::OK();
}

std::vector<double> Mlp::PredictLogit(const Matrix& features) const {
  std::vector<double> out(features.rows(), 0.0);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    out[i] = Forward(features.Row(i), nullptr);
  }
  return out;
}

std::vector<double> Mlp::PredictProba(const Matrix& features) const {
  std::vector<double> logits = PredictLogit(features);
  for (auto& v : logits) v = Sigmoid(v);
  return logits;
}

}  // namespace vulnds
