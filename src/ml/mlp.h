// Multi-layer perceptron with ReLU hidden layers and a sigmoid output.
//
// Serves two case-study baselines: "crDNN" [29] (a deep feed-forward risk
// network) and the deep half of "Wide & Deep" [26]. Manual backprop, Adam,
// mini-batches, deterministic initialization.

#ifndef VULNDS_ML_MLP_H_
#define VULNDS_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/linear.h"
#include "ml/matrix.h"

namespace vulnds {

/// Feed-forward binary classifier.
class Mlp {
 public:
  /// `hidden_dims` lists hidden-layer widths (e.g. {32, 16}); empty means
  /// logistic regression expressed as a 0-hidden-layer network.
  Mlp(std::vector<std::size_t> hidden_dims, TrainOptions options = {});

  /// Trains on X (n x d), y in {0, 1}.
  Status Fit(const Matrix& features, const std::vector<double>& labels);

  /// P(y = 1 | x) per row.
  std::vector<double> PredictProba(const Matrix& features) const;

  /// Forward pass returning raw logits (used by WideDeep to combine).
  std::vector<double> PredictLogit(const Matrix& features) const;

 private:
  friend class WideDeep;

  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<double> weights;  // out x in, row-major
    std::vector<double> bias;     // out
  };

  void InitLayers(std::size_t input_dim, uint64_t seed);
  // Forward through hidden layers; returns activations per layer
  // (activations[0] is the input row).
  double Forward(std::span<const double> x,
                 std::vector<std::vector<double>>* activations) const;

  std::vector<std::size_t> hidden_dims_;
  TrainOptions options_;
  std::vector<Layer> layers_;  // hidden layers + final 1-unit layer
};

}  // namespace vulnds

#endif  // VULNDS_ML_MLP_H_
