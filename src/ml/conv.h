// CNN-max [27]: 1-D convolution over a monthly behavior sequence, ReLU,
// global max pooling, and a dense sigmoid head.
//
// Input rows are flattened (channels x time) tensors: feature index
// c * time_steps + t holds channel c at month t.

#ifndef VULNDS_ML_CONV_H_
#define VULNDS_ML_CONV_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/linear.h"
#include "ml/matrix.h"

namespace vulnds {

/// Configuration of the small temporal CNN.
struct CnnMaxOptions {
  std::size_t channels = 4;     ///< input channels per time step
  std::size_t time_steps = 12;  ///< sequence length (months)
  std::size_t filters = 8;      ///< convolution filters
  std::size_t kernel = 3;       ///< temporal kernel width
  TrainOptions train;
};

/// Conv1D -> ReLU -> global max pool -> dense -> sigmoid.
class CnnMax {
 public:
  explicit CnnMax(CnnMaxOptions options);

  /// Trains on rows of flattened (channels x time_steps) sequences.
  /// Fails if the feature width is not channels * time_steps.
  Status Fit(const Matrix& features, const std::vector<double>& labels);

  /// P(y = 1 | x) per row.
  std::vector<double> PredictProba(const Matrix& features) const;

 private:
  // Forward pass; if `pool_argmax` is non-null it receives, per filter, the
  // time index attaining the max (needed for backprop through the pool).
  double Forward(std::span<const double> x, std::vector<std::size_t>* pool_argmax,
                 std::vector<double>* pooled) const;

  CnnMaxOptions options_;
  std::vector<double> conv_weights_;  // filters x channels x kernel
  std::vector<double> conv_bias_;     // filters
  std::vector<double> dense_weights_; // filters
  double dense_bias_ = 0.0;
};

}  // namespace vulnds

#endif  // VULNDS_ML_CONV_H_
