#include "ml/conv.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace vulnds {

CnnMax::CnnMax(CnnMaxOptions options) : options_(options) {}

double CnnMax::Forward(std::span<const double> x,
                       std::vector<std::size_t>* pool_argmax,
                       std::vector<double>* pooled) const {
  const std::size_t channels = options_.channels;
  const std::size_t time = options_.time_steps;
  const std::size_t kernel = options_.kernel;
  const std::size_t positions = time - kernel + 1;
  double logit = dense_bias_;
  for (std::size_t f = 0; f < options_.filters; ++f) {
    double best = 0.0;  // ReLU floor: max(0, .) over positions
    std::size_t best_t = 0;
    const double* wf = conv_weights_.data() + f * channels * kernel;
    for (std::size_t t = 0; t < positions; ++t) {
      double sum = conv_bias_[f];
      for (std::size_t c = 0; c < channels; ++c) {
        const double* xc = x.data() + c * time;
        const double* wc = wf + c * kernel;
        for (std::size_t k = 0; k < kernel; ++k) sum += wc[k] * xc[t + k];
      }
      const double activated = std::max(0.0, sum);
      if (activated > best) {
        best = activated;
        best_t = t;
      }
    }
    if (pool_argmax != nullptr) (*pool_argmax)[f] = best_t;
    if (pooled != nullptr) (*pooled)[f] = best;
    logit += dense_weights_[f] * best;
  }
  return logit;
}

Status CnnMax::Fit(const Matrix& features, const std::vector<double>& labels) {
  const std::size_t n = features.rows();
  const std::size_t expected = options_.channels * options_.time_steps;
  if (features.cols() != expected) {
    return Status::InvalidArgument("feature width " + std::to_string(features.cols()) +
                                   " != channels*time " + std::to_string(expected));
  }
  if (labels.size() != n || n == 0) {
    return Status::InvalidArgument("bad label count");
  }
  if (options_.kernel == 0 || options_.kernel > options_.time_steps) {
    return Status::InvalidArgument("kernel must be in [1, time_steps]");
  }

  const std::size_t channels = options_.channels;
  const std::size_t time = options_.time_steps;
  const std::size_t kernel = options_.kernel;
  const std::size_t filters = options_.filters;

  Rng rng(options_.train.seed);
  conv_weights_.resize(filters * channels * kernel);
  const double conv_scale = std::sqrt(2.0 / static_cast<double>(channels * kernel));
  for (auto& w : conv_weights_) w = rng.NextGaussian() * conv_scale;
  conv_bias_.assign(filters, 0.0);
  dense_weights_.resize(filters);
  const double dense_scale = std::sqrt(2.0 / static_cast<double>(filters));
  for (auto& w : dense_weights_) w = rng.NextGaussian() * dense_scale;
  dense_bias_ = 0.0;

  // Plain SGD with momentum is sufficient for this tiny net.
  const double lr = options_.train.learning_rate;
  std::vector<double> conv_grad(conv_weights_.size());
  std::vector<double> bias_grad(filters);
  std::vector<double> dense_grad(filters);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::size_t> argmax(filters);
  std::vector<double> pooled(filters);

  for (int epoch = 0; epoch < options_.train.epochs; ++epoch) {
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    for (std::size_t start = 0; start < n; start += options_.train.batch_size) {
      const std::size_t end = std::min(n, start + options_.train.batch_size);
      std::fill(conv_grad.begin(), conv_grad.end(), 0.0);
      std::fill(bias_grad.begin(), bias_grad.end(), 0.0);
      std::fill(dense_grad.begin(), dense_grad.end(), 0.0);
      double dense_bias_grad = 0.0;
      for (std::size_t b = start; b < end; ++b) {
        const std::size_t row = order[b];
        const auto x = features.Row(row);
        const double logit = Forward(x, &argmax, &pooled);
        const double g = Sigmoid(logit) - labels[row];
        dense_bias_grad += g;
        for (std::size_t f = 0; f < filters; ++f) {
          dense_grad[f] += g * pooled[f];
          if (pooled[f] <= 0.0) continue;  // ReLU / empty-pool gate
          const double gf = g * dense_weights_[f];
          const std::size_t t = argmax[f];
          double* cg = conv_grad.data() + f * channels * kernel;
          for (std::size_t c = 0; c < channels; ++c) {
            const double* xc = x.data() + c * time;
            double* cgc = cg + c * kernel;
            for (std::size_t k = 0; k < kernel; ++k) cgc[k] += gf * xc[t + k];
          }
          bias_grad[f] += gf;
        }
      }
      const double scale = lr / static_cast<double>(end - start);
      for (std::size_t i = 0; i < conv_weights_.size(); ++i) {
        conv_weights_[i] -= scale * (conv_grad[i] +
                                     options_.train.l2 * conv_weights_[i]);
      }
      for (std::size_t f = 0; f < filters; ++f) {
        conv_bias_[f] -= scale * bias_grad[f];
        dense_weights_[f] -= scale * (dense_grad[f] +
                                      options_.train.l2 * dense_weights_[f]);
      }
      dense_bias_ -= scale * dense_bias_grad;
    }
  }
  return Status::OK();
}

std::vector<double> CnnMax::PredictProba(const Matrix& features) const {
  std::vector<double> out(features.rows(), 0.0);
  for (std::size_t i = 0; i < features.rows(); ++i) {
    out[i] = Sigmoid(Forward(features.Row(i), nullptr, nullptr));
  }
  return out;
}

}  // namespace vulnds
