// Feature standardization (zero mean, unit variance per column).

#ifndef VULNDS_ML_SCALER_H_
#define VULNDS_ML_SCALER_H_

#include <vector>

#include "ml/matrix.h"

namespace vulnds {

/// Per-column standardizer fit on training data and applied to any split.
class StandardScaler {
 public:
  /// Learns column means and standard deviations (std floor 1e-12).
  void Fit(const Matrix& features);

  /// Returns (features - mean) / std using the fitted statistics.
  Matrix Transform(const Matrix& features) const;

  /// Fit followed by Transform on the same data.
  Matrix FitTransform(const Matrix& features);

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace vulnds

#endif  // VULNDS_ML_SCALER_H_
