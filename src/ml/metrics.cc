#include "ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

namespace vulnds {

double AreaUnderRoc(std::span<const double> scores, std::span<const double> labels) {
  assert(scores.size() == labels.size());
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  // Average ranks over tie groups, then apply the Mann-Whitney identity.
  std::vector<double> rank(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t t = i; t <= j; ++t) rank[order[t]] = avg_rank;
    i = j + 1;
  }
  double positive = 0.0;
  double rank_sum = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    if (labels[t] > 0.5) {
      positive += 1.0;
      rank_sum += rank[t];
    }
  }
  const double negative = static_cast<double>(n) - positive;
  if (positive == 0.0 || negative == 0.0) return 0.5;
  return (rank_sum - positive * (positive + 1.0) / 2.0) / (positive * negative);
}

double LogLoss(std::span<const double> probs, std::span<const double> labels) {
  assert(probs.size() == labels.size());
  if (probs.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t t = 0; t < probs.size(); ++t) {
    const double p = std::clamp(probs[t], 1e-12, 1.0 - 1e-12);
    total += labels[t] > 0.5 ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(probs.size());
}

double Accuracy(std::span<const double> probs, std::span<const double> labels) {
  assert(probs.size() == labels.size());
  if (probs.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t t = 0; t < probs.size(); ++t) {
    const bool predicted = probs[t] >= 0.5;
    const bool actual = labels[t] > 0.5;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(probs.size());
}

}  // namespace vulnds
