// Evaluation metrics for the case study; AUC is the Table 3 metric.

#ifndef VULNDS_ML_METRICS_H_
#define VULNDS_ML_METRICS_H_

#include <span>

namespace vulnds {

/// Area under the ROC curve via the rank statistic (Mann–Whitney U), with
/// the standard 0.5 credit for score ties. Labels are interpreted as
/// positive when > 0.5. Returns 0.5 when either class is empty.
double AreaUnderRoc(std::span<const double> scores, std::span<const double> labels);

/// Binary log loss at probability clamp 1e-12.
double LogLoss(std::span<const double> probs, std::span<const double> labels);

/// Fraction of correct predictions at threshold 0.5.
double Accuracy(std::span<const double> probs, std::span<const double> labels);

}  // namespace vulnds

#endif  // VULNDS_ML_METRICS_H_
