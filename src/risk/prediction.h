// The Table 3 case-study harness: trains every baseline on the first
// simulated year and reports per-year AUC on the later years.
//
// Methods (paper's Table 3 rows):
//   Wide, Wide&Deep, GBDT, CNN-max, crDNN     feature classifiers (src/ml)
//   INDDP, HGAR                               graph-feature classifiers
//   Betweenness, PageRank, K-core, InfMax     structural scores (src/rank)
//   BSRBK, BSR                                uncertain-graph detectors with
//                                             *estimated* probabilities: a
//                                             logistic self-risk model and a
//                                             contagion-rate estimate fit on
//                                             the training year.

#ifndef VULNDS_RISK_PREDICTION_H_
#define VULNDS_RISK_PREDICTION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "risk/loan_simulator.h"

namespace vulnds {

/// Table 3 rows.
enum class RiskMethod {
  kWide = 0,
  kWideDeep,
  kGbdt,
  kCnnMax,
  kCrDnn,
  kInddp,
  kHgar,
  kBetweenness,
  kPageRank,
  kKcore,
  kInfMax,
  kBsrbk,
  kBsr,
};

/// All rows in the paper's table order.
const std::vector<RiskMethod>& AllRiskMethods();

/// Printable method name ("Wide", "Wide & Deep", ..., "BSR").
std::string RiskMethodName(RiskMethod method);

/// Case-study configuration.
struct CaseStudyOptions {
  std::size_t train_year_index = 0;            ///< 2012
  std::vector<std::size_t> test_year_indices = {2, 3, 4};  ///< 2014..2016
  std::size_t detector_samples = 2000;  ///< Monte-Carlo budget for BSR scores
  std::size_t bsrbk_budget = 600;       ///< smaller budget for BSRBK scores
  int bsrbk_bk = 16;                    ///< sketch parameter
  std::size_t ris_sets = 5000;          ///< RR sets for InfMax scores
  uint64_t seed = 7;
};

/// One row of the result: AUC per test year.
struct CaseStudyRow {
  RiskMethod method;
  std::vector<double> auc;  ///< aligned with options.test_year_indices
};

/// Full case-study result.
struct CaseStudyResult {
  std::vector<CaseStudyRow> rows;  ///< one per method, table order
  std::vector<int> test_years;     ///< calendar years of the AUC columns
};

/// Computes risk scores for one method on one test year (exposed for tests).
Result<std::vector<double>> ScoreYear(const TemporalLoanData& data,
                                      RiskMethod method,
                                      const CaseStudyOptions& options,
                                      std::size_t test_year_index);

/// Runs every method over every test year.
Result<CaseStudyResult> RunCaseStudy(const TemporalLoanData& data,
                                     const CaseStudyOptions& options);

}  // namespace vulnds

#endif  // VULNDS_RISK_PREDICTION_H_
