#include "risk/loan_simulator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "common/rng.h"
#include "exact/possible_world.h"
#include "graph/builder.h"
#include "ml/linear.h"

namespace vulnds {

Result<UncertainGraph> TemporalLoanData::TrueYearGraph(std::size_t year_index) const {
  if (year_index >= true_self_risk.size()) {
    return Status::OutOfRange("year index " + std::to_string(year_index));
  }
  UncertainGraphBuilder builder(graph.num_nodes());
  VULNDS_RETURN_NOT_OK(builder.SetAllSelfRisks(true_self_risk[year_index]));
  const auto& edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    VULNDS_RETURN_NOT_OK(
        builder.AddEdge(edges[e].src, edges[e].dst, true_diffusion[e]));
  }
  return builder.Build();
}

Result<TemporalLoanData> SimulateLoanNetwork(const LoanSimOptions& options) {
  const std::size_t n = options.num_firms;
  if (n < 10) return Status::InvalidArgument("need at least 10 firms");
  if (options.num_years < 1) return Status::InvalidArgument("need >= 1 year");
  const auto m = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * options.edges_per_firm));

  Rng rng(options.seed);
  TemporalLoanData data;
  for (int y = 0; y < options.num_years; ++y) {
    data.years.push_back(options.first_year + y);
  }

  // --- Static features and the latent risk factor ------------------------
  constexpr std::size_t kStaticDim = 6;
  data.static_features = Matrix(n, kStaticDim);
  std::vector<double> latent_risk(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = std::exp(0.9 * rng.NextGaussian());       // firm size
    const double capital = scale * std::exp(0.4 * rng.NextGaussian());
    const double sector = rng.NextDouble();                        // sector risk
    const double age = 1.0 + rng.NextBounded(30);                  // years
    const double leverage = std::clamp(0.5 + 0.25 * rng.NextGaussian(), 0.0, 2.0);
    const double rating = std::clamp(0.6 - 0.15 * leverage + 0.2 * rng.NextGaussian(),
                                     0.0, 1.0);
    data.static_features.At(i, 0) = std::log(scale);
    data.static_features.At(i, 1) = std::log(capital);
    data.static_features.At(i, 2) = sector;
    data.static_features.At(i, 3) = age;
    data.static_features.At(i, 4) = leverage;
    data.static_features.At(i, 5) = rating;
    // Latent risk: leveraged, low-rated, risky-sector firms default more.
    // Deliberately nonlinear — interaction and *non-monotone* terms (both
    // very small and very large firms are fragile) — so the deep/boosted
    // baselines have genuine headroom over the linear model, as they do on
    // the paper's real data.
    const double log_scale = std::log(scale);
    latent_risk[i] = 1.0 * leverage - 1.3 * rating + 0.6 * sector +
                     1.4 * leverage * sector +
                     0.9 * std::fabs(log_scale - 0.7) - 0.45 * log_scale +
                     (sector > 0.65 ? 0.5 : 0.0) + 0.3 * rng.NextGaussian();
  }

  // --- Guarantee topology (hub + chains, as in gen/financial) ------------
  // Borrowers are risk-weighted: riskier firms need more guarantees, which
  // is what makes structural centralities informative on real guarantee
  // networks (a firm's in-degree correlates with its fragility).
  std::vector<double> borrower_cdf(n);
  {
    double run = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      run += std::exp(0.5 * latent_risk[i]);
      borrower_cdf[i] = run;
    }
  }
  auto sample_borrower = [&]() -> NodeId {
    const double u = rng.NextDouble() * borrower_cdf.back();
    const auto it = std::lower_bound(borrower_cdf.begin(), borrower_cdf.end(), u);
    const auto idx = static_cast<std::size_t>(it - borrower_cdf.begin());
    return static_cast<NodeId>(std::min(idx, n - 1));
  };

  UncertainGraphBuilder builder(n);
  std::unordered_set<uint64_t> seen;
  std::vector<double> diffusion;
  std::vector<NodeId> chain_tails;  // last borrower of each guarantee chain
  std::size_t added = 0;
  std::size_t guard = 0;
  while (added < m && guard < 200 * m) {
    ++guard;
    NodeId src;
    NodeId dst;
    if (rng.Bernoulli(options.hub_fraction)) {
      src = 0;
      dst = sample_borrower();
    } else if (!chain_tails.empty() && rng.Bernoulli(0.5)) {
      // Extend a guarantee chain: the previous borrower guarantees the next
      // firm. Chains are the paper's motivating structure and what gives
      // multi-hop contagion its reach.
      const std::size_t c = rng.NextBounded(chain_tails.size());
      src = chain_tails[c];
      dst = sample_borrower();
      if (src != dst) chain_tails[c] = dst;
    } else {
      src = static_cast<NodeId>(1 + rng.NextBounded(n - 1));
      dst = sample_borrower();
      if (src != dst) chain_tails.push_back(dst);
    }
    if (src == dst) continue;
    if (!seen.insert((static_cast<uint64_t>(src) << 32) | dst).second) continue;
    // True diffusion probability: a guarantee from a small guarantor to a
    // large borrower transmits more stress; exposure noise on top.
    const double size_gap =
        data.static_features.At(dst, 0) - data.static_features.At(src, 0);
    const double p = std::clamp(
        options.diffusion_scale * Sigmoid(0.6 * size_gap + 0.8 * rng.NextGaussian()),
        0.02, 0.95);
    VULNDS_RETURN_NOT_OK(builder.AddEdge(src, dst, p));
    diffusion.push_back(p);
    ++added;
  }
  data.true_diffusion = diffusion;

  // --- Per-year risk, behavior and labels ---------------------------------
  const auto channels = options.behavior_channels;
  const auto months = static_cast<std::size_t>(options.months);
  for (int y = 0; y < options.num_years; ++y) {
    const double drift = 0.1 * y + 0.2 * std::sin(1.7 * y);
    std::vector<double> self_risk(n, 0.0);
    Matrix behavior(n, channels * months);
    for (std::size_t i = 0; i < n; ++i) {
      const double year_risk = latent_risk[i] + drift + 0.25 * rng.NextGaussian();
      self_risk[i] = std::clamp(
          Sigmoid(options.base_default_logit + options.risk_slope * year_risk),
          0.001, 0.98);
      // Monthly channels correlated with year_risk:
      //   0: repayment ratio (falls with risk), 1: delinquency count,
      //   2: credit utilization, 3: balance volatility.
      for (std::size_t t = 0; t < months; ++t) {
        const double season = 0.1 * std::sin(2.0 * M_PI * t / months);
        const double noise = 0.15 * rng.NextGaussian();
        behavior.At(i, 0 * months + t) =
            std::clamp(1.0 - 0.25 * year_risk + season + noise, 0.0, 1.5);
        behavior.At(i, 1 * months + t) =
            std::max(0.0, 0.8 * year_risk + noise + 0.2 * rng.NextGaussian());
        behavior.At(i, 2 * months + t) =
            std::clamp(0.4 + 0.2 * year_risk + season + noise, 0.0, 1.5);
        behavior.At(i, 3 * months + t) = std::fabs(0.5 * year_risk + noise);
      }
    }
    data.true_self_risk.push_back(self_risk);
    data.behavior.push_back(std::move(behavior));
  }

  data.graph = builder.Build().MoveValue();

  // Labels: one contagion world per year under the true probabilities.
  for (int y = 0; y < options.num_years; ++y) {
    Rng world_rng = rng.Fork(1000 + static_cast<uint64_t>(y));
    std::vector<char> self(n, 0);
    std::vector<char> edge_up(data.graph.num_edges(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      self[i] = world_rng.Bernoulli(data.true_self_risk[static_cast<std::size_t>(y)][i]);
    }
    for (std::size_t e = 0; e < data.graph.num_edges(); ++e) {
      edge_up[e] = world_rng.Bernoulli(data.true_diffusion[e]);
    }
    const std::vector<char> defaulted = EvaluateWorld(data.graph, self, edge_up);
    std::vector<double> labels(n, 0.0);
    std::vector<char> contagion(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      labels[i] = defaulted[i] ? 1.0 : 0.0;
      contagion[i] = (defaulted[i] && !self[i]) ? 1 : 0;
    }
    data.labels.push_back(std::move(labels));
    data.contagion_caused.push_back(std::move(contagion));
  }
  return data;
}

}  // namespace vulnds
