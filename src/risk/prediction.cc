#include "risk/prediction.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/builder.h"
#include "ml/conv.h"
#include "ml/gbdt.h"
#include "ml/graph_features.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/scaler.h"
#include "ml/wide_deep.h"
#include "rank/centrality.h"
#include "rank/inf_max.h"
#include "rank/kcore.h"
#include "vulnds/basic_sampler.h"
#include "vulnds/bsrbk.h"

namespace vulnds {

const std::vector<RiskMethod>& AllRiskMethods() {
  static const std::vector<RiskMethod> kAll = {
      RiskMethod::kWide,   RiskMethod::kWideDeep,    RiskMethod::kGbdt,
      RiskMethod::kCnnMax, RiskMethod::kCrDnn,       RiskMethod::kInddp,
      RiskMethod::kHgar,   RiskMethod::kBetweenness, RiskMethod::kPageRank,
      RiskMethod::kKcore,  RiskMethod::kInfMax,      RiskMethod::kBsrbk,
      RiskMethod::kBsr};
  return kAll;
}

std::string RiskMethodName(RiskMethod method) {
  switch (method) {
    case RiskMethod::kWide:
      return "Wide";
    case RiskMethod::kWideDeep:
      return "Wide & Deep";
    case RiskMethod::kGbdt:
      return "GBDT";
    case RiskMethod::kCnnMax:
      return "CNN-max";
    case RiskMethod::kCrDnn:
      return "crDNN";
    case RiskMethod::kInddp:
      return "INDDP";
    case RiskMethod::kHgar:
      return "HGAR";
    case RiskMethod::kBetweenness:
      return "Betweenness";
    case RiskMethod::kPageRank:
      return "PageRank";
    case RiskMethod::kKcore:
      return "K-core";
    case RiskMethod::kInfMax:
      return "InfMax";
    case RiskMethod::kBsrbk:
      return "BSRBK";
    case RiskMethod::kBsr:
      return "BSR";
  }
  return "?";
}

namespace {

// [static | per-channel mean, max, last month] tabular features of a year.
Matrix TabularFeatures(const TemporalLoanData& data, std::size_t year) {
  const Matrix& behavior = data.behavior[year];
  const std::size_t n = data.static_features.rows();
  const std::size_t static_dim = data.static_features.cols();
  // Infer channels from width: channels * months columns, months from the
  // simulator's fixed 12-month convention.
  const std::size_t months = 12;
  const std::size_t channels = behavior.cols() / months;
  Matrix out(n, static_dim + channels * 3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < static_dim; ++j) {
      out.At(i, j) = data.static_features.At(i, j);
    }
    for (std::size_t c = 0; c < channels; ++c) {
      double sum = 0.0;
      double peak = -1e300;
      for (std::size_t t = 0; t < months; ++t) {
        const double v = behavior.At(i, c * months + t);
        sum += v;
        peak = std::max(peak, v);
      }
      out.At(i, static_dim + c * 3 + 0) = sum / static_cast<double>(months);
      out.At(i, static_dim + c * 3 + 1) = peak;
      out.At(i, static_dim + c * 3 + 2) = behavior.At(i, c * months + months - 1);
    }
  }
  return out;
}

TrainOptions MakeTrainOptions(uint64_t seed) {
  TrainOptions o;
  o.epochs = 80;
  o.batch_size = 64;
  o.learning_rate = 0.01;
  o.l2 = 1e-4;
  o.seed = seed;
  return o;
}

// Neural models get stronger weight decay: the yearly drift is a genuine
// distribution shift, and an over-fit net loses more than a linear model.
TrainOptions MakeNetOptions(uint64_t seed) {
  TrainOptions o = MakeTrainOptions(seed);
  o.epochs = 50;
  o.l2 = 5e-3;
  return o;
}

// Per-edge diffusion estimates, the stand-in for the paper's p-wkNN edge
// model [15]: a logistic model on the lender/borrower size gap is fit to
// "borrower defaulted" among training-year edges whose guarantor defaulted,
// then the borrower's own self-risk is factored out so the residual is the
// contagion channel:  p(dst|src) = (c(e) - ps(dst)) / (1 - ps(dst)).
Result<std::vector<double>> EstimateEdgeDiffusion(
    const TemporalLoanData& data, std::size_t train_year,
    const std::vector<double>& train_self_risk, uint64_t seed) {
  const std::vector<double>& labels = data.labels[train_year];
  const auto& edges = data.graph.edges();
  auto edge_gap = [&](const UncertainEdge& e) {
    return data.static_features.At(e.dst, 0) - data.static_features.At(e.src, 0);
  };

  // Training pairs: edges whose guarantor defaulted in the training year.
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> ss;  // borrower's estimated self-risk
  for (const UncertainEdge& e : edges) {
    if (labels[e.src] > 0.5) {
      xs.push_back(edge_gap(e));
      ys.push_back(labels[e.dst]);
      ss.push_back(std::clamp(train_self_risk[e.dst], 0.001, 0.98));
    }
  }
  std::vector<double> result(edges.size(), 0.2);
  if (xs.size() < 16) return result;  // not enough evidence; keep the prior

  // Fit (a, b) of the *generative* relation
  //   P(dst defaults | src defaulted) = s + (1 - s) * sigmoid(a + b * gap)
  // by gradient descent on binary cross-entropy. Fitting the conditional
  // with a free model instead would let the borrower's self-risk absorb the
  // contagion channel entirely (they are correlated on this network).
  double a = -1.0;
  double b = 0.0;
  const double lr = 0.5;
  Rng rng(seed ^ 0xE1);
  for (int iter = 0; iter < 400; ++iter) {
    double grad_a = 0.0;
    double grad_b = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double edge_p = Sigmoid(a + b * xs[i]);
      const double p = std::clamp(ss[i] + (1.0 - ss[i]) * edge_p, 1e-9, 1.0 - 1e-9);
      // dBCE/dp * dp/dlogit, with dp/dlogit = (1-s) * edge_p * (1-edge_p).
      const double dl_dp = (p - ys[i]) / (p * (1.0 - p));
      const double chain = dl_dp * (1.0 - ss[i]) * edge_p * (1.0 - edge_p);
      grad_a += chain;
      grad_b += chain * xs[i];
    }
    const double inv = 1.0 / static_cast<double>(xs.size());
    a -= lr * grad_a * inv;
    b -= lr * grad_b * inv;
  }

  for (std::size_t e = 0; e < edges.size(); ++e) {
    result[e] = std::clamp(Sigmoid(a + b * edge_gap(edges[e])), 0.02, 0.95);
  }
  return result;
}

// Builds the estimated uncertain graph of a test year: model-based
// self-risk predictions plus the constant estimated diffusion probability.
// The paper's deployed system feeds the detectors with HGAR-grade self-risk
// estimates [10]; a boosted-tree model is our equivalently strong (and
// calibrated) tabular estimator.
Result<UncertainGraph> EstimatedYearGraph(const TemporalLoanData& data,
                                          const CaseStudyOptions& options,
                                          std::size_t test_year) {
  // Graph-aware self-risk, as deployed: the paper's system feeds the
  // detector with HGAR-grade estimates [10]; our equivalent is a boosted
  // model over the node's features augmented with its in-neighborhood
  // aggregate (the same representation INDDP uses).
  const Matrix train_base = TabularFeatures(data, options.train_year_index);
  const Matrix test_base = TabularFeatures(data, test_year);
  const Matrix train_g =
      train_base.ConcatColumns(NeighborMeanFeatures(data.graph, train_base));
  const Matrix test_g =
      test_base.ConcatColumns(NeighborMeanFeatures(data.graph, test_base));
  StandardScaler scaler;
  const Matrix train_x = scaler.FitTransform(train_g);
  LogisticRegression self_risk_model(MakeTrainOptions(options.seed ^ 0xA7));
  VULNDS_RETURN_NOT_OK(
      self_risk_model.Fit(train_x, data.labels[options.train_year_index]));
  std::vector<double> self_risk =
      self_risk_model.PredictProba(scaler.Transform(test_g));
  for (auto& p : self_risk) p = std::clamp(p, 0.0, 1.0);
  std::vector<double> train_self_risk = self_risk_model.PredictProba(train_x);

  Result<std::vector<double>> diffusion = EstimateEdgeDiffusion(
      data, options.train_year_index, train_self_risk, options.seed);
  if (!diffusion.ok()) return diffusion.status();
  UncertainGraphBuilder builder(data.graph.num_nodes());
  VULNDS_RETURN_NOT_OK(builder.SetAllSelfRisks(self_risk));
  const auto& edges = data.graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    VULNDS_RETURN_NOT_OK(
        builder.AddEdge(edges[e].src, edges[e].dst, (*diffusion)[e]));
  }
  return builder.Build();
}

}  // namespace

Result<std::vector<double>> ScoreYear(const TemporalLoanData& data,
                                      RiskMethod method,
                                      const CaseStudyOptions& options,
                                      std::size_t test_year_index) {
  if (options.train_year_index >= data.labels.size() ||
      test_year_index >= data.labels.size()) {
    return Status::OutOfRange("year index outside the simulation");
  }
  const std::vector<double>& train_labels = data.labels[options.train_year_index];

  switch (method) {
    case RiskMethod::kWide: {
      StandardScaler scaler;
      const Matrix train_x =
          scaler.FitTransform(TabularFeatures(data, options.train_year_index));
      LogisticRegression model(MakeTrainOptions(options.seed));
      VULNDS_RETURN_NOT_OK(model.Fit(train_x, train_labels));
      return model.PredictProba(scaler.Transform(TabularFeatures(data, test_year_index)));
    }
    case RiskMethod::kWideDeep: {
      StandardScaler scaler;
      const Matrix train_x =
          scaler.FitTransform(TabularFeatures(data, options.train_year_index));
      WideDeep model({32, 16}, MakeNetOptions(options.seed));
      VULNDS_RETURN_NOT_OK(model.Fit(train_x, train_labels));
      return model.PredictProba(scaler.Transform(TabularFeatures(data, test_year_index)));
    }
    case RiskMethod::kGbdt: {
      // Trees are scale-invariant; no standardization needed.
      Gbdt model;
      VULNDS_RETURN_NOT_OK(
          model.Fit(TabularFeatures(data, options.train_year_index), train_labels));
      return model.PredictProba(TabularFeatures(data, test_year_index));
    }
    case RiskMethod::kCnnMax: {
      CnnMaxOptions cnn;
      cnn.channels = data.behavior[0].cols() / 12;
      cnn.time_steps = 12;
      cnn.filters = 8;
      cnn.kernel = 3;
      cnn.train = MakeTrainOptions(options.seed);
      StandardScaler scaler;
      const Matrix train_x = scaler.FitTransform(data.behavior[options.train_year_index]);
      CnnMax model(cnn);
      VULNDS_RETURN_NOT_OK(model.Fit(train_x, train_labels));
      return model.PredictProba(scaler.Transform(data.behavior[test_year_index]));
    }
    case RiskMethod::kCrDnn: {
      StandardScaler scaler;
      const Matrix train_x =
          scaler.FitTransform(TabularFeatures(data, options.train_year_index));
      Mlp model({64, 32, 16}, MakeNetOptions(options.seed));
      VULNDS_RETURN_NOT_OK(model.Fit(train_x, train_labels));
      return model.PredictProba(scaler.Transform(TabularFeatures(data, test_year_index)));
    }
    case RiskMethod::kInddp: {
      const Matrix train_base = TabularFeatures(data, options.train_year_index);
      const Matrix test_base = TabularFeatures(data, test_year_index);
      const Matrix train_g =
          train_base.ConcatColumns(NeighborMeanFeatures(data.graph, train_base));
      const Matrix test_g =
          test_base.ConcatColumns(NeighborMeanFeatures(data.graph, test_base));
      StandardScaler scaler;
      const Matrix train_x = scaler.FitTransform(train_g);
      LogisticRegression model(MakeTrainOptions(options.seed));
      VULNDS_RETURN_NOT_OK(model.Fit(train_x, train_labels));
      return model.PredictProba(scaler.Transform(test_g));
    }
    case RiskMethod::kHgar: {
      const Matrix train_h =
          HighOrderFeatures(data.graph, TabularFeatures(data, options.train_year_index), 2);
      const Matrix test_h =
          HighOrderFeatures(data.graph, TabularFeatures(data, test_year_index), 2);
      StandardScaler scaler;
      const Matrix train_x = scaler.FitTransform(train_h);
      Mlp model({48, 16}, MakeNetOptions(options.seed));
      VULNDS_RETURN_NOT_OK(model.Fit(train_x, train_labels));
      return model.PredictProba(scaler.Transform(test_h));
    }
    case RiskMethod::kBetweenness:
      return BetweennessCentrality(data.graph);
    case RiskMethod::kPageRank:
      return PageRank(data.graph);
    case RiskMethod::kKcore: {
      const std::vector<std::size_t> cores = CoreNumbers(data.graph);
      std::vector<double> scores(cores.size());
      for (std::size_t i = 0; i < cores.size(); ++i) {
        scores[i] = static_cast<double>(cores[i]);
      }
      return scores;
    }
    case RiskMethod::kInfMax: {
      // Vulnerability is *in*-influence: how easily contagion reaches the
      // node. RR sketches on the transposed estimated graph measure exactly
      // that (coverage of v = fraction of worlds in which v reaches a
      // random node backwards, i.e. is reachable forward).
      Result<UncertainGraph> est = EstimatedYearGraph(data, options, test_year_index);
      if (!est.ok()) return est.status();
      const UncertainGraph reversed = est->Transposed();
      RisSketches ris(reversed, options.ris_sets, options.seed);
      return ris.InfluenceScores();
    }
    case RiskMethod::kBsr: {
      Result<UncertainGraph> est = EstimatedYearGraph(data, options, test_year_index);
      if (!est.ok()) return est.status();
      const BasicSampleStats stats =
          RunBasicSampling(*est, options.detector_samples, options.seed);
      return stats.estimates;
    }
    case RiskMethod::kBsrbk: {
      // Scoring every firm disables the early stop (needed = n); BSRBK's
      // economy shows as a smaller world budget plus sketch-based estimates
      // for the frequent defaulters — slightly coarser than BSR, exactly
      // the relationship Table 3 reports.
      Result<UncertainGraph> est = EstimatedYearGraph(data, options, test_year_index);
      if (!est.ok()) return est.status();
      std::vector<NodeId> all(est->num_nodes());
      std::iota(all.begin(), all.end(), 0);
      Result<BottomKRunStats> run =
          RunBottomKSampling(*est, all, options.bsrbk_budget, all.size(),
                             options.bsrbk_bk, options.seed);
      if (!run.ok()) return run.status();
      return run->estimates;
    }
  }
  return Status::InvalidArgument("unknown risk method");
}

Result<CaseStudyResult> RunCaseStudy(const TemporalLoanData& data,
                                     const CaseStudyOptions& options) {
  CaseStudyResult result;
  for (const std::size_t year : options.test_year_indices) {
    if (year >= data.years.size()) {
      return Status::OutOfRange("test year index outside the simulation");
    }
    result.test_years.push_back(data.years[year]);
  }
  for (const RiskMethod method : AllRiskMethods()) {
    CaseStudyRow row;
    row.method = method;
    for (const std::size_t year : options.test_year_indices) {
      Result<std::vector<double>> scores = ScoreYear(data, method, options, year);
      if (!scores.ok()) return scores.status();
      row.auc.push_back(AreaUnderRoc(*scores, data.labels[year]));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace vulnds
