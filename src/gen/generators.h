// Random-topology generators for benchmark networks.
//
// All generators are deterministic in their seed, reject self-loops, and
// de-duplicate edges (parallel edges are legal in UncertainGraph but the
// benchmark networks in Table 2 report simple-graph edge counts).

#ifndef VULNDS_GEN_GENERATORS_H_
#define VULNDS_GEN_GENERATORS_H_

#include <cstdint>

#include "common/status.h"
#include "gen/probability_model.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Probability annotation shared by all generators.
struct GraphProbOptions {
  ProbabilityModel self_risk = ProbabilityModel::Uniform01();
  ProbabilityModel diffusion = ProbabilityModel::Uniform01();
};

/// Directed G(n, m): exactly `num_edges` distinct directed non-loop edges.
Result<UncertainGraph> ErdosRenyi(std::size_t num_nodes, std::size_t num_edges,
                                  const GraphProbOptions& probs, uint64_t seed);

/// Directed Barabási–Albert preferential attachment. Each new node emits
/// `edges_per_node` edges toward targets chosen proportionally to current
/// (in + out) degree; direction of each edge is randomized so the result
/// has both forward and backward diffusion paths.
Result<UncertainGraph> BarabasiAlbert(std::size_t num_nodes,
                                      std::size_t edges_per_node,
                                      const GraphProbOptions& probs, uint64_t seed);

/// Directed Watts–Strogatz small world: ring lattice with `ring_degree`
/// successors per node, each edge rewired with probability `rewire_prob`.
Result<UncertainGraph> WattsStrogatz(std::size_t num_nodes, std::size_t ring_degree,
                                     double rewire_prob,
                                     const GraphProbOptions& probs, uint64_t seed);

/// Directed power-law configuration model: out- and in-degrees drawn from a
/// Zipf-like distribution with the given exponent, capped at `max_degree`,
/// then randomly matched until ~`num_edges` distinct edges exist.
Result<UncertainGraph> PowerLawConfiguration(std::size_t num_nodes,
                                             std::size_t num_edges, double exponent,
                                             std::size_t max_degree,
                                             const GraphProbOptions& probs,
                                             uint64_t seed);

}  // namespace vulnds

#endif  // VULNDS_GEN_GENERATORS_H_
