// Probability annotators: how self-risk and diffusion probabilities are
// drawn when a topology generator produces an uncertain graph.
//
// The paper's benchmark datasets use probabilities "randomly selected from
// [0, 1]"; the financial datasets use model-derived probabilities, which we
// substitute with beta-distributed draws (skewed toward small risks, the
// shape such models produce in practice).

#ifndef VULNDS_GEN_PROBABILITY_MODEL_H_
#define VULNDS_GEN_PROBABILITY_MODEL_H_

#include "common/rng.h"

namespace vulnds {

/// Family of distributions over [0, 1] used to annotate graphs.
enum class ProbKind {
  kUniform,   ///< Uniform(lo, hi)
  kBeta,      ///< Beta(alpha, beta) scaled into [lo, hi]
  kConstant,  ///< Always `lo`
};

/// A sampleable distribution over [0, 1].
struct ProbabilityModel {
  ProbKind kind = ProbKind::kUniform;
  double lo = 0.0;     ///< lower endpoint (or the constant)
  double hi = 1.0;     ///< upper endpoint
  double alpha = 1.0;  ///< Beta shape alpha
  double beta = 1.0;   ///< Beta shape beta

  /// Uniform over the whole unit interval (paper's benchmark setting).
  static ProbabilityModel Uniform01() { return {ProbKind::kUniform, 0, 1, 1, 1}; }
  /// Uniform over [lo, hi].
  static ProbabilityModel Uniform(double lo, double hi) {
    return {ProbKind::kUniform, lo, hi, 1, 1};
  }
  /// Beta(alpha, beta) in [0, 1].
  static ProbabilityModel Beta(double alpha, double beta) {
    return {ProbKind::kBeta, 0, 1, alpha, beta};
  }
  /// The constant `p`.
  static ProbabilityModel Constant(double p) {
    return {ProbKind::kConstant, p, p, 1, 1};
  }

  /// Draws one value from the model.
  double Sample(Rng& rng) const;
};

}  // namespace vulnds

#endif  // VULNDS_GEN_PROBABILITY_MODEL_H_
