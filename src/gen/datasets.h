// Dataset registry reproducing the 8 networks of Table 2.
//
// The real downloads (SNAP / network repository) and the proprietary bank
// data are unavailable offline, so each dataset is a seeded synthetic graph
// whose node count, edge count and degree shape match the published
// statistics (DESIGN.md documents the substitution). `scale` shrinks node
// and edge counts proportionally so benchmarks have a quick profile.

#ifndef VULNDS_GEN_DATASETS_H_
#define VULNDS_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// The 8 networks of Table 2.
enum class DatasetId {
  kBitcoin = 0,
  kFacebook,
  kWiki,
  kP2P,
  kCitation,
  kInterbank,
  kGuarantee,
  kFraud,
};

/// All dataset ids, in Table 2 row order.
const std::vector<DatasetId>& AllDatasets();

/// The four datasets used in the parameter-tuning / effectiveness figures.
const std::vector<DatasetId>& EffectivenessDatasets();

/// Printable dataset name ("Bitcoin", ...).
std::string DatasetName(DatasetId id);

/// Published statistics of a dataset (the target the generator aims for).
struct DatasetSpec {
  std::string name;
  std::size_t num_nodes;
  std::size_t num_edges;
  double avg_degree;       ///< Table 2's Avg Deg column
  std::size_t max_degree;  ///< Table 2's Max Deg column
};

/// The Table 2 row for `id`.
DatasetSpec GetDatasetSpec(DatasetId id);

/// Instantiates dataset `id` at the given scale in (0, 1]; `seed` controls
/// topology and probabilities. scale = 1 reproduces Table 2's size.
Result<UncertainGraph> MakeDataset(DatasetId id, double scale, uint64_t seed);

}  // namespace vulnds

#endif  // VULNDS_GEN_DATASETS_H_
