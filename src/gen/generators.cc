#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/builder.h"

namespace vulnds {

namespace {

// Dedup key for a directed edge; assumes node ids fit in 32 bits.
inline uint64_t EdgeKey(NodeId src, NodeId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

Status AnnotateAndAdd(UncertainGraphBuilder& builder,
                      const std::vector<std::pair<NodeId, NodeId>>& edges,
                      const GraphProbOptions& probs, Rng& rng) {
  for (NodeId v = 0; v < builder.num_nodes(); ++v) {
    VULNDS_RETURN_NOT_OK(builder.SetSelfRisk(v, probs.self_risk.Sample(rng)));
  }
  for (const auto& [src, dst] : edges) {
    VULNDS_RETURN_NOT_OK(builder.AddEdge(src, dst, probs.diffusion.Sample(rng)));
  }
  return Status::OK();
}

Status ValidateSimpleGraphRequest(std::size_t n, std::size_t m) {
  if (n < 2) return Status::InvalidArgument("need at least 2 nodes");
  const double max_edges = static_cast<double>(n) * (static_cast<double>(n) - 1);
  if (static_cast<double>(m) > max_edges) {
    return Status::InvalidArgument("too many edges for a simple digraph of " +
                                   std::to_string(n) + " nodes");
  }
  return Status::OK();
}

}  // namespace

Result<UncertainGraph> ErdosRenyi(std::size_t num_nodes, std::size_t num_edges,
                                  const GraphProbOptions& probs, uint64_t seed) {
  VULNDS_RETURN_NOT_OK(ValidateSimpleGraphRequest(num_nodes, num_edges));
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    const auto src = static_cast<NodeId>(rng.NextBounded(num_nodes));
    const auto dst = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (src == dst) continue;
    if (!seen.insert(EdgeKey(src, dst)).second) continue;
    edges.emplace_back(src, dst);
  }
  UncertainGraphBuilder builder(num_nodes);
  VULNDS_RETURN_NOT_OK(AnnotateAndAdd(builder, edges, probs, rng));
  return builder.Build();
}

Result<UncertainGraph> BarabasiAlbert(std::size_t num_nodes,
                                      std::size_t edges_per_node,
                                      const GraphProbOptions& probs, uint64_t seed) {
  if (edges_per_node == 0) return Status::InvalidArgument("edges_per_node must be > 0");
  if (num_nodes < edges_per_node + 1) {
    return Status::InvalidArgument("need more nodes than edges_per_node");
  }
  Rng rng(seed);
  // repeated-node list: each endpoint occurrence is one entry, so uniform
  // sampling from the list is degree-proportional sampling.
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(2 * num_nodes * edges_per_node);
  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<NodeId, NodeId>> edges;

  // Seed clique-ish core: chain the first (edges_per_node + 1) nodes.
  const std::size_t core = edges_per_node + 1;
  for (NodeId v = 1; v < core; ++v) {
    const NodeId u = v - 1;
    edges.emplace_back(u, v);
    seen.insert(EdgeKey(u, v));
    endpoint_pool.push_back(u);
    endpoint_pool.push_back(v);
  }
  for (NodeId v = static_cast<NodeId>(core); v < num_nodes; ++v) {
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < edges_per_node && attempts < 50 * edges_per_node) {
      ++attempts;
      const NodeId target = endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      if (target == v) continue;
      // Randomize direction so diffusion can flow into and out of hubs.
      const bool forward = rng.Bernoulli(0.5);
      const NodeId src = forward ? v : target;
      const NodeId dst = forward ? target : v;
      if (!seen.insert(EdgeKey(src, dst)).second) continue;
      edges.emplace_back(src, dst);
      endpoint_pool.push_back(src);
      endpoint_pool.push_back(dst);
      ++added;
    }
  }
  UncertainGraphBuilder builder(num_nodes);
  VULNDS_RETURN_NOT_OK(AnnotateAndAdd(builder, edges, probs, rng));
  return builder.Build();
}

Result<UncertainGraph> WattsStrogatz(std::size_t num_nodes, std::size_t ring_degree,
                                     double rewire_prob,
                                     const GraphProbOptions& probs, uint64_t seed) {
  if (ring_degree == 0 || ring_degree >= num_nodes) {
    return Status::InvalidArgument("ring_degree must be in [1, num_nodes)");
  }
  if (rewire_prob < 0.0 || rewire_prob > 1.0) {
    return Status::InvalidArgument("rewire_prob outside [0, 1]");
  }
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < num_nodes; ++v) {
    for (std::size_t j = 1; j <= ring_degree; ++j) {
      NodeId dst = static_cast<NodeId>((v + j) % num_nodes);
      if (rng.Bernoulli(rewire_prob)) {
        // Rewire to a uniform non-loop, non-duplicate target; keep the
        // lattice edge if we fail to find one quickly.
        for (int attempt = 0; attempt < 32; ++attempt) {
          const auto candidate = static_cast<NodeId>(rng.NextBounded(num_nodes));
          if (candidate == v) continue;
          if (seen.count(EdgeKey(v, candidate)) != 0) continue;
          dst = candidate;
          break;
        }
      }
      if (dst == v) continue;
      if (!seen.insert(EdgeKey(v, dst)).second) continue;
      edges.emplace_back(v, dst);
    }
  }
  UncertainGraphBuilder builder(num_nodes);
  VULNDS_RETURN_NOT_OK(AnnotateAndAdd(builder, edges, probs, rng));
  return builder.Build();
}

Result<UncertainGraph> PowerLawConfiguration(std::size_t num_nodes,
                                             std::size_t num_edges, double exponent,
                                             std::size_t max_degree,
                                             const GraphProbOptions& probs,
                                             uint64_t seed) {
  VULNDS_RETURN_NOT_OK(ValidateSimpleGraphRequest(num_nodes, num_edges));
  if (exponent <= 1.0) return Status::InvalidArgument("exponent must exceed 1");
  if (max_degree == 0) max_degree = num_nodes - 1;
  Rng rng(seed);

  // Draw a power-law weight per node; the stub pool repeats each node
  // proportionally to its weight so matching approximates the target
  // degree distribution.
  auto build_pool = [&](uint64_t salt) {
    Rng local = rng.Fork(salt);
    std::vector<double> weight(num_nodes);
    double total = 0.0;
    for (std::size_t v = 0; v < num_nodes; ++v) {
      // Inverse-CDF of a Pareto-like tail, truncated at max_degree.
      const double u = local.NextDoubleOpen();
      double w = std::pow(u, -1.0 / (exponent - 1.0));
      w = std::min(w, static_cast<double>(max_degree));
      weight[v] = w;
      total += w;
    }
    std::vector<NodeId> pool;
    pool.reserve(num_edges * 2);
    for (std::size_t v = 0; v < num_nodes; ++v) {
      const double expected = weight[v] / total * static_cast<double>(num_edges);
      auto copies = static_cast<std::size_t>(expected);
      if (local.NextDouble() < expected - static_cast<double>(copies)) ++copies;
      copies = std::min(copies, max_degree);
      for (std::size_t c = 0; c < std::max<std::size_t>(copies, 1); ++c) {
        pool.push_back(static_cast<NodeId>(v));
      }
    }
    return pool;
  };
  const std::vector<NodeId> out_pool = build_pool(1);
  const std::vector<NodeId> in_pool = build_pool(2);

  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 100 * num_edges + 1000;
  while (edges.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    const NodeId src = out_pool[rng.NextBounded(out_pool.size())];
    const NodeId dst = in_pool[rng.NextBounded(in_pool.size())];
    if (src == dst) continue;
    if (!seen.insert(EdgeKey(src, dst)).second) continue;
    edges.emplace_back(src, dst);
  }
  // Fill any shortfall (heavy dedup near saturation) with uniform edges.
  while (edges.size() < num_edges) {
    const auto src = static_cast<NodeId>(rng.NextBounded(num_nodes));
    const auto dst = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (src == dst) continue;
    if (!seen.insert(EdgeKey(src, dst)).second) continue;
    edges.emplace_back(src, dst);
  }
  UncertainGraphBuilder builder(num_nodes);
  VULNDS_RETURN_NOT_OK(AnnotateAndAdd(builder, edges, probs, rng));
  return builder.Build();
}

}  // namespace vulnds
