#include "gen/datasets.h"

#include <algorithm>
#include <cmath>

#include "gen/financial.h"
#include "gen/generators.h"
#include "gen/interbank.h"

namespace vulnds {

const std::vector<DatasetId>& AllDatasets() {
  static const std::vector<DatasetId> kAll = {
      DatasetId::kBitcoin, DatasetId::kFacebook, DatasetId::kWiki,
      DatasetId::kP2P,     DatasetId::kCitation, DatasetId::kInterbank,
      DatasetId::kGuarantee, DatasetId::kFraud};
  return kAll;
}

const std::vector<DatasetId>& EffectivenessDatasets() {
  static const std::vector<DatasetId> kFour = {
      DatasetId::kFraud, DatasetId::kGuarantee, DatasetId::kInterbank,
      DatasetId::kCitation};
  return kFour;
}

std::string DatasetName(DatasetId id) { return GetDatasetSpec(id).name; }

DatasetSpec GetDatasetSpec(DatasetId id) {
  switch (id) {
    case DatasetId::kBitcoin:
      return {"Bitcoin", 3783, 24186, 6.39, 888};
    case DatasetId::kFacebook:
      return {"Facebook", 4039, 88234, 21.85, 1045};
    case DatasetId::kWiki:
      return {"Wiki", 7115, 103689, 14.57, 1167};
    case DatasetId::kP2P:
      return {"P2P", 62586, 147892, 2.36, 95};
    case DatasetId::kCitation:
      return {"Citation", 2617, 2985, 1.14, 44};
    case DatasetId::kInterbank:
      return {"Interbank", 125, 249, 1.99, 47};
    case DatasetId::kGuarantee:
      return {"Guarantee", 31309, 35987, 1.15, 14362};
    case DatasetId::kFraud:
      return {"Fraud", 14242, 236706, 16.62, 85074};
  }
  return {"Unknown", 0, 0, 0.0, 0};
}

Result<UncertainGraph> MakeDataset(DatasetId id, double scale, uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  const DatasetSpec spec = GetDatasetSpec(id);
  const auto scaled = [scale](std::size_t x, std::size_t lo) {
    return std::max<std::size_t>(lo, static_cast<std::size_t>(
                                         std::llround(static_cast<double>(x) * scale)));
  };
  const std::size_t n = scaled(spec.num_nodes, 16);
  const std::size_t m = scaled(spec.num_edges, 24);

  GraphProbOptions uniform_probs;  // the paper's benchmark setting
  GraphProbOptions financial_probs;
  financial_probs.self_risk = ProbabilityModel::Beta(1.2, 4.0);
  financial_probs.diffusion = ProbabilityModel::Beta(1.5, 3.0);

  switch (id) {
    case DatasetId::kBitcoin:
      // trust network: heavy-tailed degrees.
      return PowerLawConfiguration(n, m, 2.1, scaled(spec.max_degree, 8),
                                   uniform_probs, seed);
    case DatasetId::kFacebook:
      // social network: dense preferential attachment.
      return BarabasiAlbert(n, std::max<std::size_t>(1, m / n), uniform_probs, seed);
    case DatasetId::kWiki:
      // who-votes-on-whom: heavy-tailed, directed.
      return PowerLawConfiguration(n, m, 2.0, scaled(spec.max_degree, 8),
                                   uniform_probs, seed);
    case DatasetId::kP2P: {
      // Gnutella: narrow degree spread, low clustering; a small-world ring
      // with heavy rewiring matches avg degree ~2.4 and max degree ~95.
      const std::size_t ring = std::max<std::size_t>(1, m / n);
      return WattsStrogatz(n, ring, 0.7, uniform_probs, seed);
    }
    case DatasetId::kCitation:
      // very sparse, near-tree citation graph.
      return ErdosRenyi(n, m, uniform_probs, seed);
    case DatasetId::kInterbank: {
      InterbankOptions opt;
      opt.num_banks = n;
      opt.num_loans = m;
      opt.probs = financial_probs;
      return GenerateInterbank(opt, seed);
    }
    case DatasetId::kGuarantee: {
      GuaranteeOptions opt;
      opt.num_firms = n;
      opt.num_guarantees = m;
      opt.hub_fraction =
          static_cast<double>(spec.max_degree) / static_cast<double>(spec.num_edges);
      opt.probs = financial_probs;
      return GenerateGuarantee(opt, seed);
    }
    case DatasetId::kFraud: {
      FraudOptions opt;
      // ~84% consumers / 16% merchants keeps the bipartite shape at any scale.
      opt.num_consumers = std::max<std::size_t>(8, n * 84 / 100);
      opt.num_merchants = std::max<std::size_t>(8, n - opt.num_consumers);
      opt.num_trades = m;
      opt.probs = financial_probs;
      return GenerateFraud(opt, seed);
    }
  }
  return Status::InvalidArgument("unknown dataset id");
}

}  // namespace vulnds
