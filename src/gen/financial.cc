#include "gen/financial.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/builder.h"

namespace vulnds {

Result<UncertainGraph> GenerateGuarantee(const GuaranteeOptions& options,
                                         uint64_t seed) {
  const std::size_t n = options.num_firms;
  const std::size_t m = options.num_guarantees;
  if (n < 3) return Status::InvalidArgument("need at least 3 firms");
  if (options.hub_fraction < 0.0 || options.hub_fraction > 1.0) {
    return Status::InvalidArgument("hub_fraction outside [0, 1]");
  }
  Rng rng(seed);
  UncertainGraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    VULNDS_RETURN_NOT_OK(builder.SetSelfRisk(v, options.probs.self_risk.Sample(rng)));
  }

  const NodeId hub = 0;  // the mega-guarantor
  std::unordered_set<uint64_t> seen;
  std::size_t added = 0;
  // chain_tail[i] is the current tail of chain i; extending a chain models
  // the guarantee chains the paper's case studies describe.
  std::vector<NodeId> chain_tails;
  std::size_t guard = 0;
  while (added < m && guard < 100 * m) {
    ++guard;
    NodeId src;
    NodeId dst;
    if (rng.Bernoulli(options.hub_fraction)) {
      // Hub guarantees a random firm.
      src = hub;
      dst = static_cast<NodeId>(1 + rng.NextBounded(n - 1));
    } else if (!chain_tails.empty() && rng.Bernoulli(options.chain_bias)) {
      // Extend an existing guarantee chain: tail guarantees a new firm.
      const std::size_t c = rng.NextBounded(chain_tails.size());
      src = chain_tails[c];
      dst = static_cast<NodeId>(1 + rng.NextBounded(n - 1));
      if (src != dst) chain_tails[c] = dst;
    } else {
      // Start a new chain between random firms.
      src = static_cast<NodeId>(1 + rng.NextBounded(n - 1));
      dst = static_cast<NodeId>(1 + rng.NextBounded(n - 1));
      if (src != dst) chain_tails.push_back(dst);
    }
    if (src == dst) continue;
    const uint64_t key = (static_cast<uint64_t>(src) << 32) | dst;
    if (!seen.insert(key).second) continue;
    VULNDS_RETURN_NOT_OK(builder.AddEdge(src, dst, options.probs.diffusion.Sample(rng)));
    ++added;
  }
  return builder.Build();
}

Result<UncertainGraph> GenerateFraud(const FraudOptions& options, uint64_t seed) {
  const std::size_t consumers = options.num_consumers;
  const std::size_t merchants = options.num_merchants;
  if (consumers == 0 || merchants == 0) {
    return Status::InvalidArgument("need consumers and merchants");
  }
  Rng rng(seed);
  const std::size_t n = consumers + merchants;
  UncertainGraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    VULNDS_RETURN_NOT_OK(builder.SetSelfRisk(v, options.probs.self_risk.Sample(rng)));
  }

  // Zipf-like merchant popularity: merchant rank r gets weight r^-skew.
  std::vector<double> cumulative(merchants);
  double total = 0.0;
  for (std::size_t r = 0; r < merchants; ++r) {
    total += std::pow(static_cast<double>(r + 1), -options.merchant_skew);
    cumulative[r] = total;
  }
  auto sample_merchant = [&]() -> NodeId {
    const double u = rng.NextDouble() * total;
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const auto idx = static_cast<std::size_t>(it - cumulative.begin());
    return static_cast<NodeId>(consumers + std::min(idx, merchants - 1));
  };

  // Trades are parallel-edge friendly (a consumer can trade with the same
  // merchant repeatedly), matching the multi-edge degree Table 2 reports.
  for (std::size_t i = 0; i < options.num_trades; ++i) {
    const auto consumer = static_cast<NodeId>(rng.NextBounded(consumers));
    const NodeId merchant = sample_merchant();
    VULNDS_RETURN_NOT_OK(
        builder.AddEdge(consumer, merchant, options.probs.diffusion.Sample(rng)));
  }
  return builder.Build();
}

}  // namespace vulnds
