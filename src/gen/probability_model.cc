#include "gen/probability_model.h"

#include <cmath>

namespace vulnds {

namespace {

// Marsaglia-Tsang gamma sampling for shape >= 1; boosting for shape < 1.
double SampleGamma(Rng& rng, double shape) {
  if (shape < 1.0) {
    const double u = rng.NextDoubleOpen();
    return SampleGamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.NextDoubleOpen();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

}  // namespace

double ProbabilityModel::Sample(Rng& rng) const {
  switch (kind) {
    case ProbKind::kConstant:
      return lo;
    case ProbKind::kUniform:
      return rng.NextRange(lo, hi);
    case ProbKind::kBeta: {
      const double x = SampleGamma(rng, alpha);
      const double y = SampleGamma(rng, beta);
      const double b = x / (x + y);
      return lo + (hi - lo) * b;
    }
  }
  return lo;
}

}  // namespace vulnds
