#include "gen/interbank.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/builder.h"

namespace vulnds {

Result<UncertainGraph> GenerateInterbank(const InterbankOptions& options,
                                         uint64_t seed) {
  const std::size_t n = options.num_banks;
  const std::size_t m = options.num_loans;
  if (n < 2) return Status::InvalidArgument("need at least 2 banks");
  const double max_edges = static_cast<double>(n) * (static_cast<double>(n) - 1);
  if (static_cast<double>(m) > max_edges) {
    return Status::InvalidArgument("too many loans for the bank count");
  }

  Rng rng(seed);
  // Log-normal bank sizes.
  std::vector<double> size(n);
  double total = 0.0;
  for (auto& s : size) {
    s = std::exp(options.size_sigma * rng.NextGaussian());
    total += s;
  }
  // Gravity sampling: endpoint picked proportionally to size. Rejection by
  // dedup keeps the realized edge count exact.
  std::vector<double> cumulative(n);
  double run = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    run += size[v] / total;
    cumulative[v] = run;
  }
  auto sample_bank = [&]() -> NodeId {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const auto idx = static_cast<std::size_t>(it - cumulative.begin());
    return static_cast<NodeId>(std::min(idx, n - 1));
  };

  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m);
  std::size_t stalls = 0;
  while (edges.size() < m) {
    const NodeId lender = sample_bank();
    const NodeId borrower = sample_bank();
    if (lender == borrower) continue;
    const uint64_t key = (static_cast<uint64_t>(lender) << 32) | borrower;
    if (!seen.insert(key).second) {
      // Dense core saturates quickly; occasionally fall back to uniform
      // sampling so generation terminates for any feasible edge count.
      if (++stalls > 16 * m) {
        const auto src = static_cast<NodeId>(rng.NextBounded(n));
        const auto dst = static_cast<NodeId>(rng.NextBounded(n));
        if (src == dst) continue;
        const uint64_t k2 = (static_cast<uint64_t>(src) << 32) | dst;
        if (!seen.insert(k2).second) continue;
        edges.emplace_back(src, dst);
      }
      continue;
    }
    edges.emplace_back(lender, borrower);
  }

  UncertainGraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    VULNDS_RETURN_NOT_OK(builder.SetSelfRisk(v, options.probs.self_risk.Sample(rng)));
  }
  for (const auto& [src, dst] : edges) {
    VULNDS_RETURN_NOT_OK(builder.AddEdge(src, dst, options.probs.diffusion.Sample(rng)));
  }
  return builder.Build();
}

}  // namespace vulnds
