// Generators for the two proprietary financial networks of Table 2.
//
// Guarantee: 31,309 nodes, 35,987 edges, average degree 1.15, maximum degree
// 14,362 — an extremely sparse network dominated by one mega-guarantor hub
// plus many short guarantee chains. Edges point guarantor -> borrower.
//
// Fraud: 14,242 nodes, 236,706 edges, maximum degree 85,074(*) — a bipartite
// consumer/merchant transaction graph with a tail of very heavy merchants.
// (*) the printed maximum exceeds what 236,706 simple edges allow in a
// bipartite simple graph only if parallel trades are counted; we generate
// parallel trades accordingly and report multi-edge degree.

#ifndef VULNDS_GEN_FINANCIAL_H_
#define VULNDS_GEN_FINANCIAL_H_

#include <cstdint>

#include "common/status.h"
#include "gen/generators.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Parameters of the guaranteed-loan network generator.
struct GuaranteeOptions {
  std::size_t num_firms = 31309;
  std::size_t num_guarantees = 35987;
  double hub_fraction = 0.4;   ///< fraction of edges incident to the hub
  double chain_bias = 0.6;     ///< odds a non-hub edge extends a chain
  GraphProbOptions probs;
};

/// Generates a guaranteed-loan network (guarantor -> borrower).
Result<UncertainGraph> GenerateGuarantee(const GuaranteeOptions& options,
                                         uint64_t seed);

/// Parameters of the fraud transaction network generator.
struct FraudOptions {
  std::size_t num_consumers = 12000;
  std::size_t num_merchants = 2242;
  std::size_t num_trades = 236706;
  double merchant_skew = 1.6;  ///< Zipf exponent of merchant popularity
  GraphProbOptions probs;
};

/// Generates a bipartite consumer -> merchant trade network; consumers are
/// node ids [0, num_consumers), merchants follow.
Result<UncertainGraph> GenerateFraud(const FraudOptions& options, uint64_t seed);

}  // namespace vulnds

#endif  // VULNDS_GEN_FINANCIAL_H_
