#include "common/thread_pool.h"

#include <algorithm>

namespace vulnds {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  try {
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    // The Nth spawn can fail (thread limits); without this, unwinding would
    // destroy `workers_` while it holds joinable threads and terminate the
    // process. Shut down the workers that did start, then let the caller
    // handle the exception.
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    task_cv_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = std::min(num_threads(), n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (n + threads - 1) / threads;
  // Per-call completion state: this call returns when ITS chunks finish,
  // not when the whole pool drains. Wait() waits for global idleness,
  // which is right for a task-fan owner (ServeServer::Join) but would make
  // concurrent ParallelFor callers — e.g. two serve sessions cold-detecting
  // different graphs on the shared sampling pool — convoy behind every
  // other caller's in-flight work.
  struct CallState {
    std::mutex m;
    std::condition_variable cv;
    std::size_t remaining = 0;
  } state;
  state.remaining = (n + chunk - 1) / chunk;  // chunks actually submitted
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    Submit([begin, end, &fn, &state] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      std::lock_guard<std::mutex> lock(state.m);
      if (--state.remaining == 0) state.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state.m);
  state.cv.wait(lock, [&state] { return state.remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace vulnds
