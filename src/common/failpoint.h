// Failpoints: deterministic IO fault injection for tests and chaos runs.
//
// A failpoint is a named site at an IO seam (a write(), fsync(), rename(),
// open(), read() that can fail in production). Code at the seam asks
// `fail::Check(point)` what to do; when the point is armed the call returns
// an injected outcome (EIO, ENOSPC, or a short write) which the seam turns
// into the same error path a real kernel failure would take. When nothing is
// armed anywhere in the process, Check() is a single relaxed atomic load —
// cheap enough to leave compiled into production binaries. Defining
// VULNDS_NO_FAILPOINTS compiles every check down to a constant for builds
// that want the last instruction back.
//
// Arming, programmatic or via environment:
//
//   fail::Arm("journal.sync.fsync", "once:eio");        // fail 1st check
//   fail::Arm("spill.write", "every:3:enospc");         // 3rd, 6th, 9th...
//   fail::Arm("net.send.write", "after:5:short");       // 6th onward
//   VULNDS_FAILPOINTS="journal.append.write=once:eio,spill.page_in=every:2:eio"
//
// Spec grammar: `<policy>:<outcome>` where policy is `once`, `every:N`, or
// `after:N` and outcome is `eio`, `enospc`, or `short` (short write: the
// seam writes a prefix of the buffer for real, then reports EIO — exercising
// torn-output recovery). Hits(point) counts how many times a point actually
// fired, so tests can assert an injection was reached.
//
// The registry is thread-safe; Check() may be called concurrently with
// Arm()/Disarm() from other threads.

#ifndef VULNDS_COMMON_FAILPOINT_H_
#define VULNDS_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace vulnds::fail {

/// What an armed failpoint injects at its seam.
enum class Outcome {
  kNone = 0,    // not armed / policy says pass — proceed normally
  kEio,         // behave as if the syscall failed with EIO
  kEnospc,      // behave as if the syscall failed with ENOSPC
  kShortWrite,  // write a prefix for real, then fail with EIO
};

/// The errno an injected outcome models (EIO for kShortWrite; 0 for kNone).
int InjectedErrno(Outcome outcome);

/// Canonical registered site names. Arm() accepts any string, but these are
/// the points actually threaded through the IO seams — chaos tooling arms
/// from this list.
namespace points {
inline constexpr const char* kJournalOpen = "journal.open";
inline constexpr const char* kJournalAppendWrite = "journal.append.write";
inline constexpr const char* kJournalSyncFsync = "journal.sync.fsync";
inline constexpr const char* kJournalCompactWrite = "journal.compact.write";
inline constexpr const char* kJournalCompactFsync = "journal.compact.fsync";
inline constexpr const char* kJournalCompactRename = "journal.compact.rename";
inline constexpr const char* kSnapshotWriteOpen = "snapshot.write.open";
inline constexpr const char* kSnapshotWriteData = "snapshot.write.data";
inline constexpr const char* kSnapshotWriteFsync = "snapshot.write.fsync";
inline constexpr const char* kSnapshotWriteRename = "snapshot.write.rename";
inline constexpr const char* kSnapshotRead = "snapshot.read";
inline constexpr const char* kSpillWrite = "spill.write";
inline constexpr const char* kSpillPageIn = "spill.page_in";
inline constexpr const char* kSpillManifestWrite = "spill.manifest.write";
inline constexpr const char* kNetSendWrite = "net.send.write";
}  // namespace points

/// Every canonical point name, for "arm all sites" sweeps.
const std::vector<std::string>& KnownPoints();

/// Arms `point` with `spec` (grammar above). Replaces any existing arming of
/// the same point; resets its hit count.
Status Arm(const std::string& point, const std::string& spec);

/// Disarms one point (no-op if not armed). Its hit count is retained.
void Disarm(const std::string& point);

/// Disarms every point and clears all hit counts.
void DisarmAll();

/// Times `point` actually fired (returned a non-kNone outcome).
std::uint64_t Hits(const std::string& point);

/// Parses VULNDS_FAILPOINTS ("p=spec,p=spec") and arms each entry. Returns
/// OK when the variable is unset/empty; InvalidArgument on a malformed entry
/// (earlier entries stay armed so the error is observable but deterministic).
Status ArmFromEnv();

/// Human-readable list of currently armed points ("point=spec"), sorted;
/// used to log chaos configurations for reproduction.
std::vector<std::string> ArmedPoints();

namespace detail {
extern std::atomic<int> g_armed_count;
Outcome CheckSlow(const char* point);
}  // namespace detail

/// Asks whether `point` should fail right now. One relaxed load when nothing
/// is armed process-wide.
inline Outcome Check(const char* point) {
#ifdef VULNDS_NO_FAILPOINTS
  (void)point;
  return Outcome::kNone;
#else
  if (detail::g_armed_count.load(std::memory_order_relaxed) == 0) {
    return Outcome::kNone;
  }
  return detail::CheckSlow(point);
#endif
}

}  // namespace vulnds::fail

#endif  // VULNDS_COMMON_FAILPOINT_H_
