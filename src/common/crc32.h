// Reflected CRC-32 (polynomial 0xEDB88320, as used by zip/png): the
// checksum shared by the delta journal's record frames and the spill files'
// corruption check.

#ifndef VULNDS_COMMON_CRC32_H_
#define VULNDS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace vulnds {

/// CRC-32 over `len` bytes at `data`.
uint32_t Crc32(const void* data, std::size_t len);

}  // namespace vulnds

#endif  // VULNDS_COMMON_CRC32_H_
