// Environment-variable configuration helpers for benchmarks and examples.

#ifndef VULNDS_COMMON_ENV_H_
#define VULNDS_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace vulnds {

/// Returns the value of environment variable `name`, or `def` if unset/empty.
std::string GetEnvString(const char* name, const std::string& def);

/// Returns `name` parsed as int64, or `def` if unset or unparsable.
int64_t GetEnvInt(const char* name, int64_t def);

/// Returns `name` parsed as double, or `def` if unset or unparsable.
double GetEnvDouble(const char* name, double def);

/// True iff VULNDS_BENCH_FULL is set to a non-zero value. Benchmarks use the
/// paper-scale configuration when true and a quick profile otherwise.
bool BenchFullScale();

}  // namespace vulnds

#endif  // VULNDS_COMMON_ENV_H_
