#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace vulnds {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::ToString() const {
  // Compute column widths over header + rows.
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto account = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  };
  account(header_);
  for (const auto& r : rows_) account(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      out << cell << std::string(width[c] - cell.size(), ' ');
      if (c + 1 < cols) out << "  ";
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c + 1 < cols ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string TextTable::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      const std::string& cell = r[c];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
      if (c + 1 < r.size()) out << ',';
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

}  // namespace vulnds
