// Wall-clock timing for benchmarks and harnesses.

#ifndef VULNDS_COMMON_TIMER_H_
#define VULNDS_COMMON_TIMER_H_

#include <chrono>

namespace vulnds {

/// Monotonic wall-clock stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vulnds

#endif  // VULNDS_COMMON_TIMER_H_
