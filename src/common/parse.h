// Checked number parsing on std::from_chars.
//
// Unlike std::atof / std::atoll (which return 0 on garbage and therefore turn
// typos into silently wrong runs), these helpers require the WHOLE token to
// parse and return an InvalidArgument status otherwise. Used by the CLI and
// the serve protocol.

#ifndef VULNDS_COMMON_PARSE_H_
#define VULNDS_COMMON_PARSE_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace vulnds {

/// Parses a non-negative decimal integer; rejects signs, suffixes, overflow.
Result<uint64_t> ParseUint64(std::string_view token);

/// Parses a decimal integer with optional leading '-'.
Result<int64_t> ParseInt64(std::string_view token);

/// Parses a decimal integer that must fit in int (overflow is OutOfRange,
/// never a silent truncation).
Result<int> ParseInt32(std::string_view token);

/// Parses a finite floating-point number (fixed or scientific). The
/// "inf"/"nan" spellings from_chars would accept are rejected: non-finite
/// values defeat open-interval range checks downstream (NaN compares false
/// against everything) and never make sense as options or probabilities.
Result<double> ParseDouble(std::string_view token);

/// ASCII-lowercases a token; used for case-insensitive command, method, and
/// dataset-name matching.
std::string AsciiLower(std::string token);

}  // namespace vulnds

#endif  // VULNDS_COMMON_PARSE_H_
