// LineSplitter: incremental, transport-agnostic request-line framing with a
// hard per-line byte cap.
//
// The serve protocol is one request per newline-terminated line, and every
// front end — the blocking stdin loop, a non-blocking socket connection, a
// test feeding hand-built chunks — needs the same two guarantees:
//   * a hostile client streaming bytes without a newline costs at most the
//     cap in memory and earns exactly ONE oversized event, after which the
//     stream resynchronizes at the next newline;
//   * bytes may arrive in arbitrary fragments (one recv can hold half a
//     line or twenty lines) without changing what comes out.
// This class is that shared splitter. Callers Feed() whatever bytes the
// transport produced and pop framing events with Next() until it returns
// kNone; at end-of-stream one Finish() call flushes the final unterminated
// line (getline parity: returned as a line, not discarded).
//
// A "\r\n" terminator is treated as "\n" (one trailing CR is stripped), so
// telnet-style clients work; a CR anywhere else is payload. The cap counts
// raw bytes before CR stripping.
//
// Not thread-safe: one splitter belongs to one stream.

#ifndef VULNDS_COMMON_LINE_SPLITTER_H_
#define VULNDS_COMMON_LINE_SPLITTER_H_

#include <cstddef>
#include <deque>
#include <string>

namespace vulnds {

class LineSplitter {
 public:
  /// Framing events, in stream order.
  enum class Event {
    kNone,       ///< no complete line buffered; Feed more (or Finish)
    kLine,       ///< *line holds the next complete line, terminator stripped
    kOversized,  ///< a line exceeded the cap; its bytes were discarded
  };

  /// `max_line_bytes` is the inclusive cap on one line's payload (the
  /// terminator is not counted): a line of exactly the cap passes, one more
  /// byte trips kOversized.
  explicit LineSplitter(std::size_t max_line_bytes);

  /// Appends one chunk of transport bytes. Complete lines become queued
  /// events; at most cap + chunk bytes are ever resident.
  void Feed(const char* data, std::size_t size);

  /// Pops the next framing event. On kLine, *line is overwritten with the
  /// payload; on kOversized and kNone it is left untouched.
  Event Next(std::string* line);

  /// End-of-stream: flushes the final unterminated line (kLine), reports a
  /// final uncapped flood (kOversized), or kNone when nothing was pending.
  /// Only meaningful after Next() has drained to kNone; resets the partial
  /// state so the splitter can be reused on a fresh stream.
  Event Finish(std::string* line);

  /// True while an incomplete line (or an oversized discard) is pending —
  /// the stream is mid-request, which is what read (vs idle) timeouts key
  /// on.
  bool mid_line() const { return !partial_.empty() || discarding_; }

  /// Bytes of the current incomplete line held in memory (<= the cap).
  std::size_t partial_bytes() const { return partial_.size(); }

 private:
  struct Pending {
    bool oversized = false;
    std::string line;
  };

  std::size_t max_line_bytes_;
  std::deque<Pending> ready_;
  std::string partial_;
  bool discarding_ = false;  ///< inside an oversized line, seeking '\n'
};

}  // namespace vulnds

#endif  // VULNDS_COMMON_LINE_SPLITTER_H_
