#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace vulnds {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  // (x + 0.5) / 2^53 lies strictly inside (0, 1).
  return (static_cast<double>(NextU64() >> 11) + 0.5) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  // NaN compares false against everything, so without this check it would
  // fall through to NextDouble() < NaN — returning false but consuming a
  // draw, silently shifting every later coin in the stream. Return false
  // without touching the state instead.
  if (std::isnan(p)) return false;
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  unsigned __int128 m =
      static_cast<unsigned __int128>(NextU64()) * static_cast<unsigned __int128>(bound);
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(NextU64()) *
          static_cast<unsigned __int128>(bound);
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextRange(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::NextGaussian() {
  // Box–Muller; NextDoubleOpen avoids log(0).
  const double u1 = NextDoubleOpen();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork(uint64_t index) const {
  // Derive the child seed from (parent seed, index) only, independent of the
  // parent's draw history, so parallel work is schedule-invariant.
  return Rng(Mix64(seed_ ^ Mix64(index + 0xA511E9B3CD8F3B27ULL)));
}

}  // namespace vulnds
