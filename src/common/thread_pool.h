// Minimal thread pool with a deterministic parallel-for.
//
// ParallelFor partitions [0, n) into static chunks, so the set of indices
// each worker receives is a pure function of (n, num_threads). Combined with
// Rng::Fork(index) per item, parallel sampling runs produce bit-identical
// results to serial runs.

#ifndef VULNDS_COMMON_THREAD_POOL_H_
#define VULNDS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vulnds {

/// Fixed-size worker pool.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; tasks may run in any order.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for every i in [0, n) across the pool and blocks until done.
  /// Chunking is static, so work assignment is deterministic in n. Blocks
  /// only on this call's own chunks (unlike Wait), so concurrent callers
  /// sharing one pool never convoy behind each other's work.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (created on first use).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers
  std::condition_variable done_cv_;   // signals Wait()
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace vulnds

#endif  // VULNDS_COMMON_THREAD_POOL_H_
