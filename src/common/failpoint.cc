#include "common/failpoint.h"

#include <cerrno>
#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/env.h"

namespace vulnds::fail {

int InjectedErrno(Outcome outcome) {
  switch (outcome) {
    case Outcome::kNone:
      return 0;
    case Outcome::kEnospc:
      return ENOSPC;
    case Outcome::kEio:
    case Outcome::kShortWrite:
      return EIO;
  }
  return EIO;
}

const std::vector<std::string>& KnownPoints() {
  static const std::vector<std::string> kAll = {
      points::kJournalOpen,          points::kJournalAppendWrite,
      points::kJournalSyncFsync,     points::kJournalCompactWrite,
      points::kJournalCompactFsync,  points::kJournalCompactRename,
      points::kSnapshotWriteOpen,    points::kSnapshotWriteData,
      points::kSnapshotWriteFsync,   points::kSnapshotWriteRename,
      points::kSnapshotRead,         points::kSpillWrite,
      points::kSpillPageIn,          points::kSpillManifestWrite,
      points::kNetSendWrite,
  };
  return kAll;
}

namespace {

enum class Policy { kOnce, kEvery, kAfter };

struct PointState {
  Policy policy = Policy::kOnce;
  std::uint64_t n = 1;  // period for kEvery, pass count for kAfter
  Outcome outcome = Outcome::kEio;
  std::uint64_t checks = 0;  // times Check reached this point while armed
  std::uint64_t hits = 0;    // times it fired
  bool disarmed = false;     // kOnce after firing: keeps hit count visible
  std::string spec;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, PointState> points;
};

Registry& TheRegistry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

bool ParseOutcome(const std::string& token, Outcome* out) {
  if (token == "eio") {
    *out = Outcome::kEio;
  } else if (token == "enospc") {
    *out = Outcome::kEnospc;
  } else if (token == "short") {
    *out = Outcome::kShortWrite;
  } else {
    return false;
  }
  return true;
}

bool ParseCount(const std::string& token, std::uint64_t* out) {
  if (token.empty() || token.size() > 18) return false;
  std::uint64_t v = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// Parses "<policy>:<outcome>" into `state`; returns false on bad grammar.
bool ParseSpec(const std::string& spec, PointState* state) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() == 2 && parts[0] == "once") {
    state->policy = Policy::kOnce;
    state->n = 1;
  } else if (parts.size() == 3 && parts[0] == "every") {
    state->policy = Policy::kEvery;
    if (!ParseCount(parts[1], &state->n) || state->n == 0) return false;
  } else if (parts.size() == 3 && parts[0] == "after") {
    state->policy = Policy::kAfter;
    if (!ParseCount(parts[1], &state->n)) return false;
  } else {
    return false;
  }
  return ParseOutcome(parts.back(), &state->outcome);
}

}  // namespace

namespace detail {

std::atomic<int> g_armed_count{0};

Outcome CheckSlow(const char* point) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it == reg.points.end() || it->second.disarmed) return Outcome::kNone;
  PointState& state = it->second;
  ++state.checks;
  bool fire = false;
  switch (state.policy) {
    case Policy::kOnce:
      fire = true;
      break;
    case Policy::kEvery:
      fire = state.checks % state.n == 0;
      break;
    case Policy::kAfter:
      fire = state.checks > state.n;
      break;
  }
  if (!fire) return Outcome::kNone;
  ++state.hits;
  if (state.policy == Policy::kOnce) {
    state.disarmed = true;
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return state.outcome;
}

}  // namespace detail

Status Arm(const std::string& point, const std::string& spec) {
  if (point.empty() || point.find('=') != std::string::npos ||
      point.find(',') != std::string::npos) {
    return Status::InvalidArgument("bad failpoint name '" + point + "'");
  }
  PointState state;
  if (!ParseSpec(spec, &state)) {
    return Status::InvalidArgument("bad failpoint spec '" + spec + "' for '" +
                                   point +
                                   "' (want once:|every:N:|after:N: followed "
                                   "by eio|enospc|short)");
  }
  state.spec = spec;
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto [it, inserted] = reg.points.try_emplace(point);
  if (inserted || it->second.disarmed) {
    detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  it->second = std::move(state);
  return Status::OK();
}

void Disarm(const std::string& point) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it == reg.points.end() || it->second.disarmed) return;
  it->second.disarmed = true;
  detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, state] : reg.points) {
    if (!state.disarmed) {
      detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  reg.points.clear();
}

std::uint64_t Hits(const std::string& point) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.hits;
}

Status ArmFromEnv() {
  const std::string raw = GetEnvString("VULNDS_FAILPOINTS", "");
  if (raw.empty()) return Status::OK();
  std::size_t start = 0;
  while (start <= raw.size()) {
    std::size_t comma = raw.find(',', start);
    if (comma == std::string::npos) comma = raw.size();
    const std::string entry = raw.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      return Status::InvalidArgument("bad VULNDS_FAILPOINTS entry '" + entry +
                                     "' (want point=spec)");
    }
    const Status armed = Arm(entry.substr(0, eq), entry.substr(eq + 1));
    if (!armed.ok()) return armed;
  }
  return Status::OK();
}

std::vector<std::string> ArmedPoints() {
  Registry& reg = TheRegistry();
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    out.reserve(reg.points.size());
    for (const auto& [name, state] : reg.points) {
      if (!state.disarmed) out.push_back(name + "=" + state.spec);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vulnds::fail
