#include "common/line_splitter.h"

#include <utility>

namespace vulnds {

LineSplitter::LineSplitter(std::size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes) {}

void LineSplitter::Feed(const char* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    const char c = data[i];
    if (discarding_) {
      // The oversized event is queued at the resync newline, so it sits in
      // stream order relative to the lines around it and fires exactly once.
      if (c == '\n') {
        discarding_ = false;
        ready_.push_back(Pending{true, {}});
      }
      continue;
    }
    if (c == '\n') {
      if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
      ready_.push_back(Pending{false, std::move(partial_)});
      partial_.clear();
      continue;
    }
    if (partial_.size() >= max_line_bytes_) {
      partial_.clear();
      partial_.shrink_to_fit();  // drop the cap-sized hostile allocation
      discarding_ = true;
      continue;
    }
    partial_.push_back(c);
  }
}

LineSplitter::Event LineSplitter::Next(std::string* line) {
  if (ready_.empty()) return Event::kNone;
  Pending next = std::move(ready_.front());
  ready_.pop_front();
  if (next.oversized) return Event::kOversized;
  *line = std::move(next.line);
  return Event::kLine;
}

LineSplitter::Event LineSplitter::Finish(std::string* line) {
  if (discarding_) {
    discarding_ = false;
    return Event::kOversized;
  }
  if (!partial_.empty()) {
    *line = std::move(partial_);
    partial_.clear();
    return Event::kLine;
  }
  return Event::kNone;
}

}  // namespace vulnds
