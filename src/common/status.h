// Status / Result<T>: the error model used across the public API.
//
// Follows the Arrow/RocksDB idiom: fallible operations return a Status (or a
// Result<T> carrying either a value or a Status) instead of throwing. This
// keeps the library usable from exception-free builds and makes every failure
// path explicit at call sites.

#ifndef VULNDS_COMMON_STATUS_H_
#define VULNDS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace vulnds {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kInternal = 7,
};

/// Human-readable name of a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation; error statuses carry a message that is
/// propagated verbatim to the caller. Statuses are cheap to copy and compare.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument error with the given message.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns an OutOfRange error with the given message.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns a NotFound error with the given message.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an AlreadyExists error with the given message.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Returns an IOError with the given message.
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Returns a NotImplemented error with the given message.
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  /// Returns an Internal error with the given message.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }
  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogue of arrow::Result.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor): mirrors Arrow.
      : value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  Status status() const { return value_.has_value() ? Status::OK() : status_; }

  /// Borrowing accessors; require ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// Moves the value out of the result; requires ok().
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK status to the caller (Arrow's ARROW_RETURN_NOT_OK).
#define VULNDS_RETURN_NOT_OK(expr)          \
  do {                                      \
    ::vulnds::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace vulnds

#endif  // VULNDS_COMMON_STATUS_H_
