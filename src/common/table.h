// Plain-text and CSV table rendering for benchmark harnesses.
//
// Every table/figure harness in bench/ prints its rows through TextTable so
// the output matches the row/column structure the paper reports.

#ifndef VULNDS_COMMON_TABLE_H_
#define VULNDS_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace vulnds {

/// Column-aligned text table with an optional CSV rendering.
class TextTable {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row (may have fewer cells than the header).
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with `precision` digits.
  static std::string Num(double value, int precision = 5);

  /// Renders the table with aligned columns and a rule under the header.
  std::string ToString() const;

  /// Renders the table as RFC-4180-ish CSV (quotes cells containing commas).
  std::string ToCsv() const;

  /// Number of data rows.
  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vulnds

#endif  // VULNDS_COMMON_TABLE_H_
