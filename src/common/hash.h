// Stateless hashing utilities for sketches.
//
// The bottom-k sketch (Cohen & Kaplan) requires a "truly random" hash mapping
// item identifiers into (0, 1). UniformHash provides a seeded, stateless,
// collision-negligible approximation built on the splitmix64 finalizer.

#ifndef VULNDS_COMMON_HASH_H_
#define VULNDS_COMMON_HASH_H_

#include <cstdint>

namespace vulnds {

/// Seeded stateless hash family: item id -> uniform double in (0, 1).
///
/// Two UniformHash instances with different seeds behave as independent
/// members of the family; the same (seed, id) pair always maps to the same
/// value.
class UniformHash {
 public:
  /// Creates a member of the hash family identified by `seed`.
  explicit UniformHash(uint64_t seed) : seed_(seed) {}

  /// Hashes `id` to a 64-bit value.
  uint64_t Hash64(uint64_t id) const;

  /// Hashes `id` to a double strictly inside (0, 1).
  double HashUnit(uint64_t id) const;

  /// The seed identifying this family member.
  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

}  // namespace vulnds

#endif  // VULNDS_COMMON_HASH_H_
