#include "common/crc32.h"

namespace vulnds {

uint32_t Crc32(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= bytes[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace vulnds
