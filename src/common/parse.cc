#include "common/parse.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <string>
#include <type_traits>

namespace vulnds {

namespace {

template <typename T>
Result<T> ParseWith(std::string_view token, const char* kind) {
  T value{};
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange(std::string(kind) + " out of range: '" +
                              std::string(token) + "'");
  }
  if (ec != std::errc() || ptr != last || token.empty()) {
    return Status::InvalidArgument("not a valid " + std::string(kind) + ": '" +
                                   std::string(token) + "'");
  }
  if constexpr (std::is_floating_point_v<T>) {
    // from_chars accepts "inf"/"nan" spellings, but no option or probability
    // in this codebase is meaningfully non-finite — and NaN slides through
    // open-interval validations written as `x <= 0 || x >= 1` (every
    // comparison with NaN is false), so it must die at the parse boundary.
    if (!std::isfinite(value)) {
      return Status::InvalidArgument("non-finite " + std::string(kind) + ": '" +
                                     std::string(token) + "'");
    }
  }
  return value;
}

}  // namespace

Result<uint64_t> ParseUint64(std::string_view token) {
  return ParseWith<uint64_t>(token, "non-negative integer");
}

Result<int64_t> ParseInt64(std::string_view token) {
  return ParseWith<int64_t>(token, "integer");
}

Result<int> ParseInt32(std::string_view token) {
  return ParseWith<int>(token, "integer");
}

Result<double> ParseDouble(std::string_view token) {
  return ParseWith<double>(token, "number");
}

std::string AsciiLower(std::string token) {
  for (char& c : token) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return token;
}

}  // namespace vulnds
