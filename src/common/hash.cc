#include "common/hash.h"

#include "common/rng.h"

namespace vulnds {

uint64_t UniformHash::Hash64(uint64_t id) const {
  // Two mixing rounds with seed injection between them; passes basic
  // avalanche checks (see tests/common/hash_test.cc).
  return Mix64(Mix64(id + 0x9E3779B97F4A7C15ULL) ^ seed_);
}

double UniformHash::HashUnit(uint64_t id) const {
  return (static_cast<double>(Hash64(id) >> 11) + 0.5) * 0x1.0p-53;
}

}  // namespace vulnds
