// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library draws from Rng, a xoshiro256++
// generator seeded through splitmix64. Sub-streams derived with
// Rng::Fork(index) are statistically independent and depend only on
// (seed, index), which makes parallel sampling bit-identical to serial
// sampling regardless of thread count.

#ifndef VULNDS_COMMON_RNG_H_
#define VULNDS_COMMON_RNG_H_

#include <cstdint>

namespace vulnds {

/// splitmix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for stateless per-index hashing.
uint64_t SplitMix64(uint64_t* state);

/// One-shot splitmix64 finalizer applied to `x` (stateless mixing).
uint64_t Mix64(uint64_t x);

/// xoshiro256++ generator with convenience distributions.
///
/// Not thread-safe; create one Rng per thread (see Fork).
class Rng {
 public:
  /// Seeds the generator; the full 256-bit state is expanded from `seed`
  /// through splitmix64 so that nearby seeds give unrelated streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextU64();

  /// Returns a uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Returns a uniform double in the open interval (0, 1); never 0.
  double NextDoubleOpen();

  /// Returns true with probability `p` (clamped to [0, 1]). NaN
  /// deterministically returns false without consuming a draw, so a
  /// poisoned probability can never flip a coin or shift the stream.
  bool Bernoulli(double p);

  /// Returns a uniform integer in [0, bound); bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [lo, hi).
  double NextRange(double lo, double hi);

  /// Returns a standard normal variate (Box–Muller, no caching).
  double NextGaussian();

  /// Returns an independent generator for sub-stream `index`; deterministic
  /// in (this generator's seed, index) and independent of draw history.
  Rng Fork(uint64_t index) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;  // retained so Fork is history-independent
};

}  // namespace vulnds

#endif  // VULNDS_COMMON_RNG_H_
