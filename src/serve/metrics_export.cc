#include "serve/metrics_export.h"

namespace vulnds::serve {

std::string RenderServeMetrics(QueryEngine& engine, const ServerStats* server) {
  engine.RefreshMetrics();
  obs::MetricRegistry* registry = engine.registry();
  if (server != nullptr) {
    registry
        ->GetCounter("vulnds_server_sessions_started_total",
                     "Sessions accepted by the serve front")
        ->Set(server->sessions_started.load(std::memory_order_relaxed));
    registry
        ->GetCounter("vulnds_server_sessions_finished_total",
                     "Sessions that ran to quit or EOF")
        ->Set(server->sessions_finished.load(std::memory_order_relaxed));
    registry
        ->GetCounter("vulnds_server_requests_total",
                     "Request lines processed across all sessions")
        ->Set(server->requests.load(std::memory_order_relaxed));
    registry
        ->GetCounter("vulnds_server_errors_total",
                     "err responses emitted across all sessions")
        ->Set(server->errors.load(std::memory_order_relaxed));
    registry
        ->GetCounter("vulnds_server_updates_total",
                     "Accepted update verbs (commits included)")
        ->Set(server->updates.load(std::memory_order_relaxed));
  }
  return registry->RenderPrometheus();
}

}  // namespace vulnds::serve
