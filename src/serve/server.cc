#include "serve/server.h"

#include <istream>
#include <ostream>
#include <string>

#include "serve/session.h"

namespace vulnds::serve {

ServeLoopStats RunServeLoop(std::istream& in, std::ostream& out,
                            QueryEngine& engine, UpdateBackend* updates,
                            ServerStats* server) {
  if (server != nullptr) {
    server->sessions_started.fetch_add(1, std::memory_order_relaxed);
  }
  ServeSession session(&engine, updates, server);
  DriveSession(session, in, out);
  if (server != nullptr) {
    server->sessions_finished.fetch_add(1, std::memory_order_relaxed);
  }
  return session.stats();
}

}  // namespace vulnds::serve
