#include "serve/server.h"

#include <istream>
#include <ostream>
#include <string>

#include "serve/session.h"

namespace vulnds::serve {

ServeLoopStats RunServeLoop(std::istream& in, std::ostream& out,
                            QueryEngine& engine, UpdateBackend* updates) {
  ServeSession session(&engine, updates);
  DriveSession(session, in, out);
  return session.stats();
}

}  // namespace vulnds::serve
