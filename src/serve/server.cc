#include "serve/server.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <string>

#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "serve/protocol.h"
#include "vulnds/ground_truth.h"

namespace vulnds::serve {

namespace {

void Err(std::ostream& out, ServeLoopStats* stats, const std::string& message) {
  ++stats->errors;
  out << "err " << message << "\n";
}

void HandleLoad(const ServeRequest& r, QueryEngine& engine, std::ostream& out,
                ServeLoopStats* stats) {
  const Status st = engine.catalog().Load(r.name, r.path);
  if (!st.ok()) {
    Err(out, stats, st.ToString());
    return;
  }
  const auto entry = engine.catalog().Get(r.name);
  if (entry == nullptr) {
    // A concurrent evict (or capacity eviction) can race the load-then-get.
    Err(out, stats, "graph '" + r.name + "' was evicted during load");
    return;
  }
  out << "ok loaded " << r.name << " nodes=" << entry->graph.num_nodes()
      << " edges=" << entry->graph.num_edges() << " source=" << r.path << "\n";
}

void HandleSave(const ServeRequest& r, QueryEngine& engine, std::ostream& out,
                ServeLoopStats* stats) {
  const auto entry = engine.catalog().Get(r.name);
  if (entry == nullptr) {
    Err(out, stats, "graph '" + r.name + "' is not in the catalog");
    return;
  }
  const Status st = WriteGraphFile(entry->graph, r.path, r.format);
  if (!st.ok()) {
    Err(out, stats, st.ToString());
    return;
  }
  out << "ok saved " << r.name << " path=" << r.path << " format="
      << (r.format == GraphFileFormat::kBinary ? "binary" : "text") << "\n";
}

void HandleDetect(const ServeRequest& r, QueryEngine& engine, std::ostream& out,
                  ServeLoopStats* stats) {
  Result<DetectResponse> response = engine.Detect(r.name, r.options);
  if (!response.ok()) {
    Err(out, stats, response.status().ToString());
    return;
  }
  const DetectionResult& result = response->result;
  out << "ok detect " << r.name << " method=" << MethodName(r.options.method)
      << " k=" << r.options.k << " cached=" << (response->from_cache ? 1 : 0)
      << " time=" << FormatRoundTrip(response->seconds)
      << " samples=" << result.samples_processed << "/" << result.samples_budget
      << " verified=" << result.verified_count << "\n";
  for (std::size_t i = 0; i < result.topk.size(); ++i) {
    out << (i + 1) << ' ' << result.topk[i] << ' '
        << FormatRoundTrip(result.scores[i]) << "\n";
  }
  out << ".\n";
}

void HandleTruth(const ServeRequest& r, QueryEngine& engine, std::ostream& out,
                 ServeLoopStats* stats) {
  const std::size_t samples =
      r.samples == 0 ? kPaperGroundTruthSamples : r.samples;
  Result<TruthResponse> response = engine.Truth(r.name, samples, r.seed);
  if (!response.ok()) {
    Err(out, stats, response.status().ToString());
    return;
  }
  out << "ok truth " << r.name << " k=" << r.k << " samples=" << samples
      << " cached=" << (response->from_cache ? 1 : 0)
      << " time=" << FormatRoundTrip(response->seconds) << "\n";
  std::size_t rank = 1;
  for (const NodeId v : response->truth.TopK(r.k)) {
    out << rank++ << ' ' << v << ' '
        << FormatRoundTrip(response->truth.probabilities[v]) << "\n";
  }
  out << ".\n";
}

void HandleStats(const ServeRequest& r, QueryEngine& engine, std::ostream& out,
                 ServeLoopStats* stats) {
  if (r.name.empty()) {
    const EngineStats s = engine.stats();
    const CatalogStats c = engine.catalog().stats();
    out << "ok stats engine\n";
    out << "detect_queries=" << s.detect_queries << "\n";
    out << "truth_queries=" << s.truth_queries << "\n";
    out << "cache_hits=" << s.result_cache.hits << "\n";
    out << "cache_misses=" << s.result_cache.misses << "\n";
    out << "cache_hit_rate=" << FormatRoundTrip(s.result_cache.HitRate()) << "\n";
    out << "catalog_size=" << engine.catalog().size() << "\n";
    out << "catalog_evictions=" << c.evictions << "\n";
    // The whole session state in one parseable line: loop counters (the
    // stats request itself is already counted) plus the result cache. The
    // bare hits/misses keys keep this line's vocabulary disjoint from the
    // per-counter cache_* lines above.
    out << "serve requests=" << stats->requests << " errors=" << stats->errors
        << " updates=" << stats->updates << " hits=" << s.result_cache.hits
        << " misses=" << s.result_cache.misses
        << " evictions=" << s.result_cache.evictions << "\n";
    out << ".\n";
    return;
  }
  const auto entry = engine.catalog().Get(r.name);
  if (entry == nullptr) {
    Err(out, stats, "graph '" + r.name + "' is not in the catalog");
    return;
  }
  const GraphStats s = ComputeStats(entry->graph);
  out << "ok stats " << r.name << "\n";
  out << "nodes=" << s.num_nodes << "\n";
  out << "edges=" << s.num_edges << "\n";
  out << "avg_degree=" << FormatRoundTrip(s.avg_degree) << "\n";
  out << "max_degree=" << s.max_degree << "\n";
  out << "source=" << entry->source << "\n";
  {
    std::lock_guard<std::mutex> lock(entry->context_mu);
    out << "context_reuse_hits=" << entry->context.reuse_hits << "\n";
    out << "context_reuse_misses=" << entry->context.reuse_misses << "\n";
  }
  out << ".\n";
}

void HandleCatalog(QueryEngine& engine, std::ostream& out) {
  out << "ok catalog size=" << engine.catalog().size() << "\n";
  for (const std::string& name : engine.catalog().Names()) {
    out << name << "\n";
  }
  out << ".\n";
}

void HandleEvict(const ServeRequest& r, QueryEngine& engine, std::ostream& out,
                 ServeLoopStats* stats) {
  if (engine.catalog().Evict(r.name)) {
    out << "ok evicted " << r.name << "\n";
  } else {
    Err(out, stats, "graph '" + r.name + "' is not in the catalog");
  }
}

// True when the update verbs can be served; emits the error otherwise.
bool RequireUpdates(UpdateBackend* updates, std::ostream& out,
                    ServeLoopStats* stats) {
  if (updates != nullptr) return true;
  Err(out, stats, "dynamic updates are not enabled in this session");
  return false;
}

void HandleStageUpdate(const ServeRequest& r, UpdateBackend& updates,
                       std::ostream& out, ServeLoopStats* stats) {
  const char* verb = r.command == ServeCommand::kAddEdge   ? "addedge"
                     : r.command == ServeCommand::kDelEdge ? "deledge"
                                                           : "setprob";
  Result<UpdateAck> ack = [&]() -> Result<UpdateAck> {
    switch (r.command) {
      case ServeCommand::kAddEdge:
        return updates.AddEdge(r.name, r.src, r.dst, r.prob);
      case ServeCommand::kDelEdge:
        return updates.DeleteEdge(r.name, r.src, r.dst);
      default:
        return updates.SetProb(r.name, r.src, r.dst, r.prob);
    }
  }();
  if (!ack.ok()) {
    Err(out, stats, ack.status().ToString());
    return;
  }
  ++stats->updates;
  out << "ok " << verb << ' ' << r.name << ' ' << r.src << ' ' << r.dst;
  if (r.command != ServeCommand::kDelEdge) {
    out << " p=" << FormatRoundTrip(r.prob);
  }
  out << " pending=" << ack->pending << " live_edges=" << ack->live_edges
      << "\n";
}

void HandleCommit(const ServeRequest& r, UpdateBackend& updates,
                  std::ostream& out, ServeLoopStats* stats) {
  Result<CommitInfo> info = updates.Commit(r.name);
  if (!info.ok()) {
    Err(out, stats, info.status().ToString());
    return;
  }
  ++stats->updates;
  out << "ok committed " << info->versioned_name << " nodes=" << info->nodes
      << " edges=" << info->edges << " ops=" << info->ops
      << " touched=" << info->touched_nodes << " carried=" << info->carried
      << " dropped=" << info->dropped
      << " time=" << FormatRoundTrip(info->seconds) << "\n";
}

void HandleVersions(const ServeRequest& r, UpdateBackend& updates,
                    std::ostream& out, ServeLoopStats* stats) {
  Result<std::vector<VersionInfo>> versions = updates.Versions(r.name);
  if (!versions.ok()) {
    Err(out, stats, versions.status().ToString());
    return;
  }
  out << "ok versions " << r.name << " count=" << versions->size() << "\n";
  for (const VersionInfo& v : *versions) {
    out << "v" << v.version << ' ' << v.catalog_name << " nodes=" << v.nodes
        << " edges=" << v.edges << " ops=" << v.ops << "\n";
  }
  out << ".\n";
}

}  // namespace

ServeLoopStats RunServeLoop(std::istream& in, std::ostream& out,
                            QueryEngine& engine, UpdateBackend* updates) {
  ServeLoopStats stats;
  std::string line;
  while (std::getline(in, line)) {
    Result<ServeRequest> request = ParseServeRequest(line);
    if (!request.ok()) {
      ++stats.requests;
      Err(out, &stats, request.status().message());
      out.flush();
      continue;
    }
    if (request->command == ServeCommand::kNone) continue;
    ++stats.requests;
    switch (request->command) {
      case ServeCommand::kQuit:
        out << "ok bye\n";
        out.flush();
        return stats;
      case ServeCommand::kLoad:
        HandleLoad(*request, engine, out, &stats);
        break;
      case ServeCommand::kSave:
        HandleSave(*request, engine, out, &stats);
        break;
      case ServeCommand::kDetect:
        HandleDetect(*request, engine, out, &stats);
        break;
      case ServeCommand::kTruth:
        HandleTruth(*request, engine, out, &stats);
        break;
      case ServeCommand::kStats:
        HandleStats(*request, engine, out, &stats);
        break;
      case ServeCommand::kCatalog:
        HandleCatalog(engine, out);
        break;
      case ServeCommand::kEvict:
        HandleEvict(*request, engine, out, &stats);
        break;
      case ServeCommand::kAddEdge:
      case ServeCommand::kDelEdge:
      case ServeCommand::kSetProb:
        if (RequireUpdates(updates, out, &stats)) {
          HandleStageUpdate(*request, *updates, out, &stats);
        }
        break;
      case ServeCommand::kCommit:
        if (RequireUpdates(updates, out, &stats)) {
          HandleCommit(*request, *updates, out, &stats);
        }
        break;
      case ServeCommand::kVersions:
        if (RequireUpdates(updates, out, &stats)) {
          HandleVersions(*request, *updates, out, &stats);
        }
        break;
      case ServeCommand::kNone:
        break;
    }
    out.flush();
  }
  return stats;
}

}  // namespace vulnds::serve
