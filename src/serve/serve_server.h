// ServeServer: multiplexes many concurrent serve sessions over one shared
// QueryEngine / UpdateBackend.
//
// Each session is a ServeSession (session.h) fed from its own stream pair;
// the server only adds (a) the threads the sessions run on and (b) the
// atomically-aggregated ServerStats every session reports into. The engine
// underneath is thread-safe and batches same-graph queries (query_engine.h),
// so sessions share warm per-graph state without serializing the process on
// one lock.
//
// Threading. Sessions are long-lived blocking loops, so they must never run
// on the engine's sampling pool: a detect inside a session fans out on that
// pool and waits for it, and a pool whose workers are themselves blocked
// sessions would deadlock. Pass a dedicated session pool, or pass nullptr
// and the server spawns one thread per submitted session. If the session
// pool is the engine's sampling pool, the server falls back to dedicated
// threads rather than deadlock.

#ifndef VULNDS_SERVE_SERVE_SERVER_H_
#define VULNDS_SERVE_SERVE_SERVER_H_

#include <iosfwd>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "serve/query_engine.h"
#include "serve/session.h"
#include "serve/update_backend.h"

namespace vulnds::serve {

class ServeServer {
 public:
  /// `updates` may be nullptr (update verbs answer errors). `session_pool`
  /// carries submitted sessions; nullptr means one dedicated thread per
  /// session. It must not be the engine's sampling pool (see file comment);
  /// if it is, dedicated threads are used instead.
  explicit ServeServer(QueryEngine* engine, UpdateBackend* updates = nullptr,
                       ThreadPool* session_pool = nullptr);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Returns a session wired to this server's shared engine, backend and
  /// stats. For callers that drive requests themselves (benchmarks, future
  /// socket fronts that own their read loop).
  ServeSession NewSession();

  /// Runs one full session over the stream pair on the calling thread,
  /// blocking until `quit` or EOF. Safe to call concurrently from many
  /// threads; this is the body Submit schedules.
  ServeLoopStats ServeStream(std::istream& in, std::ostream& out);

  /// Schedules a session over the stream pair; both streams must stay alive
  /// until Join() returns. Sessions run concurrently up to the session
  /// pool's width (or truly concurrently on dedicated threads).
  void Submit(std::istream* in, std::ostream* out);

  /// Blocks until every submitted session has finished.
  void Join();

  ServerStatsSnapshot stats() const;

 private:
  QueryEngine* engine_;
  UpdateBackend* updates_;
  ThreadPool* session_pool_;  // nullptr => dedicated threads
  ServerStats stats_;

  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
};

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_SERVE_SERVER_H_
