// GraphCatalog: named, immutable uncertain-graph snapshots for serving.
//
// The batch CLI re-reads and re-parses the graph on every invocation; the
// catalog instead loads a snapshot once (text or binary, auto-detected) and
// hands out shared references, so a query only pays graph I/O the first time
// a name is touched. Each entry carries the per-graph DetectionContext the
// query engine warms across requests (bounds, candidate reductions, bottom-k
// sample orders); evicting or reloading a name drops that derived state with
// the graph, which keeps the invariant "context belongs to exactly one
// graph" trivially true.
//
// Sharding. The catalog is split into a power-of-two number of name-hashed
// shards, each with its own mutex, LRU list, byte accounting and counters,
// so concurrent sessions touching unrelated graphs never contend on
// load/evict: a Get takes exactly one shard lock, and snapshot parsing
// happens outside every lock. The count capacity and byte budget are
// global: every touch stamps the entry from one shared atomic clock, and
// the eviction loop removes the globally least-recently-stamped entry
// (found by peeking each shard's LRU tail), so eviction order is identical
// to the former single-shard catalog. Under concurrent touches the victim
// choice is as precise as any external observer can distinguish.
//
// Entries are reference-counted: Evict removes a graph from the catalog, but
// queries already holding the entry finish safely on the old snapshot.
// All catalog methods are thread-safe.

#ifndef VULNDS_SERVE_GRAPH_CATALOG_H_
#define VULNDS_SERVE_GRAPH_CATALOG_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "vulnds/detector.h"

namespace vulnds::serve {

/// One catalog entry: an immutable graph plus its mutable derived state.
struct CatalogEntry {
  std::string name;
  std::string source;     ///< file path, or "<memory>" for Put()
  UncertainGraph graph;   ///< immutable after construction

  /// Catalog-unique id, fresh on every load/reload. Result caches key on it
  /// so entries cached against a replaced or evicted snapshot can never be
  /// served for the new one.
  uint64_t uid = 0;

  /// Approximate resident footprint of `graph` (CSR arrays + edge list),
  /// charged against the catalog's byte budget. Fixed at insert time.
  std::size_t bytes = 0;

  /// Warm per-graph intermediates; hold `context_mu` while touching it.
  DetectionContext context;
  std::mutex context_mu;
};

/// Counters exposed through `stats <name>` / benches. Used both as the
/// per-shard counters (guarded by that shard's mutex) and as the aggregate
/// over all shards (summed shard by shard, so concurrent traffic may be
/// counted in at most one shard's snapshot — each counter is exact, the
/// cross-shard sum is a moment-in-time aggregate, never torn).
struct CatalogStats {
  std::size_t loads = 0;      ///< successful Load/Put calls
  std::size_t reloads = 0;    ///< loads that replaced an existing name
  std::size_t evictions = 0;  ///< capacity + budget + explicit evictions
  std::size_t hits = 0;       ///< Get() found the name
  std::size_t misses = 0;     ///< Get() did not
};

/// Per-shard detail for `stats` / debugging.
struct CatalogShardInfo {
  std::size_t index = 0;   ///< shard number
  std::size_t size = 0;    ///< resident entries in this shard
  std::size_t bytes = 0;   ///< resident bytes in this shard
  CatalogStats stats;      ///< this shard's counters
};

/// Catalog sizing knobs; zero always means "unbounded" / "default".
struct GraphCatalogOptions {
  std::size_t capacity = 0;     ///< max resident graphs (global, 0 = unbounded)
  std::size_t byte_budget = 0;  ///< max resident bytes (global, 0 = unbounded)
  std::size_t shards = 0;       ///< rounded up to a power of two; 0 = default
};

/// Approximate bytes a resident graph occupies (dual CSR + edge list +
/// self-risks). Deterministic in the graph's shape, so budget tests can
/// predict eviction behavior exactly. Deliberately excludes the entry's
/// DetectionContext: its warm intermediates grow with query traffic, and
/// charging them would make eviction order depend on which queries
/// happened to run — the byte budget bounds graph residency, not total
/// process memory (see ROADMAP for context-aware budgeting).
std::size_t EstimateGraphBytes(const UncertainGraph& graph);

class GraphCatalog {
 public:
  /// Default shard count; a serving fleet rarely benefits from more shards
  /// than concurrently-hot graphs, and 8 keeps the per-shard detail readable.
  static constexpr std::size_t kDefaultShards = 8;

  /// Creates a catalog keeping at most `capacity` graphs resident
  /// (0 = unbounded). Beyond capacity the least-recently-used entry is
  /// evicted.
  explicit GraphCatalog(std::size_t capacity = 0);

  /// Creates a catalog with explicit capacity / byte budget / shard count.
  explicit GraphCatalog(const GraphCatalogOptions& options);

  /// Reads `path` (text or binary snapshot) and registers it as `name`,
  /// replacing any existing entry of that name. Parsing happens outside
  /// every catalog lock, so concurrent loads of different names overlap.
  Status Load(const std::string& name, const std::string& path);

  /// Registers an already-built graph (generators, tests) as `name`.
  Status Put(const std::string& name, UncertainGraph graph,
             const std::string& source = "<memory>");

  /// Returns the entry for `name` and marks it most-recently-used, or
  /// nullptr if the name is not resident. Takes exactly one shard lock.
  std::shared_ptr<CatalogEntry> Get(const std::string& name);

  /// Removes `name`; returns whether it was resident. In-flight holders of
  /// the entry keep it alive until they drop their reference.
  bool Evict(const std::string& name);

  /// Resident names, most-recently-used first (exact stamp order).
  std::vector<std::string> Names() const;

  /// Shared references to every resident entry, in no particular order.
  /// Unlike Get this touches neither recency nor hit counters: the stats
  /// path must observe residency (e.g. summing DetectionContext bytes)
  /// without perturbing LRU order.
  std::vector<std::shared_ptr<CatalogEntry>> SnapshotEntries() const;

  std::size_t size() const { return total_count_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return options_.capacity; }
  std::size_t byte_budget() const { return options_.byte_budget; }
  std::size_t shard_count() const { return shards_.size(); }
  /// Approximate resident bytes across all shards.
  std::size_t resident_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  /// Aggregate counters, summed over shards.
  CatalogStats stats() const;

  /// Per-shard detail, index order.
  std::vector<CatalogShardInfo> ShardInfos() const;

 private:
  struct Slot {
    std::shared_ptr<CatalogEntry> entry;
    std::list<std::string>::iterator lru_pos;
    uint64_t last_touch = 0;  ///< global clock stamp of the latest touch
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Slot> entries;
    std::list<std::string> lru;  // front = most recent within this shard
    std::size_t bytes = 0;       // resident bytes in this shard
    CatalogStats stats;          // guarded by mu
  };

  Shard& ShardFor(const std::string& name);

  // Registers `entry` (replacing any same-name entry), then enforces the
  // global budgets. Called with no locks held.
  void Insert(std::shared_ptr<CatalogEntry> entry);

  // Removes the slot at `it` from `shard`; caller holds shard.mu and is
  // responsible for counting the eviction.
  void RemoveLocked(Shard& shard,
                    std::unordered_map<std::string, Slot>::iterator it);

  // True when either global budget is exceeded (with more than one entry
  // resident: a single graph larger than the whole byte budget stays, so an
  // oversized load does not thrash the catalog empty).
  bool OverBudget() const;

  // Evicts globally least-recently-stamped entries until within budget.
  void EnforceBudgets();

  const GraphCatalogOptions options_;
  std::vector<Shard> shards_;  // size is a power of two, never resized
  std::mutex evict_mu_;        // serializes EnforceBudgets (see .cc comment)
  std::atomic<uint64_t> next_uid_{1};
  std::atomic<uint64_t> clock_{1};
  std::atomic<std::size_t> total_count_{0};
  std::atomic<std::size_t> total_bytes_{0};
};

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_GRAPH_CATALOG_H_
