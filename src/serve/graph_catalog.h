// GraphCatalog: named, immutable uncertain-graph snapshots for serving.
//
// The batch CLI re-reads and re-parses the graph on every invocation; the
// catalog instead loads a snapshot once (text or binary, auto-detected) and
// hands out shared references, so a query only pays graph I/O the first time
// a name is touched. Each entry carries the per-graph DetectionContext the
// query engine warms across requests (bounds, candidate reductions, bottom-k
// sample orders); evicting or reloading a name drops that derived state with
// the graph, which keeps the invariant "context belongs to exactly one
// graph" trivially true.
//
// Entries are reference-counted: Evict removes a graph from the catalog, but
// queries already holding the entry finish safely on the old snapshot.
// All catalog methods are thread-safe.

#ifndef VULNDS_SERVE_GRAPH_CATALOG_H_
#define VULNDS_SERVE_GRAPH_CATALOG_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "vulnds/detector.h"

namespace vulnds::serve {

/// One catalog entry: an immutable graph plus its mutable derived state.
struct CatalogEntry {
  std::string name;
  std::string source;     ///< file path, or "<memory>" for Put()
  UncertainGraph graph;   ///< immutable after construction

  /// Catalog-unique id, fresh on every load/reload. Result caches key on it
  /// so entries cached against a replaced or evicted snapshot can never be
  /// served for the new one.
  uint64_t uid = 0;

  /// Warm per-graph intermediates; hold `context_mu` while touching it.
  DetectionContext context;
  std::mutex context_mu;
};

/// Counters exposed through `stats <name>` / benches.
struct CatalogStats {
  std::size_t loads = 0;      ///< successful Load/Put calls
  std::size_t reloads = 0;    ///< loads that replaced an existing name
  std::size_t evictions = 0;  ///< capacity + explicit evictions
  std::size_t hits = 0;       ///< Get() found the name
  std::size_t misses = 0;     ///< Get() did not
};

class GraphCatalog {
 public:
  /// Creates a catalog keeping at most `capacity` graphs resident
  /// (0 = unbounded). Beyond capacity the least-recently-used entry is
  /// evicted.
  explicit GraphCatalog(std::size_t capacity = 0);

  /// Reads `path` (text or binary snapshot) and registers it as `name`,
  /// replacing any existing entry of that name.
  Status Load(const std::string& name, const std::string& path);

  /// Registers an already-built graph (generators, tests) as `name`.
  Status Put(const std::string& name, UncertainGraph graph,
             const std::string& source = "<memory>");

  /// Returns the entry for `name` and marks it most-recently-used, or
  /// nullptr if the name is not resident.
  std::shared_ptr<CatalogEntry> Get(const std::string& name);

  /// Removes `name`; returns whether it was resident. In-flight holders of
  /// the entry keep it alive until they drop their reference.
  bool Evict(const std::string& name);

  /// Resident names, most-recently-used first.
  std::vector<std::string> Names() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  CatalogStats stats() const;

 private:
  // Inserts `entry` under the lock, evicting LRU entries over capacity.
  void InsertLocked(std::shared_ptr<CatalogEntry> entry);

  struct Slot {
    std::shared_ptr<CatalogEntry> entry;
    std::list<std::string>::iterator lru_pos;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  uint64_t next_uid_ = 1;
  std::unordered_map<std::string, Slot> entries_;
  std::list<std::string> lru_;  // front = most recent
  CatalogStats stats_;
};

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_GRAPH_CATALOG_H_
