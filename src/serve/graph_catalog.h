// GraphCatalog: named, immutable uncertain-graph snapshots for serving.
//
// The batch CLI re-reads and re-parses the graph on every invocation; the
// catalog instead loads a snapshot once (text or binary, auto-detected) and
// hands out shared references, so a query only pays graph I/O the first time
// a name is touched. Each entry carries the per-graph DetectionContext the
// query engine warms across requests (bounds, candidate reductions, bottom-k
// sample orders); evicting or reloading a name drops that derived state with
// the graph, which keeps the invariant "context belongs to exactly one
// graph" trivially true.
//
// Sharding. The catalog is split into a power-of-two number of name-hashed
// shards, each with its own mutex, LRU list, byte accounting and counters,
// so concurrent sessions touching unrelated graphs never contend on
// load/evict: a Get takes exactly one shard lock, and snapshot parsing
// happens outside every lock. The count capacity and byte budget are
// global: every touch stamps the entry from one shared atomic clock, and
// the eviction loop removes the globally least-recently-stamped entry
// (found by peeking each shard's LRU tail), so eviction order is identical
// to the former single-shard catalog. Under concurrent touches the victim
// choice is as precise as any external observer can distinguish.
//
// Byte governance and disk spill. The catalog can charge through a
// store::MemoryGovernor: every resident graph is charged under
// ChargeClass::kSnapshot and its warm DetectionContext under
// ChargeClass::kContext (the query engine recharges the context's
// ApproxBytes after each batch). When the governor's GLOBAL budget is
// exceeded it sheds through the catalog's registered shedders: coldest
// contexts are dropped first (pure recompute, no correctness cost), then —
// when a spill directory is configured — the coldest UNPINNED snapshots
// are written to disk in the binary v2 format and paged back on demand
// inside GetOrLoad. A spilled entry keeps its uid across the round trip,
// so result-cache lines keyed on (name, uid, options) stay valid and
// answers after page-back are bit-identical to the always-resident run.
// Queries pin entries (ScopedEntryPin) for their in-flight duration;
// pinned snapshots are never spilled or shed.
//
// Spill integrity and crash consistency. Spill files carry a CRC-32 over
// the serialized snapshot, verified on page-in: a corrupted page is never
// deserialized into a servable graph — the catalog falls back to reloading
// the entry's original on-disk source (fresh uid: cached results against
// the lost snapshot are unreachable, never wrong) or surfaces an error
// while everything else keeps serving. Spill files are process-private; a
// per-process manifest (`MANIFEST.<pid>`, rewritten atomically under the
// spill lock) names the live ones, and construction reclaims any *.vg2
// debris in the spill directory that no live process' manifest references —
// before this GC, files orphaned by kill -9 persisted until path reuse.
// IO failures at the spill seams are retried (3 attempts, no sleeps) and
// counted in vulnds_store_io_errors_total{site,outcome}.
//
// Entries are reference-counted: Evict (or a spill) removes a graph from
// the catalog, but queries already holding the entry finish safely on the
// old snapshot. All catalog methods are thread-safe.

#ifndef VULNDS_SERVE_GRAPH_CATALOG_H_
#define VULNDS_SERVE_GRAPH_CATALOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "store/memory_governor.h"
#include "vulnds/detector.h"

namespace vulnds::serve {

/// One catalog entry: an immutable graph plus its mutable derived state.
struct CatalogEntry {
  std::string name;
  std::string source;     ///< file path, or "<memory>" for Put()
  UncertainGraph graph;   ///< immutable after construction

  /// Catalog-unique id, fresh on every load/reload — but PRESERVED across a
  /// spill/page-back round trip. Result caches key on it so entries cached
  /// against a replaced or evicted snapshot can never be served for the new
  /// one, while a paged-back snapshot (bit-identical by construction) keeps
  /// serving its cached results.
  uint64_t uid = 0;

  /// Approximate resident footprint of `graph` (CSR arrays + edge list),
  /// charged against the catalog's byte budget. Fixed at insert time.
  std::size_t bytes = 0;

  /// In-flight reference count (ScopedEntryPin). A pinned entry is never
  /// spilled or shed; it can still be replaced/evicted by an explicit
  /// Load/Put/Evict of its name (holders stay safe via their shared_ptr).
  std::atomic<int> pins{0};

  /// True once the entry has been removed from the catalog (evicted,
  /// replaced, or spilled). With charged_* below it closes the race between
  /// a charge in flight and a concurrent detach: whoever runs second sees
  /// the other's write and settles the governor balance (see .cc).
  std::atomic<bool> detached{false};

  /// Bytes currently charged to the governor for this entry, by class.
  /// Exchanged to 0 exactly once per discharge, so charges can never be
  /// credited back twice or left dangling.
  std::atomic<std::size_t> charged_snapshot_bytes{0};
  std::atomic<std::size_t> charged_context_bytes{0};

  /// Warm per-graph intermediates; hold `context_mu` while touching it.
  DetectionContext context;
  std::mutex context_mu;
};

/// RAII in-flight pin on a catalog entry: the snapshot-shedder skips pinned
/// entries, so the graph a query is running against is never spilled out
/// from under the name mid-flight. Movable, not copyable.
class ScopedEntryPin {
 public:
  ScopedEntryPin() = default;
  explicit ScopedEntryPin(std::shared_ptr<CatalogEntry> entry)
      : entry_(std::move(entry)) {
    if (entry_) entry_->pins.fetch_add(1, std::memory_order_relaxed);
  }
  ScopedEntryPin(ScopedEntryPin&& other) noexcept
      : entry_(std::move(other.entry_)) {
    other.entry_.reset();
  }
  ScopedEntryPin& operator=(ScopedEntryPin&& other) noexcept {
    if (this != &other) {
      Release();
      entry_ = std::move(other.entry_);
      other.entry_.reset();
    }
    return *this;
  }
  ScopedEntryPin(const ScopedEntryPin&) = delete;
  ScopedEntryPin& operator=(const ScopedEntryPin&) = delete;
  ~ScopedEntryPin() { Release(); }

  void Release() {
    if (entry_) {
      entry_->pins.fetch_sub(1, std::memory_order_relaxed);
      entry_.reset();
    }
  }

  explicit operator bool() const { return entry_ != nullptr; }
  const std::shared_ptr<CatalogEntry>& entry() const { return entry_; }

 private:
  std::shared_ptr<CatalogEntry> entry_;
};

/// Counters exposed through `stats <name>` / benches. Used both as the
/// per-shard counters (guarded by that shard's mutex) and as the aggregate
/// over all shards (summed shard by shard, so concurrent traffic may be
/// counted in at most one shard's snapshot — each counter is exact, the
/// cross-shard sum is a moment-in-time aggregate, never torn).
struct CatalogStats {
  std::size_t loads = 0;      ///< successful Load/Put calls
  std::size_t reloads = 0;    ///< loads that replaced an existing name
  std::size_t evictions = 0;  ///< capacity + budget + explicit evictions
  std::size_t hits = 0;       ///< Get() found the name
  std::size_t misses = 0;     ///< Get() did not
  std::size_t spills = 0;     ///< snapshots written to the spill dir
  std::size_t page_ins = 0;   ///< spilled snapshots read back on demand
};

/// Per-shard detail for `stats` / debugging.
struct CatalogShardInfo {
  std::size_t index = 0;   ///< shard number
  std::size_t size = 0;    ///< resident entries in this shard
  std::size_t bytes = 0;   ///< resident bytes in this shard
  CatalogStats stats;      ///< this shard's counters
};

/// Catalog sizing knobs; zero always means "unbounded" / "default".
struct GraphCatalogOptions {
  std::size_t capacity = 0;     ///< max resident graphs (global, 0 = unbounded)
  std::size_t byte_budget = 0;  ///< max resident bytes (global, 0 = unbounded)
  std::size_t shards = 0;       ///< rounded up to a power of two; 0 = default
  /// Directory cold snapshots spill to under governor pressure (created on
  /// first use; empty = spilling disabled, the snapshot class then frees
  /// nothing and the governor moves on to the next shed class).
  std::string spill_dir;
  /// Global byte governor to charge snapshot/context bytes through; may
  /// also be bound later (BindGovernor). Must outlive the catalog's use.
  store::MemoryGovernor* governor = nullptr;
};

/// Approximate bytes a resident graph occupies (dual CSR + edge list +
/// self-risks, plus the sampling kernels' lazily-built coin columns).
/// Deterministic in the graph's shape, so budget tests can
/// predict eviction behavior exactly. Deliberately excludes the entry's
/// DetectionContext: its warm intermediates grow with query traffic and are
/// charged separately (ChargeClass::kContext) by the query engine — the
/// catalog byte budget bounds graph residency, the governor bounds both.
std::size_t EstimateGraphBytes(const UncertainGraph& graph);

class GraphCatalog {
 public:
  /// Default shard count; a serving fleet rarely benefits from more shards
  /// than concurrently-hot graphs, and 8 keeps the per-shard detail readable.
  static constexpr std::size_t kDefaultShards = 8;

  /// Creates a catalog keeping at most `capacity` graphs resident
  /// (0 = unbounded). Beyond capacity the least-recently-used entry is
  /// evicted.
  explicit GraphCatalog(std::size_t capacity = 0);

  /// Creates a catalog with explicit capacity / byte budget / shard count /
  /// spill + governor wiring.
  explicit GraphCatalog(const GraphCatalogOptions& options);

  ~GraphCatalog();

  /// Binds (or replaces) the governor and registers this catalog's context
  /// and snapshot shedders with it. The catalog must stay alive while the
  /// governor can shed. Call before concurrent traffic.
  void BindGovernor(store::MemoryGovernor* governor);

  /// Drops the governor binding (the engine unbinds an engine-owned
  /// governor before it dies). Charges already made are left to the
  /// governor's own teardown.
  void UnbindGovernor() {
    governor_.store(nullptr, std::memory_order_release);
  }

  /// Resolves the page-in latency histogram (vulnds_store_page_in_micros)
  /// in `registry` and adopts `clock` for timing it; pass nullptr/null to
  /// unbind. Call before concurrent traffic.
  void BindObservability(obs::MetricRegistry* registry, obs::ClockMicros clock);

  /// Reads `path` (text or binary snapshot) and registers it as `name`,
  /// replacing any existing entry of that name. Parsing happens outside
  /// every catalog lock, so concurrent loads of different names overlap.
  Status Load(const std::string& name, const std::string& path);

  /// Registers an already-built graph (generators, tests) as `name`.
  Status Put(const std::string& name, UncertainGraph graph,
             const std::string& source = "<memory>");

  /// Returns the entry for `name` and marks it most-recently-used, or
  /// nullptr if the name is not RESIDENT (spilled names miss here — use
  /// GetOrLoad on the query path). Takes exactly one shard lock.
  std::shared_ptr<CatalogEntry> Get(const std::string& name);

  /// Get, plus demand paging: a name whose snapshot was spilled to disk is
  /// read back (binary v2), re-registered under its ORIGINAL uid and
  /// returned. Ok(nullptr) means the name is neither resident nor spilled;
  /// an error means the spill file could not be read back. Page-ins are
  /// serialized (one reader does the I/O, racers get the resident entry).
  Result<std::shared_ptr<CatalogEntry>> GetOrLoad(const std::string& name);

  /// True when `name` is resident or spilled. Touches neither recency nor
  /// hit counters (existence checks must not perturb LRU order).
  bool Contains(const std::string& name) const;

  /// Removes `name` — resident or spilled (the spill file is deleted);
  /// returns whether it existed. In-flight holders of the entry keep it
  /// alive until they drop their reference.
  bool Evict(const std::string& name);

  /// Resident names, most-recently-used first (exact stamp order), then
  /// spilled names (coldest of all, unordered).
  std::vector<std::string> Names() const;

  /// Shared references to every resident entry, in no particular order.
  /// Unlike Get this touches neither recency nor hit counters: the stats
  /// path must observe residency (e.g. summing DetectionContext bytes)
  /// without perturbing LRU order.
  std::vector<std::shared_ptr<CatalogEntry>> SnapshotEntries() const;

  std::size_t size() const { return total_count_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return options_.capacity; }
  std::size_t byte_budget() const { return options_.byte_budget; }
  std::size_t shard_count() const { return shards_.size(); }
  /// Approximate resident bytes across all shards.
  std::size_t resident_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  /// Bytes / count of snapshots currently parked in the spill directory.
  std::size_t spilled_bytes() const {
    return spilled_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t spilled_count() const {
    return spilled_count_.load(std::memory_order_relaxed);
  }
  /// Orphaned spill files (debris of killed processes) reclaimed by this
  /// catalog's construction-time GC.
  std::size_t spill_orphans_reclaimed() const {
    return spill_orphans_reclaimed_.load(std::memory_order_relaxed);
  }
  const std::string& spill_dir() const { return options_.spill_dir; }
  store::MemoryGovernor* governor() const {
    return governor_.load(std::memory_order_acquire);
  }

  /// Aggregate counters, summed over shards.
  CatalogStats stats() const;

  /// Per-shard detail, index order.
  std::vector<CatalogShardInfo> ShardInfos() const;

 private:
  struct Slot {
    std::shared_ptr<CatalogEntry> entry;
    std::list<std::string>::iterator lru_pos;
    uint64_t last_touch = 0;  ///< global clock stamp of the latest touch
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Slot> entries;
    std::list<std::string> lru;  // front = most recent within this shard
    std::size_t bytes = 0;       // resident bytes in this shard
    CatalogStats stats;          // guarded by mu
  };

  /// A snapshot parked on disk: where it is, what loaded it originally,
  /// and the identity/size it resumes on page-in.
  struct SpillRecord {
    std::string path;
    std::string source;
    uint64_t uid = 0;
    std::size_t bytes = 0;
    uint32_t crc = 0;  ///< CRC-32 of the serialized bytes on disk
  };

  Shard& ShardFor(const std::string& name);
  const Shard& ShardFor(const std::string& name) const;

  // Mints a fresh uid for `entry`, then registers it (see InsertPrepared).
  void Insert(std::shared_ptr<CatalogEntry> entry);

  // Registers `entry` under its ALREADY-SET uid (replacing any same-name
  // entry and superseding any same-name spill record), charges the
  // governor, then enforces the catalog's own budgets. Called with no
  // catalog locks held (page-in calls it under page_in_mu_ only).
  void InsertPrepared(std::shared_ptr<CatalogEntry> entry);

  // Removes the slot at `it` from `shard`: detaches the entry, settles its
  // governor charges, and adjusts the byte/count accounting. Caller holds
  // shard.mu and is responsible for counting the eviction/spill.
  void RemoveLocked(Shard& shard,
                    std::unordered_map<std::string, Slot>::iterator it);

  // Deletes any spill record (and file) for `name`; returns whether one
  // existed. Takes spill_mu_.
  bool DropSpillRecord(const std::string& name);

  // The spill file for `entry` inside spill_dir (name sanitized, uid
  // suffix keeps distinct generations of one name distinct on disk).
  std::string SpillPathFor(const CatalogEntry& entry) const;

  // This process' spill manifest path (spill_dir/MANIFEST.<pid>).
  std::string ManifestPath() const;

  // Atomically rewrites the manifest from spilled_. Caller holds spill_mu_.
  // Failures are counted (site=spill_manifest) and swallowed: the in-memory
  // records stay authoritative for this process, the manifest only protects
  // the files from another process' startup GC.
  void RewriteManifestLocked();

  // Construction-time GC: deletes *.vg2 spill debris (and dead processes'
  // manifests) in spill_dir that no live process' manifest references,
  // counting reclaimed files in spill_orphans_reclaimed_.
  void ReclaimOrphanSpills();

  // Governor shedders (registered by BindGovernor; run under the
  // governor's shed mutex, so they only ever Discharge, never Charge).
  std::size_t ShedContexts(std::size_t want);
  std::size_t ShedSnapshots(std::size_t want);

  // True when either global budget is exceeded (with more than one entry
  // resident: a single graph larger than the whole byte budget stays, so an
  // oversized load does not thrash the catalog empty).
  bool OverBudget() const;

  // Evicts globally least-recently-stamped entries until within budget.
  void EnforceBudgets();

  int64_t NowMicros() const;

  const GraphCatalogOptions options_;
  std::vector<Shard> shards_;  // size is a power of two, never resized
  std::mutex evict_mu_;        // serializes EnforceBudgets (see .cc comment)
  std::atomic<uint64_t> next_uid_{1};
  std::atomic<uint64_t> clock_{1};
  std::atomic<std::size_t> total_count_{0};
  std::atomic<std::size_t> total_bytes_{0};

  // Spill state. Lock order: spill_mu_ is a leaf below shard mutexes and
  // the governor's shed mutex; page_in_mu_ is taken before everything
  // (serializes the read-back I/O so racing queries for one spilled name
  // do the disk read once).
  mutable std::mutex spill_mu_;
  std::unordered_map<std::string, SpillRecord> spilled_;
  std::atomic<std::size_t> spilled_bytes_{0};
  std::atomic<std::size_t> spilled_count_{0};
  std::mutex page_in_mu_;
  std::atomic<bool> spill_dir_ready_{false};
  std::atomic<std::size_t> spill_orphans_reclaimed_{0};

  // Late-bound runtime (engine wires these in its constructor; atomics so
  // a binding racing early traffic is benign).
  std::atomic<store::MemoryGovernor*> governor_{nullptr};
  std::atomic<obs::Histogram*> page_in_micros_{nullptr};
  std::atomic<obs::MetricRegistry*> registry_{nullptr};
  obs::ClockMicros obs_clock_;  // written only by BindObservability
};

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_GRAPH_CATALOG_H_
