#include "serve/graph_catalog.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "graph/graph_io.h"

namespace vulnds::serve {

namespace {

// More shards than this buys nothing (shards beyond the number of
// concurrently-hot graphs are dead weight) and a huge request must not
// allocate a huge shard vector — or overflow the power-of-two round-up.
constexpr std::size_t kMaxShards = 256;

// Rounds up to the next power of two (>= 1). Caller bounds v.
std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

GraphCatalogOptions Normalized(GraphCatalogOptions o) {
  if (o.shards == 0) o.shards = GraphCatalog::kDefaultShards;
  o.shards = RoundUpPow2(std::min(o.shards, kMaxShards));
  return o;
}

}  // namespace

std::size_t EstimateGraphBytes(const UncertainGraph& graph) {
  const std::size_t n = graph.num_nodes();
  const std::size_t m = graph.num_edges();
  return sizeof(UncertainGraph) + n * sizeof(double)          // self-risks
         + 2 * (n + 1) * sizeof(std::size_t)                  // dual offsets
         + 2 * m * sizeof(Arc)                                // dual arc arrays
         + m * sizeof(UncertainEdge);                         // edge list
}

GraphCatalog::GraphCatalog(std::size_t capacity)
    : GraphCatalog(GraphCatalogOptions{capacity, 0, 0}) {}

GraphCatalog::GraphCatalog(const GraphCatalogOptions& options)
    : options_(Normalized(options)), shards_(options_.shards) {}

GraphCatalog::Shard& GraphCatalog::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) & (shards_.size() - 1)];
}

Status GraphCatalog::Load(const std::string& name, const std::string& path) {
  if (name.empty()) return Status::InvalidArgument("graph name must not be empty");
  // Snapshot I/O and parsing run outside every catalog lock: concurrent
  // loads of different names overlap fully, even within one shard.
  Result<UncertainGraph> graph = ReadGraphFile(path);
  if (!graph.ok()) return graph.status();
  auto entry = std::make_shared<CatalogEntry>();
  entry->name = name;
  entry->source = path;
  entry->graph = graph.MoveValue();
  Insert(std::move(entry));
  return Status::OK();
}

Status GraphCatalog::Put(const std::string& name, UncertainGraph graph,
                         const std::string& source) {
  if (name.empty()) return Status::InvalidArgument("graph name must not be empty");
  auto entry = std::make_shared<CatalogEntry>();
  entry->name = name;
  entry->source = source;
  entry->graph = std::move(graph);
  Insert(std::move(entry));
  return Status::OK();
}

void GraphCatalog::Insert(std::shared_ptr<CatalogEntry> entry) {
  entry->uid = next_uid_.fetch_add(1, std::memory_order_relaxed);
  entry->bytes = EstimateGraphBytes(entry->graph);
  const std::string name = entry->name;
  Shard& shard = ShardFor(name);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.stats.loads;
    const auto it = shard.entries.find(name);
    if (it != shard.entries.end()) {
      ++shard.stats.reloads;
      RemoveLocked(shard, it);
    }
    shard.lru.push_front(name);
    Slot slot;
    slot.lru_pos = shard.lru.begin();
    slot.last_touch = clock_.fetch_add(1, std::memory_order_relaxed);
    shard.bytes += entry->bytes;
    total_bytes_.fetch_add(entry->bytes, std::memory_order_relaxed);
    total_count_.fetch_add(1, std::memory_order_relaxed);
    slot.entry = std::move(entry);
    shard.entries.emplace(name, std::move(slot));
  }
  EnforceBudgets();
}

void GraphCatalog::RemoveLocked(
    Shard& shard, std::unordered_map<std::string, Slot>::iterator it) {
  const std::size_t bytes = it->second.entry->bytes;
  shard.bytes -= bytes;
  total_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  total_count_.fetch_sub(1, std::memory_order_relaxed);
  shard.lru.erase(it->second.lru_pos);
  shard.entries.erase(it);
}

bool GraphCatalog::OverBudget() const {
  const std::size_t count = total_count_.load(std::memory_order_relaxed);
  if (count <= 1) return false;  // a lone oversized graph stays resident
  if (options_.capacity != 0 && count > options_.capacity) return true;
  return options_.byte_budget != 0 &&
         total_bytes_.load(std::memory_order_relaxed) > options_.byte_budget;
}

void GraphCatalog::EnforceBudgets() {
  // Evict the globally least-recently-stamped entry until within budget.
  // Each shard's LRU tail is that shard's oldest entry, so the global
  // victim is the minimum tail stamp across shards — found by taking one
  // shard lock at a time, never two at once. Enforcement itself is
  // serialized (evict_mu_, never held together with a shard lock by any
  // other path): without it two concurrent over-budget inserts could both
  // pass the budget check and evict two entries where one sufficed.
  // Between the scan and the eviction a session may still touch the
  // chosen victim; the re-check under the victim shard's lock then evicts
  // that shard's (possibly new) tail, which is a legal LRU choice at that
  // instant. Single-threaded the loop is exactly the old one-mutex
  // catalog's eviction order.
  std::lock_guard<std::mutex> evict_lock(evict_mu_);
  while (OverBudget()) {
    std::size_t victim_shard = shards_.size();
    uint64_t victim_stamp = std::numeric_limits<uint64_t>::max();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mu);
      if (shards_[s].lru.empty()) continue;
      const Slot& tail = shards_[s].entries.at(shards_[s].lru.back());
      if (tail.last_touch < victim_stamp) {
        victim_stamp = tail.last_touch;
        victim_shard = s;
      }
    }
    if (victim_shard == shards_.size()) return;  // nothing resident
    Shard& shard = shards_[victim_shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.lru.empty() || !OverBudget()) continue;
    // A Get between the scan and this re-lock may have promoted the chosen
    // victim, leaving a hotter entry at this shard's tail; evicting that
    // would drop the wrong graph. Rescan instead of trusting the tail.
    if (shard.entries.at(shard.lru.back()).last_touch != victim_stamp) {
      continue;
    }
    ++shard.stats.evictions;
    RemoveLocked(shard, shard.entries.find(shard.lru.back()));
  }
}

std::shared_ptr<CatalogEntry> GraphCatalog::Get(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(name);
  if (it == shard.entries.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  it->second.last_touch = clock_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

bool GraphCatalog::Evict(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(name);
  if (it == shard.entries.end()) return false;
  ++shard.stats.evictions;
  RemoveLocked(shard, it);
  return true;
}

std::vector<std::string> GraphCatalog::Names() const {
  // Collect (stamp, name) pairs shard by shard, then order by stamp: the
  // global clock makes recency totally ordered across shards.
  std::vector<std::pair<uint64_t, std::string>> stamped;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, slot] : shard.entries) {
      stamped.emplace_back(slot.last_touch, name);
    }
  }
  std::sort(stamped.begin(), stamped.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> names;
  names.reserve(stamped.size());
  for (auto& [stamp, name] : stamped) names.push_back(std::move(name));
  return names;
}

std::vector<std::shared_ptr<CatalogEntry>> GraphCatalog::SnapshotEntries()
    const {
  std::vector<std::shared_ptr<CatalogEntry>> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, slot] : shard.entries) {
      entries.push_back(slot.entry);
    }
  }
  return entries;
}

CatalogStats GraphCatalog::stats() const {
  CatalogStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.loads += shard.stats.loads;
    total.reloads += shard.stats.reloads;
    total.evictions += shard.stats.evictions;
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
  }
  return total;
}

std::vector<CatalogShardInfo> GraphCatalog::ShardInfos() const {
  std::vector<CatalogShardInfo> infos;
  infos.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    CatalogShardInfo info;
    info.index = s;
    info.size = shards_[s].entries.size();
    info.bytes = shards_[s].bytes;
    info.stats = shards_[s].stats;
    infos.push_back(info);
  }
  return infos;
}

}  // namespace vulnds::serve
