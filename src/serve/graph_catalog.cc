#include "serve/graph_catalog.h"

#include <utility>

#include "graph/graph_io.h"

namespace vulnds::serve {

GraphCatalog::GraphCatalog(std::size_t capacity) : capacity_(capacity) {}

Status GraphCatalog::Load(const std::string& name, const std::string& path) {
  if (name.empty()) return Status::InvalidArgument("graph name must not be empty");
  Result<UncertainGraph> graph = ReadGraphFile(path);
  if (!graph.ok()) return graph.status();
  auto entry = std::make_shared<CatalogEntry>();
  entry->name = name;
  entry->source = path;
  entry->graph = graph.MoveValue();
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(std::move(entry));
  return Status::OK();
}

Status GraphCatalog::Put(const std::string& name, UncertainGraph graph,
                         const std::string& source) {
  if (name.empty()) return Status::InvalidArgument("graph name must not be empty");
  auto entry = std::make_shared<CatalogEntry>();
  entry->name = name;
  entry->source = source;
  entry->graph = std::move(graph);
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(std::move(entry));
  return Status::OK();
}

void GraphCatalog::InsertLocked(std::shared_ptr<CatalogEntry> entry) {
  ++stats_.loads;
  entry->uid = next_uid_++;
  const std::string name = entry->name;
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    ++stats_.reloads;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  lru_.push_front(name);
  entries_[name] = Slot{std::move(entry), lru_.begin()};
  while (capacity_ != 0 && entries_.size() > capacity_) {
    ++stats_.evictions;
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

std::shared_ptr<CatalogEntry> GraphCatalog::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.entry;
}

bool GraphCatalog::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  ++stats_.evictions;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  return true;
}

std::vector<std::string> GraphCatalog::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {lru_.begin(), lru_.end()};
}

std::size_t GraphCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

CatalogStats GraphCatalog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vulnds::serve
