#include "serve/graph_catalog.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "graph/graph_io.h"
#include "serve/io_metrics.h"
#include "vulnds/coin_columns.h"

namespace vulnds::serve {

namespace {

// More shards than this buys nothing (shards beyond the number of
// concurrently-hot graphs are dead weight) and a huge request must not
// allocate a huge shard vector — or overflow the power-of-two round-up.
constexpr std::size_t kMaxShards = 256;

// Rounds up to the next power of two (>= 1). Caller bounds v.
std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

GraphCatalogOptions Normalized(GraphCatalogOptions o) {
  if (o.shards == 0) o.shards = GraphCatalog::kDefaultShards;
  o.shards = RoundUpPow2(std::min(o.shards, kMaxShards));
  return o;
}

// Spill-file-safe rendering of a catalog name: anything outside
// [A-Za-z0-9._-] becomes '_' (the uid suffix keeps sanitized collisions
// like "a/b" vs "a_b" distinct on disk).
std::string SanitizeForFilename(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

// IO attempts per spill/page-in seam before the failure is surfaced.
constexpr int kSpillIoAttempts = 3;

// Writes `data` to `path` crash-safely (sibling temp + fsync + rename),
// with `failpoint` injected at the data write. A reader only ever sees the
// complete old file or the complete new one.
Status WriteFileAtomic(const std::string& data, const std::string& path,
                       const char* failpoint) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + tmp + ": " +
                           std::strerror(errno));
  }
  auto fail_with = [&](std::string msg) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError(std::move(msg));
  };
  const fail::Outcome injected = fail::Check(failpoint);
  if (injected == fail::Outcome::kShortWrite) {
    // A prefix really lands (the torn-temp world a crash leaves), then the
    // "syscall" fails; the temp is discarded, the destination untouched.
    (void)!::write(fd, data.data(), data.size() / 2);
    return fail_with("write to " + tmp + " failed: " + std::strerror(EIO) +
                     " (injected)");
  }
  if (injected != fail::Outcome::kNone) {
    return fail_with("write to " + tmp + " failed: " +
                     std::strerror(fail::InjectedErrno(injected)) +
                     " (injected)");
  }
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail_with("write to " + tmp + " failed: " +
                       std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    return fail_with("fsync of " + tmp + " failed: " + std::strerror(errno));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

// Reads all of `path` into `out`; false on any IO error.
bool ReadFileAll(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out->clear();
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

// True when the entry's source is a real on-disk file a degraded page-in
// can reload (as opposed to "<memory>" Puts and "commit:" materializations
// that only ever existed in RAM / the journal).
bool SourceIsReloadable(const std::string& source) {
  return !source.empty() && source != "<memory>" &&
         source.rfind("commit:", 0) != 0;
}

}  // namespace

std::size_t EstimateGraphBytes(const UncertainGraph& graph) {
  const std::size_t n = graph.num_nodes();
  const std::size_t m = graph.num_edges();
  return sizeof(UncertainGraph) + n * sizeof(double)          // self-risks
         + 2 * (n + 1) * sizeof(std::size_t)                  // dual offsets
         + 2 * m * sizeof(Arc)                                // dual arc arrays
         + m * sizeof(UncertainEdge)                          // edge list
         // The sampling kernels' coin columns live in the graph's derived
         // cache (built on the first detect, resident until eviction), so a
         // served graph's true footprint includes them; charging up front
         // keeps the estimate deterministic in the graph's shape. Sparse
         // graphs below the density gate never build columns, so they are
         // not charged for them.
         + (CoinColumns::Worthwhile(graph) ? CoinColumns::EstimateBytes(graph)
                                           : 0);
}

GraphCatalog::GraphCatalog(std::size_t capacity)
    : GraphCatalog(GraphCatalogOptions{capacity, 0, 0}) {}

GraphCatalog::GraphCatalog(const GraphCatalogOptions& options)
    : options_(Normalized(options)), shards_(options_.shards) {
  if (options_.governor != nullptr) BindGovernor(options_.governor);
  if (!options_.spill_dir.empty()) ReclaimOrphanSpills();
}

GraphCatalog::~GraphCatalog() {
  // Spill files are process-private (their contents are re-derivable from
  // the entries' sources or the journal), so a clean shutdown removes them
  // and this process' manifest; kill -9 leaves both for the next process'
  // startup GC.
  {
    std::lock_guard<std::mutex> lock(spill_mu_);
    for (const auto& [name, record] : spilled_) {
      std::remove(record.path.c_str());
    }
    spilled_.clear();
    if (!options_.spill_dir.empty()) std::remove(ManifestPath().c_str());
  }
  // Settle outstanding governor charges so a governor that outlives the
  // catalog (tests, shared governors) does not account ghost bytes.
  auto* gov = governor();
  if (gov == nullptr) return;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [name, slot] : shard.entries) {
      CatalogEntry& entry = *slot.entry;
      entry.detached.store(true, std::memory_order_release);
      gov->Discharge(store::ChargeClass::kSnapshot,
                     entry.charged_snapshot_bytes.exchange(0));
      gov->Discharge(store::ChargeClass::kContext,
                     entry.charged_context_bytes.exchange(0));
    }
  }
}

void GraphCatalog::BindGovernor(store::MemoryGovernor* governor) {
  governor_.store(governor, std::memory_order_release);
  if (governor == nullptr) return;
  // Shed order is the governor's class order: contexts first (cheap
  // recompute), snapshots second (spill to disk, page back on demand).
  governor->RegisterShedder(
      store::ChargeClass::kContext,
      [this](std::size_t want) { return ShedContexts(want); });
  governor->RegisterShedder(
      store::ChargeClass::kSnapshot,
      [this](std::size_t want) { return ShedSnapshots(want); });
}

void GraphCatalog::BindObservability(obs::MetricRegistry* registry,
                                     obs::ClockMicros clock) {
  obs_clock_ = std::move(clock);
  registry_.store(registry, std::memory_order_release);
  if (registry == nullptr) {
    page_in_micros_.store(nullptr, std::memory_order_release);
    return;
  }
  RegisterIoErrorSeries(registry);
  page_in_micros_.store(
      registry->GetHistogram("vulnds_store_page_in_micros",
                             "Latency of paging a spilled snapshot back from "
                             "the spill directory, in microseconds.",
                             obs::LatencyBucketsMicros()),
      std::memory_order_release);
}

int64_t GraphCatalog::NowMicros() const {
  return obs_clock_ ? obs_clock_() : obs::SteadyNowMicros();
}

GraphCatalog::Shard& GraphCatalog::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) & (shards_.size() - 1)];
}

const GraphCatalog::Shard& GraphCatalog::ShardFor(
    const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) & (shards_.size() - 1)];
}

Status GraphCatalog::Load(const std::string& name, const std::string& path) {
  if (name.empty()) return Status::InvalidArgument("graph name must not be empty");
  // Snapshot I/O and parsing run outside every catalog lock: concurrent
  // loads of different names overlap fully, even within one shard.
  Result<UncertainGraph> graph = ReadGraphFile(path);
  if (!graph.ok()) return graph.status();
  auto entry = std::make_shared<CatalogEntry>();
  entry->name = name;
  entry->source = path;
  entry->graph = graph.MoveValue();
  Insert(std::move(entry));
  return Status::OK();
}

Status GraphCatalog::Put(const std::string& name, UncertainGraph graph,
                         const std::string& source) {
  if (name.empty()) return Status::InvalidArgument("graph name must not be empty");
  auto entry = std::make_shared<CatalogEntry>();
  entry->name = name;
  entry->source = source;
  entry->graph = std::move(graph);
  Insert(std::move(entry));
  return Status::OK();
}

void GraphCatalog::Insert(std::shared_ptr<CatalogEntry> entry) {
  entry->uid = next_uid_.fetch_add(1, std::memory_order_relaxed);
  InsertPrepared(std::move(entry));
}

void GraphCatalog::InsertPrepared(std::shared_ptr<CatalogEntry> entry) {
  entry->bytes = EstimateGraphBytes(entry->graph);
  const std::size_t bytes = entry->bytes;
  const std::string name = entry->name;
  // Keep a reference past the move: the governor-settling tail below works
  // on the entry after it has been published to (and possibly already
  // detached from) its shard.
  std::shared_ptr<CatalogEntry> held = entry;
  Shard& shard = ShardFor(name);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.stats.loads;
    const auto it = shard.entries.find(name);
    if (it != shard.entries.end()) {
      ++shard.stats.reloads;
      RemoveLocked(shard, it);
    }
    shard.lru.push_front(name);
    Slot slot;
    slot.lru_pos = shard.lru.begin();
    slot.last_touch = clock_.fetch_add(1, std::memory_order_relaxed);
    shard.bytes += entry->bytes;
    total_bytes_.fetch_add(entry->bytes, std::memory_order_relaxed);
    total_count_.fetch_add(1, std::memory_order_relaxed);
    slot.entry = std::move(entry);
    shard.entries.emplace(name, std::move(slot));
  }
  // The new resident entry supersedes any spilled generation of the name:
  // dropped AFTER the insert so a concurrent GetOrLoad always finds the
  // name in at least one of the two places, and BEFORE the governor charge
  // so a shed triggered by that charge can re-spill the new entry without
  // this drop deleting the fresh record.
  DropSpillRecord(name);
  auto* gov = governor();
  if (gov != nullptr) {
    // Charge before publishing the amount, then re-check detachment: if a
    // concurrent Evict/replace removed the entry between the publish and
    // its detach-side settle, exactly one side wins the exchange and
    // discharges — the balance nets to zero in every interleaving.
    gov->Charge(store::ChargeClass::kSnapshot, bytes);
    held->charged_snapshot_bytes.store(bytes, std::memory_order_release);
    if (held->detached.load(std::memory_order_acquire)) {
      gov->Discharge(store::ChargeClass::kSnapshot,
                     held->charged_snapshot_bytes.exchange(0));
    }
  }
  EnforceBudgets();
}

void GraphCatalog::RemoveLocked(
    Shard& shard, std::unordered_map<std::string, Slot>::iterator it) {
  CatalogEntry& entry = *it->second.entry;
  const std::size_t bytes = entry.bytes;
  entry.detached.store(true, std::memory_order_release);
  auto* gov = governor();
  if (gov != nullptr) {
    // Discharge exactly what was charged (the exchange makes each charge
    // credited back at most once). Discharge never sheds or locks, so it
    // is safe under shard.mu.
    gov->Discharge(store::ChargeClass::kSnapshot,
                   entry.charged_snapshot_bytes.exchange(0));
    gov->Discharge(store::ChargeClass::kContext,
                   entry.charged_context_bytes.exchange(0));
  }
  shard.bytes -= bytes;
  total_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  total_count_.fetch_sub(1, std::memory_order_relaxed);
  shard.lru.erase(it->second.lru_pos);
  shard.entries.erase(it);
}

bool GraphCatalog::DropSpillRecord(const std::string& name) {
  SpillRecord record;
  {
    std::lock_guard<std::mutex> lock(spill_mu_);
    const auto it = spilled_.find(name);
    if (it == spilled_.end()) return false;
    record = std::move(it->second);
    spilled_.erase(it);
    spilled_bytes_.fetch_sub(record.bytes, std::memory_order_relaxed);
    spilled_count_.fetch_sub(1, std::memory_order_relaxed);
    RewriteManifestLocked();
  }
  std::remove(record.path.c_str());
  return true;
}

std::string GraphCatalog::SpillPathFor(const CatalogEntry& entry) const {
  return options_.spill_dir + "/" + SanitizeForFilename(entry.name) + "." +
         std::to_string(entry.uid) + ".vg2";
}

std::string GraphCatalog::ManifestPath() const {
  return options_.spill_dir + "/MANIFEST." + std::to_string(::getpid());
}

void GraphCatalog::RewriteManifestLocked() {
  if (options_.spill_dir.empty()) return;
  // One spill-file basename per line. The manifest only has to keep another
  // process' startup GC away from this process' live files, so basenames
  // (what that GC sees in its directory scan) are the natural key.
  std::string body;
  for (const auto& [name, record] : spilled_) {
    const std::size_t slash = record.path.find_last_of('/');
    body.append(slash == std::string::npos ? record.path
                                           : record.path.substr(slash + 1));
    body.push_back('\n');
  }
  const Status written = WriteFileAtomic(body, ManifestPath(),
                                         fail::points::kSpillManifestWrite);
  if (!written.ok()) {
    // In-memory records stay authoritative for this process; a stale
    // manifest risks only that a concurrently-starting process reclaims a
    // file we would then re-derive from source — degraded, not wrong.
    CountIoError(registry_.load(std::memory_order_acquire), "spill_manifest",
                 "error");
  }
}

void GraphCatalog::ReclaimOrphanSpills() {
  DIR* dir = ::opendir(options_.spill_dir.c_str());
  if (dir == nullptr) return;  // directory not created yet: nothing to do
  std::vector<std::string> manifests;
  std::vector<std::string> spill_files;
  while (dirent* ent = ::readdir(dir)) {
    const std::string fname = ent->d_name;
    if (fname == "." || fname == "..") continue;
    if (fname.rfind("MANIFEST.", 0) == 0) {
      manifests.push_back(fname);
    } else if (fname.find(".vg2") != std::string::npos) {
      // Catches both finished spill files (*.vg2) and torn atomic-write
      // temps (*.vg2.tmp.<pid>) a crash left behind.
      spill_files.push_back(fname);
    }
  }
  ::closedir(dir);

  // A spill file is live iff a LIVE process' manifest references it. A
  // manifest whose pid is dead — or equals ours, which at construction time
  // can only mean pid reuse — is itself debris.
  std::unordered_set<std::string> referenced;
  for (const std::string& mname : manifests) {
    const std::string mpath = options_.spill_dir + "/" + mname;
    const char* pid_str = mname.c_str() + sizeof("MANIFEST.") - 1;
    char* end = nullptr;
    const long pid = std::strtol(pid_str, &end, 10);
    // kill(pid, 0) probes liveness without signaling; EPERM still means the
    // pid exists. Our own pid counts as live: a manifest at our own path is
    // either a same-process sibling catalog's (must be protected) or stale
    // pid-reuse debris that our first spill overwrites anyway — never worth
    // deleting possibly-live files over.
    const bool live = end != nullptr && *end == '\0' && pid > 0 &&
                      (::kill(static_cast<pid_t>(pid), 0) == 0 ||
                       errno == EPERM);
    if (!live) {
      std::remove(mpath.c_str());
      continue;
    }
    std::string body;
    if (!ReadFileAll(mpath, &body)) {
      // Unreadable manifest of a live process: we cannot tell its files
      // apart from orphans, so skip the sweep rather than risk deleting a
      // live spill out from under it.
      return;
    }
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) referenced.insert(line);
    }
  }
  for (const std::string& fname : spill_files) {
    if (referenced.count(fname) != 0) continue;
    if (std::remove((options_.spill_dir + "/" + fname).c_str()) == 0) {
      spill_orphans_reclaimed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool GraphCatalog::OverBudget() const {
  const std::size_t count = total_count_.load(std::memory_order_relaxed);
  if (count <= 1) return false;  // a lone oversized graph stays resident
  if (options_.capacity != 0 && count > options_.capacity) return true;
  return options_.byte_budget != 0 &&
         total_bytes_.load(std::memory_order_relaxed) > options_.byte_budget;
}

void GraphCatalog::EnforceBudgets() {
  // Evict the globally least-recently-stamped entry until within budget.
  // Each shard's LRU tail is that shard's oldest entry, so the global
  // victim is the minimum tail stamp across shards — found by taking one
  // shard lock at a time, never two at once. Enforcement itself is
  // serialized (evict_mu_, never held together with a shard lock by any
  // other path): without it two concurrent over-budget inserts could both
  // pass the budget check and evict two entries where one sufficed.
  // Between the scan and the eviction a session may still touch the
  // chosen victim; the re-check under the victim shard's lock then evicts
  // that shard's (possibly new) tail, which is a legal LRU choice at that
  // instant. Single-threaded the loop is exactly the old one-mutex
  // catalog's eviction order.
  std::lock_guard<std::mutex> evict_lock(evict_mu_);
  while (OverBudget()) {
    std::size_t victim_shard = shards_.size();
    uint64_t victim_stamp = std::numeric_limits<uint64_t>::max();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mu);
      if (shards_[s].lru.empty()) continue;
      const Slot& tail = shards_[s].entries.at(shards_[s].lru.back());
      if (tail.last_touch < victim_stamp) {
        victim_stamp = tail.last_touch;
        victim_shard = s;
      }
    }
    if (victim_shard == shards_.size()) return;  // nothing resident
    Shard& shard = shards_[victim_shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.lru.empty() || !OverBudget()) continue;
    // A Get between the scan and this re-lock may have promoted the chosen
    // victim, leaving a hotter entry at this shard's tail; evicting that
    // would drop the wrong graph. Rescan instead of trusting the tail.
    if (shard.entries.at(shard.lru.back()).last_touch != victim_stamp) {
      continue;
    }
    ++shard.stats.evictions;
    RemoveLocked(shard, shard.entries.find(shard.lru.back()));
  }
}

std::size_t GraphCatalog::ShedContexts(std::size_t want) {
  // Coldest contexts first: gather (stamp, entry) for every entry carrying
  // a context charge, oldest stamp first. A context is a pure function of
  // (graph, query key), so dropping one costs recompute, never
  // correctness; busy contexts (a batch leader holds context_mu) are
  // skipped via try_lock rather than waited on — shedding must not block
  // behind a long detect.
  std::vector<std::pair<uint64_t, std::shared_ptr<CatalogEntry>>> warm;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, slot] : shard.entries) {
      if (slot.entry->charged_context_bytes.load(std::memory_order_relaxed) >
          0) {
        warm.emplace_back(slot.last_touch, slot.entry);
      }
    }
  }
  std::sort(warm.begin(), warm.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  auto* gov = governor();
  std::size_t freed = 0;
  for (auto& [stamp, entry] : warm) {
    if (freed >= want) break;
    std::unique_lock<std::mutex> context_lock(entry->context_mu,
                                              std::try_to_lock);
    if (!context_lock.owns_lock()) continue;
    entry->context = DetectionContext{};
    const std::size_t bytes = entry->charged_context_bytes.exchange(0);
    if (gov != nullptr) gov->Discharge(store::ChargeClass::kContext, bytes);
    freed += bytes;
  }
  return freed;
}

std::size_t GraphCatalog::ShedSnapshots(std::size_t want) {
  // Spill the globally coldest UNPINNED snapshots to disk until `want`
  // bytes are freed. Without a spill directory this frees nothing —
  // snapshots may be the only copy of a committed version, so they are
  // never silently dropped under governor pressure (the catalog's own
  // capacity/byte knobs retain their legacy evict-to-source semantics).
  if (options_.spill_dir.empty()) return 0;
  if (!spill_dir_ready_.exchange(true, std::memory_order_relaxed)) {
    ::mkdir(options_.spill_dir.c_str(), 0777);  // best effort; write errors surface below
  }
  std::size_t freed = 0;
  while (freed < want) {
    // Globally coldest unpinned entry = min over shards of each shard's
    // coldest unpinned entry (walk the LRU from the tail).
    std::shared_ptr<CatalogEntry> victim;
    uint64_t victim_stamp = std::numeric_limits<uint64_t>::max();
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto lru_it = shard.lru.rbegin(); lru_it != shard.lru.rend();
           ++lru_it) {
        const Slot& slot = shard.entries.at(*lru_it);
        if (slot.entry->pins.load(std::memory_order_relaxed) > 0) continue;
        if (slot.last_touch < victim_stamp) {
          victim_stamp = slot.last_touch;
          victim = slot.entry;
        }
        break;  // deeper LRU positions in this shard are hotter
      }
    }
    if (victim == nullptr) return freed;  // everything pinned or empty
    // Serialize and write the spill file OUTSIDE every catalog lock (we run
    // under the governor's shed mutex only). The CRC over the serialized
    // bytes travels in the spill record so page-in can prove the file came
    // back intact before deserializing it; the atomic temp+fsync+rename
    // write means a crash mid-spill never leaves a truncated snapshot under
    // the final name.
    const std::string path = SpillPathFor(*victim);
    std::ostringstream serialized;
    if (!WriteGraphBinary(victim->graph, serialized).ok()) return freed;
    const std::string payload = serialized.str();
    const uint32_t crc = Crc32(payload.data(), payload.size());
    auto* reg = registry_.load(std::memory_order_acquire);
    Status written = Status::OK();
    for (int attempt = 0; attempt < kSpillIoAttempts; ++attempt) {
      written = WriteFileAtomic(payload, path, fail::points::kSpillWrite);
      if (written.ok()) {
        if (attempt > 0) CountIoError(reg, "spill_write", "retried");
        break;
      }
    }
    if (!written.ok()) {
      // Never drop a snapshot we failed to park: the entry stays resident
      // (the governor simply frees less this round) — degraded memory
      // pressure, never a lost graph.
      CountIoError(reg, "spill_write", "error");
      return freed;
    }
    // Record the spill BEFORE detaching the resident entry: a concurrent
    // GetOrLoad must find the name in at least one of the two places.
    {
      std::lock_guard<std::mutex> lock(spill_mu_);
      spilled_[victim->name] =
          SpillRecord{path, victim->source, victim->uid, victim->bytes, crc};
      spilled_bytes_.fetch_add(victim->bytes, std::memory_order_relaxed);
      spilled_count_.fetch_add(1, std::memory_order_relaxed);
      RewriteManifestLocked();
    }
    bool detached = false;
    {
      Shard& shard = ShardFor(victim->name);
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.entries.find(victim->name);
      // The entry may have been replaced, evicted, or pinned since the
      // scan; spilling it then would park a stale (or in-use) snapshot.
      if (it != shard.entries.end() && it->second.entry == victim &&
          victim->pins.load(std::memory_order_relaxed) == 0) {
        ++shard.stats.spills;
        const std::size_t context_bytes =
            victim->charged_context_bytes.load(std::memory_order_relaxed);
        RemoveLocked(shard, it);
        freed += victim->bytes + context_bytes;
        detached = true;
      }
    }
    if (!detached) {
      // Undo: the resident entry stays authoritative.
      DropSpillRecord(victim->name);
      // The victim scan would pick the same entry again only if it is
      // still coldest AND unpinned — a pinned victim repeats forever, so
      // stop this round instead; the governor retries on later charges.
      return freed;
    }
  }
  return freed;
}

std::shared_ptr<CatalogEntry> GraphCatalog::Get(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(name);
  if (it == shard.entries.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  it->second.last_touch = clock_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

Result<std::shared_ptr<CatalogEntry>> GraphCatalog::GetOrLoad(
    const std::string& name) {
  if (auto entry = Get(name)) return entry;
  {
    std::lock_guard<std::mutex> lock(spill_mu_);
    if (spilled_.find(name) == spilled_.end()) {
      return std::shared_ptr<CatalogEntry>();  // absent, not an error
    }
  }
  // One page-in at a time: racing queries for the same spilled name block
  // here and find the entry resident on their double-check instead of
  // each reading the file.
  std::lock_guard<std::mutex> page_lock(page_in_mu_);
  if (auto entry = Get(name)) return entry;
  SpillRecord record;
  {
    std::lock_guard<std::mutex> lock(spill_mu_);
    const auto it = spilled_.find(name);
    // Paged in and already evicted again between our checks: treat as
    // absent, exactly as a plain Get after that eviction would.
    if (it == spilled_.end()) return std::shared_ptr<CatalogEntry>();
    record = it->second;
  }
  const int64_t start = NowMicros();
  auto* reg = registry_.load(std::memory_order_acquire);

  // Read the whole spill file (bounded retries), then verify the CRC taken
  // at spill time BEFORE deserializing: a corrupted page is detected here
  // and can never become a servable — but wrong — graph.
  std::string blob;
  Status page = Status::OK();
  for (int attempt = 0; attempt < kSpillIoAttempts; ++attempt) {
    if (const auto o = fail::Check(fail::points::kSpillPageIn);
        o != fail::Outcome::kNone) {
      page = Status::IOError("read of " + record.path + " failed: " +
                             std::strerror(fail::InjectedErrno(o)) +
                             " (injected)");
      continue;
    }
    if (!ReadFileAll(record.path, &blob)) {
      page = Status::IOError("read of " + record.path +
                             " failed: " + std::strerror(errno));
      continue;
    }
    if (attempt > 0) CountIoError(reg, "spill_page_in", "retried");
    page = Status::OK();
    break;
  }
  Result<UncertainGraph> graph = Status::IOError("spill file not read");
  if (page.ok()) {
    if (Crc32(blob.data(), blob.size()) != record.crc) {
      page = Status::IOError("spill file " + record.path +
                             " failed its CRC check (corrupted on disk)");
    } else {
      std::istringstream in(blob);
      graph = ReadGraphBinary(in);
      if (!graph.ok()) page = graph.status();
    }
  }

  if (!page.ok()) {
    // Degraded path: the spilled copy is gone or corrupt. When the entry
    // originally came from a real snapshot file, reload that source and
    // keep serving. Entries that only ever lived in memory have nothing to
    // fall back to.
    if (!SourceIsReloadable(record.source)) {
      CountIoError(reg, "spill_page_in", "error");
      return Status::IOError("page-in of '" + name + "' from " + record.path +
                             " failed (" + page.message() +
                             ") and the snapshot has no on-disk source; "
                             "graph unavailable");
    }
    Result<UncertainGraph> reloaded = ReadGraphFile(record.source);
    if (!reloaded.ok()) {
      CountIoError(reg, "spill_page_in", "error");
      return Status::IOError("page-in of '" + name + "' from " + record.path +
                             " failed (" + page.message() +
                             ") and reloading its source " + record.source +
                             " failed: " + reloaded.status().message() +
                             "; graph unavailable");
    }
    CountIoError(reg, "spill_page_in", "degraded");
    auto entry = std::make_shared<CatalogEntry>();
    entry->name = name;
    entry->source = record.source;
    entry->graph = reloaded.MoveValue();
    // Did the reload reconstruct the exact snapshot we lost? Re-serialize
    // and compare against the CRC taken at spill time: serialization is
    // deterministic, so a match proves the source file is unchanged and
    // the reloaded graph is bit-identical to the spilled one. Then the
    // original uid survives — result-cache lines stay valid and update
    // lineages rooted on this snapshot do NOT see a base reload (which
    // would restart them and discard their committed-version listing).
    // A mismatch means the source really changed on disk: mint a fresh
    // uid so stale cached results become unreachable and lineage code can
    // apply its reload semantics.
    bool bit_identical = false;
    std::ostringstream reserialized;
    if (WriteGraphBinary(entry->graph, reserialized).ok()) {
      const std::string bytes = reserialized.str();
      bit_identical = Crc32(bytes.data(), bytes.size()) == record.crc;
    }
    std::shared_ptr<CatalogEntry> held = entry;
    if (bit_identical) {
      entry->uid = record.uid;
      InsertPrepared(std::move(entry));
    } else {
      // Insert mints the fresh uid; both paths drop the broken spill
      // record and file.
      Insert(std::move(entry));
    }
    {
      Shard& shard = ShardFor(name);
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.stats.page_ins;
    }
    if (auto* histogram = page_in_micros_.load(std::memory_order_acquire)) {
      histogram->Observe(static_cast<double>(NowMicros() - start));
    }
    return held;
  }

  auto entry = std::make_shared<CatalogEntry>();
  entry->name = name;
  entry->source = record.source;
  entry->graph = graph.MoveValue();
  // The original uid survives the round trip: result-cache lines keyed on
  // (name, uid, options) keep answering for the paged-back snapshot, which
  // is bit-identical to the spilled one by the v2 format's losslessness.
  entry->uid = record.uid;
  std::shared_ptr<CatalogEntry> held = entry;
  // InsertPrepared drops the spill record (and file) once the entry is
  // resident, and may itself re-spill under pressure — the returned
  // reference stays valid either way.
  InsertPrepared(std::move(entry));
  {
    Shard& shard = ShardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.stats.page_ins;
  }
  if (auto* histogram = page_in_micros_.load(std::memory_order_acquire)) {
    histogram->Observe(static_cast<double>(NowMicros() - start));
  }
  return held;
}

bool GraphCatalog::Contains(const std::string& name) const {
  {
    const Shard& shard = ShardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries.find(name) != shard.entries.end()) return true;
  }
  std::lock_guard<std::mutex> lock(spill_mu_);
  return spilled_.find(name) != spilled_.end();
}

bool GraphCatalog::Evict(const std::string& name) {
  bool removed = false;
  {
    Shard& shard = ShardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(name);
    if (it != shard.entries.end()) {
      ++shard.stats.evictions;
      RemoveLocked(shard, it);
      removed = true;
    }
  }
  return DropSpillRecord(name) || removed;
}

std::vector<std::string> GraphCatalog::Names() const {
  // Collect (stamp, name) pairs shard by shard, then order by stamp: the
  // global clock makes recency totally ordered across shards.
  std::vector<std::pair<uint64_t, std::string>> stamped;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, slot] : shard.entries) {
      stamped.emplace_back(slot.last_touch, name);
    }
  }
  std::sort(stamped.begin(), stamped.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> names;
  names.reserve(stamped.size());
  for (auto& [stamp, name] : stamped) names.push_back(std::move(name));
  {
    // Spilled names are colder than everything resident by construction.
    std::lock_guard<std::mutex> lock(spill_mu_);
    for (const auto& [name, record] : spilled_) names.push_back(name);
  }
  return names;
}

std::vector<std::shared_ptr<CatalogEntry>> GraphCatalog::SnapshotEntries()
    const {
  std::vector<std::shared_ptr<CatalogEntry>> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, slot] : shard.entries) {
      entries.push_back(slot.entry);
    }
  }
  return entries;
}

CatalogStats GraphCatalog::stats() const {
  CatalogStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.loads += shard.stats.loads;
    total.reloads += shard.stats.reloads;
    total.evictions += shard.stats.evictions;
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.spills += shard.stats.spills;
    total.page_ins += shard.stats.page_ins;
  }
  return total;
}

std::vector<CatalogShardInfo> GraphCatalog::ShardInfos() const {
  std::vector<CatalogShardInfo> infos;
  infos.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    CatalogShardInfo info;
    info.index = s;
    info.size = shards_[s].entries.size();
    info.bytes = shards_[s].bytes;
    info.stats = shards_[s].stats;
    infos.push_back(info);
  }
  return infos;
}

}  // namespace vulnds::serve
