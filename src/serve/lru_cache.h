// A small string-keyed LRU cache used for serving-layer result caching.
//
// Values are held behind shared_ptr<const V>, so a cached entry handed to a
// caller stays valid even if it is evicted (or the cache destroyed) while
// the caller still uses it. Capacity 0 disables caching entirely: every Get
// misses and Put is a no-op, which gives benchmarks a zero-cost "cache off"
// switch. Not thread-safe; the query engine serializes access.

#ifndef VULNDS_SERVE_LRU_CACHE_H_
#define VULNDS_SERVE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

namespace vulnds::serve {

/// Hit/miss/eviction counters; cheap to copy for reporting.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t inserts = 0;

  /// Hits over lookups, 0 when nothing was looked up.
  double HitRate() const {
    const std::size_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

template <typename V>
class LruCache {
 public:
  /// Creates a cache holding at most `capacity` entries (0 disables).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and bumps its recency, or nullptr on miss.
  std::shared_ptr<const V> Get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Returns the cached value without touching counters or recency. For
  /// re-checks that already counted their lookup (the query engine's
  /// in-batch recheck): counting again would double-book the hit rate.
  std::shared_ptr<const V> Peek(const std::string& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : it->second->second;
  }

  /// Inserts (or replaces) `key`, evicting the least-recently-used entry
  /// when over capacity.
  void Put(const std::string& key, V value) {
    if (capacity_ == 0) return;
    ++stats_.inserts;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::make_shared<const V>(std::move(value));
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::make_shared<const V>(std::move(value)));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      ++stats_.evictions;
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  /// Removes `key`; returns whether it was present.
  bool Erase(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /// Drops every entry (counters are kept).
  void Clear() {
    order_.clear();
    index_.clear();
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const V>>;

  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_LRU_CACHE_H_
