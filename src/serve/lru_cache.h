// String-keyed LRU caches for serving-layer result caching.
//
// Two implementations share one contract:
//   * LruCache<V>      — single list + map, NOT thread-safe. The reference
//                        model: the sharded cache is property-tested
//                        eviction-equivalent against it.
//   * ShardedLruCache<V> — key-hashed shards, each with its own mutex, list
//                        and counters; thread-safe. Eviction is exact
//                        global LRU (identical to LruCache) via a shared
//                        atomic touch clock, the same discipline
//                        GraphCatalog uses: every touch stamps the entry,
//                        each shard's list tail is that shard's oldest
//                        stamp, and the eviction loop removes the globally
//                        least-recently-stamped entry.
//
// Values are held behind shared_ptr<const V>, so a cached entry handed to a
// caller stays valid even if it is evicted (or the cache destroyed) while
// the caller still uses it. Capacity 0 disables caching entirely: every Get
// misses and Put is a no-op, which gives benchmarks a zero-cost "cache off"
// switch.

#ifndef VULNDS_SERVE_LRU_CACHE_H_
#define VULNDS_SERVE_LRU_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vulnds::serve {

/// Hit/miss/eviction counters; cheap to copy for reporting.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t inserts = 0;

  /// Hits over lookups, 0 when nothing was looked up.
  double HitRate() const {
    const std::size_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Per-shard detail of a ShardedLruCache, for `stats` / debugging.
struct CacheShardInfo {
  std::size_t index = 0;  ///< shard number
  std::size_t size = 0;   ///< resident entries in this shard
  CacheStats stats;       ///< this shard's counters
};

template <typename V>
class LruCache {
 public:
  /// Creates a cache holding at most `capacity` entries (0 disables).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and bumps its recency, or nullptr on miss.
  std::shared_ptr<const V> Get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Returns the cached value without touching counters or recency. For
  /// re-checks that already counted their lookup (the query engine's
  /// in-batch recheck): counting again would double-book the hit rate.
  std::shared_ptr<const V> Peek(const std::string& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : it->second->second;
  }

  /// Inserts (or replaces) `key`, evicting the least-recently-used entry
  /// when over capacity. A resident key's recency is refreshed FIRST, then
  /// its value replaced: a hot re-inserted entry moves to the front and is
  /// never left at the tail as the next eviction victim.
  void Put(const std::string& key, V value) {
    if (capacity_ == 0) return;
    ++stats_.inserts;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      it->second->second = std::make_shared<const V>(std::move(value));
      return;
    }
    order_.emplace_front(key, std::make_shared<const V>(std::move(value)));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      ++stats_.evictions;
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  /// Removes `key`; returns whether it was present.
  bool Erase(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /// Drops every entry (counters are kept).
  void Clear() {
    order_.clear();
    index_.clear();
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const V>>;

  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

/// Thread-safe sharded LRU with exact global-LRU eviction. A Get/Put/Peek
/// takes exactly one shard mutex, so concurrent sessions whose keys hash to
/// different shards never contend — the point of sharding the serving
/// engine's result cache. Capacity is GLOBAL (expected per-shard share
/// capacity/N, but a skewed key distribution may pack one shard fuller):
/// enforcing per-shard quotas instead would make eviction order depend on
/// the hash function, breaking the "behaves exactly like one big LRU"
/// contract the property tests pin.
template <typename V>
class ShardedLruCache {
 public:
  /// Default shard count, matching GraphCatalog: more shards than
  /// concurrently-hot keys is dead weight.
  static constexpr std::size_t kDefaultShards = 8;

  /// Creates a cache of `capacity` total entries (0 disables) over
  /// `shards` shards (rounded up to a power of two; 0 = kDefaultShards).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 0)
      : capacity_(capacity), shards_(NormalizedShards(shards)) {}

  /// Returns the cached value and bumps its recency, or nullptr on miss.
  std::shared_ptr<const V> Get(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return nullptr;
    }
    ++shard.stats.hits;
    Touch(shard, it->second);
    return it->second->value;
  }

  /// Returns the cached value without touching counters or recency (the
  /// query engine's in-batch recheck semantics, as in LruCache::Peek).
  std::shared_ptr<const V> Peek(const std::string& key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    return it == shard.index.end() ? nullptr : it->second->value;
  }

  /// Inserts (or replaces) `key`, evicting the globally least-recently-used
  /// entry when over capacity. Resident keys refresh recency first, then
  /// replace the value (the LruCache::Put discipline).
  void Put(const std::string& key, V value) {
    if (capacity_ == 0) return;
    {
      Shard& shard = ShardFor(key);
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.stats.inserts;
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        Touch(shard, it->second);
        it->second->value = std::make_shared<const V>(std::move(value));
        return;  // replacement never changes the resident count
      }
      shard.order.emplace_front(
          Entry{key, std::make_shared<const V>(std::move(value)),
                clock_.fetch_add(1, std::memory_order_relaxed)});
      shard.index[key] = shard.order.begin();
      total_size_.fetch_add(1, std::memory_order_relaxed);
    }
    EnforceCapacity();
  }

  /// Removes `key`; returns whether it was present.
  bool Erase(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.order.erase(it->second);
    shard.index.erase(it);
    total_size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Drops every entry (counters are kept).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total_size_.fetch_sub(shard.index.size(), std::memory_order_relaxed);
      shard.order.clear();
      shard.index.clear();
    }
  }

  std::size_t size() const {
    return total_size_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Aggregate counters, summed shard by shard under each shard's mutex:
  /// each counter is exact, the cross-shard sum is a moment-in-time
  /// aggregate, never torn.
  CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total.hits += shard.stats.hits;
      total.misses += shard.stats.misses;
      total.evictions += shard.stats.evictions;
      total.inserts += shard.stats.inserts;
    }
    return total;
  }

  /// Per-shard detail, index order.
  std::vector<CacheShardInfo> ShardInfos() const {
    std::vector<CacheShardInfo> infos;
    infos.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mu);
      CacheShardInfo info;
      info.index = s;
      info.size = shards_[s].index.size();
      info.stats = shards_[s].stats;
      infos.push_back(info);
    }
    return infos;
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
    uint64_t stamp = 0;  ///< global clock value of the latest touch
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> order;  // front = most recent within this shard
    std::unordered_map<std::string, typename std::list<Entry>::iterator> index;
    CacheStats stats;  // guarded by mu
  };

  // Bounds mirror GraphCatalog's: shards beyond the hot-key count buy
  // nothing, and the round-up must not overflow.
  static constexpr std::size_t kMaxShards = 256;

  static std::size_t NormalizedShards(std::size_t shards) {
    if (shards == 0) shards = kDefaultShards;
    shards = std::min(shards, kMaxShards);
    std::size_t p = 1;
    while (p < shards) p <<= 1;
    return p;
  }

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) & (shards_.size() - 1)];
  }
  const Shard& ShardFor(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) & (shards_.size() - 1)];
  }

  // Marks the entry most-recently-used: front of its shard's list, fresh
  // global stamp. Caller holds shard.mu.
  void Touch(Shard& shard, typename std::list<Entry>::iterator it) {
    shard.order.splice(shard.order.begin(), shard.order, it);
    it->stamp = clock_.fetch_add(1, std::memory_order_relaxed);
  }

  // Evicts globally least-recently-stamped entries until within capacity.
  // Serialized by evict_mu_ (two concurrent over-capacity Puts must not
  // both evict where one sufficed); takes one shard lock at a time, never
  // two, so no lock-order cycle with the per-shard operations. Between the
  // tail scan and the removal a Get may promote the chosen victim; the
  // stamp re-check skips the stale choice and rescans, exactly as
  // GraphCatalog::EnforceBudgets does.
  void EnforceCapacity() {
    std::lock_guard<std::mutex> evict_lock(evict_mu_);
    while (total_size_.load(std::memory_order_relaxed) > capacity_) {
      std::size_t victim = shards_.size();
      uint64_t victim_stamp = std::numeric_limits<uint64_t>::max();
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mu);
        if (shards_[s].order.empty()) continue;
        const uint64_t stamp = shards_[s].order.back().stamp;
        if (stamp < victim_stamp) {
          victim_stamp = stamp;
          victim = s;
        }
      }
      if (victim == shards_.size()) return;  // nothing resident
      Shard& shard = shards_[victim];
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.order.empty() ||
          total_size_.load(std::memory_order_relaxed) <= capacity_) {
        continue;
      }
      if (shard.order.back().stamp != victim_stamp) continue;
      ++shard.stats.evictions;
      shard.index.erase(shard.order.back().key);
      shard.order.pop_back();
      total_size_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  const std::size_t capacity_;
  std::vector<Shard> shards_;  // size is a power of two, never resized
  std::mutex evict_mu_;
  std::atomic<uint64_t> clock_{1};
  std::atomic<std::size_t> total_size_{0};
};

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_LRU_CACHE_H_
