// String-keyed LRU caches for serving-layer result caching.
//
// Two implementations share one contract:
//   * LruCache<V>      — single list + map, NOT thread-safe. The reference
//                        model: the sharded cache is property-tested
//                        eviction-equivalent against it.
//   * ShardedLruCache<V> — key-hashed shards, each with its own mutex, list
//                        and counters; thread-safe. Eviction is exact
//                        global LRU (identical to LruCache) via a shared
//                        atomic touch clock, the same discipline
//                        GraphCatalog uses: every touch stamps the entry,
//                        each shard's list tail is that shard's oldest
//                        stamp, and the eviction loop removes the globally
//                        least-recently-stamped entry.
//
// Byte awareness: both caches optionally take a SizeOf functor and a byte
// budget. Each entry is charged its SizeOf at insert; eviction then bounds
// BOTH the entry count and the resident bytes, so a handful of giant
// results can no longer hold the memory a thousand small ones were
// budgeted for. A single entry larger than the whole byte budget is
// rejected outright (counted in rejected_oversize) rather than evicting
// the entire cache and inserting anyway. The sharded cache can
// additionally charge its bytes to a store::MemoryGovernor under
// ChargeClass::kResult and expose ShedBytes() as that governor's shedder,
// which evicts globally-coldest entries on demand when OTHER pools
// (snapshots, contexts) push the process over its global budget.
//
// Values are held behind shared_ptr<const V>, so a cached entry handed to a
// caller stays valid even if it is evicted (or the cache destroyed) while
// the caller still uses it. Capacity 0 disables caching entirely: every Get
// misses and Put is a no-op, which gives benchmarks a zero-cost "cache off"
// switch.

#ifndef VULNDS_SERVE_LRU_CACHE_H_
#define VULNDS_SERVE_LRU_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "store/memory_governor.h"

namespace vulnds::serve {

/// Hit/miss/eviction counters; cheap to copy for reporting.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t inserts = 0;
  std::size_t rejected_oversize = 0;  ///< Puts refused: entry > byte budget

  /// Hits over lookups, 0 when nothing was looked up.
  double HitRate() const {
    const std::size_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Per-shard detail of a ShardedLruCache, for `stats` / debugging.
struct CacheShardInfo {
  std::size_t index = 0;  ///< shard number
  std::size_t size = 0;   ///< resident entries in this shard
  std::size_t bytes = 0;  ///< resident SizeOf bytes in this shard
  CacheStats stats;       ///< this shard's counters
};

template <typename V>
class LruCache {
 public:
  /// Charged size of a value, in bytes. Must be stable for a given value:
  /// it is computed once at Put and credited back verbatim at eviction.
  using SizeOf = std::function<std::size_t(const V&)>;

  /// Creates a cache holding at most `capacity` entries (0 disables) and,
  /// when `size_of` is provided, at most `byte_budget` charged bytes
  /// (0 = no byte bound).
  explicit LruCache(std::size_t capacity, std::size_t byte_budget = 0,
                    SizeOf size_of = nullptr)
      : capacity_(capacity),
        byte_budget_(byte_budget),
        size_of_(std::move(size_of)) {}

  /// Returns the cached value and bumps its recency, or nullptr on miss.
  std::shared_ptr<const V> Get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Returns the cached value without touching counters or recency. For
  /// re-checks that already counted their lookup (the query engine's
  /// in-batch recheck): counting again would double-book the hit rate.
  std::shared_ptr<const V> Peek(const std::string& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : it->second->value;
  }

  /// Inserts (or replaces) `key`, evicting the least-recently-used entry
  /// while over the entry capacity or the byte budget. A resident key's
  /// recency is refreshed FIRST, then its value replaced: a hot
  /// re-inserted entry moves to the front and is never left at the tail as
  /// the next eviction victim. A value alone bigger than the byte budget
  /// is rejected (the resident value, if any, is left untouched) — see
  /// stats().rejected_oversize.
  void Put(const std::string& key, V value) {
    if (capacity_ == 0) return;
    const std::size_t new_bytes = size_of_ ? size_of_(value) : 0;
    if (byte_budget_ != 0 && new_bytes > byte_budget_) {
      ++stats_.rejected_oversize;
      return;
    }
    ++stats_.inserts;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      bytes_ = bytes_ - it->second->bytes + new_bytes;
      it->second->value = std::make_shared<const V>(std::move(value));
      it->second->bytes = new_bytes;
    } else {
      order_.emplace_front(
          Entry{key, std::make_shared<const V>(std::move(value)), new_bytes});
      index_[key] = order_.begin();
      bytes_ += new_bytes;
    }
    while (index_.size() > capacity_ ||
           (byte_budget_ != 0 && bytes_ > byte_budget_)) {
      ++stats_.evictions;
      bytes_ -= order_.back().bytes;
      index_.erase(order_.back().key);
      order_.pop_back();
    }
  }

  /// Removes `key`; returns whether it was present.
  bool Erase(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    bytes_ -= it->second->bytes;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /// Drops every entry (counters are kept).
  void Clear() {
    order_.clear();
    index_.clear();
    bytes_ = 0;
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t byte_budget() const { return byte_budget_; }
  std::size_t bytes() const { return bytes_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
    std::size_t bytes = 0;
  };

  std::size_t capacity_;
  std::size_t byte_budget_;
  SizeOf size_of_;
  std::size_t bytes_ = 0;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

/// Thread-safe sharded LRU with exact global-LRU eviction. A Get/Put/Peek
/// takes exactly one shard mutex, so concurrent sessions whose keys hash to
/// different shards never contend — the point of sharding the serving
/// engine's result cache. Capacity and the byte budget are GLOBAL (expected
/// per-shard share capacity/N, but a skewed key distribution may pack one
/// shard fuller): enforcing per-shard quotas instead would make eviction
/// order depend on the hash function, breaking the "behaves exactly like
/// one big LRU" contract the property tests pin.
template <typename V>
class ShardedLruCache {
 public:
  using SizeOf = typename LruCache<V>::SizeOf;

  /// Default shard count, matching GraphCatalog: more shards than
  /// concurrently-hot keys is dead weight.
  static constexpr std::size_t kDefaultShards = 8;

  /// Creates a cache of `capacity` total entries (0 disables) over
  /// `shards` shards (rounded up to a power of two; 0 = kDefaultShards).
  /// With a `size_of`, resident bytes are additionally bounded by
  /// `byte_budget` (0 = unbounded) and, when `governor` is non-null,
  /// charged to it under ChargeClass::kResult — the governor must then
  /// outlive this cache. Configuration is construction-time only: no
  /// setters, so the concurrent paths read it without synchronization.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 0,
                           std::size_t byte_budget = 0,
                           SizeOf size_of = nullptr,
                           store::MemoryGovernor* governor = nullptr)
      : capacity_(capacity),
        byte_budget_(byte_budget),
        size_of_(std::move(size_of)),
        governor_(governor),
        shards_(NormalizedShards(shards)) {}

  ~ShardedLruCache() {
    // Give the governor its bytes back; entries still referenced by
    // callers survive via their shared_ptr but are no longer "cached".
    if (governor_ != nullptr) {
      governor_->Discharge(store::ChargeClass::kResult,
                           total_bytes_.load(std::memory_order_relaxed));
    }
  }

  /// Returns the cached value and bumps its recency, or nullptr on miss.
  std::shared_ptr<const V> Get(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return nullptr;
    }
    ++shard.stats.hits;
    Touch(shard, it->second);
    return it->second->value;
  }

  /// Returns the cached value without touching counters or recency (the
  /// query engine's in-batch recheck semantics, as in LruCache::Peek).
  std::shared_ptr<const V> Peek(const std::string& key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    return it == shard.index.end() ? nullptr : it->second->value;
  }

  /// Inserts (or replaces) `key`, evicting globally least-recently-used
  /// entries while over the entry capacity or byte budget. Resident keys
  /// refresh recency first, then replace the value (the LruCache::Put
  /// discipline). A value alone bigger than the byte budget — the cache's
  /// own or the governor's global one — is rejected, leaving any resident
  /// value untouched, and counted in rejected_oversize.
  void Put(const std::string& key, V value) {
    if (capacity_ == 0) return;
    const std::size_t new_bytes = size_of_ ? size_of_(value) : 0;
    if ((byte_budget_ != 0 && new_bytes > byte_budget_) ||
        (governor_ != nullptr && governor_->Oversize(new_bytes))) {
      Shard& shard = ShardFor(key);
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.stats.rejected_oversize;
      return;
    }
    std::size_t replaced_bytes = 0;
    bool replaced = false;
    {
      Shard& shard = ShardFor(key);
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.stats.inserts;
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        Touch(shard, it->second);
        replaced_bytes = it->second->bytes;
        it->second->value = std::make_shared<const V>(std::move(value));
        it->second->bytes = new_bytes;
        shard.bytes = shard.bytes - replaced_bytes + new_bytes;
        replaced = true;
      } else {
        shard.order.emplace_front(
            Entry{key, std::make_shared<const V>(std::move(value)), new_bytes,
                  clock_.fetch_add(1, std::memory_order_relaxed)});
        shard.index[key] = shard.order.begin();
        shard.bytes += new_bytes;
        total_size_.fetch_add(1, std::memory_order_relaxed);
      }
      if (new_bytes >= replaced_bytes) {
        total_bytes_.fetch_add(new_bytes - replaced_bytes,
                               std::memory_order_relaxed);
      } else {
        total_bytes_.fetch_sub(replaced_bytes - new_bytes,
                               std::memory_order_relaxed);
      }
    }
    // Governor charging happens strictly OUTSIDE the shard lock: Charge may
    // shed, shedding may call our own ShedBytes, and ShedBytes takes shard
    // locks. (Discharge never sheds and is safe anywhere.)
    if (governor_ != nullptr) {
      if (replaced) {
        governor_->Recharge(store::ChargeClass::kResult, replaced_bytes,
                            new_bytes);
      } else {
        governor_->Charge(store::ChargeClass::kResult, new_bytes);
      }
    }
    EnforceCapacity();
  }

  /// Removes `key`; returns whether it was present.
  bool Erase(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    const std::size_t bytes = it->second->bytes;
    shard.bytes -= bytes;
    shard.order.erase(it->second);
    shard.index.erase(it);
    total_size_.fetch_sub(1, std::memory_order_relaxed);
    total_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    if (governor_ != nullptr) {
      governor_->Discharge(store::ChargeClass::kResult, bytes);
    }
    return true;
  }

  /// Drops every entry (counters are kept).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total_size_.fetch_sub(shard.index.size(), std::memory_order_relaxed);
      total_bytes_.fetch_sub(shard.bytes, std::memory_order_relaxed);
      if (governor_ != nullptr) {
        governor_->Discharge(store::ChargeClass::kResult, shard.bytes);
      }
      shard.bytes = 0;
      shard.order.clear();
      shard.index.clear();
    }
  }

  /// Evicts globally-coldest entries until at least `want` charged bytes
  /// are freed (or the cache is empty); returns the bytes actually freed.
  /// This is the cache's store::MemoryGovernor shedder: freed bytes are
  /// discharged from the governor here, so the registered lambda just
  /// forwards the return value. Safe to call concurrently with everything.
  std::size_t ShedBytes(std::size_t want) {
    std::size_t freed = 0;
    std::lock_guard<std::mutex> evict_lock(evict_mu_);
    while (freed < want) {
      const std::size_t got = EvictColdestLocked();
      if (got == kNothingEvicted) break;
      freed += got;
    }
    return freed;
  }

  std::size_t size() const {
    return total_size_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }
  std::size_t byte_budget() const { return byte_budget_; }
  std::size_t resident_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t shard_count() const { return shards_.size(); }

  /// Aggregate counters, summed shard by shard under each shard's mutex:
  /// each counter is exact, the cross-shard sum is a moment-in-time
  /// aggregate, never torn.
  CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total.hits += shard.stats.hits;
      total.misses += shard.stats.misses;
      total.evictions += shard.stats.evictions;
      total.inserts += shard.stats.inserts;
      total.rejected_oversize += shard.stats.rejected_oversize;
    }
    return total;
  }

  /// Per-shard detail, index order.
  std::vector<CacheShardInfo> ShardInfos() const {
    std::vector<CacheShardInfo> infos;
    infos.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mu);
      CacheShardInfo info;
      info.index = s;
      info.size = shards_[s].index.size();
      info.bytes = shards_[s].bytes;
      info.stats = shards_[s].stats;
      infos.push_back(info);
    }
    return infos;
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
    std::size_t bytes = 0;  ///< SizeOf charge, credited back at eviction
    uint64_t stamp = 0;     ///< global clock value of the latest touch
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> order;  // front = most recent within this shard
    std::unordered_map<std::string, typename std::list<Entry>::iterator> index;
    std::size_t bytes = 0;  // guarded by mu
    CacheStats stats;       // guarded by mu
  };

  // Bounds mirror GraphCatalog's: shards beyond the hot-key count buy
  // nothing, and the round-up must not overflow.
  static constexpr std::size_t kMaxShards = 256;

  // EvictColdestLocked() sentinel for "nothing resident". Distinct from a
  // real 0-byte eviction (entries are 0 bytes when no SizeOf is set).
  static constexpr std::size_t kNothingEvicted =
      std::numeric_limits<std::size_t>::max();

  static std::size_t NormalizedShards(std::size_t shards) {
    if (shards == 0) shards = kDefaultShards;
    shards = std::min(shards, kMaxShards);
    std::size_t p = 1;
    while (p < shards) p <<= 1;
    return p;
  }

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) & (shards_.size() - 1)];
  }
  const Shard& ShardFor(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) & (shards_.size() - 1)];
  }

  // Marks the entry most-recently-used: front of its shard's list, fresh
  // global stamp. Caller holds shard.mu.
  void Touch(Shard& shard, typename std::list<Entry>::iterator it) {
    shard.order.splice(shard.order.begin(), shard.order, it);
    it->stamp = clock_.fetch_add(1, std::memory_order_relaxed);
  }

  // Evicts the globally least-recently-stamped entry; returns its byte
  // charge, or kNothingEvicted when the cache is empty. Caller holds
  // evict_mu_ (serializing eviction); takes one shard lock at a time,
  // never two, so no lock-order cycle with the per-shard operations.
  // Between the tail scan and the removal a Get may promote the chosen
  // victim; the stamp re-check skips the stale choice and rescans, exactly
  // as GraphCatalog::EnforceBudgets does.
  std::size_t EvictColdestLocked() {
    while (true) {
      std::size_t victim = shards_.size();
      uint64_t victim_stamp = std::numeric_limits<uint64_t>::max();
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mu);
        if (shards_[s].order.empty()) continue;
        const uint64_t stamp = shards_[s].order.back().stamp;
        if (stamp < victim_stamp) {
          victim_stamp = stamp;
          victim = s;
        }
      }
      if (victim == shards_.size()) return kNothingEvicted;
      Shard& shard = shards_[victim];
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.order.empty()) continue;
      if (shard.order.back().stamp != victim_stamp) continue;
      const std::size_t bytes = shard.order.back().bytes;
      ++shard.stats.evictions;
      shard.bytes -= bytes;
      shard.index.erase(shard.order.back().key);
      shard.order.pop_back();
      total_size_.fetch_sub(1, std::memory_order_relaxed);
      total_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      // Discharge never sheds or locks, so it is safe under shard.mu.
      if (governor_ != nullptr) {
        governor_->Discharge(store::ChargeClass::kResult, bytes);
      }
      return bytes;
    }
  }

  // Evicts until within the entry capacity AND the byte budget. Serialized
  // by evict_mu_: two concurrent over-budget Puts must not both evict
  // where one sufficed.
  void EnforceCapacity() {
    std::lock_guard<std::mutex> evict_lock(evict_mu_);
    while (total_size_.load(std::memory_order_relaxed) > capacity_ ||
           (byte_budget_ != 0 &&
            total_bytes_.load(std::memory_order_relaxed) > byte_budget_)) {
      if (EvictColdestLocked() == kNothingEvicted) return;
    }
  }

  const std::size_t capacity_;
  const std::size_t byte_budget_;
  const SizeOf size_of_;
  store::MemoryGovernor* const governor_;
  std::vector<Shard> shards_;  // size is a power of two, never resized
  std::mutex evict_mu_;
  std::atomic<uint64_t> clock_{1};
  std::atomic<std::size_t> total_size_{0};
  std::atomic<std::size_t> total_bytes_{0};
};

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_LRU_CACHE_H_
