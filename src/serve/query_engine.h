// QueryEngine: executes detection / ground-truth requests against catalog
// graphs with result caching and warm per-graph state.
//
// Layered reuse, fastest first:
//   1. the LRU result cache, keyed by (graph name, snapshot uid,
//      canonicalized options) — an identical repeated query is answered
//      without touching the graph, bit-identical to the original answer;
//      the uid scopes entries to one loaded snapshot, so reloading or
//      evicting a name can never serve results from the old graph;
//   2. the entry's DetectionContext — a near-identical query (same graph,
//      different k / method / seed) reuses the deterministic intermediates
//      it shares with earlier queries (bounds, reductions, sample orders);
//   3. a cold run on the shared ThreadPool.
// Canonicalization zeroes the DetectorOptions fields the chosen method never
// reads (e.g. `bk` for BSR, `naive_samples` for everything but N), so
// requests that differ only in irrelevant knobs share a cache line.
//
// Detect/Truth are thread-safe; per-graph context use is serialized per
// entry, so queries against different graphs never contend.

#ifndef VULNDS_SERVE_QUERY_ENGINE_H_
#define VULNDS_SERVE_QUERY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/thread_pool.h"
#include "serve/graph_catalog.h"
#include "serve/lru_cache.h"
#include "vulnds/detector.h"
#include "vulnds/ground_truth.h"

namespace vulnds::serve {

/// Returns `options` with every field the method ignores reset to its
/// default, and `pool` / `threads` cleared: execution resources are never
/// part of a query's identity — detection results are bit-identical for
/// every thread count, so `detect g 5 threads=4` may legitimately be
/// answered from a cache line computed single-threaded.
DetectorOptions CanonicalizeOptions(DetectorOptions options);

/// Stable cache-key text for a detect request ("method=BSRBK k=5 ...").
std::string CanonicalOptionsKey(const DetectorOptions& options);

struct QueryEngineOptions {
  std::size_t result_cache_capacity = 256;  ///< detect + truth entries (0 = off)
  ThreadPool* pool = nullptr;               ///< sampling parallelism
};

/// Outcome of QueryEngine::Detect.
struct DetectResponse {
  DetectionResult result;
  bool from_cache = false;
  double seconds = 0.0;  ///< wall time spent serving this request
};

/// Outcome of QueryEngine::Truth.
struct TruthResponse {
  GroundTruth truth;
  bool from_cache = false;
  double seconds = 0.0;
};

/// Aggregate request counters.
struct EngineStats {
  std::size_t detect_queries = 0;
  std::size_t truth_queries = 0;
  CacheStats result_cache;  ///< combined detect + truth cache counters
};

class QueryEngine {
 public:
  explicit QueryEngine(GraphCatalog* catalog, QueryEngineOptions options = {});

  /// Runs (or serves from cache) a detection query against graph `name`.
  /// `options.pool` is overridden: with the engine's pool by default, or —
  /// when the request carries `options.threads > 0` — with a pool of that
  /// many workers (constructed once per distinct count and kept for the
  /// engine's lifetime; `threads=1` forces a serial run). Once the engine's
  /// pool budget (kMaxExtraPools / kMaxExtraPoolThreads) is spent, further
  /// counts run on the default pool — results are identical either way.
  Result<DetectResponse> Detect(const std::string& name, DetectorOptions options);

  /// Runs (or serves from cache) a Monte-Carlo ground-truth query.
  Result<TruthResponse> Truth(const std::string& name, std::size_t samples,
                              uint64_t seed);

  GraphCatalog& catalog() { return *catalog_; }
  EngineStats stats() const;

 private:
  /// Caps on the pools built for non-default threads= requests: at most
  /// kMaxExtraPools distinct counts AND at most kMaxExtraPoolThreads OS
  /// threads summed across them (pools live for the engine's lifetime
  /// because in-flight requests may hold them). Requests past either
  /// budget — or hitting a pool-creation failure — fall back to the
  /// default pool, so a client cycling threads= values cannot grow the
  /// process's thread count without bound.
  static constexpr std::size_t kMaxExtraPools = 8;
  static constexpr std::size_t kMaxExtraPoolThreads = 128;

  /// The pool serving requests that ask for `threads` workers (0 = the
  /// engine default). Extra pools are created lazily, one per distinct
  /// count up to kMaxExtraPools, and live for the engine's lifetime.
  ThreadPool* PoolFor(std::size_t threads);

  GraphCatalog* catalog_;
  ThreadPool* pool_;

  std::mutex pools_mu_;  // guards extra_pools_ and extra_pool_threads_
  std::map<std::size_t, std::unique_ptr<ThreadPool>> extra_pools_;
  std::size_t extra_pool_threads_ = 0;  // sum of extra_pools_ widths

  mutable std::mutex mu_;  // guards caches_ and counters
  LruCache<DetectionResult> detect_cache_;
  LruCache<GroundTruth> truth_cache_;
  std::size_t detect_queries_ = 0;
  std::size_t truth_queries_ = 0;
};

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_QUERY_ENGINE_H_
