// QueryEngine: executes detection / ground-truth requests against catalog
// graphs with result caching and warm per-graph state.
//
// Layered reuse, fastest first:
//   1. the LRU result cache, keyed by (graph name, snapshot uid,
//      canonicalized options) — an identical repeated query is answered
//      without touching the graph, bit-identical to the original answer;
//      the uid scopes entries to one loaded snapshot, so reloading or
//      evicting a name can never serve results from the old graph;
//   2. the entry's DetectionContext — a near-identical query (same graph,
//      different k / method / seed) reuses the deterministic intermediates
//      it shares with earlier queries (bounds, reductions, sample orders);
//   3. a cold run on the shared ThreadPool.
// Canonicalization zeroes the DetectorOptions fields the chosen method never
// reads (e.g. `bk` for BSR, `naive_samples` for everything but N), so
// requests that differ only in irrelevant knobs share a cache line.
//
// Detect/Truth are thread-safe; per-graph context use is serialized per
// entry, so queries against different graphs never contend. The result
// cache is a ShardedLruCache: a cached-query hit takes exactly one cache
// shard mutex (no engine-wide lock anywhere on the hot path), so cached
// traffic on distinct keys scales with cores instead of convoying on one
// mutex; eviction stays exact global LRU across shards.
//
// Same-graph query batching. Concurrent cache-missing Detects against one
// snapshot are queued per snapshot uid; the first arrival becomes the batch
// leader, takes the entry's context lock ONCE, and drains every queued job
// (its own plus any that arrive while it runs) before releasing. Followers
// block on a future instead of the mutex, so N concurrent queries cost one
// context-lock acquisition, and a job whose key was computed earlier in the
// same batch is answered from the result cache without re-running. Results
// are bit-identical either way (detection is deterministic given graph +
// canonical options, warm or cold context), so batching is invisible on the
// wire except for `cached=` flips that concurrency makes inherent.

#ifndef VULNDS_SERVE_QUERY_ENGINE_H_
#define VULNDS_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "obs/slow_query_log.h"
#include "serve/graph_catalog.h"
#include "serve/lru_cache.h"
#include "store/memory_governor.h"
#include "vulnds/detector.h"
#include "vulnds/ground_truth.h"

namespace vulnds::serve {

/// Returns `options` with every field the method ignores reset to its
/// default, and `pool` / `threads` cleared: execution resources are never
/// part of a query's identity — detection results are bit-identical for
/// every thread count, so `detect g 5 threads=4` may legitimately be
/// answered from a cache line computed single-threaded.
DetectorOptions CanonicalizeOptions(DetectorOptions options);

/// Stable cache-key text for a detect request ("method=BSRBK k=5 ...").
std::string CanonicalOptionsKey(const DetectorOptions& options);

struct QueryEngineOptions {
  std::size_t result_cache_capacity = 256;  ///< detect + truth entries (0 = off)
  /// Result-cache shard count (rounded up to a power of two; 0 = default).
  /// Execution-only: eviction order and every response are identical for
  /// any shard count — 1 reproduces the old single-mutex cache exactly.
  std::size_t result_cache_shards = 0;
  ThreadPool* pool = nullptr;               ///< sampling parallelism
  /// Shared metric registry; nullptr makes the engine own a private one
  /// (exposed via registry()). Pass a shared registry when several engines
  /// must export through one `metrics` endpoint — but note that two engines
  /// on one registry share every engine-level series.
  obs::MetricRegistry* registry = nullptr;
  /// Slow-query sink; nullptr disables slow-query logging.
  obs::SlowQueryLog* slowlog = nullptr;
  /// Clock behind every recorded wall time (response time=, stage spans,
  /// latency histograms). Null = steady-clock microseconds. Tests inject a
  /// constant to make the protocol's time= token deterministic.
  obs::ClockMicros clock;
  /// Global byte governor for the memory hierarchy. Resolution order: this
  /// pointer, else the catalog's already-bound governor, else an
  /// engine-owned accounting-only governor (budget 0, so `vulnds_store_*`
  /// metrics render on an unconfigured serve). The engine registers its
  /// result caches as ChargeClass::kResult shedders and, when the catalog
  /// has no governor yet, binds the resolved one (with its context and
  /// snapshot shedders) there too. An externally supplied governor must not
  /// shed after the engine is destroyed.
  store::MemoryGovernor* governor = nullptr;
};

/// Outcome of QueryEngine::Detect.
struct DetectResponse {
  DetectionResult result;
  bool from_cache = false;
  double seconds = 0.0;  ///< wall time spent serving this request
};

/// Outcome of QueryEngine::Truth.
struct TruthResponse {
  GroundTruth truth;
  bool from_cache = false;
  double seconds = 0.0;
};

/// Aggregate request counters.
struct EngineStats {
  std::size_t detect_queries = 0;
  std::size_t truth_queries = 0;
  /// Detect jobs executed inside another request's context-lock acquisition
  /// (same-graph batching): every job after the first a leader drains.
  std::size_t batched_queries = 0;
  /// BSRBK wave-schedule telemetry summed over executed (non-cached)
  /// detects: worlds materialized past the early stop, and parallel waves
  /// dispatched. The serving-side measure of sampling waste the adaptive
  /// scheduler exists to cut.
  std::size_t worlds_wasted = 0;
  std::size_t waves_issued = 0;
  /// Coin-kernel telemetry summed over executed detects: coin slots
  /// evaluated in full vector lanes (padding included) vs one at a time.
  /// Like the wave telemetry, this measures cost, never answers.
  std::size_t simd_batched_coins = 0;
  std::size_t simd_tail_coins = 0;
  CacheStats result_cache;  ///< combined detect + truth cache counters,
                            ///< aggregated across every cache shard
  std::size_t result_cache_shards = 0;  ///< shard count of each cache
};

class QueryEngine {
 public:
  explicit QueryEngine(GraphCatalog* catalog, QueryEngineOptions options = {});

  /// Unbinds engine-owned runtime (governor, page-in observability) from
  /// the catalog, which may outlive the engine.
  ~QueryEngine();

  /// Runs (or serves from cache) a detection query against graph `name`.
  /// `options.pool` is overridden: with the engine's pool by default, or —
  /// when the request carries `options.threads > 0` — with a pool of that
  /// many workers (constructed once per distinct count and kept for the
  /// engine's lifetime; `threads=1` forces a serial run). Once the engine's
  /// pool budget (kMaxExtraPools / kMaxExtraPoolThreads) is spent, further
  /// counts run on the default pool — results are identical either way.
  Result<DetectResponse> Detect(const std::string& name, DetectorOptions options);

  /// Runs (or serves from cache) a Monte-Carlo ground-truth query.
  Result<TruthResponse> Truth(const std::string& name, std::size_t samples,
                              uint64_t seed);

  GraphCatalog& catalog() { return *catalog_; }
  EngineStats stats() const;

  /// The engine's default sampling pool (may be nullptr). Exposed so a
  /// session front can refuse to run blocking sessions on it (deadlock:
  /// sessions wait on detect fan-out, fan-out waits for pool workers).
  ThreadPool* sampling_pool() const { return pool_; }

  /// The registry every engine metric lives in (never nullptr: either the
  /// one injected via options or the engine-owned default).
  obs::MetricRegistry* registry() { return registry_; }

  /// The resolved byte governor (never nullptr; see QueryEngineOptions).
  store::MemoryGovernor* governor() { return governor_; }

  /// Current time on the engine's clock, in microseconds. The time base of
  /// every response's time= token and of the session-level histograms, so
  /// injecting a constant clock makes whole transcripts deterministic.
  int64_t NowMicros() const {
    return clock_ ? clock_() : obs::SteadyNowMicros();
  }

  /// Copies the mutex-guarded structural counters (catalog shards, result
  /// cache shards, context residency) into their registry mirrors. Called
  /// by the `metrics` verb before rendering; cheap enough for any scrape
  /// cadence (one pass over shard infos, try_lock on contexts).
  void RefreshMetrics();

 private:
  /// One queued cache-missing Detect: execution options (pool resolved),
  /// result-cache key, and the promise its issuer blocks on. The bool is
  /// from_cache: true when answered by the in-batch cache re-check.
  struct DetectJob {
    DetectorOptions options;
    std::string key;
    std::promise<std::pair<Result<DetectionResult>, bool>> promise;
  };

  /// Pending jobs for one snapshot uid plus whether a leader is draining.
  struct GraphBatch {
    std::deque<std::shared_ptr<DetectJob>> queue;
    bool leader_active = false;
  };

  /// Fairness bound on one leadership: after this many drained jobs the
  /// leader takes what is queued, closes the batch (the next arrival leads
  /// a fresh one), finishes its obligations and returns to its session.
  static constexpr std::size_t kMaxBatchJobs = 32;

  /// Drains the batch for `entry` under one context-lock acquisition.
  void RunDetectBatch(const std::shared_ptr<CatalogEntry>& entry);

  /// Re-publishes the entry's context byte charge to the governor after a
  /// batch mutated the context. Must run under the entry's context_mu (it
  /// excludes the context shedder); the detached double-check settles the
  /// race against a concurrent evict/replace/spill of the entry.
  void RechargeContext(const std::shared_ptr<CatalogEntry>& entry);

  /// Executes one job (cache re-check, detection, cache fill) and always
  /// resolves its promise, exceptions included.
  void ExecuteDetectJob(const std::shared_ptr<CatalogEntry>& entry,
                        DetectJob& job);
  /// Caps on the pools built for non-default threads= requests: at most
  /// kMaxExtraPools distinct counts AND at most kMaxExtraPoolThreads OS
  /// threads summed across them (pools live for the engine's lifetime
  /// because in-flight requests may hold them). Requests past either
  /// budget — or hitting a pool-creation failure — fall back to the
  /// default pool, so a client cycling threads= values cannot grow the
  /// process's thread count without bound.
  static constexpr std::size_t kMaxExtraPools = 8;
  static constexpr std::size_t kMaxExtraPoolThreads = 128;

  /// The pool serving requests that ask for `threads` workers (0 = the
  /// engine default). Extra pools are created lazily, one per distinct
  /// count up to kMaxExtraPools, and live for the engine's lifetime.
  ThreadPool* PoolFor(std::size_t threads);

  /// Completes a finished detect/truth request: stamps response seconds,
  /// feeds the latency and per-stage histograms, and offers the query to
  /// the slow-query log. `verb` indexes request_micros_ (0 = detect,
  /// 1 = truth); `cache_key` is the full result-cache key (the canonical
  /// options are its part after '|').
  void FinishQuery(int verb, const std::string& name,
                   const std::string& cache_key, const obs::QueryTrace& trace,
                   int64_t start_micros, bool cached, double* seconds);

  /// Resolves the per-stage histogram for `stage`: the well-known pipeline
  /// stages are pre-resolved at construction (no registry mutex on the
  /// request path); anything else falls through to the registry.
  obs::Histogram* StageHistogram(const std::string& stage);

  GraphCatalog* catalog_;
  ThreadPool* pool_;

  // Observability plumbing. Counters/histograms live in the registry and
  // are resolved once here; recording through them is lock-free.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* registry_;
  obs::SlowQueryLog* slowlog_;
  obs::ClockMicros clock_;

  // Byte-governance plumbing. Declared before the caches: the caches hold
  // the governor pointer and discharge through it on destruction, so the
  // governor must be constructed first and destroyed last. The flag
  // records whether this engine bound the governor into the catalog (and
  // must unbind it before dying).
  std::unique_ptr<store::MemoryGovernor> owned_governor_;
  store::MemoryGovernor* governor_;
  bool bound_catalog_governor_ = false;

  std::mutex pools_mu_;  // guards extra_pools_ and extra_pool_threads_
  std::map<std::size_t, std::unique_ptr<ThreadPool>> extra_pools_;
  std::size_t extra_pool_threads_ = 0;  // sum of extra_pools_ widths

  // Internally synchronized (per-shard mutexes); no engine-wide cache lock
  // exists. Request counters and wave telemetry are registry-backed
  // lock-free counters — each individually exact, read as a moment-in-time
  // snapshot by stats() (which stays byte-compatible: the counters
  // increment at exactly the points the former atomics did).
  ShardedLruCache<DetectionResult> detect_cache_;
  ShardedLruCache<GroundTruth> truth_cache_;
  obs::Counter* detect_queries_;
  obs::Counter* truth_queries_;
  obs::Counter* worlds_wasted_;
  obs::Counter* waves_issued_;
  obs::Counter* simd_batched_coins_;
  obs::Counter* simd_tail_coins_;
  obs::Counter* batched_queries_;
  // Latency histograms: [verb][cached], verb 0 = detect, 1 = truth.
  obs::Histogram* request_micros_[2][2];
  // Pre-resolved per-stage histograms for the pipeline's own stage names.
  static constexpr std::size_t kKnownStages = 7;
  std::pair<const char*, obs::Histogram*> stage_micros_[kKnownStages];

  // Same-graph batching state, keyed by snapshot uid. Lock order: an
  // entry's context_mu may be held while taking batch_mu_ or a cache shard
  // mutex (the leader does both); never the reverse.
  mutable std::mutex batch_mu_;
  std::unordered_map<uint64_t, GraphBatch> batches_;
};

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_QUERY_ENGINE_H_
