#include "serve/session.h"

#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "common/line_splitter.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "serve/metrics_export.h"
#include "serve/protocol.h"
#include "simd/dispatch.h"
#include "vulnds/ground_truth.h"

namespace vulnds::serve {

ReadLineResult ReadRequestLine(std::istream& in, std::string* line,
                               std::size_t max_bytes) {
  line->clear();
  // Framing (cap, resync, CRLF) lives in the shared LineSplitter so the
  // blocking stdin loop and the socket connection loop (src/net/) cannot
  // drift apart; this wrapper only pumps streambuf bytes into it. sbumpc
  // serves from the buffer without per-byte istream sentry overhead, and
  // the hostile-line memory stays capped at max_bytes either way.
  LineSplitter splitter(max_bytes);
  std::streambuf* buf = in.rdbuf();
  constexpr int kEofChar = std::char_traits<char>::eof();
  for (;;) {
    const int c = buf->sbumpc();
    if (c == kEofChar) {
      in.setstate(std::ios::eofbit);
      switch (splitter.Finish(line)) {
        case LineSplitter::Event::kLine:
          return ReadLineResult::kLine;
        case LineSplitter::Event::kOversized:
          return ReadLineResult::kOversized;
        case LineSplitter::Event::kNone:
          return ReadLineResult::kEof;
      }
    }
    const char byte = static_cast<char>(c);
    splitter.Feed(&byte, 1);
    switch (splitter.Next(line)) {
      case LineSplitter::Event::kLine:
        return ReadLineResult::kLine;
      case LineSplitter::Event::kOversized:
        return ReadLineResult::kOversized;
      case LineSplitter::Event::kNone:
        break;
    }
  }
}

void DriveSession(ServeSession& session, std::istream& in, std::ostream& out) {
  std::string line;
  for (;;) {
    const ReadLineResult read = ReadRequestLine(in, &line);
    if (read == ReadLineResult::kEof) break;
    bool keep_going = true;
    if (read == ReadLineResult::kOversized) {
      session.HandleOversizedLine(out);
    } else {
      keep_going = session.HandleLine(line, out);
    }
    out.flush();
    if (!keep_going) break;
  }
}

ServeSession::ServeSession(QueryEngine* engine, UpdateBackend* updates,
                           ServerStats* server)
    : engine_(engine), updates_(updates), server_(server) {}

void ServeSession::CountRequest() {
  ++stats_.requests;
  if (server_ != nullptr) {
    server_->requests.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServeSession::CountUpdate() {
  ++stats_.updates;
  if (server_ != nullptr) {
    server_->updates.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServeSession::Err(std::ostream& out, const std::string& message) {
  ++stats_.errors;
  if (server_ != nullptr) {
    server_->errors.fetch_add(1, std::memory_order_relaxed);
  }
  out << "err " << message << "\n";
}

void ServeSession::HandleOversizedLine(std::ostream& out) {
  CountRequest();
  Err(out, "request line exceeds " + std::to_string(kMaxRequestLineBytes) +
               " bytes");
}

obs::Histogram* ServeSession::VerbHistogram(int command) {
  const std::size_t index = static_cast<std::size_t>(command);
  if (index >= kVerbSlots) return nullptr;
  obs::Histogram*& slot = verb_micros_[index];
  if (slot == nullptr) {
    slot = engine_->registry()->GetHistogram(
        "vulnds_server_request_micros",
        "Per-verb request handling latency in microseconds",
        obs::LatencyBucketsMicros(),
        {{"verb", ServeCommandName(static_cast<ServeCommand>(command))}});
  }
  return slot;
}

bool ServeSession::HandleLine(const std::string& line, std::ostream& out) {
  Result<ServeRequest> request = ParseServeRequest(line);
  if (!request.ok()) {
    CountRequest();
    Err(out, request.status().message());
    return true;
  }
  if (request->command == ServeCommand::kNone) return true;
  CountRequest();
  const int64_t start = engine_->NowMicros();
  bool keep_going = true;
  switch (request->command) {
    case ServeCommand::kQuit:
      out << "ok bye\n";
      keep_going = false;
      break;
    case ServeCommand::kShutdown:
      // Acknowledge before draining: the issuing client must see its answer
      // even though the front end stops accepting the moment the hook runs.
      out << "ok draining\n";
      if (drain_hook_) drain_hook_();
      keep_going = false;
      break;
    case ServeCommand::kLoad:
      HandleLoad(*request, out);
      break;
    case ServeCommand::kSave:
      HandleSave(*request, out);
      break;
    case ServeCommand::kDetect:
      HandleDetect(*request, out);
      break;
    case ServeCommand::kTruth:
      HandleTruth(*request, out);
      break;
    case ServeCommand::kStats:
      HandleStats(*request, out);
      break;
    case ServeCommand::kMetrics:
      HandleMetrics(out);
      break;
    case ServeCommand::kCatalog:
      HandleCatalog(out);
      break;
    case ServeCommand::kEvict:
      HandleEvict(*request, out);
      break;
    case ServeCommand::kAddEdge:
    case ServeCommand::kDelEdge:
    case ServeCommand::kSetProb:
      if (RequireUpdates(out)) HandleStageUpdate(*request, out);
      break;
    case ServeCommand::kCommit:
      if (RequireUpdates(out)) HandleCommit(*request, out);
      break;
    case ServeCommand::kVersions:
      if (RequireUpdates(out)) HandleVersions(*request, out);
      break;
    case ServeCommand::kNone:
      break;
  }
  if (obs::Histogram* h = VerbHistogram(static_cast<int>(request->command))) {
    h->Observe(static_cast<double>(engine_->NowMicros() - start));
  }
  return keep_going;
}

void ServeSession::HandleLoad(const ServeRequest& r, std::ostream& out) {
  const Status st = engine_->catalog().Load(r.name, r.path);
  if (!st.ok()) {
    Err(out, st.ToString());
    return;
  }
  const auto entry = engine_->catalog().Get(r.name);
  if (entry == nullptr) {
    // A concurrent evict (or capacity eviction) can race the load-then-get.
    Err(out, "graph '" + r.name + "' was evicted during load");
    return;
  }
  out << "ok loaded " << r.name << " nodes=" << entry->graph.num_nodes()
      << " edges=" << entry->graph.num_edges() << " source=" << r.path << "\n";
}

void ServeSession::HandleSave(const ServeRequest& r, std::ostream& out) {
  const auto entry = engine_->catalog().Get(r.name);
  if (entry == nullptr) {
    Err(out, "graph '" + r.name + "' is not in the catalog");
    return;
  }
  const Status st = WriteGraphFile(entry->graph, r.path, r.format);
  if (!st.ok()) {
    Err(out, st.ToString());
    return;
  }
  out << "ok saved " << r.name << " path=" << r.path << " format="
      << (r.format == GraphFileFormat::kBinary ? "binary" : "text") << "\n";
}

void ServeSession::HandleDetect(const ServeRequest& r, std::ostream& out) {
  Result<DetectResponse> response = engine_->Detect(r.name, r.options);
  if (!response.ok()) {
    Err(out, response.status().ToString());
    return;
  }
  const DetectionResult& result = response->result;
  out << "ok detect " << r.name << " method=" << MethodName(r.options.method)
      << " k=" << r.options.k << " cached=" << (response->from_cache ? 1 : 0)
      << " time=" << FormatRoundTrip(response->seconds)
      << " samples=" << result.samples_processed << "/" << result.samples_budget
      << " verified=" << result.verified_count << "\n";
  for (std::size_t i = 0; i < result.topk.size(); ++i) {
    out << (i + 1) << ' ' << result.topk[i] << ' '
        << FormatRoundTrip(result.scores[i]) << "\n";
  }
  out << ".\n";
}

void ServeSession::HandleTruth(const ServeRequest& r, std::ostream& out) {
  const std::size_t samples =
      r.samples == 0 ? kPaperGroundTruthSamples : r.samples;
  Result<TruthResponse> response = engine_->Truth(r.name, samples, r.seed);
  if (!response.ok()) {
    Err(out, response.status().ToString());
    return;
  }
  out << "ok truth " << r.name << " k=" << r.k << " samples=" << samples
      << " cached=" << (response->from_cache ? 1 : 0)
      << " time=" << FormatRoundTrip(response->seconds) << "\n";
  std::size_t rank = 1;
  for (const NodeId v : response->truth.TopK(r.k)) {
    out << rank++ << ' ' << v << ' '
        << FormatRoundTrip(response->truth.probabilities[v]) << "\n";
  }
  out << ".\n";
}

void ServeSession::HandleStats(const ServeRequest& r, std::ostream& out) {
  if (r.name.empty()) {
    const EngineStats s = engine_->stats();
    const GraphCatalog& catalog = engine_->catalog();
    const CatalogStats c = catalog.stats();
    out << "ok stats engine\n";
    out << "detect_queries=" << s.detect_queries << "\n";
    out << "truth_queries=" << s.truth_queries << "\n";
    out << "batched_queries=" << s.batched_queries << "\n";
    out << "worlds_wasted=" << s.worlds_wasted << "\n";
    out << "waves_issued=" << s.waves_issued << "\n";
    // The process-default kernel tier plus the coin-kernel cost split.
    // Like the wave telemetry these vary with hardware and the simd= knob,
    // never with a query's answer.
    out << "simd_tier=" << simd::SimdTierName(simd::DefaultTier()) << "\n";
    out << "simd_batched_coins=" << s.simd_batched_coins << "\n";
    out << "simd_tail_coins=" << s.simd_tail_coins << "\n";
    out << "cache_hits=" << s.result_cache.hits << "\n";
    out << "cache_misses=" << s.result_cache.misses << "\n";
    out << "cache_hit_rate=" << FormatRoundTrip(s.result_cache.HitRate()) << "\n";
    out << "cache_shards=" << s.result_cache_shards << "\n";
    out << "catalog_size=" << catalog.size() << "\n";
    out << "catalog_bytes=" << catalog.resident_bytes() << "\n";
    // Storage hierarchy: what is resident, what the governor allows, what
    // was spilled cold to disk, and how large the durability journal has
    // grown. resident_bytes repeats catalog_bytes under the storage
    // vocabulary so monitoring reads one consistent key set.
    out << "resident_bytes=" << catalog.resident_bytes() << "\n";
    out << "spilled_bytes=" << catalog.spilled_bytes() << "\n";
    out << "spilled_graphs=" << catalog.spilled_count() << "\n";
    {
      const store::MemoryGovernor* governor = catalog.governor();
      out << "store_budget_bytes="
          << (governor != nullptr ? governor->budget() : 0) << "\n";
    }
    out << "journal_bytes="
        << (updates_ != nullptr ? updates_->JournalBytes() : 0) << "\n";
    // Warm DetectionContext intermediates grow with query traffic and are
    // deliberately NOT charged to the catalog byte budget; reported
    // separately so catalog_bytes= does not understate hot-graph residency.
    // try_lock, never block: a batch leader holds an entry's context_mu for
    // a whole drain of sampling runs, and a monitoring probe must not stall
    // behind minutes of query work — an entry busy right now is skipped and
    // counted, so the figure is a moment-in-time lower bound (like every
    // other aggregate this verb prints).
    std::size_t context_bytes = 0;
    std::size_t context_busy = 0;
    for (const auto& entry : catalog.SnapshotEntries()) {
      std::unique_lock<std::mutex> lock(entry->context_mu, std::try_to_lock);
      if (lock.owns_lock()) {
        context_bytes += entry->context.ApproxBytes();
      } else {
        ++context_busy;
      }
    }
    out << "context_bytes=" << context_bytes << "\n";
    out << "context_busy=" << context_busy << "\n";
    out << "catalog_evictions=" << c.evictions << "\n";
    out << "catalog_shards=" << catalog.shard_count() << "\n";
    for (const CatalogShardInfo& shard : catalog.ShardInfos()) {
      out << "shard " << shard.index << " size=" << shard.size
          << " bytes=" << shard.bytes << " hits=" << shard.stats.hits
          << " misses=" << shard.stats.misses
          << " evictions=" << shard.stats.evictions << "\n";
    }
    if (server_ != nullptr) {
      // Relaxed snapshot: each counter exact, the set read at one moment.
      out << "server sessions_started="
          << server_->sessions_started.load(std::memory_order_relaxed)
          << " sessions_finished="
          << server_->sessions_finished.load(std::memory_order_relaxed)
          << " requests=" << server_->requests.load(std::memory_order_relaxed)
          << " errors=" << server_->errors.load(std::memory_order_relaxed)
          << " updates=" << server_->updates.load(std::memory_order_relaxed)
          << "\n";
    }
    // The whole session state in one parseable line: loop counters (the
    // stats request itself is already counted) plus the result cache. The
    // bare hits/misses keys keep this line's vocabulary disjoint from the
    // per-counter cache_* lines above.
    out << "serve requests=" << stats_.requests << " errors=" << stats_.errors
        << " updates=" << stats_.updates << " hits=" << s.result_cache.hits
        << " misses=" << s.result_cache.misses
        << " evictions=" << s.result_cache.evictions << "\n";
    out << ".\n";
    return;
  }
  const auto entry = engine_->catalog().Get(r.name);
  if (entry == nullptr) {
    Err(out, "graph '" + r.name + "' is not in the catalog");
    return;
  }
  const GraphStats s = ComputeStats(entry->graph);
  out << "ok stats " << r.name << "\n";
  out << "nodes=" << s.num_nodes << "\n";
  out << "edges=" << s.num_edges << "\n";
  out << "avg_degree=" << FormatRoundTrip(s.avg_degree) << "\n";
  out << "max_degree=" << s.max_degree << "\n";
  out << "source=" << entry->source << "\n";
  {
    std::lock_guard<std::mutex> lock(entry->context_mu);
    out << "context_reuse_hits=" << entry->context.reuse_hits << "\n";
    out << "context_reuse_misses=" << entry->context.reuse_misses << "\n";
    out << "context_bytes=" << entry->context.ApproxBytes() << "\n";
  }
  out << ".\n";
}

void ServeSession::HandleMetrics(std::ostream& out) {
  // One registry, one renderer: the exposition the `metrics` verb returns
  // is byte-identical to what a future socket scrape endpoint would serve.
  out << "ok metrics\n";
  out << RenderServeMetrics(*engine_, server_);
  out << ".\n";
}

void ServeSession::HandleCatalog(std::ostream& out) {
  out << "ok catalog size=" << engine_->catalog().size() << "\n";
  for (const std::string& name : engine_->catalog().Names()) {
    out << name << "\n";
  }
  out << ".\n";
}

void ServeSession::HandleEvict(const ServeRequest& r, std::ostream& out) {
  if (engine_->catalog().Evict(r.name)) {
    out << "ok evicted " << r.name << "\n";
  } else {
    Err(out, "graph '" + r.name + "' is not in the catalog");
  }
}

bool ServeSession::RequireUpdates(std::ostream& out) {
  if (updates_ != nullptr) return true;
  Err(out, "dynamic updates are not enabled in this session");
  return false;
}

void ServeSession::HandleStageUpdate(const ServeRequest& r, std::ostream& out) {
  const char* verb = r.command == ServeCommand::kAddEdge   ? "addedge"
                     : r.command == ServeCommand::kDelEdge ? "deledge"
                                                           : "setprob";
  Result<UpdateAck> ack = [&]() -> Result<UpdateAck> {
    switch (r.command) {
      case ServeCommand::kAddEdge:
        return updates_->AddEdge(r.name, r.src, r.dst, r.prob);
      case ServeCommand::kDelEdge:
        return updates_->DeleteEdge(r.name, r.src, r.dst);
      default:
        return updates_->SetProb(r.name, r.src, r.dst, r.prob);
    }
  }();
  if (!ack.ok()) {
    Err(out, ack.status().ToString());
    return;
  }
  CountUpdate();
  out << "ok " << verb << ' ' << r.name << ' ' << r.src << ' ' << r.dst;
  if (r.command != ServeCommand::kDelEdge) {
    out << " p=" << FormatRoundTrip(r.prob);
  }
  out << " pending=" << ack->pending << " live_edges=" << ack->live_edges
      << "\n";
}

void ServeSession::HandleCommit(const ServeRequest& r, std::ostream& out) {
  Result<CommitInfo> info = updates_->Commit(r.name);
  if (!info.ok()) {
    Err(out, info.status().ToString());
    return;
  }
  CountUpdate();
  out << "ok committed " << info->versioned_name << " nodes=" << info->nodes
      << " edges=" << info->edges << " ops=" << info->ops
      << " touched=" << info->touched_nodes << " carried=" << info->carried
      << " dropped=" << info->dropped
      << " time=" << FormatRoundTrip(info->seconds) << "\n";
}

void ServeSession::HandleVersions(const ServeRequest& r, std::ostream& out) {
  Result<std::vector<VersionInfo>> versions = updates_->Versions(r.name);
  if (!versions.ok()) {
    Err(out, versions.status().ToString());
    return;
  }
  out << "ok versions " << r.name << " count=" << versions->size() << "\n";
  for (const VersionInfo& v : *versions) {
    out << "v" << v.version << ' ' << v.catalog_name << " nodes=" << v.nodes
        << " edges=" << v.edges << " ops=" << v.ops << "\n";
  }
  out << ".\n";
}

}  // namespace vulnds::serve
