#include "serve/serve_server.h"

#include <istream>
#include <ostream>
#include <string>
#include <utility>

namespace vulnds::serve {

ServeServer::ServeServer(QueryEngine* engine, UpdateBackend* updates,
                         ThreadPool* session_pool)
    : engine_(engine),
      updates_(updates),
      // Sessions block on the engine's sampling pool during a detect; if
      // they also ran ON that pool its workers could all be blocked
      // sessions and the fan-out would never start. Degrade to dedicated
      // threads instead of deadlocking.
      session_pool_(session_pool == engine->sampling_pool() ? nullptr
                                                            : session_pool) {}

ServeServer::~ServeServer() { Join(); }

ServeSession ServeServer::NewSession() {
  stats_.sessions_started.fetch_add(1, std::memory_order_relaxed);
  return ServeSession(engine_, updates_, &stats_);
}

ServeLoopStats ServeServer::ServeStream(std::istream& in, std::ostream& out) {
  ServeSession session = NewSession();
  DriveSession(session, in, out);
  stats_.sessions_finished.fetch_add(1, std::memory_order_relaxed);
  return session.stats();
}

void ServeServer::Submit(std::istream* in, std::ostream* out) {
  if (session_pool_ != nullptr) {
    session_pool_->Submit([this, in, out] { ServeStream(*in, *out); });
    return;
  }
  std::lock_guard<std::mutex> lock(threads_mu_);
  threads_.emplace_back([this, in, out] { ServeStream(*in, *out); });
}

void ServeServer::Join() {
  if (session_pool_ != nullptr) session_pool_->Wait();
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    joinable.swap(threads_);
  }
  for (std::thread& t : joinable) t.join();
}

ServerStatsSnapshot ServeServer::stats() const {
  ServerStatsSnapshot s;
  s.sessions_started = stats_.sessions_started.load(std::memory_order_relaxed);
  s.sessions_finished = stats_.sessions_finished.load(std::memory_order_relaxed);
  s.requests = stats_.requests.load(std::memory_order_relaxed);
  s.errors = stats_.errors.load(std::memory_order_relaxed);
  s.updates = stats_.updates.load(std::memory_order_relaxed);
  return s;
}

}  // namespace vulnds::serve
