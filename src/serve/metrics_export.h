// The serve stack's one scrape point: refreshes every scrape-time mirror
// (catalog shards, result-cache shards, server counters) in the engine's
// registry and renders the whole thing as Prometheus text exposition. The
// `metrics` verb and any future socket endpoint both call exactly this, so
// the exposition cannot drift between transports.

#ifndef VULNDS_SERVE_METRICS_EXPORT_H_
#define VULNDS_SERVE_METRICS_EXPORT_H_

#include <string>

#include "serve/query_engine.h"
#include "serve/session.h"

namespace vulnds::serve {

/// Renders the engine registry's full exposition. `server` may be nullptr
/// (single-session fronts); when set, its counters are mirrored into the
/// vulnds_server_* families first.
std::string RenderServeMetrics(QueryEngine& engine, const ServerStats* server);

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_METRICS_EXPORT_H_
