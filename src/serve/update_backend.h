// UpdateBackend: the serve loop's port to the dynamic-update write path.
//
// The serve module stays below the update subsystem in the link order
// (dyn -> serve, because committing registers snapshots in the
// GraphCatalog), so the loop talks to updates through this narrow interface
// and dyn::UpdateManager implements it. A session run without a backend
// answers every update verb with an error instead of dying.

#ifndef VULNDS_SERVE_UPDATE_BACKEND_H_
#define VULNDS_SERVE_UPDATE_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace vulnds::serve {

/// Acknowledgement of one staged (uncommitted) update.
struct UpdateAck {
  std::size_t pending = 0;     ///< staged ops not yet committed
  std::size_t live_edges = 0;  ///< edge count the next commit will have
};

/// Outcome of committing the staged updates of one graph.
struct CommitInfo {
  std::string versioned_name;      ///< catalog name, e.g. "g@v3"
  uint64_t version = 0;            ///< the N of name@vN
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t ops = 0;             ///< staged records applied
  std::size_t touched_nodes = 0;   ///< nodes whose adjacency changed
  std::size_t carried = 0;         ///< context intermediates carried forward
  std::size_t dropped = 0;         ///< context intermediates invalidated
  double seconds = 0.0;            ///< commit wall time
};

/// One entry of a graph's version history.
struct VersionInfo {
  uint64_t version = 0;       ///< 0 is the base snapshot
  std::string catalog_name;   ///< "g" for the base, "g@vN" afterwards
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t ops = 0;        ///< deltas applied to produce this version
};

class UpdateBackend {
 public:
  virtual ~UpdateBackend() = default;

  /// Stage a directed edge src -> dst with diffusion probability `prob`.
  virtual Result<UpdateAck> AddEdge(const std::string& name, NodeId src,
                                    NodeId dst, double prob) = 0;
  /// Stage deletion of the lowest-id live edge (src, dst).
  virtual Result<UpdateAck> DeleteEdge(const std::string& name, NodeId src,
                                       NodeId dst) = 0;
  /// Stage a probability update on the lowest-id live edge (src, dst).
  virtual Result<UpdateAck> SetProb(const std::string& name, NodeId src,
                                    NodeId dst, double prob) = 0;
  /// Materialize the staged updates of `name` as the next version.
  virtual Result<CommitInfo> Commit(const std::string& name) = 0;
  /// The version history of `name`, base first.
  virtual Result<std::vector<VersionInfo>> Versions(const std::string& name) = 0;

  /// Bytes the durable delta journal currently occupies on disk; 0 when the
  /// backend runs without one.
  virtual std::size_t JournalBytes() const { return 0; }
};

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_UPDATE_BACKEND_H_
