// ServeSession: one client's parse -> dispatch -> respond state machine,
// decoupled from any particular stream.
//
// The session owns its ServeLoopStats and holds references to the shared
// QueryEngine / UpdateBackend; it never owns a stream. Callers feed it one
// request line at a time (HandleLine) and hand it an ostream to write the
// response to, so the same object serves a blocking stdin loop
// (RunServeLoop in server.h), a multiplexed ServeServer session
// (serve_server.h), or a benchmark that times each request individually.
//
// Counter consistency story (the serve stack's single source of truth):
//   * ServeLoopStats is per-session and plain — exactly one session thread
//     ever touches it, and it is read only after the session finished.
//   * ServerStats (shared across sessions) is all relaxed atomics — each
//     counter is individually exact and never torn; a cross-counter read
//     (the `stats` verb) is a moment-in-time snapshot, not a transaction.
//   * Catalog and result-cache counters are guarded per shard by that
//     shard's mutex; QueryEngine request/telemetry counters are relaxed
//     atomics. Aggregates sum the guarded values, so they can lag in-flight
//     requests but can never report a torn half-written value.

#ifndef VULNDS_SERVE_SESSION_H_
#define VULNDS_SERVE_SESSION_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>

#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/update_backend.h"

namespace vulnds::serve {

struct ServeRequest;  // protocol.h

/// Counters for one serve session.
struct ServeLoopStats {
  std::size_t requests = 0;  ///< non-blank lines processed
  std::size_t errors = 0;    ///< "err" responses emitted
  std::size_t updates = 0;   ///< accepted update verbs (incl. commits)
};

/// Server-level counters shared by every session of one ServeServer.
/// Relaxed atomics: see the consistency story above.
struct ServerStats {
  std::atomic<std::size_t> sessions_started{0};
  std::atomic<std::size_t> sessions_finished{0};
  std::atomic<std::size_t> requests{0};
  std::atomic<std::size_t> errors{0};
  std::atomic<std::size_t> updates{0};
};

/// A plain copy of ServerStats for reporting.
struct ServerStatsSnapshot {
  std::size_t sessions_started = 0;
  std::size_t sessions_finished = 0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  std::size_t updates = 0;
};

/// Hard cap on one protocol line: a hostile client streaming bytes without a
/// newline costs at most this much memory, answers a single "err" response,
/// and the stream resynchronizes at the next newline.
inline constexpr std::size_t kMaxRequestLineBytes = 64 * 1024;

/// Outcome of reading one request line.
enum class ReadLineResult {
  kLine,       ///< *line holds a complete (possibly empty) request line
  kOversized,  ///< line exceeded max_bytes; discarded up to the next newline
  kEof,        ///< end of stream, nothing read
};

/// Reads one newline-terminated request line into *line, enforcing the byte
/// cap. A final unterminated line is returned as kLine (matching getline);
/// an oversized line is discarded through its terminating newline so the
/// next read starts on a fresh request.
ReadLineResult ReadRequestLine(std::istream& in, std::string* line,
                               std::size_t max_bytes = kMaxRequestLineBytes);

/// One serve session over a shared engine. Not thread-safe: a session
/// belongs to exactly one client/thread; concurrency comes from running
/// many sessions (ServeServer), never from sharing one.
class ServeSession {
 public:
  /// `updates` may be nullptr (update verbs answer errors); `server` may be
  /// nullptr (counters stay session-local).
  explicit ServeSession(QueryEngine* engine, UpdateBackend* updates = nullptr,
                        ServerStats* server = nullptr);

  /// Parses and executes one request line, writing the response to `out`.
  /// Returns false when the session is over (`quit`), true otherwise —
  /// including on malformed input, which answers a single "err" line.
  bool HandleLine(const std::string& line, std::ostream& out);

  /// Emits the error response for a line rejected by ReadRequestLine's
  /// byte cap (counts as one request and one error).
  void HandleOversizedLine(std::ostream& out);

  /// Installs the `shutdown` verb's action: the front end's graceful-drain
  /// trigger (NetServer::BeginDrain for sockets; a no-op for the stdin
  /// front, where ending the one session IS the drain). The session answers
  /// "ok draining", invokes the hook, and ends like `quit`. Without a hook
  /// the verb still drains whatever front called DriveSession, because the
  /// session ends.
  void set_drain_hook(std::function<void()> hook) {
    drain_hook_ = std::move(hook);
  }

  const ServeLoopStats& stats() const { return stats_; }

 private:
  void CountRequest();
  void CountUpdate();
  void Err(std::ostream& out, const std::string& message);

  void HandleLoad(const ServeRequest& r, std::ostream& out);
  void HandleSave(const ServeRequest& r, std::ostream& out);
  void HandleDetect(const ServeRequest& r, std::ostream& out);
  void HandleTruth(const ServeRequest& r, std::ostream& out);
  void HandleStats(const ServeRequest& r, std::ostream& out);
  void HandleMetrics(std::ostream& out);
  void HandleCatalog(std::ostream& out);
  void HandleEvict(const ServeRequest& r, std::ostream& out);
  bool RequireUpdates(std::ostream& out);
  void HandleStageUpdate(const ServeRequest& r, std::ostream& out);
  void HandleCommit(const ServeRequest& r, std::ostream& out);
  void HandleVersions(const ServeRequest& r, std::ostream& out);

  /// Lazily resolves vulnds_server_request_micros{verb=...} for `command`
  /// and caches the handle, so the per-request observation after the first
  /// is one lock-free Observe — no registry mutex on the session hot path.
  obs::Histogram* VerbHistogram(int command);

  QueryEngine* engine_;
  UpdateBackend* updates_;
  ServerStats* server_;
  ServeLoopStats stats_;
  std::function<void()> drain_hook_;

  /// Cached histogram handles indexed by ServeCommand value (sized past
  /// kNone; unused slots stay null).
  static constexpr std::size_t kVerbSlots = 16;
  obs::Histogram* verb_micros_[kVerbSlots] = {};
};

/// Feeds `session` from `in` (through the capped reader) until `quit` or
/// EOF, flushing `out` after every response. The one protocol read loop;
/// RunServeLoop and ServeServer::ServeStream are both thin fronts over it.
void DriveSession(ServeSession& session, std::istream& in, std::ostream& out);

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_SESSION_H_
