#include "serve/query_engine.h"

#include <utility>

#include "serve/protocol.h"
#include "simd/dispatch.h"

namespace vulnds::serve {

DetectorOptions CanonicalizeOptions(DetectorOptions o) {
  const DetectorOptions defaults;
  o.pool = nullptr;
  o.threads = 0;  // determinism makes thread count a pure execution knob
  // The wave schedule is execution-only for the same reason: every schedule
  // folds the identical hash-order stream, so `wave=fixed:100` may be
  // answered from a cache line computed adaptively (and vice versa).
  o.wave_mode = defaults.wave_mode;
  o.wave_size = 0;
  // The kernel tier too: every tier computes bit-identical results (the
  // simd/coin_kernels.h contract), so `simd=scalar` may be answered from a
  // cache line computed with AVX2 (and vice versa).
  o.simd_mode = defaults.simd_mode;
  // Observability never shapes an answer: a traced query and an untraced
  // one share a cache line.
  o.trace = nullptr;
  switch (o.method) {
    case Method::kNaive:
      // Fixed budget: the (eps, delta) machinery and bounds are never read.
      o.eps = defaults.eps;
      o.delta = defaults.delta;
      o.bound_order = defaults.bound_order;
      o.bk = defaults.bk;
      break;
    case Method::kSampleNaive:
      o.naive_samples = defaults.naive_samples;
      o.bound_order = defaults.bound_order;
      o.bk = defaults.bk;
      break;
    case Method::kSampleReverse:
    case Method::kBsr:
      o.naive_samples = defaults.naive_samples;
      o.bk = defaults.bk;
      break;
    case Method::kBsrbk:
      o.naive_samples = defaults.naive_samples;
      break;
  }
  return o;
}

std::string CanonicalOptionsKey(const DetectorOptions& options) {
  const DetectorOptions o = CanonicalizeOptions(options);
  std::string key;
  key += "method=" + MethodName(o.method);
  key += " k=" + std::to_string(o.k);
  key += " eps=" + FormatRoundTrip(o.eps);
  key += " delta=" + FormatRoundTrip(o.delta);
  key += " naive_samples=" + std::to_string(o.naive_samples);
  key += " bound_order=" + std::to_string(o.bound_order);
  key += " bk=" + std::to_string(o.bk);
  key += " seed=" + std::to_string(o.seed);
  return key;
}

namespace {

constexpr const char* kRequestsHelp =
    "Requests received per verb (cache hits included)";
constexpr const char* kRequestMicrosHelp =
    "End-to-end request latency in microseconds, by verb and cache outcome";
constexpr const char* kStageMicrosHelp =
    "Per-stage wall time of executed queries in microseconds";

// Charged size of one cached detection result: the struct plus its ranking
// and score payloads. Deterministic in the result's shape, so byte-budget
// tests can predict cache behavior exactly.
std::size_t ApproxDetectionResultBytes(const DetectionResult& result) {
  return sizeof(DetectionResult) + result.topk.size() * sizeof(result.topk[0]) +
         result.scores.size() * sizeof(double);
}

// Charged size of one cached ground truth: per-node probability vector —
// this is the payload that differs by orders of magnitude across graphs and
// motivated byte-charging the result cache in the first place.
std::size_t ApproxGroundTruthBytes(const GroundTruth& truth) {
  return sizeof(GroundTruth) + truth.probabilities.size() * sizeof(double);
}

// Resolves the governor an engine will charge through (see
// QueryEngineOptions::governor for the order).
store::MemoryGovernor* ResolveGovernor(GraphCatalog* catalog,
                                       const QueryEngineOptions& options,
                                       store::MemoryGovernor* owned) {
  if (options.governor != nullptr) return options.governor;
  if (catalog->governor() != nullptr) return catalog->governor();
  return owned;
}

}  // namespace

QueryEngine::QueryEngine(GraphCatalog* catalog, QueryEngineOptions options)
    : catalog_(catalog),
      pool_(options.pool),
      owned_registry_(options.registry == nullptr
                          ? std::make_unique<obs::MetricRegistry>()
                          : nullptr),
      registry_(options.registry == nullptr ? owned_registry_.get()
                                            : options.registry),
      slowlog_(options.slowlog),
      clock_(std::move(options.clock)),
      owned_governor_(options.governor == nullptr &&
                              catalog->governor() == nullptr
                          ? std::make_unique<store::MemoryGovernor>()
                          : nullptr),
      governor_(ResolveGovernor(catalog, options, owned_governor_.get())),
      detect_cache_(options.result_cache_capacity, options.result_cache_shards,
                    0, ApproxDetectionResultBytes, governor_),
      truth_cache_(options.result_cache_capacity, options.result_cache_shards,
                   0, ApproxGroundTruthBytes, governor_) {
  // Complete the memory hierarchy: the catalog charges snapshots/contexts
  // through the same governor the result caches charge through, and the
  // governor can shed result bytes when OTHER classes overflow the budget.
  if (catalog_->governor() == nullptr) {
    catalog_->BindGovernor(governor_);
    bound_catalog_governor_ = true;
  }
  governor_->RegisterShedder(
      store::ChargeClass::kResult,
      [this](std::size_t want) { return detect_cache_.ShedBytes(want); });
  governor_->RegisterShedder(
      store::ChargeClass::kResult,
      [this](std::size_t want) { return truth_cache_.ShedBytes(want); });
  // Page-in latency lands in this engine's registry on this engine's clock
  // (a constant injected clock keeps transcripts deterministic).
  catalog_->BindObservability(registry_, clock_);
  detect_queries_ = registry_->GetCounter("vulnds_engine_requests_total",
                                          kRequestsHelp, {{"verb", "detect"}});
  truth_queries_ = registry_->GetCounter("vulnds_engine_requests_total",
                                         kRequestsHelp, {{"verb", "truth"}});
  batched_queries_ = registry_->GetCounter(
      "vulnds_engine_batched_queries_total",
      "Detect jobs drained inside another request's context-lock acquisition");
  worlds_wasted_ = registry_->GetCounter(
      "vulnds_engine_worlds_wasted_total",
      "Worlds materialized past the bottom-k early stop, executed runs only");
  waves_issued_ = registry_->GetCounter(
      "vulnds_engine_waves_issued_total",
      "Parallel sampling waves dispatched, executed runs only");
  simd_batched_coins_ = registry_->GetCounter(
      "vulnds_simd_batched_coins_total",
      "Coin slots evaluated in full vector lanes (padding included), "
      "executed runs only");
  simd_tail_coins_ = registry_->GetCounter(
      "vulnds_simd_scalar_tail_coins_total",
      "Coin slots evaluated one at a time outside a full lane, "
      "executed runs only");
  // The process-default kernel tier as a numeric gauge (0 = scalar,
  // 1 = avx2): scrape-friendly, and the label carries the name. Set once —
  // the default is resolved once per process (VULNDS_SIMD env, else CPUID)
  // and per-query overrides never change it.
  registry_
      ->GetGauge("vulnds_simd_tier",
                 "Process-default SIMD kernel tier (0=scalar, 1=avx2)",
                 {{"tier", simd::SimdTierName(simd::DefaultTier())}})
      ->Set(static_cast<double>(simd::DefaultTier()));
  const std::vector<double>& buckets = obs::LatencyBucketsMicros();
  const char* verbs[2] = {"detect", "truth"};
  for (int v = 0; v < 2; ++v) {
    for (int c = 0; c < 2; ++c) {
      request_micros_[v][c] = registry_->GetHistogram(
          "vulnds_engine_request_micros", kRequestMicrosHelp, buckets,
          {{"verb", verbs[v]}, {"cached", c == 0 ? "0" : "1"}});
    }
  }
  const char* stages[kKnownStages] = {"cache_lookup", "cache_check", "bounds",
                                      "reduce",       "sampling",    "compute",
                                      "cache_insert"};
  for (std::size_t s = 0; s < kKnownStages; ++s) {
    stage_micros_[s] = {stages[s],
                        registry_->GetHistogram("vulnds_engine_stage_micros",
                                                kStageMicrosHelp, buckets,
                                                {{"stage", stages[s]}})};
  }
}

QueryEngine::~QueryEngine() {
  // The catalog may outlive this engine; take back the runtime we lent it.
  // (The governor's registered shedders keep pointing at dying pools, but
  // nothing charges — hence nothing sheds — once serving stops.)
  if (bound_catalog_governor_) catalog_->UnbindGovernor();
  catalog_->BindObservability(nullptr, nullptr);
}

obs::Histogram* QueryEngine::StageHistogram(const std::string& stage) {
  for (const auto& [name, histogram] : stage_micros_) {
    if (stage == name) return histogram;
  }
  // A stage name the constructor did not anticipate (future pipeline work):
  // registry get-or-create, off the lock-free path but correct.
  return registry_->GetHistogram("vulnds_engine_stage_micros", kStageMicrosHelp,
                                 obs::LatencyBucketsMicros(),
                                 {{"stage", stage}});
}

void QueryEngine::FinishQuery(int verb, const std::string& name,
                              const std::string& cache_key,
                              const obs::QueryTrace& trace,
                              int64_t start_micros, bool cached,
                              double* seconds) {
  const int64_t total = NowMicros() - start_micros;
  *seconds = static_cast<double>(total) * 1e-6;
  request_micros_[verb][cached ? 1 : 0]->Observe(static_cast<double>(total));
  for (const obs::StageSpan& span : trace.stages()) {
    StageHistogram(span.name)->Observe(static_cast<double>(span.micros));
  }
  if (slowlog_ != nullptr && slowlog_->threshold_micros() >= 0 &&
      total >= slowlog_->threshold_micros()) {
    obs::SlowQueryRecord record;
    record.verb = verb == 0 ? "detect" : "truth";
    record.graph = name;
    const std::size_t sep = cache_key.find('|');
    record.options =
        sep == std::string::npos ? cache_key : cache_key.substr(sep + 1);
    record.total_micros = total;
    record.cached = cached;
    record.trace = &trace;
    slowlog_->MaybeLog(record);
  }
}

Result<DetectResponse> QueryEngine::Detect(const std::string& name,
                                           DetectorOptions options) {
  const int64_t start = NowMicros();
  obs::QueryTrace trace(clock_);
  trace.BeginStage("cache_lookup");
  // GetOrLoad pages a spilled snapshot back in transparently; the pin then
  // keeps it resident (never re-spilled) for this query's whole flight,
  // including the wait on a batch leader.
  Result<std::shared_ptr<CatalogEntry>> resolved = catalog_->GetOrLoad(name);
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<CatalogEntry> entry = resolved.MoveValue();
  if (entry == nullptr) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  ScopedEntryPin pin(entry);
  // Validate before the cache lookup so an invalid request fails the same
  // way whether or not a canonically-equal valid query is already cached.
  VULNDS_RETURN_NOT_OK(ValidateDetectorOptions(entry->graph, options));

  // Keyed by the entry uid, not just the name: a reloaded or evicted graph
  // gets a fresh uid, so results computed on the old snapshot cannot be
  // served for the new one (stale keys age out of the LRU).
  const std::string key = name + "#" + std::to_string(entry->uid) + "|" +
                          CanonicalOptionsKey(options);
  detect_queries_->Increment();
  const std::shared_ptr<const DetectionResult> cached = detect_cache_.Get(key);
  if (cached != nullptr) {
    trace.EndStage();
    // Copy outside the shard lock: the cache hands out shared ownership
    // exactly so the hot cached path holds its one shard mutex only for
    // the lookup, not for copying a k-row result — the difference between
    // 8 sessions scaling and 8 sessions convoying.
    DetectResponse response;
    response.result = *cached;
    response.from_cache = true;
    FinishQuery(0, name, key, trace, start, true, &response.seconds);
    return response;
  }
  trace.EndStage();

  options.pool = PoolFor(options.threads);
  // The trace rides with the job: whoever executes it (this thread as batch
  // leader, or another request's leader) records the pipeline stages onto
  // it. The promise/future handoff orders those writes before the reads
  // below, so the single-owner trace contract holds across threads.
  options.trace = &trace;

  // Queue the job for this snapshot; the first arrival leads the batch and
  // executes every queued same-graph job under one context-lock
  // acquisition, later arrivals block on their future.
  auto job = std::make_shared<DetectJob>();
  job->options = options;
  job->key = key;
  std::future<std::pair<Result<DetectionResult>, bool>> future =
      job->promise.get_future();
  bool lead = false;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    GraphBatch& batch = batches_[entry->uid];
    batch.queue.push_back(std::move(job));
    if (!batch.leader_active) {
      batch.leader_active = true;
      lead = true;
    }
  }
  if (lead) RunDetectBatch(entry);

  std::pair<Result<DetectionResult>, bool> outcome = future.get();
  if (!outcome.first.ok()) return outcome.first.status();
  DetectResponse response;
  response.result = outcome.first.MoveValue();
  response.from_cache = outcome.second;
  FinishQuery(0, name, key, trace, start, response.from_cache,
              &response.seconds);
  return response;
}

void QueryEngine::RunDetectBatch(const std::shared_ptr<CatalogEntry>& entry) {
  // ONE lock acquisition for however many jobs drain: this is the
  // same-graph batching the concurrent server relies on.
  std::lock_guard<std::mutex> context_lock(entry->context_mu);
  std::size_t jobs_run = 0;
  std::deque<std::shared_ptr<DetectJob>> handoff;
  for (;;) {
    std::shared_ptr<DetectJob> job;
    {
      std::lock_guard<std::mutex> lock(batch_mu_);
      const auto it = batches_.find(entry->uid);
      if (it->second.queue.empty()) {
        // Dropping the map entry clears leader_active: the next arrival
        // (even one racing this erase) starts a fresh batch and leads it.
        batches_.erase(it);
        break;
      }
      // Fairness bound: under a sustained cache-missing flood the queue
      // refills faster than it drains, and an unbounded drain would pin
      // this leader's session forever. At the cap the leader takes the
      // jobs already queued (it still owes them a result — nobody else
      // will resolve their promises) and closes the batch, so the next
      // arrival leads a fresh one and simply waits on the context mutex.
      if (jobs_run >= kMaxBatchJobs) {
        handoff = std::move(it->second.queue);
        batches_.erase(it);
        break;
      }
      job = std::move(it->second.queue.front());
      it->second.queue.pop_front();
      if (++jobs_run > 1) batched_queries_->Increment();
    }
    ExecuteDetectJob(entry, *job);
  }
  for (const std::shared_ptr<DetectJob>& job : handoff) {
    batched_queries_->Increment();
    ExecuteDetectJob(entry, *job);
  }
  // One recharge per batch, still under context_mu: the jobs above may
  // have grown the context's intermediates by megabytes.
  RechargeContext(entry);
}

void QueryEngine::RechargeContext(const std::shared_ptr<CatalogEntry>& entry) {
  auto* gov = governor_;
  if (gov == nullptr) return;
  const std::size_t new_bytes = entry->context.ApproxBytes();
  // Charge-then-settle: the fresh charge lands first, the previously
  // published amount is credited back, and the detached double-check
  // settles against a concurrent evict/replace/spill. Every interleaving
  // nets to "exactly the published amount is charged" and no discharge
  // ever precedes its matching charge (which would underflow the class).
  gov->Charge(store::ChargeClass::kContext, new_bytes);
  gov->Discharge(store::ChargeClass::kContext,
                 entry->charged_context_bytes.exchange(new_bytes));
  if (entry->detached.load(std::memory_order_acquire)) {
    gov->Discharge(store::ChargeClass::kContext,
                   entry->charged_context_bytes.exchange(0));
  }
}

void QueryEngine::ExecuteDetectJob(const std::shared_ptr<CatalogEntry>& entry,
                                   DetectJob& job) {
  // Whatever happens here, the promise must resolve: an unresolved job
  // blocks its session forever (the batch machinery has no other wake-up).
  // Every job re-checks the cache — including a leader's own first job:
  // between its miss in Detect and taking leadership, a previous batch may
  // have computed and cached this very key, and skipping the recheck would
  // recompute it (breaking compute-exactly-once). The recheck is an
  // uncounted Peek: the query already counted its one lookup (the miss in
  // Detect), so counting again would double-book hits+misses against
  // detect_queries and distort the reported hit rate.
  obs::QueryTrace* trace = job.options.trace;
  try {
    {
      if (trace != nullptr) trace->BeginStage("cache_check");
      const std::shared_ptr<const DetectionResult> cached =
          detect_cache_.Peek(job.key);
      if (trace != nullptr) trace->EndStage();
      if (cached != nullptr) {
        job.promise.set_value({Result<DetectionResult>(*cached), true});
        return;
      }
    }
    Result<DetectionResult> result = [&]() -> Result<DetectionResult> {
      try {
        return DetectTopK(entry->graph, job.options, &entry->context);
      } catch (const std::exception& e) {
        return Status::Internal(std::string("detection failed: ") + e.what());
      }
    }();
    if (result.ok()) {
      // Schedule telemetry counts executed runs only: a cached replay
      // re-reports the original run's answer, not its wasted worlds.
      worlds_wasted_->Increment(result->worlds_wasted);
      waves_issued_->Increment(result->waves_issued);
      simd_batched_coins_->Increment(result->simd_batched_coins);
      simd_tail_coins_->Increment(result->simd_tail_coins);
      // The computed result outranks the cache insert: if Put throws
      // (allocation pressure copying a large result), the caller still
      // gets its answer and only the cache line is lost.
      if (trace != nullptr) trace->BeginStage("cache_insert");
      try {
        detect_cache_.Put(job.key, *result);
      } catch (...) {
      }
      if (trace != nullptr) trace->EndStage();
    }
    job.promise.set_value({std::move(result), false});
  } catch (...) {
    try {
      job.promise.set_value(
          {Status::Internal("detect job failed before producing a result"),
           false});
    } catch (...) {  // promise already satisfied — nothing left to resolve
    }
  }
}

ThreadPool* QueryEngine::PoolFor(std::size_t threads) {
  if (threads == 0) return pool_;
  if (pool_ != nullptr && pool_->num_threads() == threads) return pool_;
  std::lock_guard<std::mutex> lock(pools_mu_);
  const auto it = extra_pools_.find(threads);
  if (it != extra_pools_.end()) return it->second.get();
  // Existing pools may be referenced by in-flight requests, so they are
  // never destroyed while the engine lives; instead both the number of
  // distinct counts and the summed thread budget are bounded. Past either
  // cap — or if the OS refuses more threads — fall back to the session
  // default, which is always legal: results are bit-identical for every
  // thread count, so the knob only shapes latency.
  if (extra_pools_.size() >= kMaxExtraPools ||
      extra_pool_threads_ + threads > kMaxExtraPoolThreads) {
    return pool_;
  }
  try {
    ThreadPool* pool = extra_pools_
                           .emplace(threads, std::make_unique<ThreadPool>(threads))
                           .first->second.get();
    extra_pool_threads_ += threads;
    return pool;
  } catch (...) {  // thread exhaustion or allocation failure — degrade, not die
    return pool_;
  }
}

Result<TruthResponse> QueryEngine::Truth(const std::string& name,
                                         std::size_t samples, uint64_t seed) {
  if (samples == 0) {
    return Status::InvalidArgument("ground truth needs samples >= 1");
  }
  const int64_t start = NowMicros();
  obs::QueryTrace trace(clock_);
  trace.BeginStage("cache_lookup");
  Result<std::shared_ptr<CatalogEntry>> resolved = catalog_->GetOrLoad(name);
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<CatalogEntry> entry = resolved.MoveValue();
  if (entry == nullptr) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  ScopedEntryPin pin(entry);
  const std::string key =
      name + "#" + std::to_string(entry->uid) +
      "|truth samples=" + std::to_string(samples) +
      " seed=" + std::to_string(seed);
  truth_queries_->Increment();
  if (const auto cached = truth_cache_.Get(key)) {
    trace.EndStage();
    TruthResponse response;
    response.truth = *cached;
    response.from_cache = true;
    FinishQuery(1, name, key, trace, start, true, &response.seconds);
    return response;
  }
  trace.EndStage();

  TruthResponse response;
  trace.BeginStage("compute");
  response.truth = ComputeGroundTruth(entry->graph, samples, seed, pool_);
  trace.EndStage();
  trace.BeginStage("cache_insert");
  truth_cache_.Put(key, response.truth);
  trace.EndStage();
  FinishQuery(1, name, key, trace, start, false, &response.seconds);
  return response;
}

EngineStats QueryEngine::stats() const {
  EngineStats s;
  s.batched_queries = static_cast<std::size_t>(batched_queries_->Value());
  s.detect_queries = static_cast<std::size_t>(detect_queries_->Value());
  s.truth_queries = static_cast<std::size_t>(truth_queries_->Value());
  s.worlds_wasted = static_cast<std::size_t>(worlds_wasted_->Value());
  s.waves_issued = static_cast<std::size_t>(waves_issued_->Value());
  s.simd_batched_coins =
      static_cast<std::size_t>(simd_batched_coins_->Value());
  s.simd_tail_coins = static_cast<std::size_t>(simd_tail_coins_->Value());
  const CacheStats detect = detect_cache_.stats();
  const CacheStats truth = truth_cache_.stats();
  s.result_cache.hits = detect.hits + truth.hits;
  s.result_cache.misses = detect.misses + truth.misses;
  s.result_cache.evictions = detect.evictions + truth.evictions;
  s.result_cache.inserts = detect.inserts + truth.inserts;
  s.result_cache.rejected_oversize =
      detect.rejected_oversize + truth.rejected_oversize;
  s.result_cache_shards = detect_cache_.shard_count();
  return s;
}

namespace {

// Mirrors one result cache's counters and per-shard detail into the
// registry. Counter::Set is the documented scrape-time bridge for sources
// whose truth lives behind shard mutexes.
template <typename V>
void MirrorCache(obs::MetricRegistry* registry, const char* which,
                 const ShardedLruCache<V>& cache) {
  const CacheStats stats = cache.stats();
  const obs::LabelSet label{{"cache", which}};
  registry
      ->GetCounter("vulnds_cache_hits_total", "Result-cache hits", label)
      ->Set(stats.hits);
  registry
      ->GetCounter("vulnds_cache_misses_total", "Result-cache misses", label)
      ->Set(stats.misses);
  registry
      ->GetCounter("vulnds_cache_evictions_total", "Result-cache evictions",
                   label)
      ->Set(stats.evictions);
  registry
      ->GetCounter("vulnds_cache_inserts_total", "Result-cache inserts", label)
      ->Set(stats.inserts);
  registry
      ->GetGauge("vulnds_cache_entries", "Resident result-cache entries",
                 label)
      ->Set(static_cast<double>(cache.size()));
  for (const CacheShardInfo& shard : cache.ShardInfos()) {
    const obs::LabelSet shard_labels{{"cache", which},
                                     {"shard", std::to_string(shard.index)}};
    registry
        ->GetGauge("vulnds_cache_shard_entries",
                   "Resident entries per result-cache shard", shard_labels)
        ->Set(static_cast<double>(shard.size));
    registry
        ->GetCounter("vulnds_cache_shard_hits_total",
                     "Hits per result-cache shard", shard_labels)
        ->Set(shard.stats.hits);
  }
}

}  // namespace

void QueryEngine::RefreshMetrics() {
  MirrorCache(registry_, "detect", detect_cache_);
  MirrorCache(registry_, "truth", truth_cache_);

  const CatalogStats c = catalog_->stats();
  registry_
      ->GetCounter("vulnds_catalog_hits_total", "Catalog lookups that hit")
      ->Set(c.hits);
  registry_
      ->GetCounter("vulnds_catalog_misses_total", "Catalog lookups that missed")
      ->Set(c.misses);
  registry_
      ->GetCounter("vulnds_catalog_evictions_total",
                   "Catalog evictions (capacity, budget and explicit)")
      ->Set(c.evictions);
  registry_
      ->GetCounter("vulnds_catalog_loads_total", "Successful catalog loads")
      ->Set(c.loads);
  registry_
      ->GetGauge("vulnds_catalog_resident_graphs", "Graphs resident now")
      ->Set(static_cast<double>(catalog_->size()));
  registry_
      ->GetGauge("vulnds_catalog_resident_bytes",
                 "Approximate bytes of resident graphs")
      ->Set(static_cast<double>(catalog_->resident_bytes()));
  for (const CatalogShardInfo& shard : catalog_->ShardInfos()) {
    const obs::LabelSet labels{{"shard", std::to_string(shard.index)}};
    registry_
        ->GetGauge("vulnds_catalog_shard_entries",
                   "Resident graphs per catalog shard", labels)
        ->Set(static_cast<double>(shard.size));
    registry_
        ->GetGauge("vulnds_catalog_shard_bytes",
                   "Resident bytes per catalog shard", labels)
        ->Set(static_cast<double>(shard.bytes));
    registry_
        ->GetCounter("vulnds_catalog_shard_hits_total",
                     "Hits per catalog shard", labels)
        ->Set(shard.stats.hits);
  }
  // Warm-context residency, same try_lock discipline as the stats verb: a
  // batch leader may hold an entry's context for minutes, and a scrape must
  // not stall behind it — busy entries are skipped and counted.
  std::size_t context_bytes = 0;
  std::size_t context_busy = 0;
  for (const auto& entry : catalog_->SnapshotEntries()) {
    std::unique_lock<std::mutex> lock(entry->context_mu, std::try_to_lock);
    if (lock.owns_lock()) {
      context_bytes += entry->context.ApproxBytes();
    } else {
      ++context_busy;
    }
  }
  registry_
      ->GetGauge("vulnds_catalog_context_bytes",
                 "Approximate bytes of warm per-graph detection contexts")
      ->Set(static_cast<double>(context_bytes));
  registry_
      ->GetGauge("vulnds_catalog_context_busy",
                 "Contexts skipped by the scrape because a query held them")
      ->Set(static_cast<double>(context_busy));

  // The byte-governed memory hierarchy (vulnds_store_*): one budget over
  // snapshots + contexts + cached results, spill residency, shed activity.
  // The governor is never null, so these families render on every serve.
  registry_
      ->GetGauge("vulnds_store_budget_bytes",
                 "Global memory-hierarchy byte budget (0 = accounting only)")
      ->Set(static_cast<double>(governor_->budget()));
  registry_
      ->GetGauge("vulnds_store_resident_bytes",
                 "Bytes charged against the global budget, all classes")
      ->Set(static_cast<double>(governor_->total_charged()));
  for (const auto cls :
       {store::ChargeClass::kSnapshot, store::ChargeClass::kContext,
        store::ChargeClass::kResult}) {
    const obs::LabelSet labels{{"class", store::ChargeClassName(cls)}};
    registry_
        ->GetGauge("vulnds_store_charged_bytes",
                   "Bytes charged against the global budget, by class",
                   labels)
        ->Set(static_cast<double>(governor_->charged(cls)));
    registry_
        ->GetCounter("vulnds_store_sheds_total",
                     "Shedder invocations that freed bytes, by class", labels)
        ->Set(governor_->sheds(cls));
    registry_
        ->GetCounter("vulnds_store_shed_bytes_total",
                     "Bytes freed by shedding, by class", labels)
        ->Set(governor_->shed_bytes(cls));
  }
  registry_
      ->GetGauge("vulnds_store_spilled_bytes",
                 "Bytes of snapshots parked in the spill directory")
      ->Set(static_cast<double>(catalog_->spilled_bytes()));
  registry_
      ->GetGauge("vulnds_store_spilled_graphs",
                 "Snapshots parked in the spill directory")
      ->Set(static_cast<double>(catalog_->spilled_count()));
  registry_
      ->GetCounter("vulnds_store_spills_total",
                   "Snapshots written to the spill directory")
      ->Set(c.spills);
  registry_
      ->GetCounter("vulnds_store_page_ins_total",
                   "Spilled snapshots paged back in on demand")
      ->Set(c.page_ins);
  registry_
      ->GetCounter("vulnds_store_spill_orphans_reclaimed_total",
                   "Orphaned spill files (debris of killed processes) "
                   "reclaimed by startup GC")
      ->Set(catalog_->spill_orphans_reclaimed());
  const CacheStats detect_stats = detect_cache_.stats();
  const CacheStats truth_stats = truth_cache_.stats();
  registry_
      ->GetCounter("vulnds_store_rejected_oversize_total",
                   "Cache inserts refused because one entry exceeded the "
                   "whole byte budget")
      ->Set(detect_stats.rejected_oversize + truth_stats.rejected_oversize);
}

}  // namespace vulnds::serve
