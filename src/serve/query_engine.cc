#include "serve/query_engine.h"

#include <utility>

#include "common/timer.h"
#include "serve/protocol.h"

namespace vulnds::serve {

DetectorOptions CanonicalizeOptions(DetectorOptions o) {
  const DetectorOptions defaults;
  o.pool = nullptr;
  o.threads = 0;  // determinism makes thread count a pure execution knob
  // The wave schedule is execution-only for the same reason: every schedule
  // folds the identical hash-order stream, so `wave=fixed:100` may be
  // answered from a cache line computed adaptively (and vice versa).
  o.wave_mode = defaults.wave_mode;
  o.wave_size = 0;
  switch (o.method) {
    case Method::kNaive:
      // Fixed budget: the (eps, delta) machinery and bounds are never read.
      o.eps = defaults.eps;
      o.delta = defaults.delta;
      o.bound_order = defaults.bound_order;
      o.bk = defaults.bk;
      break;
    case Method::kSampleNaive:
      o.naive_samples = defaults.naive_samples;
      o.bound_order = defaults.bound_order;
      o.bk = defaults.bk;
      break;
    case Method::kSampleReverse:
    case Method::kBsr:
      o.naive_samples = defaults.naive_samples;
      o.bk = defaults.bk;
      break;
    case Method::kBsrbk:
      o.naive_samples = defaults.naive_samples;
      break;
  }
  return o;
}

std::string CanonicalOptionsKey(const DetectorOptions& options) {
  const DetectorOptions o = CanonicalizeOptions(options);
  std::string key;
  key += "method=" + MethodName(o.method);
  key += " k=" + std::to_string(o.k);
  key += " eps=" + FormatRoundTrip(o.eps);
  key += " delta=" + FormatRoundTrip(o.delta);
  key += " naive_samples=" + std::to_string(o.naive_samples);
  key += " bound_order=" + std::to_string(o.bound_order);
  key += " bk=" + std::to_string(o.bk);
  key += " seed=" + std::to_string(o.seed);
  return key;
}

QueryEngine::QueryEngine(GraphCatalog* catalog, QueryEngineOptions options)
    : catalog_(catalog),
      pool_(options.pool),
      detect_cache_(options.result_cache_capacity, options.result_cache_shards),
      truth_cache_(options.result_cache_capacity, options.result_cache_shards) {}

Result<DetectResponse> QueryEngine::Detect(const std::string& name,
                                           DetectorOptions options) {
  WallTimer timer;
  const std::shared_ptr<CatalogEntry> entry = catalog_->Get(name);
  if (entry == nullptr) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  // Validate before the cache lookup so an invalid request fails the same
  // way whether or not a canonically-equal valid query is already cached.
  VULNDS_RETURN_NOT_OK(ValidateDetectorOptions(entry->graph, options));

  // Keyed by the entry uid, not just the name: a reloaded or evicted graph
  // gets a fresh uid, so results computed on the old snapshot cannot be
  // served for the new one (stale keys age out of the LRU).
  const std::string key = name + "#" + std::to_string(entry->uid) + "|" +
                          CanonicalOptionsKey(options);
  detect_queries_.fetch_add(1, std::memory_order_relaxed);
  const std::shared_ptr<const DetectionResult> cached = detect_cache_.Get(key);
  if (cached != nullptr) {
    // Copy outside the shard lock: the cache hands out shared ownership
    // exactly so the hot cached path holds its one shard mutex only for
    // the lookup, not for copying a k-row result — the difference between
    // 8 sessions scaling and 8 sessions convoying.
    DetectResponse response;
    response.result = *cached;
    response.from_cache = true;
    response.seconds = timer.Seconds();
    return response;
  }

  options.pool = PoolFor(options.threads);

  // Queue the job for this snapshot; the first arrival leads the batch and
  // executes every queued same-graph job under one context-lock
  // acquisition, later arrivals block on their future.
  auto job = std::make_shared<DetectJob>();
  job->options = options;
  job->key = key;
  std::future<std::pair<Result<DetectionResult>, bool>> future =
      job->promise.get_future();
  bool lead = false;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    GraphBatch& batch = batches_[entry->uid];
    batch.queue.push_back(std::move(job));
    if (!batch.leader_active) {
      batch.leader_active = true;
      lead = true;
    }
  }
  if (lead) RunDetectBatch(entry);

  std::pair<Result<DetectionResult>, bool> outcome = future.get();
  if (!outcome.first.ok()) return outcome.first.status();
  DetectResponse response;
  response.result = outcome.first.MoveValue();
  response.from_cache = outcome.second;
  response.seconds = timer.Seconds();
  return response;
}

void QueryEngine::RunDetectBatch(const std::shared_ptr<CatalogEntry>& entry) {
  // ONE lock acquisition for however many jobs drain: this is the
  // same-graph batching the concurrent server relies on.
  std::lock_guard<std::mutex> context_lock(entry->context_mu);
  std::size_t jobs_run = 0;
  std::deque<std::shared_ptr<DetectJob>> handoff;
  for (;;) {
    std::shared_ptr<DetectJob> job;
    {
      std::lock_guard<std::mutex> lock(batch_mu_);
      const auto it = batches_.find(entry->uid);
      if (it->second.queue.empty()) {
        // Dropping the map entry clears leader_active: the next arrival
        // (even one racing this erase) starts a fresh batch and leads it.
        batches_.erase(it);
        break;
      }
      // Fairness bound: under a sustained cache-missing flood the queue
      // refills faster than it drains, and an unbounded drain would pin
      // this leader's session forever. At the cap the leader takes the
      // jobs already queued (it still owes them a result — nobody else
      // will resolve their promises) and closes the batch, so the next
      // arrival leads a fresh one and simply waits on the context mutex.
      if (jobs_run >= kMaxBatchJobs) {
        handoff = std::move(it->second.queue);
        batches_.erase(it);
        break;
      }
      job = std::move(it->second.queue.front());
      it->second.queue.pop_front();
      if (++jobs_run > 1) ++batched_queries_;
    }
    ExecuteDetectJob(entry, *job);
  }
  for (const std::shared_ptr<DetectJob>& job : handoff) {
    {
      std::lock_guard<std::mutex> lock(batch_mu_);
      ++batched_queries_;
    }
    ExecuteDetectJob(entry, *job);
  }
}

void QueryEngine::ExecuteDetectJob(const std::shared_ptr<CatalogEntry>& entry,
                                   DetectJob& job) {
  // Whatever happens here, the promise must resolve: an unresolved job
  // blocks its session forever (the batch machinery has no other wake-up).
  // Every job re-checks the cache — including a leader's own first job:
  // between its miss in Detect and taking leadership, a previous batch may
  // have computed and cached this very key, and skipping the recheck would
  // recompute it (breaking compute-exactly-once). The recheck is an
  // uncounted Peek: the query already counted its one lookup (the miss in
  // Detect), so counting again would double-book hits+misses against
  // detect_queries and distort the reported hit rate.
  try {
    {
      const std::shared_ptr<const DetectionResult> cached =
          detect_cache_.Peek(job.key);
      if (cached != nullptr) {
        job.promise.set_value({Result<DetectionResult>(*cached), true});
        return;
      }
    }
    Result<DetectionResult> result = [&]() -> Result<DetectionResult> {
      try {
        return DetectTopK(entry->graph, job.options, &entry->context);
      } catch (const std::exception& e) {
        return Status::Internal(std::string("detection failed: ") + e.what());
      }
    }();
    if (result.ok()) {
      // Schedule telemetry counts executed runs only: a cached replay
      // re-reports the original run's answer, not its wasted worlds.
      worlds_wasted_.fetch_add(result->worlds_wasted, std::memory_order_relaxed);
      waves_issued_.fetch_add(result->waves_issued, std::memory_order_relaxed);
      // The computed result outranks the cache insert: if Put throws
      // (allocation pressure copying a large result), the caller still
      // gets its answer and only the cache line is lost.
      try {
        detect_cache_.Put(job.key, *result);
      } catch (...) {
      }
    }
    job.promise.set_value({std::move(result), false});
  } catch (...) {
    try {
      job.promise.set_value(
          {Status::Internal("detect job failed before producing a result"),
           false});
    } catch (...) {  // promise already satisfied — nothing left to resolve
    }
  }
}

ThreadPool* QueryEngine::PoolFor(std::size_t threads) {
  if (threads == 0) return pool_;
  if (pool_ != nullptr && pool_->num_threads() == threads) return pool_;
  std::lock_guard<std::mutex> lock(pools_mu_);
  const auto it = extra_pools_.find(threads);
  if (it != extra_pools_.end()) return it->second.get();
  // Existing pools may be referenced by in-flight requests, so they are
  // never destroyed while the engine lives; instead both the number of
  // distinct counts and the summed thread budget are bounded. Past either
  // cap — or if the OS refuses more threads — fall back to the session
  // default, which is always legal: results are bit-identical for every
  // thread count, so the knob only shapes latency.
  if (extra_pools_.size() >= kMaxExtraPools ||
      extra_pool_threads_ + threads > kMaxExtraPoolThreads) {
    return pool_;
  }
  try {
    ThreadPool* pool = extra_pools_
                           .emplace(threads, std::make_unique<ThreadPool>(threads))
                           .first->second.get();
    extra_pool_threads_ += threads;
    return pool;
  } catch (...) {  // thread exhaustion or allocation failure — degrade, not die
    return pool_;
  }
}

Result<TruthResponse> QueryEngine::Truth(const std::string& name,
                                         std::size_t samples, uint64_t seed) {
  if (samples == 0) {
    return Status::InvalidArgument("ground truth needs samples >= 1");
  }
  WallTimer timer;
  const std::shared_ptr<CatalogEntry> entry = catalog_->Get(name);
  if (entry == nullptr) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  const std::string key =
      name + "#" + std::to_string(entry->uid) +
      "|truth samples=" + std::to_string(samples) +
      " seed=" + std::to_string(seed);
  truth_queries_.fetch_add(1, std::memory_order_relaxed);
  if (const auto cached = truth_cache_.Get(key)) {
    TruthResponse response;
    response.truth = *cached;
    response.from_cache = true;
    response.seconds = timer.Seconds();
    return response;
  }

  TruthResponse response;
  response.truth = ComputeGroundTruth(entry->graph, samples, seed, pool_);
  response.seconds = timer.Seconds();
  truth_cache_.Put(key, response.truth);
  return response;
}

EngineStats QueryEngine::stats() const {
  EngineStats s;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    s.batched_queries = batched_queries_;
  }
  s.detect_queries = detect_queries_.load(std::memory_order_relaxed);
  s.truth_queries = truth_queries_.load(std::memory_order_relaxed);
  s.worlds_wasted = worlds_wasted_.load(std::memory_order_relaxed);
  s.waves_issued = waves_issued_.load(std::memory_order_relaxed);
  const CacheStats detect = detect_cache_.stats();
  const CacheStats truth = truth_cache_.stats();
  s.result_cache.hits = detect.hits + truth.hits;
  s.result_cache.misses = detect.misses + truth.misses;
  s.result_cache.evictions = detect.evictions + truth.evictions;
  s.result_cache.inserts = detect.inserts + truth.inserts;
  s.result_cache_shards = detect_cache_.shard_count();
  return s;
}

}  // namespace vulnds::serve
