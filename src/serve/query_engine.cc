#include "serve/query_engine.h"

#include <utility>

#include "common/timer.h"
#include "serve/protocol.h"

namespace vulnds::serve {

DetectorOptions CanonicalizeOptions(DetectorOptions o) {
  const DetectorOptions defaults;
  o.pool = nullptr;
  o.threads = 0;  // determinism makes thread count a pure execution knob
  switch (o.method) {
    case Method::kNaive:
      // Fixed budget: the (eps, delta) machinery and bounds are never read.
      o.eps = defaults.eps;
      o.delta = defaults.delta;
      o.bound_order = defaults.bound_order;
      o.bk = defaults.bk;
      break;
    case Method::kSampleNaive:
      o.naive_samples = defaults.naive_samples;
      o.bound_order = defaults.bound_order;
      o.bk = defaults.bk;
      break;
    case Method::kSampleReverse:
    case Method::kBsr:
      o.naive_samples = defaults.naive_samples;
      o.bk = defaults.bk;
      break;
    case Method::kBsrbk:
      o.naive_samples = defaults.naive_samples;
      break;
  }
  return o;
}

std::string CanonicalOptionsKey(const DetectorOptions& options) {
  const DetectorOptions o = CanonicalizeOptions(options);
  std::string key;
  key += "method=" + MethodName(o.method);
  key += " k=" + std::to_string(o.k);
  key += " eps=" + FormatRoundTrip(o.eps);
  key += " delta=" + FormatRoundTrip(o.delta);
  key += " naive_samples=" + std::to_string(o.naive_samples);
  key += " bound_order=" + std::to_string(o.bound_order);
  key += " bk=" + std::to_string(o.bk);
  key += " seed=" + std::to_string(o.seed);
  return key;
}

QueryEngine::QueryEngine(GraphCatalog* catalog, QueryEngineOptions options)
    : catalog_(catalog),
      pool_(options.pool),
      detect_cache_(options.result_cache_capacity),
      truth_cache_(options.result_cache_capacity) {}

Result<DetectResponse> QueryEngine::Detect(const std::string& name,
                                           DetectorOptions options) {
  WallTimer timer;
  const std::shared_ptr<CatalogEntry> entry = catalog_->Get(name);
  if (entry == nullptr) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  // Validate before the cache lookup so an invalid request fails the same
  // way whether or not a canonically-equal valid query is already cached.
  VULNDS_RETURN_NOT_OK(ValidateDetectorOptions(entry->graph, options));

  // Keyed by the entry uid, not just the name: a reloaded or evicted graph
  // gets a fresh uid, so results computed on the old snapshot cannot be
  // served for the new one (stale keys age out of the LRU).
  const std::string key = name + "#" + std::to_string(entry->uid) + "|" +
                          CanonicalOptionsKey(options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++detect_queries_;
    if (const auto cached = detect_cache_.Get(key)) {
      DetectResponse response;
      response.result = *cached;
      response.from_cache = true;
      response.seconds = timer.Seconds();
      return response;
    }
  }

  options.pool = PoolFor(options.threads);
  Result<DetectionResult> result = [&] {
    std::lock_guard<std::mutex> lock(entry->context_mu);
    return DetectTopK(entry->graph, options, &entry->context);
  }();
  if (!result.ok()) return result.status();

  DetectResponse response;
  response.result = result.MoveValue();
  response.seconds = timer.Seconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    detect_cache_.Put(key, response.result);
  }
  return response;
}

ThreadPool* QueryEngine::PoolFor(std::size_t threads) {
  if (threads == 0) return pool_;
  if (pool_ != nullptr && pool_->num_threads() == threads) return pool_;
  std::lock_guard<std::mutex> lock(pools_mu_);
  const auto it = extra_pools_.find(threads);
  if (it != extra_pools_.end()) return it->second.get();
  // Existing pools may be referenced by in-flight requests, so they are
  // never destroyed while the engine lives; instead both the number of
  // distinct counts and the summed thread budget are bounded. Past either
  // cap — or if the OS refuses more threads — fall back to the session
  // default, which is always legal: results are bit-identical for every
  // thread count, so the knob only shapes latency.
  if (extra_pools_.size() >= kMaxExtraPools ||
      extra_pool_threads_ + threads > kMaxExtraPoolThreads) {
    return pool_;
  }
  try {
    ThreadPool* pool = extra_pools_
                           .emplace(threads, std::make_unique<ThreadPool>(threads))
                           .first->second.get();
    extra_pool_threads_ += threads;
    return pool;
  } catch (...) {  // thread exhaustion or allocation failure — degrade, not die
    return pool_;
  }
}

Result<TruthResponse> QueryEngine::Truth(const std::string& name,
                                         std::size_t samples, uint64_t seed) {
  if (samples == 0) {
    return Status::InvalidArgument("ground truth needs samples >= 1");
  }
  WallTimer timer;
  const std::shared_ptr<CatalogEntry> entry = catalog_->Get(name);
  if (entry == nullptr) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  const std::string key =
      name + "#" + std::to_string(entry->uid) +
      "|truth samples=" + std::to_string(samples) +
      " seed=" + std::to_string(seed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++truth_queries_;
    if (const auto cached = truth_cache_.Get(key)) {
      TruthResponse response;
      response.truth = *cached;
      response.from_cache = true;
      response.seconds = timer.Seconds();
      return response;
    }
  }

  TruthResponse response;
  response.truth = ComputeGroundTruth(entry->graph, samples, seed, pool_);
  response.seconds = timer.Seconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    truth_cache_.Put(key, response.truth);
  }
  return response;
}

EngineStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats s;
  s.detect_queries = detect_queries_;
  s.truth_queries = truth_queries_;
  s.result_cache.hits = detect_cache_.stats().hits + truth_cache_.stats().hits;
  s.result_cache.misses =
      detect_cache_.stats().misses + truth_cache_.stats().misses;
  s.result_cache.evictions =
      detect_cache_.stats().evictions + truth_cache_.stats().evictions;
  s.result_cache.inserts =
      detect_cache_.stats().inserts + truth_cache_.stats().inserts;
  return s;
}

}  // namespace vulnds::serve
