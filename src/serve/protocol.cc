#include "serve/protocol.h"

#include <cstdio>
#include <sstream>
#include <vector>

#include "common/parse.h"

namespace vulnds::serve {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

Status WrongArity(const char* usage) {
  return Status::InvalidArgument(std::string("usage: ") + usage);
}

Result<std::size_t> ParseCount(const std::string& token, const char* what) {
  Result<uint64_t> v = ParseUint64(token);
  if (!v.ok()) {
    return Status::InvalidArgument(std::string(what) + ": " + v.status().message());
  }
  return static_cast<std::size_t>(*v);
}

Result<NodeId> ParseNode(const std::string& token, const char* what) {
  Result<uint64_t> v = ParseUint64(token);
  if (!v.ok()) {
    return Status::InvalidArgument(std::string(what) + ": " + v.status().message());
  }
  if (*v > static_cast<uint64_t>(kInvalidNode) - 1) {
    return Status::OutOfRange(std::string(what) + ": node id " + token +
                              " exceeds the 32-bit id space");
  }
  return static_cast<NodeId>(*v);
}

Result<double> ParseProb(const std::string& token) {
  Result<double> v = ParseDouble(token);
  if (!v.ok()) {
    return Status::InvalidArgument(std::string("prob: ") + v.status().message());
  }
  return v;
}

}  // namespace

const char* ServeCommandName(ServeCommand command) {
  switch (command) {
    case ServeCommand::kLoad:
      return "load";
    case ServeCommand::kSave:
      return "save";
    case ServeCommand::kDetect:
      return "detect";
    case ServeCommand::kTruth:
      return "truth";
    case ServeCommand::kStats:
      return "stats";
    case ServeCommand::kMetrics:
      return "metrics";
    case ServeCommand::kCatalog:
      return "catalog";
    case ServeCommand::kEvict:
      return "evict";
    case ServeCommand::kAddEdge:
      return "addedge";
    case ServeCommand::kDelEdge:
      return "deledge";
    case ServeCommand::kSetProb:
      return "setprob";
    case ServeCommand::kCommit:
      return "commit";
    case ServeCommand::kVersions:
      return "versions";
    case ServeCommand::kShutdown:
      return "shutdown";
    case ServeCommand::kQuit:
      return "quit";
    case ServeCommand::kNone:
      break;
  }
  return "none";
}

Result<Method> ParseMethodToken(const std::string& name) {
  for (const Method m : AllMethods()) {
    if (AsciiLower(MethodName(m)) == AsciiLower(name)) return m;
  }
  return Status::InvalidArgument("unknown method '" + name + "'");
}

Status ApplyDetectFlag(const std::string& token, DetectorOptions* options) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
    return Status::InvalidArgument("expected key=value, got '" + token + "'");
  }
  const std::string key = AsciiLower(token.substr(0, eq));
  const std::string value = token.substr(eq + 1);
  if (key == "method") {
    Result<Method> m = ParseMethodToken(value);
    if (!m.ok()) return m.status();
    options->method = *m;
    return Status::OK();
  }
  if (key == "eps" || key == "delta") {
    Result<double> v = ParseDouble(value);
    if (!v.ok()) return v.status();
    (key == "eps" ? options->eps : options->delta) = *v;
    return Status::OK();
  }
  if (key == "seed") {
    Result<uint64_t> v = ParseUint64(value);
    if (!v.ok()) return v.status();
    options->seed = *v;
    return Status::OK();
  }
  if (key == "samples") {
    Result<std::size_t> v = ParseCount(value, "samples");
    if (!v.ok()) return v.status();
    options->naive_samples = *v;
    return Status::OK();
  }
  if (key == "threads") {
    // Execution knob, not identity: results are bit-identical for every
    // thread count, so this never fragments the result cache.
    Result<std::size_t> v = ParseCount(value, "threads");
    if (!v.ok()) return v.status();
    options->threads = *v;
    return Status::OK();
  }
  if (key == "wave") {
    // Execution knob like threads=: every wave schedule folds the identical
    // hash-order stream, so this never fragments the result cache either.
    const std::string mode = AsciiLower(value);
    if (mode == "adaptive") {
      options->wave_mode = WaveMode::kAdaptive;
      options->wave_size = 0;
      return Status::OK();
    }
    if (mode == "fixed") {
      options->wave_mode = WaveMode::kFixed;
      options->wave_size = 0;
      return Status::OK();
    }
    if (mode.rfind("fixed:", 0) == 0) {
      Result<std::size_t> n = ParseCount(mode.substr(6), "wave");
      if (!n.ok()) return n.status();
      options->wave_mode = WaveMode::kFixed;
      options->wave_size = *n;
      return Status::OK();
    }
    return Status::InvalidArgument(
        "wave must be adaptive, fixed or fixed:N, got '" + value + "'");
  }
  if (key == "simd") {
    // Execution knob like threads= and wave=: every kernel tier computes
    // bit-identical results (simd/coin_kernels.h contract), so this never
    // fragments the result cache either.
    Result<simd::SimdMode> m = simd::ParseSimdMode(value);
    if (!m.ok()) return m.status();
    options->simd_mode = *m;
    return Status::OK();
  }
  if (key == "order" || key == "bk") {
    // ParseInt32 rejects values outside int range instead of truncating.
    Result<int> v = ParseInt32(value);
    if (!v.ok()) return v.status();
    (key == "order" ? options->bound_order : options->bk) = *v;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown detect flag '" + key + "'");
}

std::string FormatRoundTrip(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

Result<ServeRequest> ParseServeRequest(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  ServeRequest request;
  if (tokens.empty()) return request;  // kNone

  const std::string verb = AsciiLower(tokens[0]);
  if (verb == "quit" || verb == "exit") {
    if (tokens.size() != 1) return WrongArity("quit");
    request.command = ServeCommand::kQuit;
    return request;
  }
  if (verb == "shutdown") {
    if (tokens.size() != 1) return WrongArity("shutdown");
    request.command = ServeCommand::kShutdown;
    return request;
  }
  if (verb == "catalog") {
    if (tokens.size() != 1) return WrongArity("catalog");
    request.command = ServeCommand::kCatalog;
    return request;
  }
  if (verb == "load") {
    if (tokens.size() != 3) return WrongArity("load <name> <path>");
    request.command = ServeCommand::kLoad;
    request.name = tokens[1];
    request.path = tokens[2];
    return request;
  }
  if (verb == "save") {
    if (tokens.size() < 3 || tokens.size() > 4) {
      return WrongArity("save <name> <path> [text|binary]");
    }
    request.command = ServeCommand::kSave;
    request.name = tokens[1];
    request.path = tokens[2];
    if (tokens.size() == 4) {
      const std::string fmt = AsciiLower(tokens[3]);
      if (fmt == "text") {
        request.format = GraphFileFormat::kText;
      } else if (fmt == "binary") {
        request.format = GraphFileFormat::kBinary;
      } else {
        return Status::InvalidArgument("unknown format '" + tokens[3] +
                                       "' (want text|binary)");
      }
    }
    return request;
  }
  if (verb == "stats") {
    if (tokens.size() > 2) return WrongArity("stats [<name>]");
    request.command = ServeCommand::kStats;
    if (tokens.size() == 2) request.name = tokens[1];
    return request;
  }
  if (verb == "metrics") {
    if (tokens.size() != 1) return WrongArity("metrics");
    request.command = ServeCommand::kMetrics;
    return request;
  }
  if (verb == "evict") {
    if (tokens.size() != 2) return WrongArity("evict <name>");
    request.command = ServeCommand::kEvict;
    request.name = tokens[1];
    return request;
  }
  if (verb == "addedge" || verb == "setprob") {
    const bool add = verb == "addedge";
    if (tokens.size() != 5) {
      return WrongArity(add ? "addedge <name> <src> <dst> <prob>"
                            : "setprob <name> <src> <dst> <prob>");
    }
    request.command = add ? ServeCommand::kAddEdge : ServeCommand::kSetProb;
    request.name = tokens[1];
    Result<NodeId> src = ParseNode(tokens[2], "src");
    if (!src.ok()) return src.status();
    Result<NodeId> dst = ParseNode(tokens[3], "dst");
    if (!dst.ok()) return dst.status();
    Result<double> prob = ParseProb(tokens[4]);
    if (!prob.ok()) return prob.status();
    request.src = *src;
    request.dst = *dst;
    request.prob = *prob;
    return request;
  }
  if (verb == "deledge") {
    if (tokens.size() != 4) return WrongArity("deledge <name> <src> <dst>");
    request.command = ServeCommand::kDelEdge;
    request.name = tokens[1];
    Result<NodeId> src = ParseNode(tokens[2], "src");
    if (!src.ok()) return src.status();
    Result<NodeId> dst = ParseNode(tokens[3], "dst");
    if (!dst.ok()) return dst.status();
    request.src = *src;
    request.dst = *dst;
    return request;
  }
  if (verb == "commit") {
    if (tokens.size() != 2) return WrongArity("commit <name>");
    request.command = ServeCommand::kCommit;
    request.name = tokens[1];
    return request;
  }
  if (verb == "versions") {
    if (tokens.size() != 2) return WrongArity("versions <name>");
    request.command = ServeCommand::kVersions;
    request.name = tokens[1];
    return request;
  }
  if (verb == "detect") {
    if (tokens.size() < 3) {
      return WrongArity("detect <name> <k> [method] [key=value ...]");
    }
    request.command = ServeCommand::kDetect;
    request.name = tokens[1];
    Result<std::size_t> k = ParseCount(tokens[2], "k");
    if (!k.ok()) return k.status();
    request.options.k = *k;
    std::size_t next = 3;
    if (next < tokens.size() && tokens[next].find('=') == std::string::npos) {
      // Bare method name, matching the batch CLI's positional style.
      VULNDS_RETURN_NOT_OK(
          ApplyDetectFlag("method=" + tokens[next], &request.options));
      ++next;
    }
    for (; next < tokens.size(); ++next) {
      VULNDS_RETURN_NOT_OK(ApplyDetectFlag(tokens[next], &request.options));
    }
    return request;
  }
  if (verb == "truth") {
    if (tokens.size() < 3 || tokens.size() > 5) {
      return WrongArity("truth <name> <k> [samples] [seed]");
    }
    request.command = ServeCommand::kTruth;
    request.name = tokens[1];
    Result<std::size_t> k = ParseCount(tokens[2], "k");
    if (!k.ok()) return k.status();
    request.k = *k;
    if (tokens.size() > 3) {
      Result<std::size_t> samples = ParseCount(tokens[3], "samples");
      if (!samples.ok()) return samples.status();
      request.samples = *samples;
    }
    if (tokens.size() > 4) {
      Result<uint64_t> seed = ParseUint64(tokens[4]);
      if (!seed.ok()) return seed.status();
      request.seed = *seed;
    }
    return request;
  }
  return Status::InvalidArgument("unknown command '" + tokens[0] + "'");
}

std::string StripWallClockTokens(const std::string& line) {
  // Erase exactly the "time=<value>" token spans (plus one adjoining
  // separator space), leaving every other byte — including spacing —
  // untouched, so "modulo time=" comparisons stay bitwise-strong.
  std::string out = line;
  std::size_t pos = 0;
  while ((pos = out.find("time=", pos)) != std::string::npos) {
    if (pos != 0 && out[pos - 1] != ' ') {  // substring of a larger token
      pos += 5;
      continue;
    }
    std::size_t end = out.find(' ', pos);
    if (end == std::string::npos) end = out.size();
    std::size_t begin = pos;
    if (begin > 0) {
      --begin;  // absorb the separator before the token
    } else if (end < out.size()) {
      ++end;  // token at line start: absorb the separator after it
    }
    out.erase(begin, end - begin);
    pos = begin;
  }
  return out;
}

}  // namespace vulnds::serve
