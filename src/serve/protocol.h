// The line-oriented serve protocol.
//
// One request per line, whitespace separated; '#' starts a comment line.
//   load <name> <path>                       register a snapshot (text|binary)
//   save <name> <path> [text|binary]         write a snapshot (default binary)
//   detect <name> <k> [method] [key=value…]  top-k query; keys: eps, delta,
//                                            seed, samples, order, bk,
//                                            method, threads (sampling
//                                            parallelism; 0 = session pool),
//                                            wave (BSRBK wave schedule:
//                                            adaptive | fixed | fixed:N),
//                                            simd (kernel tier: auto |
//                                            avx2 | scalar; execution-only)
//   truth <name> <k> [samples] [seed]        Monte-Carlo reference top-k
//   stats [<name>]                           graph stats / engine counters
//   metrics                                  Prometheus text exposition of
//                                            the whole registry (engine,
//                                            server, catalog + cache shards)
//   catalog                                  resident graphs, MRU first
//   evict <name>                             drop a graph (and its state)
//   addedge <name> <src> <dst> <prob>        stage an edge insertion
//   deledge <name> <src> <dst>               stage an edge deletion
//   setprob <name> <src> <dst> <prob>        stage a probability update
//   commit <name>                            materialize staged updates as
//                                            the next version <name>@vN
//   versions <name>                          version history of <name>
//   shutdown                                 begin graceful drain: the front
//                                            end stops accepting, in-flight
//                                            requests finish, the process
//                                            exits 0 (stdin front: quit;
//                                            net front: drains the server)
//   quit                                     end the session
//
// Responses (server.h) are line-oriented too: the first line starts with
// "ok" or "err", multi-line payloads are terminated by a single ".".
//
// Parsing is pure (no catalog access), so malformed input is testable and
// can never take the serving loop down.

#ifndef VULNDS_SERVE_PROTOCOL_H_
#define VULNDS_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "graph/graph_io.h"
#include "vulnds/detector.h"

namespace vulnds::serve {

/// The request verbs of the protocol.
enum class ServeCommand {
  kLoad = 0,
  kSave,
  kDetect,
  kTruth,
  kStats,
  kMetrics,
  kCatalog,
  kEvict,
  kAddEdge,
  kDelEdge,
  kSetProb,
  kCommit,
  kVersions,
  kShutdown,
  kQuit,
  kNone,  ///< blank or comment line; nothing to execute
};

/// Wire name of a command ("detect", "metrics", ...; "none" for kNone).
/// The label vocabulary of the per-verb request metrics.
const char* ServeCommandName(ServeCommand command);

/// A parsed request; only the fields of the active command are meaningful.
struct ServeRequest {
  ServeCommand command = ServeCommand::kNone;
  std::string name;  ///< graph name (all commands but catalog/quit)
  std::string path;  ///< load/save
  GraphFileFormat format = GraphFileFormat::kBinary;  ///< save
  DetectorOptions options;                            ///< detect (k included)
  std::size_t k = 1;                                  ///< truth
  std::size_t samples = 0;  ///< truth; 0 = paper default
  uint64_t seed = 777;      ///< truth
  NodeId src = 0;           ///< addedge/deledge/setprob
  NodeId dst = 0;           ///< addedge/deledge/setprob
  double prob = 0.0;        ///< addedge/setprob
};

/// Parses one protocol line. Unknown verbs, wrong arity, and malformed
/// numbers return InvalidArgument with a message suitable for an "err"
/// response line.
Result<ServeRequest> ParseServeRequest(const std::string& line);

/// Case-insensitive method name lookup ("bsrbk" -> Method::kBsrbk).
Result<Method> ParseMethodToken(const std::string& name);

/// Applies one "key=value" detect option assignment (method, eps, delta,
/// seed, samples, order, bk, threads, wave) to `options`. Shared by the
/// serve protocol and the batch CLI so the flag vocabulary cannot drift
/// between them.
Status ApplyDetectFlag(const std::string& token, DetectorOptions* options);

/// Formats a double with enough digits to round-trip exactly (%.17g): the
/// wire format for scores and timings, and the text used in cache keys.
std::string FormatRoundTrip(double value);

/// Drops the wall-clock "time=<float>" token from one response line —
/// the protocol's ONLY nondeterministic bytes. The canonical normalizer
/// for transcript comparison: the concurrency tests and benches assert
/// responses bit-identical modulo exactly this. If the protocol ever
/// gains another nondeterministic token, extend this in one place.
std::string StripWallClockTokens(const std::string& line);

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_PROTOCOL_H_
