// RunServeLoop: drives one ServeSession from a line-oriented request stream.
//
// The loop reads protocol lines (protocol.h) from `in` through the capped
// request-line reader (session.h) and writes responses to `out` until `quit`
// or end-of-stream. Malformed and oversized requests produce a single
// "err <message>" line and the loop continues — a serving process must never
// die because one client sent garbage. Streams rather than stdio so a
// scripted session is a plain stringstream in tests.
//
// This is the single-session front: all parse/dispatch/respond logic lives
// in ServeSession (session.h); concurrent multi-session serving lives in
// ServeServer (serve_server.h). Both speak byte-identical protocol.

#ifndef VULNDS_SERVE_SERVER_H_
#define VULNDS_SERVE_SERVER_H_

#include <iosfwd>

#include "serve/query_engine.h"
#include "serve/session.h"
#include "serve/update_backend.h"

namespace vulnds::serve {

/// Runs the request/response loop until `quit` or EOF. Returns the session
/// counters (the process exit code is the caller's business). `updates`
/// handles the dynamic-update verbs (addedge/deledge/setprob/commit/
/// versions); when nullptr those verbs answer with an error and everything
/// else works as before. `server` (optional) receives the shared server
/// counters — the CLI passes one so the single-session front's `stats` and
/// `metrics` verbs export the same vulnds_server_* families a ServeServer
/// does; session start/finish are counted here, mirroring ServeServer.
ServeLoopStats RunServeLoop(std::istream& in, std::ostream& out,
                            QueryEngine& engine,
                            UpdateBackend* updates = nullptr,
                            ServerStats* server = nullptr);

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_SERVER_H_
