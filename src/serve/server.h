// RunServeLoop: drives a QueryEngine from a line-oriented request stream.
//
// The loop reads protocol lines (protocol.h) from `in` and writes responses
// to `out` until `quit` or end-of-stream. Malformed requests and failed
// queries produce a single "err <message>" line and the loop continues —
// a serving process must never die because one client sent garbage. Streams
// rather than stdio so a scripted session is a plain stringstream in tests.

#ifndef VULNDS_SERVE_SERVER_H_
#define VULNDS_SERVE_SERVER_H_

#include <cstddef>
#include <iosfwd>

#include "serve/query_engine.h"
#include "serve/update_backend.h"

namespace vulnds::serve {

/// Counters for one serve session.
struct ServeLoopStats {
  std::size_t requests = 0;  ///< non-blank lines processed
  std::size_t errors = 0;    ///< "err" responses emitted
  std::size_t updates = 0;   ///< accepted update verbs (incl. commits)
};

/// Runs the request/response loop until `quit` or EOF. Returns the session
/// counters (the process exit code is the caller's business). `updates`
/// handles the dynamic-update verbs (addedge/deledge/setprob/commit/
/// versions); when nullptr those verbs answer with an error and everything
/// else works as before.
ServeLoopStats RunServeLoop(std::istream& in, std::ostream& out,
                            QueryEngine& engine,
                            UpdateBackend* updates = nullptr);

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_SERVER_H_
