// RunServeLoop: drives a QueryEngine from a line-oriented request stream.
//
// The loop reads protocol lines (protocol.h) from `in` and writes responses
// to `out` until `quit` or end-of-stream. Malformed requests and failed
// queries produce a single "err <message>" line and the loop continues —
// a serving process must never die because one client sent garbage. Streams
// rather than stdio so a scripted session is a plain stringstream in tests.

#ifndef VULNDS_SERVE_SERVER_H_
#define VULNDS_SERVE_SERVER_H_

#include <cstddef>
#include <iosfwd>

#include "serve/query_engine.h"

namespace vulnds::serve {

/// Counters for one serve session.
struct ServeLoopStats {
  std::size_t requests = 0;  ///< non-blank lines processed
  std::size_t errors = 0;    ///< "err" responses emitted
};

/// Runs the request/response loop until `quit` or EOF. Returns the session
/// counters (the process exit code is the caller's business).
ServeLoopStats RunServeLoop(std::istream& in, std::ostream& out,
                            QueryEngine& engine);

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_SERVER_H_
