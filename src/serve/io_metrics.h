// The shared IO-failure metric family.
//
// Every hardened IO seam (journal append/fsync/compaction, snapshot spill
// and page-in, manifest writes, socket sends) reports through one family so
// an operator sees the whole failure surface in a single table:
//
//   vulnds_store_io_errors_total{site=..., outcome=...}
//
// Outcomes: `retried` — a bounded retry absorbed the failure and the
// operation succeeded; `degraded` — a fallback path (recompute, reload from
// source) answered instead; `error` — the failure was surfaced to the
// caller (a protocol `err` line or a dropped connection).
//
// The error paths are cold, so counters are resolved get-or-create per
// event; RegisterIoErrorSeries pre-creates the known (site, outcome) pairs
// at bind time so the family is present in the exposition (and lintable)
// before the first failure.

#ifndef VULNDS_SERVE_IO_METRICS_H_
#define VULNDS_SERVE_IO_METRICS_H_

#include "obs/metrics.h"

namespace vulnds::serve {

inline constexpr const char* kIoErrorsFamily = "vulnds_store_io_errors_total";
inline constexpr const char* kIoErrorsHelp =
    "IO failures by site and outcome (retried: bounded retry succeeded; "
    "degraded: a fallback answered; error: surfaced to the caller)";

/// Known sites, for pre-registration. Call sites pass the literal directly.
inline constexpr const char* kIoErrorSites[] = {
    "journal_append", "journal_fsync", "journal_compact", "spill_write",
    "spill_page_in",  "spill_manifest", "snapshot_write",  "net_send",
};
inline constexpr const char* kIoErrorOutcomes[] = {"retried", "degraded",
                                                   "error"};

/// Counts one IO failure event; no-op when no registry is bound.
inline void CountIoError(obs::MetricRegistry* registry, const char* site,
                         const char* outcome) {
  if (registry == nullptr) return;
  registry
      ->GetCounter(kIoErrorsFamily, kIoErrorsHelp,
                   {{"site", site}, {"outcome", outcome}})
      ->Increment();
}

/// Pre-creates every known (site, outcome) series at 0.
inline void RegisterIoErrorSeries(obs::MetricRegistry* registry) {
  if (registry == nullptr) return;
  for (const char* site : kIoErrorSites) {
    for (const char* outcome : kIoErrorOutcomes) {
      registry->GetCounter(kIoErrorsFamily, kIoErrorsHelp,
                           {{"site", site}, {"outcome", outcome}});
    }
  }
}

}  // namespace vulnds::serve

#endif  // VULNDS_SERVE_IO_METRICS_H_
