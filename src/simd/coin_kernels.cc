#include "simd/coin_kernels.h"

#include "simd/kernels_internal.h"

namespace vulnds::simd {

namespace {

// HashUnit's value for the 53-bit hash key x — the exact double the scalar
// reference compares against prob. Multiplying by the power of two is exact;
// double(x) + 0.5 rounds (to even) for x >= 2^52, which keeps the map
// merely NON-decreasing rather than strictly increasing, and non-decreasing
// is all the down-set argument in CoinThreshold needs.
inline double UnitOf(uint64_t x) {
  return (static_cast<double>(x) + 0.5) * 0x1.0p-53;
}

}  // namespace

uint64_t CoinThreshold(double prob) {
  // The early-outs of WorldEdgeSurvives / WorldNodeSelfDefaults, folded into
  // the threshold domain. `!(prob > 0)` is deliberate: it catches NaN, for
  // which the scalar predicate `HashUnit < prob` is false for every hash.
  if (!(prob > 0.0)) return 0;
  if (prob >= 1.0) return kCoinAlways;
  // Seed a guess near prob * 2^53, then walk it to the exact boundary.
  // UnitOf is non-decreasing, so "walk down while x-1 would not survive,
  // walk up while x would" terminates at the unique T with
  // UnitOf(y) < prob ⟺ y < T. The guess is within a few ulps of T, so the
  // loops run O(1) steps; this runs once per arc at column-build time, never
  // per world.
  const double scaled = prob * 9007199254740992.0;  // 2^53
  uint64_t x = scaled >= 1.0 ? static_cast<uint64_t>(scaled) : 0;
  if (x > kCoinAlways) x = kCoinAlways;
  while (x > 0 && !(UnitOf(x - 1) < prob)) --x;
  while (x < kCoinAlways && UnitOf(x) < prob) ++x;
  return x;
}

std::size_t CoinSurvivors(SimdTier tier, uint64_t seed, const uint64_t* inner,
                          const uint64_t* threshold, std::size_t n,
                          uint32_t* out, CoinKernelStats* stats) {
  if (tier == SimdTier::kAvx2) {
    return internal::CoinSurvivorsAvx2(seed, inner, threshold, n,
                                       /*padded=*/false, out, stats);
  }
  return internal::CoinSurvivorsScalar(seed, inner, threshold, n, out, stats);
}

std::size_t CoinSurvivorsPadded(SimdTier tier, uint64_t seed,
                                const uint64_t* inner,
                                const uint64_t* threshold, std::size_t n,
                                uint32_t* out, CoinKernelStats* stats) {
  if (tier == SimdTier::kAvx2) {
    return internal::CoinSurvivorsAvx2(seed, inner, threshold, n,
                                       /*padded=*/true, out, stats);
  }
  return internal::CoinSurvivorsScalar(seed, inner, threshold, n, out, stats);
}

void HashBatch(SimdTier tier, uint64_t seed, uint64_t base, std::size_t n,
               uint64_t* out, CoinKernelStats* stats) {
  if (tier == SimdTier::kAvx2) {
    internal::HashBatchAvx2(seed, base, n, out, stats);
  } else {
    internal::HashBatchScalar(seed, base, n, out, stats);
  }
}

std::size_t FindActive(SimdTier tier, const unsigned char* flags,
                       const unsigned char* veto, std::size_t n,
                       uint32_t* out) {
  if (tier == SimdTier::kAvx2) {
    return internal::FindActiveAvx2(flags, veto, n, out);
  }
  return internal::FindActiveScalar(flags, veto, n, out);
}

void AccumulateCounts(SimdTier tier, uint32_t* counts,
                      const unsigned char* flags, std::size_t n) {
  if (tier == SimdTier::kAvx2) {
    internal::AccumulateCountsAvx2(counts, flags, n);
  } else {
    internal::AccumulateCountsScalar(counts, flags, n);
  }
}

}  // namespace vulnds::simd
