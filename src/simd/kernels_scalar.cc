// Scalar reference kernels. Every other tier is property-tested
// bit-identical to these (tests/simd/coin_kernels_test.cc), and the AVX2
// TU calls back into them for unpadded tails, so this file is the single
// source of truth for what a kernel computes.

#include "simd/coin_kernels.h"
#include "simd/kernels_internal.h"

namespace vulnds::simd::internal {

std::size_t CoinSurvivorsScalar(uint64_t seed, const uint64_t* inner,
                                const uint64_t* threshold, std::size_t n,
                                uint32_t* out, CoinKernelStats* stats) {
  std::size_t found = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (CoinHits(seed, inner[i], threshold[i])) {
      out[found++] = static_cast<uint32_t>(i);
    }
  }
  if (stats != nullptr) stats->tail_coins += n;
  return found;
}

void HashBatchScalar(uint64_t seed, uint64_t base, std::size_t n,
                     uint64_t* out, CoinKernelStats* stats) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = Mix64(CoinInnerHash(base + i) ^ seed);
  }
  if (stats != nullptr) stats->tail_coins += n;
}

std::size_t FindActiveScalar(const unsigned char* flags,
                             const unsigned char* veto, std::size_t n,
                             uint32_t* out) {
  std::size_t found = 0;
  if (veto == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (flags[i] != 0) out[found++] = static_cast<uint32_t>(i);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (flags[i] != 0 && veto[i] == 0) out[found++] = static_cast<uint32_t>(i);
    }
  }
  return found;
}

void AccumulateCountsScalar(uint32_t* counts, const unsigned char* flags,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) counts[i] += flags[i];
}

}  // namespace vulnds::simd::internal
