#include "simd/dispatch.h"

#include <algorithm>
#include <cctype>

#include "common/env.h"
#include "simd/kernels_internal.h"

namespace vulnds::simd {

bool Avx2KernelsCompiled() { return internal::Avx2Compiled(); }

bool Avx2Available() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports caches the CPUID result after the first call.
  return internal::Avx2Compiled() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

SimdTier BestSupportedTier() {
  return Avx2Available() ? SimdTier::kAvx2 : SimdTier::kScalar;
}

SimdTier DefaultTier() {
  // Resolved once: serving threads can race to first use, so the init must
  // be the magic-static kind, and the env var is deliberately not re-read —
  // a process has exactly one default tier for its lifetime (the
  // vulnds_simd_tier gauge reports this value).
  static const SimdTier kDefault = [] {
    const std::string raw = GetEnvString("VULNDS_SIMD", "auto");
    std::string mode(raw);
    std::transform(mode.begin(), mode.end(), mode.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (mode == "scalar") return SimdTier::kScalar;
    if (mode == "avx2") {
      // Forcing a tier the host cannot run would SIGILL; degrade instead
      // (results are bit-identical, so this is invisible to callers).
      return Avx2Available() ? SimdTier::kAvx2 : SimdTier::kScalar;
    }
    return BestSupportedTier();  // "auto" and anything unrecognized
  }();
  return kDefault;
}

SimdTier ResolveTier(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return SimdTier::kScalar;
    case SimdMode::kAvx2:
      return Avx2Available() ? SimdTier::kAvx2 : SimdTier::kScalar;
    case SimdMode::kAuto:
      break;
  }
  return DefaultTier();
}

const char* SimdTierName(SimdTier tier) {
  return tier == SimdTier::kAvx2 ? "avx2" : "scalar";
}

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kAvx2:
      return "avx2";
    case SimdMode::kAuto:
      break;
  }
  return "auto";
}

Result<SimdMode> ParseSimdMode(const std::string& text) {
  std::string mode(text);
  std::transform(mode.begin(), mode.end(), mode.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (mode == "auto") return SimdMode::kAuto;
  if (mode == "scalar") return SimdMode::kScalar;
  if (mode == "avx2") return SimdMode::kAvx2;
  return Status::InvalidArgument("simd must be auto, avx2 or scalar, got '" +
                                 text + "'");
}

}  // namespace vulnds::simd
