// AVX2 kernels: 4 × u64 lanes per coin block, 32 × u8 per bitmap block.
//
// This is the only translation unit in the tree compiled with -mavx2
// (CMakeLists sets it per-file), so nothing here may be visible inline to
// baseline TUs — see kernels_internal.h. When the toolchain cannot build
// AVX2 the #else branch forwards every symbol to the scalar reference, so
// the link never breaks and dispatch.cc reports the tier unavailable.
//
// Bit-identity notes (the contract tests in tests/simd/ depend on these):
//  * Mix64Vec reproduces rng.cc's Mix64 lane-for-lane: the splitmix64
//    constant add, two xor-shift-multiply rounds, final xor-shift. AVX2 has
//    no 64-bit low multiply, so Mul64Lo assembles it from 32×32→64 partial
//    products — exact mod 2^64, which is all Mix64's wrapping multiply needs.
//  * The survivor compare uses the SIGNED _mm256_cmpgt_epi64: safe because
//    both operands are < 2^53 (hash >> 11 and CoinThreshold's range), far
//    below the sign bit.
//  * Survivor extraction walks the movemask lowest-bit-first, so indices
//    come out ascending — BFS pushes neighbors in the scalar visitation
//    order.

#include "simd/coin_kernels.h"
#include "simd/kernels_internal.h"

#ifdef __AVX2__

#include <immintrin.h>

namespace vulnds::simd::internal {

bool Avx2Compiled() { return true; }

namespace {

// a * b mod 2^64 per lane (vpmullq is AVX-512; emulate with 32-bit parts:
// lo(a)lo(b) + ((lo(a)hi(b) + hi(a)lo(b)) << 32), the carry-free form).
inline __m256i Mul64Lo(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

inline __m256i XorShiftRight(__m256i z, int shift) {
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, shift));
}

// Mix64(x) per lane, bit-identical to common/rng.cc.
inline __m256i Mix64Vec(__m256i x) {
  __m256i z = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9E3779B97F4A7C15ULL)));
  z = Mul64Lo(XorShiftRight(z, 30),
              _mm256_set1_epi64x(static_cast<long long>(0xBF58476D1CE4E5B9ULL)));
  z = Mul64Lo(XorShiftRight(z, 27),
              _mm256_set1_epi64x(static_cast<long long>(0x94D049BB133111EBULL)));
  return XorShiftRight(z, 31);
}

// The 4-bit survivor mask of one block: lane i set iff
// (Mix64(inner[i] ^ seed) >> 11) < threshold[i].
inline int CoinBlockMask(__m256i seed_v, const uint64_t* inner,
                         const uint64_t* threshold) {
  const __m256i inner_v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(inner));
  const __m256i thr_v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(threshold));
  const __m256i hash =
      _mm256_srli_epi64(Mix64Vec(_mm256_xor_si256(inner_v, seed_v)), 11);
  const __m256i lt = _mm256_cmpgt_epi64(thr_v, hash);
  return _mm256_movemask_pd(_mm256_castsi256_pd(lt));
}

}  // namespace

std::size_t CoinSurvivorsAvx2(uint64_t seed, const uint64_t* inner,
                              const uint64_t* threshold, std::size_t n,
                              bool padded, uint32_t* out,
                              CoinKernelStats* stats) {
  const __m256i seed_v =
      _mm256_set1_epi64x(static_cast<long long>(seed));
  std::size_t found = 0;
  // With padded columns the slots in [n, blocks * kCoinLanes) carry
  // threshold 0 and can never survive, so rounding the loop up is harmless
  // and leaves no scalar tail at all.
  const std::size_t blocks =
      padded ? (n + kCoinLanes - 1) / kCoinLanes : n / kCoinLanes;
  // Mix64's two dependent multiply rounds make one block a ~25-cycle latency
  // chain; a single-block loop runs at chain latency, not multiply
  // throughput. Four independent blocks in flight keep the multiply ports
  // busy, and merging their masks (block b at bits [4b, 4b+4)) keeps the
  // lowest-bit-first walk emitting survivors in ascending index order.
  std::size_t b = 0;
  for (; b + 4 <= blocks; b += 4) {
    const std::size_t base = b * kCoinLanes;
    const unsigned m0 = static_cast<unsigned>(
        CoinBlockMask(seed_v, inner + base, threshold + base));
    const unsigned m1 = static_cast<unsigned>(CoinBlockMask(
        seed_v, inner + base + kCoinLanes, threshold + base + kCoinLanes));
    const unsigned m2 = static_cast<unsigned>(
        CoinBlockMask(seed_v, inner + base + 2 * kCoinLanes,
                      threshold + base + 2 * kCoinLanes));
    const unsigned m3 = static_cast<unsigned>(
        CoinBlockMask(seed_v, inner + base + 3 * kCoinLanes,
                      threshold + base + 3 * kCoinLanes));
    unsigned mask = m0 | (m1 << 4) | (m2 << 8) | (m3 << 12);
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[found++] = static_cast<uint32_t>(base + lane);
      mask &= mask - 1;
    }
  }
  if (b + 2 <= blocks) {
    const std::size_t base = b * kCoinLanes;
    const unsigned m0 = static_cast<unsigned>(
        CoinBlockMask(seed_v, inner + base, threshold + base));
    const unsigned m1 = static_cast<unsigned>(CoinBlockMask(
        seed_v, inner + base + kCoinLanes, threshold + base + kCoinLanes));
    unsigned mask = m0 | (m1 << 4);
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[found++] = static_cast<uint32_t>(base + lane);
      mask &= mask - 1;
    }
    b += 2;
  }
  if (b < blocks) {
    const std::size_t base = b * kCoinLanes;
    int mask = CoinBlockMask(seed_v, inner + base, threshold + base);
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[found++] = static_cast<uint32_t>(base + lane);
      mask &= mask - 1;
    }
  }
  if (stats != nullptr) stats->batched_coins += blocks * kCoinLanes;
  if (!padded) {
    const std::size_t done = blocks * kCoinLanes;
    uint32_t tail[kCoinLanes];
    const std::size_t tail_found = CoinSurvivorsScalar(
        seed, inner + done, threshold + done, n - done, tail, stats);
    for (std::size_t i = 0; i < tail_found; ++i) {
      out[found++] = static_cast<uint32_t>(done) + tail[i];
    }
  }
  return found;
}

void HashBatchAvx2(uint64_t seed, uint64_t base, std::size_t n, uint64_t* out,
                   CoinKernelStats* stats) {
  const __m256i seed_v = _mm256_set1_epi64x(static_cast<long long>(seed));
  const __m256i ramp = _mm256_set_epi64x(3, 2, 1, 0);
  const std::size_t blocks = n / kCoinLanes;
  // Hash64(id) = Mix64(Mix64(id + C) ^ seed). The "+ C" of the inner round
  // is IN ADDITION to Mix64's own leading gamma add (Mix64Vec supplies
  // only the latter), so it is folded into the lane base here — modular
  // add, same wraparound as the scalar CoinInnerHash. Two blocks per
  // iteration for the same latency-hiding reason as CoinSurvivorsAvx2 (the
  // chain here is twice as long: two chained Mix64 rounds per lane).
  std::size_t b = 0;
  auto lane_base = [&](std::size_t block) {
    return _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(
            base + block * kCoinLanes + 0x9E3779B97F4A7C15ULL)),
        ramp);
  };
  for (; b + 2 <= blocks; b += 2) {
    const __m256i h0 =
        Mix64Vec(_mm256_xor_si256(Mix64Vec(lane_base(b)), seed_v));
    const __m256i h1 =
        Mix64Vec(_mm256_xor_si256(Mix64Vec(lane_base(b + 1)), seed_v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + b * kCoinLanes), h0);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + (b + 1) * kCoinLanes), h1);
  }
  for (; b < blocks; ++b) {
    const __m256i hash =
        Mix64Vec(_mm256_xor_si256(Mix64Vec(lane_base(b)), seed_v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + b * kCoinLanes),
                        hash);
  }
  if (stats != nullptr) stats->batched_coins += blocks * kCoinLanes;
  const std::size_t done = blocks * kCoinLanes;
  HashBatchScalar(seed, base + done, n - done, out + done, stats);
}

std::size_t FindActiveAvx2(const unsigned char* flags,
                           const unsigned char* veto, std::size_t n,
                           uint32_t* out) {
  constexpr std::size_t kBlock = 32;
  const __m256i zero = _mm256_setzero_si256();
  std::size_t found = 0;
  const std::size_t blocks = n / kBlock;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t base = b * kBlock;
    const __m256i f =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(flags + base));
    // active byte ⟺ flag != 0 && veto == 0.
    __m256i active = _mm256_cmpeq_epi8(f, zero);  // 0xFF where flag == 0
    if (veto != nullptr) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(veto + base));
      active = _mm256_or_si256(active,
                               _mm256_xor_si256(_mm256_cmpeq_epi8(v, zero),
                                                _mm256_set1_epi8(-1)));
    }
    // `active` now marks INACTIVE bytes; invert via movemask complement.
    unsigned mask = ~static_cast<unsigned>(_mm256_movemask_epi8(active));
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[found++] = static_cast<uint32_t>(base + lane);
      mask &= mask - 1;
    }
  }
  const std::size_t done = blocks * kBlock;
  uint32_t tail[kBlock];
  const std::size_t tail_found =
      FindActiveScalar(flags + done, veto == nullptr ? nullptr : veto + done,
                       n - done, tail);
  for (std::size_t i = 0; i < tail_found; ++i) {
    out[found++] = static_cast<uint32_t>(done) + tail[i];
  }
  return found;
}

void AccumulateCountsAvx2(uint32_t* counts, const unsigned char* flags,
                          std::size_t n) {
  constexpr std::size_t kBlock = 8;  // 8 × u8 widened to 8 × u32
  const std::size_t blocks = n / kBlock;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t base = b * kBlock;
    const __m128i f8 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(flags + base));
    const __m256i wide = _mm256_cvtepu8_epi32(f8);
    __m256i c =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(counts + base));
    c = _mm256_add_epi32(c, wide);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + base), c);
  }
  const std::size_t done = blocks * kBlock;
  AccumulateCountsScalar(counts + done, flags + done, n - done);
}

}  // namespace vulnds::simd::internal

#else  // !__AVX2__: forward to the scalar reference so the link holds.

namespace vulnds::simd::internal {

bool Avx2Compiled() { return false; }

std::size_t CoinSurvivorsAvx2(uint64_t seed, const uint64_t* inner,
                              const uint64_t* threshold, std::size_t n,
                              bool /*padded*/, uint32_t* out,
                              CoinKernelStats* stats) {
  return CoinSurvivorsScalar(seed, inner, threshold, n, out, stats);
}

void HashBatchAvx2(uint64_t seed, uint64_t base, std::size_t n, uint64_t* out,
                   CoinKernelStats* stats) {
  HashBatchScalar(seed, base, n, out, stats);
}

std::size_t FindActiveAvx2(const unsigned char* flags,
                           const unsigned char* veto, std::size_t n,
                           uint32_t* out) {
  return FindActiveScalar(flags, veto, n, out);
}

void AccumulateCountsAvx2(uint32_t* counts, const unsigned char* flags,
                          std::size_t n) {
  AccumulateCountsScalar(counts, flags, n);
}

}  // namespace vulnds::simd::internal

#endif  // __AVX2__
