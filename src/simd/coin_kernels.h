// Batched possible-world kernels: the three hot loops of the BSRBK pipeline
// (world-coin evaluation, bottom-k hash precompute, candidate-bitmap folds)
// behind a tier-dispatched, bit-identical-by-contract interface.
//
// The determinism contract. A world coin is the predicate
//
//   UniformHash(seed).HashUnit(id) < prob
//     where Hash64(id)  = Mix64(Mix64(id + 0x9E3779B97F4A7C15) ^ seed)
//           HashUnit(id) = (double(Hash64(id) >> 11) + 0.5) * 2^-53
//
// (reverse_sampler.cc's WorldEdgeSurvives / WorldNodeSelfDefaults modulo
// their 0/1 early-outs). The kernels never evaluate the double comparison:
// CoinThreshold(prob) precomputes the exact integer T such that
//
//   HashUnit < prob  ⟺  (Hash64 >> 11) < T        for every hash value,
//
// which holds because x ↦ (double(x) + 0.5) * 2^-53 is non-decreasing over
// x ∈ [0, 2^53) — the survivor set of any prob is a down-set {x < T}. The
// early-outs fold in exactly: prob <= 0 (and NaN, where `HashUnit < prob`
// is false) maps to T = 0, prob >= 1 to T = 2^53 > every hash. Likewise the
// seed-independent inner round Mix64(id + C) is precomputed per entity
// (CoinInnerHash), so a per-world coin is one Mix64 and one integer compare
// in every tier. The AVX2 tier evaluates the identical integer arithmetic
// four lanes at a time; tests/simd/ proves tier-for-tier bit-identity.
//
// Evaluating a coin is free of side effects (worlds are pure functions), so
// batched callers may evaluate MORE coins than the scalar code would have —
// e.g. for already-visited BFS neighbors, or for alignment padding slots
// whose threshold is 0 (never survive) — without changing any result.

#ifndef VULNDS_SIMD_COIN_KERNELS_H_
#define VULNDS_SIMD_COIN_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "simd/dispatch.h"

namespace vulnds::simd {

/// The u64 lane width of the widest vector tier (AVX2: 4 × u64). Callers
/// that pad coin columns pad runs to a multiple of this.
inline constexpr std::size_t kCoinLanes = 4;

/// One past the largest value Hash64(id) >> 11 can take; the threshold of
/// prob >= 1 ("always survives").
inline constexpr uint64_t kCoinAlways = uint64_t{1} << 53;

/// Per-run kernel telemetry, accumulated by the caller with plain integers
/// (no atomics on the hot path) and published once per run. Batched counts
/// coin slots evaluated inside full vector lanes — including alignment
/// padding slots, which is why it can exceed the true coin count — and tail
/// counts coins evaluated one at a time (the scalar tier counts everything
/// here). Telemetry only: totals vary with the tier like worlds_wasted
/// varies with the schedule, and are never part of a result payload.
struct CoinKernelStats {
  std::uint64_t batched_coins = 0;
  std::uint64_t tail_coins = 0;

  void Add(const CoinKernelStats& other) {
    batched_coins += other.batched_coins;
    tail_coins += other.tail_coins;
  }
};

/// The exact integer threshold of `prob`: the unique T ∈ [0, 2^53] with
///   (double(x) + 0.5) * 2^-53 < prob  ⟺  x < T   for all x ∈ [0, 2^53).
/// prob <= 0 and NaN yield 0 (never), prob >= 1 yields kCoinAlways.
uint64_t CoinThreshold(double prob);

/// The seed-independent inner hash round of entity `id`:
/// Mix64(id + 0x9E3779B97F4A7C15), so that
/// UniformHash(seed).Hash64(id) == Mix64(CoinInnerHash(id) ^ seed).
inline uint64_t CoinInnerHash(uint64_t id) {
  return Mix64(id + 0x9E3779B97F4A7C15ULL);
}

/// One precomputed coin, scalar: does the entity survive under `seed`?
inline bool CoinHits(uint64_t seed, uint64_t inner, uint64_t threshold) {
  return (Mix64(inner ^ seed) >> 11) < threshold;
}

/// Evaluates `n` precomputed coins under `seed` and writes the indices of
/// the survivors into `out` (capacity >= n) in ascending order; returns the
/// survivor count. Handles any n: vector-width blocks plus a scalar tail.
std::size_t CoinSurvivors(SimdTier tier, uint64_t seed, const uint64_t* inner,
                          const uint64_t* threshold, std::size_t n,
                          uint32_t* out, CoinKernelStats* stats);

/// Same contract and results as CoinSurvivors, but requires the columns to
/// be readable (and the thresholds zero — never survive) through the next
/// multiple of kCoinLanes past n, as CoinColumns guarantees per adjacency
/// run. The AVX2 tier then runs pure full-width blocks with no scalar tail,
/// which is the difference between winning and losing on low-degree graphs.
std::size_t CoinSurvivorsPadded(SimdTier tier, uint64_t seed,
                                const uint64_t* inner,
                                const uint64_t* threshold, std::size_t n,
                                uint32_t* out, CoinKernelStats* stats);

/// out[i] = UniformHash(seed).Hash64(base + i) for i in [0, n): the bulk
/// half of the bottom-k HashUnit precompute (the >>11 / +0.5 / *2^-53
/// conversion stays scalar at the call site — it is exact, cheap, and AVX2
/// has no u64→f64 convert to get wrong). `stats` may be null.
void HashBatch(SimdTier tier, uint64_t seed, uint64_t base, std::size_t n,
               uint64_t* out, CoinKernelStats* stats);

/// Writes the ascending indices i ∈ [0, n) with flags[i] != 0 and
/// (veto == nullptr || veto[i] == 0) into `out` (capacity >= n); returns the
/// count. The vectorized form of the bottom-k fold's per-candidate scan
/// `if (!defaulted[c] || reached_bk[c]) continue;`.
std::size_t FindActive(SimdTier tier, const unsigned char* flags,
                       const unsigned char* veto, std::size_t n,
                       uint32_t* out);

/// counts[i] += flags[i] for i in [0, n); flags must be 0/1 (the defaulted
/// bitmaps are). The plain reverse-sampling count fold.
void AccumulateCounts(SimdTier tier, uint32_t* counts,
                      const unsigned char* flags, std::size_t n);

}  // namespace vulnds::simd

#endif  // VULNDS_SIMD_COIN_KERNELS_H_
