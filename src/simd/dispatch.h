// Runtime SIMD dispatch for the possible-world kernels.
//
// The kernel layer (coin_kernels.h) ships two implementations of every entry
// point: a portable scalar reference and an AVX2 build compiled in its own
// translation unit with -mavx2 (the rest of the tree stays baseline-ISA).
// Which one runs is a pure execution decision — every kernel is bit-identical
// across tiers by contract (property-tested in tests/simd/) — so the tier can
// be chosen per request, per process, or per CI run without ever touching a
// result or a cache key.
//
// Resolution order:
//   * a request-level `simd=auto|avx2|scalar` knob maps to SimdMode;
//   * SimdMode::kAuto resolves to the process default, which is read ONCE
//     from the VULNDS_SIMD environment variable (same vocabulary) and falls
//     back to CPUID detection;
//   * asking for AVX2 on a host (or build) without it degrades to scalar —
//     never an error, because the answer is the same bits either way.

#ifndef VULNDS_SIMD_DISPATCH_H_
#define VULNDS_SIMD_DISPATCH_H_

#include <string>

#include "common/status.h"

namespace vulnds::simd {

/// The implementation actually executing: what DispatchTier() resolved to.
enum class SimdTier {
  kScalar = 0,
  kAvx2 = 1,
};

/// What a caller asked for (knob vocabulary). kAuto defers to the process
/// default; the explicit tiers force it (AVX2 degrades to scalar when the
/// host or build cannot honor it).
enum class SimdMode {
  kAuto = 0,
  kScalar,
  kAvx2,
};

/// True iff the AVX2 kernels were compiled in AND the CPU reports AVX2.
bool Avx2Available();

/// True iff kernels_avx2.cc was built with AVX2 enabled (compile-time half
/// of Avx2Available; exposed so tests can tell "old CPU" from "old build").
bool Avx2KernelsCompiled();

/// The tier the best supported implementation resolves to (CPUID only; no
/// environment consultation).
SimdTier BestSupportedTier();

/// The process-default tier: VULNDS_SIMD=auto|avx2|scalar when set (invalid
/// values fall back to auto), else BestSupportedTier(). Resolved once at
/// first use and cached for the process lifetime.
SimdTier DefaultTier();

/// Resolves a request's mode to the tier that will execute: kAuto maps to
/// DefaultTier(), explicit tiers are honored when available and degrade to
/// scalar otherwise.
SimdTier ResolveTier(SimdMode mode);

/// Wire/telemetry name of a tier ("scalar", "avx2").
const char* SimdTierName(SimdTier tier);

/// Knob name of a mode ("auto", "scalar", "avx2").
const char* SimdModeName(SimdMode mode);

/// Parses the knob vocabulary ("auto" | "avx2" | "scalar", case-insensitive).
Result<SimdMode> ParseSimdMode(const std::string& text);

}  // namespace vulnds::simd

#endif  // VULNDS_SIMD_DISPATCH_H_
