// Per-tier kernel entry points. Internal to src/simd: the scalar set lives
// in kernels_scalar.cc (baseline ISA), the Avx2* set in kernels_avx2.cc —
// the ONLY translation unit compiled with -mavx2. Nothing here may be
// defined inline in this header: an inline helper instantiated once in an
// AVX2 TU and once in a baseline TU is an ODR trap that can leak AVX2
// encodings into baseline code. Dispatch lives in coin_kernels.cc.

#ifndef VULNDS_SIMD_KERNELS_INTERNAL_H_
#define VULNDS_SIMD_KERNELS_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace vulnds::simd {

struct CoinKernelStats;

namespace internal {

/// True iff kernels_avx2.cc was compiled with AVX2 code generation (the
/// Avx2* symbols below forward to scalar otherwise, so calling them is
/// always safe to *link* — running them still requires CPUID, which
/// dispatch.cc checks).
bool Avx2Compiled();

std::size_t CoinSurvivorsScalar(uint64_t seed, const uint64_t* inner,
                                const uint64_t* threshold, std::size_t n,
                                uint32_t* out, CoinKernelStats* stats);
std::size_t CoinSurvivorsAvx2(uint64_t seed, const uint64_t* inner,
                              const uint64_t* threshold, std::size_t n,
                              bool padded, uint32_t* out,
                              CoinKernelStats* stats);

void HashBatchScalar(uint64_t seed, uint64_t base, std::size_t n,
                     uint64_t* out, CoinKernelStats* stats);
void HashBatchAvx2(uint64_t seed, uint64_t base, std::size_t n, uint64_t* out,
                   CoinKernelStats* stats);

std::size_t FindActiveScalar(const unsigned char* flags,
                             const unsigned char* veto, std::size_t n,
                             uint32_t* out);
std::size_t FindActiveAvx2(const unsigned char* flags,
                           const unsigned char* veto, std::size_t n,
                           uint32_t* out);

void AccumulateCountsScalar(uint32_t* counts, const unsigned char* flags,
                            std::size_t n);
void AccumulateCountsAvx2(uint32_t* counts, const unsigned char* flags,
                          std::size_t n);

}  // namespace internal
}  // namespace vulnds::simd

#endif  // VULNDS_SIMD_KERNELS_INTERNAL_H_
