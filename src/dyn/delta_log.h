// DeltaLog: an ordered, validated log of edge mutations against an immutable
// base UncertainGraph.
//
// Three operations are recorded: edge insertion, edge deletion, and edge
// probability update. Every append is validated against the *effective*
// state (base plus the records already staged), so a log that accepted all
// its appends always replays cleanly: deleting a missing edge or updating a
// deleted one is rejected at append time, never discovered at commit time.
//
// Edge identity: deletions and probability updates target an (src, dst)
// pair; with parallel edges the lowest-id live match is chosen (base edges
// precede staged insertions, both in insertion order). Node additions are
// out of scope — endpoints must lie in the base graph's node range.
//
// The log never mutates the base graph. DynamicGraph (dynamic_graph.h)
// materializes base + log into a fresh CSR snapshot.

#ifndef VULNDS_DYN_DELTA_LOG_H_
#define VULNDS_DYN_DELTA_LOG_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace vulnds::dyn {

/// The three mutation kinds.
enum class DeltaOp {
  kAddEdge = 0,
  kDeleteEdge,
  kSetProb,
};

/// Printable op name ("addedge", "deledge", "setprob").
const char* DeltaOpName(DeltaOp op);

/// One staged mutation. `edge` is the resolved target in the *staging* id
/// space: base edges keep their ids [0, m); the i-th staged insertion gets
/// id m + i (ids are not compacted until commit).
struct DeltaRecord {
  DeltaOp op = DeltaOp::kAddEdge;
  NodeId src = 0;
  NodeId dst = 0;
  double prob = 0.0;  ///< new probability (kAddEdge / kSetProb)
  EdgeId edge = 0;    ///< resolved staging-space edge id
};

class DeltaLog {
 public:
  /// Creates a log over `base`; the graph must outlive the log and must not
  /// change while the log references it.
  explicit DeltaLog(const UncertainGraph* base);

  /// Stages a directed edge src -> dst with diffusion probability `prob`.
  /// Fails on out-of-range endpoints, self-loops, or prob outside [0, 1].
  Status AddEdge(NodeId src, NodeId dst, double prob);

  /// Stages the deletion of the lowest-id live edge (src, dst). Fails when
  /// no live edge matches.
  Status DeleteEdge(NodeId src, NodeId dst);

  /// Stages a probability update on the lowest-id live edge (src, dst).
  Status SetProb(NodeId src, NodeId dst, double prob);

  /// The staged records, in append order.
  const std::vector<DeltaRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

  /// Number of edges the committed graph will have.
  std::size_t live_edge_count() const {
    return base_->num_edges() - deleted_base_.size() + live_added_;
  }

  /// True iff base edge `e` is staged for deletion.
  bool IsBaseEdgeDeleted(EdgeId e) const {
    return deleted_base_.count(e) != 0;
  }

  /// The staged probability override for base edge `e`, or nullptr.
  const double* BaseProbOverride(EdgeId e) const {
    const auto it = prob_overrides_.find(e);
    return it == prob_overrides_.end() ? nullptr : &it->second;
  }

  /// Staged insertions that are still live, in staging order, with any
  /// later SetProb already applied.
  std::vector<UncertainEdge> LiveAddedEdges() const;

  /// Base edge ids staged for deletion, ascending.
  std::vector<EdgeId> DeletedBaseEdges() const;

  const UncertainGraph& base() const { return *base_; }

 private:
  // One staged insertion with its liveness flag and current probability.
  struct AddedEdge {
    UncertainEdge edge;
    bool live = true;
  };

  // Resolves (src, dst) to the lowest-id live edge, or an error.
  Result<EdgeId> ResolveLive(NodeId src, NodeId dst) const;

  Status CheckEndpoints(NodeId src, NodeId dst) const;

  const UncertainGraph* base_;
  std::vector<DeltaRecord> records_;
  std::unordered_set<EdgeId> deleted_base_;
  std::unordered_map<EdgeId, double> prob_overrides_;  // base edges only
  std::vector<AddedEdge> added_;
  std::size_t live_added_ = 0;
};

}  // namespace vulnds::dyn

#endif  // VULNDS_DYN_DELTA_LOG_H_
