// DeltaJournal: append-only on-disk log of staged update operations.
//
// The journal makes the dynamic-update write path durable: every staged op
// and every commit is appended as one length-prefixed, checksummed record,
// and the file is fsync'd at commit boundaries. After a crash (including
// kill -9 mid-append) UpdateManager replays the journal at startup and
// reconstructs every committed `name@vN` version plus the staged-but-
// uncommitted tail.
//
// Record framing, little-endian:
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// The CRC is the standard reflected CRC-32 (polynomial 0xEDB88320, as used
// by zip/png). A record whose header runs past EOF, whose length exceeds
// kMaxRecordBytes, or whose checksum mismatches marks the start of a
// corrupt tail: Open() truncates the file back to the last valid record
// boundary (recording how many bytes were dropped) and the journal is
// usable again — a torn append never poisons future appends.
//
// Payloads are single-line text in the UpdateManager replay grammar
// (`open` / `add` / `set` / `del` / `commit`); the journal itself treats
// them as opaque bytes.
//
// Appends go through the raw file descriptor with a single write() per
// record, so a record is either fully in the kernel or detectably torn —
// never interleaved with another process' buffering. Sync() fsyncs. The
// journal is NOT internally synchronized; UpdateManager serializes access
// under its own mutex.

#ifndef VULNDS_DYN_JOURNAL_H_
#define VULNDS_DYN_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/status.h"

namespace vulnds::dyn {

/// The journal's frame checksum — the shared reflected CRC-32 from
/// common/crc32.h, re-exported under the historical dyn:: name.
using vulnds::Crc32;

class DeltaJournal {
 public:
  /// Longest payload a record may carry; a corrupted length field is almost
  /// always astronomically large, so the cap turns it into a clean
  /// truncated-tail detection instead of a giant bogus read.
  static constexpr std::size_t kMaxRecordBytes = std::size_t{1} << 20;

  /// Opens (creating if absent) the journal at `path`, validates every
  /// record, truncates any corrupt/torn tail, and positions the write
  /// cursor at the end. The validated payloads are kept in recovered() for
  /// the caller to replay.
  static Result<std::unique_ptr<DeltaJournal>> Open(const std::string& path);

  ~DeltaJournal();
  DeltaJournal(const DeltaJournal&) = delete;
  DeltaJournal& operator=(const DeltaJournal&) = delete;

  /// Appends one record (framing + checksum added here). The payload is in
  /// the kernel when this returns; call Sync() to force it to disk.
  ///
  /// On a failed or partial write the file is rolled back to the last good
  /// record boundary, so a later Append never lands after torn bytes. If
  /// that rollback itself fails the journal is wedged: every further
  /// Append/Sync fails fast rather than risk committing records that replay
  /// would silently drop at the torn point.
  Status Append(const std::string& payload);

  /// fsync()s the journal file (commit barrier).
  Status Sync();

  /// Atomically replaces the journal contents with `payloads` (compaction):
  /// writes a fully framed temp file next to the journal, fsyncs it, and
  /// rename()s it over the journal path. A crash at any step leaves either
  /// the complete old journal or the complete new one. On success the
  /// journal continues appending to the new file; on failure the old file
  /// and write cursor are untouched.
  Status ReplaceWith(const std::vector<std::string>& payloads);

  /// Payloads recovered by Open(), in append order. Cleared by
  /// ReleaseRecovered() once the owner has replayed them.
  const std::vector<std::string>& recovered() const { return recovered_; }
  void ReleaseRecovered() {
    recovered_.clear();
    recovered_.shrink_to_fit();
  }

  const std::string& path() const { return path_; }
  /// Current on-disk size (valid records only).
  std::size_t bytes() const { return bytes_; }
  /// Records on disk: recovered at Open plus appended since.
  std::size_t records() const { return records_; }
  /// Bytes Open() cut off the tail (0 on a clean file).
  std::size_t dropped_tail_bytes() const { return dropped_tail_bytes_; }

 private:
  DeltaJournal(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  bool wedged_ = false;
  std::size_t bytes_ = 0;
  std::size_t records_ = 0;
  std::size_t dropped_tail_bytes_ = 0;
  std::vector<std::string> recovered_;
};

}  // namespace vulnds::dyn

#endif  // VULNDS_DYN_JOURNAL_H_
