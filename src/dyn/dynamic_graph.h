// DynamicGraph: a mutable overlay on an immutable UncertainGraph.
//
// Updates (edge insert / delete / probability change) are staged in a
// DeltaLog; Commit() materializes base + log into a fresh CSR snapshot that
// is bit-identical to rebuilding the graph from scratch with the deltas
// applied to the edge list — but without re-running the builder: adjacency
// runs no delta touched are block-copied from the base (with edge ids
// remapped only when a deletion compacted the id space), and only the runs
// of touched endpoints are reassembled. The committed snapshot is a fully
// independent UncertainGraph that the detectors and the serving catalog
// consume unchanged.
//
// Rebase(new_base) swaps the overlay onto a newly committed snapshot and
// clears the log, so versions stack: base -> v1 -> v2 -> ...

#ifndef VULNDS_DYN_DYNAMIC_GRAPH_H_
#define VULNDS_DYN_DYNAMIC_GRAPH_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "dyn/delta_log.h"
#include "graph/uncertain_graph.h"

namespace vulnds::dyn {

/// Outcome of DynamicGraph::Commit.
struct CommitSnapshot {
  UncertainGraph graph;           ///< the materialized new version
  std::vector<NodeId> touched;    ///< nodes whose out- or in-run was rebuilt
  std::size_t ops = 0;            ///< log records applied
  std::size_t runs_rebuilt = 0;   ///< adjacency runs reassembled
  std::size_t runs_copied = 0;    ///< adjacency runs block-copied from base
};

class DynamicGraph {
 public:
  /// Creates an overlay on `base`; the pointer is shared so the base stays
  /// alive for the lifetime of the staged log (e.g. across a catalog evict).
  explicit DynamicGraph(std::shared_ptr<const UncertainGraph> base);

  const UncertainGraph& base() const { return *base_; }
  const std::shared_ptr<const UncertainGraph>& base_ptr() const {
    return base_;
  }

  /// Staging operations; validation semantics are DeltaLog's.
  Status AddEdge(NodeId src, NodeId dst, double prob) {
    return log_.AddEdge(src, dst, prob);
  }
  Status DeleteEdge(NodeId src, NodeId dst) { return log_.DeleteEdge(src, dst); }
  Status SetProb(NodeId src, NodeId dst, double prob) {
    return log_.SetProb(src, dst, prob);
  }

  const DeltaLog& log() const { return log_; }
  std::size_t num_nodes() const { return base_->num_nodes(); }
  /// Edge count the committed graph will have.
  std::size_t live_edge_count() const { return log_.live_edge_count(); }
  std::size_t pending_ops() const { return log_.size(); }

  /// Materializes base + staged log into a new snapshot. The overlay itself
  /// is unchanged (stage further ops, or Rebase onto the result). A commit
  /// with an empty log yields a bit-identical copy of the base.
  CommitSnapshot Commit() const;

  /// Swaps the overlay onto `new_base` and clears the staged log.
  void Rebase(std::shared_ptr<const UncertainGraph> new_base);

 private:
  std::shared_ptr<const UncertainGraph> base_;
  DeltaLog log_;
};

}  // namespace vulnds::dyn

#endif  // VULNDS_DYN_DYNAMIC_GRAPH_H_
