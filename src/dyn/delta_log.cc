#include "dyn/delta_log.h"

#include <algorithm>
#include <string>

namespace vulnds::dyn {

namespace {
bool ValidProb(double p) { return p >= 0.0 && p <= 1.0; }

std::string EdgeText(NodeId src, NodeId dst) {
  return "(" + std::to_string(src) + "," + std::to_string(dst) + ")";
}
}  // namespace

const char* DeltaOpName(DeltaOp op) {
  switch (op) {
    case DeltaOp::kAddEdge:
      return "addedge";
    case DeltaOp::kDeleteEdge:
      return "deledge";
    case DeltaOp::kSetProb:
      return "setprob";
  }
  return "?";
}

DeltaLog::DeltaLog(const UncertainGraph* base) : base_(base) {}

Status DeltaLog::CheckEndpoints(NodeId src, NodeId dst) const {
  const std::size_t n = base_->num_nodes();
  if (src >= n || dst >= n) {
    return Status::OutOfRange("edge " + EdgeText(src, dst) +
                              " outside graph of " + std::to_string(n) +
                              " nodes");
  }
  if (src == dst) {
    return Status::InvalidArgument("self-loop on node " + std::to_string(src));
  }
  return Status::OK();
}

Result<EdgeId> DeltaLog::ResolveLive(NodeId src, NodeId dst) const {
  // Base arcs within a run are in insertion order, i.e. ascending edge id,
  // so the first non-deleted match is the lowest-id live base edge.
  for (const Arc& arc : base_->OutArcs(src)) {
    if (arc.neighbor == dst && deleted_base_.count(arc.edge) == 0) {
      return arc.edge;
    }
  }
  const EdgeId base_m = static_cast<EdgeId>(base_->num_edges());
  for (std::size_t i = 0; i < added_.size(); ++i) {
    const AddedEdge& a = added_[i];
    if (a.live && a.edge.src == src && a.edge.dst == dst) {
      return static_cast<EdgeId>(base_m + i);
    }
  }
  return Status::NotFound("no live edge " + EdgeText(src, dst));
}

Status DeltaLog::AddEdge(NodeId src, NodeId dst, double prob) {
  VULNDS_RETURN_NOT_OK(CheckEndpoints(src, dst));
  if (!ValidProb(prob)) {
    return Status::InvalidArgument("diffusion probability " +
                                   std::to_string(prob) + " outside [0,1]");
  }
  const EdgeId id =
      static_cast<EdgeId>(base_->num_edges() + added_.size());
  added_.push_back({{src, dst, prob}, true});
  ++live_added_;
  records_.push_back({DeltaOp::kAddEdge, src, dst, prob, id});
  return Status::OK();
}

Status DeltaLog::DeleteEdge(NodeId src, NodeId dst) {
  VULNDS_RETURN_NOT_OK(CheckEndpoints(src, dst));
  Result<EdgeId> id = ResolveLive(src, dst);
  if (!id.ok()) return id.status();
  if (*id < base_->num_edges()) {
    deleted_base_.insert(*id);
    prob_overrides_.erase(*id);
  } else {
    added_[*id - base_->num_edges()].live = false;
    --live_added_;
  }
  records_.push_back({DeltaOp::kDeleteEdge, src, dst, 0.0, *id});
  return Status::OK();
}

Status DeltaLog::SetProb(NodeId src, NodeId dst, double prob) {
  VULNDS_RETURN_NOT_OK(CheckEndpoints(src, dst));
  if (!ValidProb(prob)) {
    return Status::InvalidArgument("diffusion probability " +
                                   std::to_string(prob) + " outside [0,1]");
  }
  Result<EdgeId> id = ResolveLive(src, dst);
  if (!id.ok()) return id.status();
  if (*id < base_->num_edges()) {
    prob_overrides_[*id] = prob;
  } else {
    added_[*id - base_->num_edges()].edge.prob = prob;
  }
  records_.push_back({DeltaOp::kSetProb, src, dst, prob, *id});
  return Status::OK();
}

std::vector<UncertainEdge> DeltaLog::LiveAddedEdges() const {
  std::vector<UncertainEdge> live;
  live.reserve(live_added_);
  for (const AddedEdge& a : added_) {
    if (a.live) live.push_back(a.edge);
  }
  return live;
}

std::vector<EdgeId> DeltaLog::DeletedBaseEdges() const {
  std::vector<EdgeId> ids(deleted_base_.begin(), deleted_base_.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace vulnds::dyn
