#include "dyn/update_manager.h"

#include <utility>

namespace vulnds::dyn {

namespace {

// The base graph of a catalog entry, kept alive by the entry itself.
std::shared_ptr<const UncertainGraph> GraphOf(
    const std::shared_ptr<serve::CatalogEntry>& entry) {
  return {entry, &entry->graph};
}

serve::VersionInfo BaseVersion(const std::string& name,
                               const serve::CatalogEntry& entry) {
  serve::VersionInfo v;
  v.version = 0;
  v.catalog_name = name;
  v.nodes = entry.graph.num_nodes();
  v.edges = entry.graph.num_edges();
  v.ops = 0;
  return v;
}

}  // namespace

UpdateManager::UpdateManager(serve::GraphCatalog* catalog,
                             obs::ClockMicros clock)
    : catalog_(catalog), clock_(std::move(clock)) {}

Result<UpdateManager::NameState*> UpdateManager::StateLocked(
    const std::string& name, bool reset_on_reload) {
  const std::shared_ptr<serve::CatalogEntry> entry = catalog_->Get(name);
  const auto it = states_.find(name);
  if (it == states_.end()) {
    if (entry == nullptr) {
      return Status::NotFound("graph '" + name + "' is not in the catalog");
    }
    NameState state;
    state.root_uid = entry->uid;
    state.versions.push_back(BaseVersion(name, *entry));
    return &states_.emplace(name, std::move(state)).first->second;
  }
  NameState& state = it->second;
  // A reload replaces the snapshot behind the base name, detected by the
  // root uid changing (the overlay's own base is usually a committed vN
  // entry and is untouched by a reload of the plain name). Staged ops were
  // validated against the old lineage, so they cannot carry over: with a
  // clean log we silently restart from the reloaded snapshot; otherwise the
  // stale ops are discarded and the caller is told. The version counter
  // keeps increasing either way, so committed names never collide.
  if (reset_on_reload && entry != nullptr && entry->uid != state.root_uid) {
    const std::size_t pending =
        state.overlay != nullptr ? state.overlay->pending_ops() : 0;
    state.root_uid = entry->uid;
    state.base_entry = nullptr;
    state.overlay = nullptr;
    state.versions.assign(1, BaseVersion(name, *entry));
    if (pending > 0) {
      return Status::InvalidArgument(
          "base snapshot '" + name + "' was reloaded; " +
          std::to_string(pending) + " staged update(s) discarded");
    }
  }
  return &state;
}

Status UpdateManager::EnsureOverlayLocked(const std::string& name,
                                          NameState* state) {
  if (state->overlay != nullptr) return Status::OK();
  // Attach to the lineage tip: the last committed version, or the root when
  // nothing was committed yet. The tip lives in the catalog between
  // touches, so an evicted tip means the lineage is gone.
  const std::string& tip = state->versions.back().catalog_name;
  std::shared_ptr<serve::CatalogEntry> entry = catalog_->Get(tip);
  if (entry == nullptr) {
    return Status::NotFound("version '" + tip + "' of '" + name +
                            "' was evicted; reload the base to restart");
  }
  state->base_entry = entry;
  state->overlay = std::make_unique<DynamicGraph>(GraphOf(entry));
  return Status::OK();
}

template <typename Fn>
Result<serve::UpdateAck> UpdateManager::Stage(const std::string& name,
                                              Fn&& op) {
  std::lock_guard<std::mutex> lock(mu_);
  Result<NameState*> state_result = [&]() -> Result<NameState*> {
    if (name.find('@') != std::string::npos) {
      return Status::InvalidArgument(
          "updates target the base name; versions ('" + name +
          "') are immutable");
    }
    return StateLocked(name, /*reset_on_reload=*/true);
  }();
  if (!state_result.ok()) {
    ++stats_.rejected_ops;
    return state_result.status();
  }
  NameState& state = **state_result;
  const Status ensured = EnsureOverlayLocked(name, &state);
  if (!ensured.ok()) {
    ++stats_.rejected_ops;
    return ensured;
  }
  const Status st = op(*state.overlay);
  if (!st.ok()) {
    ++stats_.rejected_ops;
    if (state.overlay->pending_ops() == 0) {
      // Nothing staged: drop the graph pin acquired above.
      state.overlay = nullptr;
      state.base_entry = nullptr;
    }
    return st;
  }
  ++stats_.staged_ops;
  serve::UpdateAck ack;
  ack.pending = state.overlay->pending_ops();
  ack.live_edges = state.overlay->live_edge_count();
  return ack;
}

Result<serve::UpdateAck> UpdateManager::AddEdge(const std::string& name,
                                                NodeId src, NodeId dst,
                                                double prob) {
  return Stage(name, [&](DynamicGraph& g) { return g.AddEdge(src, dst, prob); });
}

Result<serve::UpdateAck> UpdateManager::DeleteEdge(const std::string& name,
                                                   NodeId src, NodeId dst) {
  return Stage(name, [&](DynamicGraph& g) { return g.DeleteEdge(src, dst); });
}

Result<serve::UpdateAck> UpdateManager::SetProb(const std::string& name,
                                                NodeId src, NodeId dst,
                                                double prob) {
  return Stage(name, [&](DynamicGraph& g) { return g.SetProb(src, dst, prob); });
}

Result<serve::CommitInfo> UpdateManager::Commit(const std::string& name) {
  const int64_t start_micros = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (name.find('@') != std::string::npos) {
    return Status::InvalidArgument(
        "updates target the base name; versions ('" + name +
        "') are immutable");
  }
  Result<NameState*> state_result = StateLocked(name, /*reset_on_reload=*/true);
  if (!state_result.ok()) return state_result.status();
  NameState& state = **state_result;
  if (state.overlay == nullptr || state.overlay->pending_ops() == 0) {
    return Status::InvalidArgument("no staged updates for '" + name + "'");
  }

  const std::string versioned_name =
      name + "@v" + std::to_string(state.next_version);
  // The manager mints each version number exactly once, so a resident entry
  // under the upcoming name can only be something the operator loaded by
  // hand — refuse (before paying for the snapshot) rather than clobber it.
  if (catalog_->Get(versioned_name) != nullptr) {
    return Status::AlreadyExists(
        "catalog name '" + versioned_name +
        "' is already taken by an externally loaded graph; evict it before "
        "committing");
  }

  CommitSnapshot snapshot = state.overlay->Commit();

  serve::CommitInfo info;
  info.versioned_name = versioned_name;
  info.version = state.next_version;
  info.nodes = snapshot.graph.num_nodes();
  info.edges = snapshot.graph.num_edges();
  info.ops = snapshot.ops;
  info.touched_nodes = snapshot.touched.size();

  const std::string source =
      "commit:" + name + "+" + std::to_string(snapshot.ops) + "ops";
  VULNDS_RETURN_NOT_OK(
      catalog_->Put(versioned_name, std::move(snapshot.graph), source));
  const std::shared_ptr<serve::CatalogEntry> new_entry =
      catalog_->Get(versioned_name);
  if (new_entry == nullptr) {
    return Status::Internal("version '" + versioned_name +
                            "' was evicted during commit (catalog capacity "
                            "too small)");
  }

  // Exact context invalidation: bottom-k sample orders are pure in
  // (seed, budget) and carry to the new version bit-identically; bounds and
  // candidate reductions are functions of the graph the deltas touched and
  // start cold.
  {
    std::scoped_lock context_locks(state.base_entry->context_mu,
                                   new_entry->context_mu);
    const DetectionContext& old_context = state.base_entry->context;
    info.carried = new_entry->context.AdoptGraphIndependent(old_context);
    info.dropped = old_context.lower_bounds.size() +
                   old_context.upper_bounds.size() +
                   old_context.reductions.size();
  }

  serve::VersionInfo version;
  version.version = state.next_version;
  version.catalog_name = versioned_name;
  version.nodes = info.nodes;
  version.edges = info.edges;
  version.ops = info.ops;
  state.versions.push_back(version);
  ++state.next_version;
  // The log is clean again: release the graph pins so the catalog's
  // eviction policy stays in charge of memory. The next staged op
  // re-attaches to the lineage tip (the version just committed).
  state.base_entry = nullptr;
  state.overlay = nullptr;

  ++stats_.commits;
  stats_.contexts_carried += info.carried;
  stats_.contexts_dropped += info.dropped;
  info.seconds = static_cast<double>(NowMicros() - start_micros) * 1e-6;
  return info;
}

Result<std::vector<serve::VersionInfo>> UpdateManager::Versions(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  // `versions g@v2` is a read on g's lineage, not a mutation: resolve the
  // history through the base name.
  const std::size_t at = name.find('@');
  const std::string base = at == std::string::npos ? name : name.substr(0, at);
  Result<NameState*> state = StateLocked(base, /*reset_on_reload=*/false);
  if (!state.ok()) return state.status();
  return (*state)->versions;
}

UpdateManagerStats UpdateManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vulnds::dyn
