#include "dyn/update_manager.h"

#include <cstdio>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace vulnds::dyn {

namespace {

// The base graph of a catalog entry, kept alive by the entry itself.
std::shared_ptr<const UncertainGraph> GraphOf(
    const std::shared_ptr<serve::CatalogEntry>& entry) {
  return {entry, &entry->graph};
}

serve::VersionInfo BaseVersion(const std::string& name,
                               const serve::CatalogEntry& entry) {
  serve::VersionInfo v;
  v.version = 0;
  v.catalog_name = name;
  v.nodes = entry.graph.num_nodes();
  v.edges = entry.graph.num_edges();
  v.ops = 0;
  return v;
}

// Probabilities must survive the journal round trip bit-identically —
// replayed versions are only byte-equal to the originals if every double
// re-parses to the same bits. 17 significant digits guarantee that.
std::string FormatProb(double prob) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", prob);
  return buf;
}

}  // namespace

UpdateManager::UpdateManager(serve::GraphCatalog* catalog,
                             obs::ClockMicros clock)
    : catalog_(catalog), clock_(std::move(clock)) {}

UpdateManager::UpdateManager(serve::GraphCatalog* catalog,
                             DeltaJournal* journal, obs::ClockMicros clock)
    : catalog_(catalog), journal_(journal), clock_(std::move(clock)) {}

Result<UpdateManager::NameState*> UpdateManager::StateLocked(
    const std::string& name, bool reset_on_reload) {
  // GetOrLoad, not Get: a spilled base is still a valid lineage root and
  // pages back in here.
  Result<std::shared_ptr<serve::CatalogEntry>> resolved =
      catalog_->GetOrLoad(name);
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<serve::CatalogEntry> entry = resolved.MoveValue();
  const auto it = states_.find(name);
  if (it == states_.end()) {
    if (entry == nullptr) {
      return Status::NotFound("graph '" + name + "' is not in the catalog");
    }
    NameState state;
    state.root_uid = entry->uid;
    state.root_source = entry->source;
    state.versions.push_back(BaseVersion(name, *entry));
    return &states_.emplace(name, std::move(state)).first->second;
  }
  NameState& state = it->second;
  // A reload replaces the snapshot behind the base name, detected by the
  // root uid changing (the overlay's own base is usually a committed vN
  // entry and is untouched by a reload of the plain name). Staged ops were
  // validated against the old lineage, so they cannot carry over: with a
  // clean log we silently restart from the reloaded snapshot; otherwise the
  // stale ops are discarded and the caller is told. The version counter
  // keeps increasing either way, so committed names never collide. A
  // restart also re-opens the lineage in the journal: the next staged op
  // writes a fresh `open` record with the new source.
  if (reset_on_reload && entry != nullptr && entry->uid != state.root_uid) {
    const std::size_t pending =
        state.overlay != nullptr ? state.overlay->pending_ops() : 0;
    state.root_uid = entry->uid;
    state.root_source = entry->source;
    state.journal_opened = false;
    state.base_entry = nullptr;
    state.base_pin.Release();
    state.overlay = nullptr;
    state.versions.assign(1, BaseVersion(name, *entry));
    if (pending > 0) {
      return Status::InvalidArgument(
          "base snapshot '" + name + "' was reloaded; " +
          std::to_string(pending) + " staged update(s) discarded");
    }
  }
  return &state;
}

Status UpdateManager::EnsureOverlayLocked(const std::string& name,
                                          NameState* state) {
  if (state->overlay != nullptr) return Status::OK();
  // Attach to the lineage tip: the last committed version, or the root when
  // nothing was committed yet. The tip lives in the catalog (resident or
  // spilled) between touches, so a fully evicted tip means the lineage is
  // gone.
  const std::string& tip = state->versions.back().catalog_name;
  Result<std::shared_ptr<serve::CatalogEntry>> resolved =
      catalog_->GetOrLoad(tip);
  if (!resolved.ok()) return resolved.status();
  std::shared_ptr<serve::CatalogEntry> entry = resolved.MoveValue();
  if (entry == nullptr) {
    return Status::NotFound("version '" + tip + "' of '" + name +
                            "' was evicted; reload the base to restart");
  }
  state->base_entry = entry;
  state->base_pin = serve::ScopedEntryPin(entry);
  state->overlay = std::make_unique<DynamicGraph>(GraphOf(entry));
  return Status::OK();
}

void UpdateManager::JournalAppendLocked(const std::string& payload) {
  if (journal_ == nullptr) return;
  if (!journal_->Append(payload).ok()) ++stats_.journal_errors;
}

template <typename Fn>
Result<serve::UpdateAck> UpdateManager::StageLocked(const std::string& name,
                                                    const std::string& record,
                                                    Fn&& op) {
  Result<NameState*> state_result = [&]() -> Result<NameState*> {
    if (name.find('@') != std::string::npos) {
      return Status::InvalidArgument(
          "updates target the base name; versions ('" + name +
          "') are immutable");
    }
    return StateLocked(name, /*reset_on_reload=*/true);
  }();
  if (!state_result.ok()) {
    ++stats_.rejected_ops;
    return state_result.status();
  }
  NameState& state = **state_result;
  const Status ensured = EnsureOverlayLocked(name, &state);
  if (!ensured.ok()) {
    ++stats_.rejected_ops;
    return ensured;
  }
  const Status st = op(*state.overlay);
  if (!st.ok()) {
    ++stats_.rejected_ops;
    if (state.overlay->pending_ops() == 0) {
      // Nothing staged: drop the graph pin acquired above.
      state.overlay = nullptr;
      state.base_entry = nullptr;
      state.base_pin.Release();
    }
    return st;
  }
  ++stats_.staged_ops;
  if (journal_ != nullptr && !replaying_) {
    // Lazily open the lineage in the journal: the `open` record carries
    // everything replay needs to restore the base (its on-disk source) and
    // to keep minting non-colliding versions (the counter).
    if (!state.journal_opened) {
      JournalAppendLocked("open " + name + " " +
                          std::to_string(state.next_version) + " " +
                          state.root_source);
      state.journal_opened = true;
    }
    JournalAppendLocked(record);
  }
  serve::UpdateAck ack;
  ack.pending = state.overlay->pending_ops();
  ack.live_edges = state.overlay->live_edge_count();
  return ack;
}

template <typename Fn>
Result<serve::UpdateAck> UpdateManager::Stage(const std::string& name,
                                              const std::string& record,
                                              Fn&& op) {
  std::lock_guard<std::mutex> lock(mu_);
  return StageLocked(name, record, std::forward<Fn>(op));
}

Result<serve::UpdateAck> UpdateManager::AddEdge(const std::string& name,
                                                NodeId src, NodeId dst,
                                                double prob) {
  return Stage(name,
               "add " + name + " " + std::to_string(src) + " " +
                   std::to_string(dst) + " " + FormatProb(prob),
               [&](DynamicGraph& g) { return g.AddEdge(src, dst, prob); });
}

Result<serve::UpdateAck> UpdateManager::DeleteEdge(const std::string& name,
                                                   NodeId src, NodeId dst) {
  return Stage(name,
               "del " + name + " " + std::to_string(src) + " " +
                   std::to_string(dst),
               [&](DynamicGraph& g) { return g.DeleteEdge(src, dst); });
}

Result<serve::UpdateAck> UpdateManager::SetProb(const std::string& name,
                                                NodeId src, NodeId dst,
                                                double prob) {
  return Stage(name,
               "set " + name + " " + std::to_string(src) + " " +
                   std::to_string(dst) + " " + FormatProb(prob),
               [&](DynamicGraph& g) { return g.SetProb(src, dst, prob); });
}

Result<serve::CommitInfo> UpdateManager::Commit(const std::string& name) {
  const int64_t start_micros = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked(name, start_micros);
}

Result<serve::CommitInfo> UpdateManager::CommitLocked(const std::string& name,
                                                      int64_t start_micros) {
  if (name.find('@') != std::string::npos) {
    return Status::InvalidArgument(
        "updates target the base name; versions ('" + name +
        "') are immutable");
  }
  Result<NameState*> state_result = StateLocked(name, /*reset_on_reload=*/true);
  if (!state_result.ok()) return state_result.status();
  NameState& state = **state_result;
  if (state.overlay == nullptr || state.overlay->pending_ops() == 0) {
    return Status::InvalidArgument("no staged updates for '" + name + "'");
  }

  const std::string versioned_name =
      name + "@v" + std::to_string(state.next_version);
  // The manager mints each version number exactly once, so an entry
  // (resident or spilled — hence Contains, not Get) under the upcoming
  // name can only be something the operator loaded by hand — refuse
  // (before paying for the snapshot) rather than clobber it.
  if (catalog_->Contains(versioned_name)) {
    return Status::AlreadyExists(
        "catalog name '" + versioned_name +
        "' is already taken by an externally loaded graph; evict it before "
        "committing");
  }

  CommitSnapshot snapshot = state.overlay->Commit();

  serve::CommitInfo info;
  info.versioned_name = versioned_name;
  info.version = state.next_version;
  info.nodes = snapshot.graph.num_nodes();
  info.edges = snapshot.graph.num_edges();
  info.ops = snapshot.ops;
  info.touched_nodes = snapshot.touched.size();

  const std::string source =
      "commit:" + name + "+" + std::to_string(snapshot.ops) + "ops";
  VULNDS_RETURN_NOT_OK(
      catalog_->Put(versioned_name, std::move(snapshot.graph), source));
  const std::shared_ptr<serve::CatalogEntry> new_entry =
      catalog_->Get(versioned_name);
  if (new_entry == nullptr && !catalog_->Contains(versioned_name)) {
    return Status::Internal("version '" + versioned_name +
                            "' was evicted during commit (catalog capacity "
                            "too small)");
  }

  // Exact context invalidation: bottom-k sample orders are pure in
  // (seed, budget) and carry to the new version bit-identically; bounds and
  // candidate reductions are functions of the graph the deltas touched and
  // start cold. Under a tight memory governor the fresh snapshot may have
  // been spilled cold by its own Put — the commit stands, the contexts
  // simply start empty when it pages back in.
  if (new_entry != nullptr) {
    std::scoped_lock context_locks(state.base_entry->context_mu,
                                   new_entry->context_mu);
    const DetectionContext& old_context = state.base_entry->context;
    info.carried = new_entry->context.AdoptGraphIndependent(old_context);
    info.dropped = old_context.lower_bounds.size() +
                   old_context.upper_bounds.size() +
                   old_context.reductions.size();
  }

  serve::VersionInfo version;
  version.version = state.next_version;
  version.catalog_name = versioned_name;
  version.nodes = info.nodes;
  version.edges = info.edges;
  version.ops = info.ops;
  state.versions.push_back(version);
  ++state.next_version;
  // The log is clean again: release the graph pins so the catalog's
  // eviction policy stays in charge of memory. The next staged op
  // re-attaches to the lineage tip (the version just committed).
  state.base_entry = nullptr;
  state.base_pin.Release();
  state.overlay = nullptr;

  ++stats_.commits;
  stats_.contexts_carried += info.carried;
  stats_.contexts_dropped += info.dropped;

  if (journal_ != nullptr && !replaying_) {
    // The commit record plus fsync is the durability barrier: once Sync
    // returns, a crash at any later point replays this version verbatim.
    // An append/fsync failure leaves the in-memory commit standing (the
    // caller was promised the version) and is only counted.
    JournalAppendLocked("commit " + name + " " + std::to_string(info.version));
    if (!journal_->Sync().ok()) ++stats_.journal_errors;
  }

  info.seconds = static_cast<double>(NowMicros() - start_micros) * 1e-6;
  return info;
}

bool UpdateManager::ReplayOpenLocked(const std::string& name,
                                     uint64_t next_version,
                                     const std::string& source) {
  // Restore the base snapshot if it is not already there (the operator's
  // serve command line usually preloads it; replay fills the gaps). A
  // graph Put() from memory has no on-disk source to reload from.
  if (!catalog_->Contains(name)) {
    if (source.empty() || source == "<memory>" ||
        source.rfind("commit:", 0) == 0) {
      return false;
    }
    if (!catalog_->Load(name, source).ok()) return false;
  }
  Result<NameState*> state_result =
      StateLocked(name, /*reset_on_reload=*/false);
  if (!state_result.ok()) return false;
  NameState& state = **state_result;
  if (state.overlay != nullptr || state.versions.size() > 1) {
    // A second `open` for a known lineage means the base was reloaded
    // between these records: restart from the current snapshot exactly
    // like the live path did.
    Result<std::shared_ptr<serve::CatalogEntry>> resolved =
        catalog_->GetOrLoad(name);
    if (!resolved.ok() || *resolved == nullptr) return false;
    const std::shared_ptr<serve::CatalogEntry> entry = resolved.MoveValue();
    state.root_uid = entry->uid;
    state.root_source = entry->source;
    state.base_entry = nullptr;
    state.base_pin.Release();
    state.overlay = nullptr;
    state.versions.assign(1, BaseVersion(name, *entry));
  }
  // The recorded counter keeps replayed versions from colliding with ones
  // committed before this journal existed; never move it backwards.
  if (next_version > state.next_version) state.next_version = next_version;
  state.journal_opened = true;
  return true;
}

Result<JournalReplayStats> UpdateManager::ReplayJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  JournalReplayStats rs;
  if (journal_ == nullptr) return rs;
  rs.dropped_tail_bytes = journal_->dropped_tail_bytes();
  replaying_ = true;
  std::unordered_set<std::string> failed;
  for (const std::string& record : journal_->recovered()) {
    ++rs.records;
    std::istringstream in(record);
    std::string verb, name;
    if (!(in >> verb >> name)) {
      ++rs.skipped;
      continue;
    }
    if (failed.count(name) != 0) {
      ++rs.skipped;
      continue;
    }
    bool ok = false;
    if (verb == "open") {
      uint64_t next_version = 0;
      std::string source;
      if (in >> next_version) {
        std::getline(in, source);
        if (!source.empty() && source.front() == ' ') source.erase(0, 1);
        ok = ReplayOpenLocked(name, next_version, source);
        if (ok) ++rs.opens;
      }
    } else if (verb == "add" || verb == "set") {
      uint64_t src = 0, dst = 0;
      double prob = 0.0;
      if (in >> src >> dst >> prob) {
        const NodeId s = static_cast<NodeId>(src);
        const NodeId d = static_cast<NodeId>(dst);
        const bool adding = verb == "add";
        ok = StageLocked(name, record,
                         [&](DynamicGraph& g) {
                           return adding ? g.AddEdge(s, d, prob)
                                         : g.SetProb(s, d, prob);
                         })
                 .ok();
        if (ok) ++rs.ops;
      }
    } else if (verb == "del") {
      uint64_t src = 0, dst = 0;
      if (in >> src >> dst) {
        const NodeId s = static_cast<NodeId>(src);
        const NodeId d = static_cast<NodeId>(dst);
        ok = StageLocked(name, record,
                         [&](DynamicGraph& g) { return g.DeleteEdge(s, d); })
                 .ok();
        if (ok) ++rs.ops;
      }
    } else if (verb == "commit") {
      uint64_t version = 0;
      if (in >> version) {
        // Force the counter to the recorded N so the replayed version gets
        // the exact committed name even if earlier records were skipped.
        const auto it = states_.find(name);
        if (it != states_.end()) it->second.next_version = version;
        ok = CommitLocked(name, NowMicros()).ok();
        if (ok) ++rs.commits;
      }
    }
    if (!ok) {
      ++rs.skipped;
      failed.insert(name);
      ++rs.failed_names;
    }
  }
  replaying_ = false;
  journal_->ReleaseRecovered();
  return rs;
}

std::size_t UpdateManager::JournalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_ != nullptr ? journal_->bytes() : 0;
}

Result<std::vector<serve::VersionInfo>> UpdateManager::Versions(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  // `versions g@v2` is a read on g's lineage, not a mutation: resolve the
  // history through the base name.
  const std::size_t at = name.find('@');
  const std::string base = at == std::string::npos ? name : name.substr(0, at);
  Result<NameState*> state = StateLocked(base, /*reset_on_reload=*/false);
  if (!state.ok()) return state.status();
  return (*state)->versions;
}

UpdateManagerStats UpdateManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vulnds::dyn
