#include "dyn/update_manager.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "graph/graph_io.h"
#include "serve/io_metrics.h"

namespace vulnds::dyn {

namespace {

// Attempts per journal syscall before the failure is surfaced: transient
// errors are absorbed, persistent ones fail fast with no sleeps.
constexpr int kJournalIoAttempts = 3;

// Filesystem-safe rendition of a catalog name for snapshot side files
// ("g@v3" -> "g_v3"), mirroring the spill path convention.
std::string SanitizeForPath(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out;
}

// The base graph of a catalog entry, kept alive by the entry itself.
std::shared_ptr<const UncertainGraph> GraphOf(
    const std::shared_ptr<serve::CatalogEntry>& entry) {
  return {entry, &entry->graph};
}

serve::VersionInfo BaseVersion(const std::string& name,
                               const serve::CatalogEntry& entry) {
  serve::VersionInfo v;
  v.version = 0;
  v.catalog_name = name;
  v.nodes = entry.graph.num_nodes();
  v.edges = entry.graph.num_edges();
  v.ops = 0;
  return v;
}

// Probabilities must survive the journal round trip bit-identically —
// replayed versions are only byte-equal to the originals if every double
// re-parses to the same bits. 17 significant digits guarantee that.
std::string FormatProb(double prob) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", prob);
  return buf;
}

}  // namespace

UpdateManager::UpdateManager(serve::GraphCatalog* catalog,
                             obs::ClockMicros clock)
    : catalog_(catalog), clock_(std::move(clock)) {}

UpdateManager::UpdateManager(serve::GraphCatalog* catalog,
                             DeltaJournal* journal, obs::ClockMicros clock)
    : catalog_(catalog), journal_(journal), clock_(std::move(clock)) {}

Result<UpdateManager::NameState*> UpdateManager::StateLocked(
    const std::string& name, bool reset_on_reload) {
  // GetOrLoad, not Get: a spilled base is still a valid lineage root and
  // pages back in here.
  Result<std::shared_ptr<serve::CatalogEntry>> resolved =
      catalog_->GetOrLoad(name);
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<serve::CatalogEntry> entry = resolved.MoveValue();
  const auto it = states_.find(name);
  if (it == states_.end()) {
    if (entry == nullptr) {
      return Status::NotFound("graph '" + name + "' is not in the catalog");
    }
    NameState state;
    state.root_uid = entry->uid;
    state.root_source = entry->source;
    state.versions.push_back(BaseVersion(name, *entry));
    return &states_.emplace(name, std::move(state)).first->second;
  }
  NameState& state = it->second;
  // A reload replaces the snapshot behind the base name, detected by the
  // root uid changing (the overlay's own base is usually a committed vN
  // entry and is untouched by a reload of the plain name). Staged ops were
  // validated against the old lineage, so they cannot carry over: with a
  // clean log we silently restart from the reloaded snapshot; otherwise the
  // stale ops are discarded and the caller is told. The version counter
  // keeps increasing either way, so committed names never collide. A
  // restart also re-opens the lineage in the journal: the next staged op
  // writes a fresh `open` record with the new source.
  if (reset_on_reload && entry != nullptr && entry->uid != state.root_uid) {
    const std::size_t pending =
        state.overlay != nullptr ? state.overlay->pending_ops() : 0;
    state.root_uid = entry->uid;
    state.root_source = entry->source;
    state.journal_opened = false;
    state.base_entry = nullptr;
    state.base_pin.Release();
    state.overlay = nullptr;
    state.versions.assign(1, BaseVersion(name, *entry));
    if (pending > 0) {
      return Status::InvalidArgument(
          "base snapshot '" + name + "' was reloaded; " +
          std::to_string(pending) + " staged update(s) discarded");
    }
  }
  return &state;
}

Status UpdateManager::EnsureOverlayLocked(const std::string& name,
                                          NameState* state) {
  if (state->overlay != nullptr) return Status::OK();
  // Attach to the lineage tip: the last committed version, or the root when
  // nothing was committed yet. The tip lives in the catalog (resident or
  // spilled) between touches, so a fully evicted tip means the lineage is
  // gone.
  const std::string& tip = state->versions.back().catalog_name;
  Result<std::shared_ptr<serve::CatalogEntry>> resolved =
      catalog_->GetOrLoad(tip);
  if (!resolved.ok()) return resolved.status();
  std::shared_ptr<serve::CatalogEntry> entry = resolved.MoveValue();
  if (entry == nullptr) {
    return Status::NotFound("version '" + tip + "' of '" + name +
                            "' was evicted; reload the base to restart");
  }
  state->base_entry = entry;
  state->base_pin = serve::ScopedEntryPin(entry);
  state->overlay = std::make_unique<DynamicGraph>(GraphOf(entry));
  return Status::OK();
}

Status UpdateManager::JournalAppendRetryLocked(const std::string& payload) {
  Status st;
  for (int attempt = 0; attempt < kJournalIoAttempts; ++attempt) {
    st = journal_->Append(payload);
    if (st.ok()) {
      if (attempt > 0) {
        serve::CountIoError(registry_, "journal_append", "retried");
      }
      return st;
    }
  }
  ++stats_.journal_errors;
  serve::CountIoError(registry_, "journal_append", "error");
  return st;
}

Status UpdateManager::JournalSyncRetryLocked() {
  Status st;
  for (int attempt = 0; attempt < kJournalIoAttempts; ++attempt) {
    st = journal_->Sync();
    if (st.ok()) {
      if (attempt > 0) {
        serve::CountIoError(registry_, "journal_fsync", "retried");
      }
      return st;
    }
  }
  ++stats_.journal_errors;
  serve::CountIoError(registry_, "journal_fsync", "error");
  return st;
}

void UpdateManager::RollbackLastStagedLocked(NameState* state) {
  const std::vector<DeltaRecord> records = state->overlay->log().records();
  auto fresh = std::make_unique<DynamicGraph>(GraphOf(state->base_entry));
  // Re-apply everything but the last record. Each was validated against
  // exactly this base + prefix when first staged, so the replays succeed
  // and resolve to the same edges.
  for (std::size_t i = 0; i + 1 < records.size(); ++i) {
    const DeltaRecord& r = records[i];
    switch (r.op) {
      case DeltaOp::kAddEdge:
        (void)fresh->AddEdge(r.src, r.dst, r.prob);
        break;
      case DeltaOp::kDeleteEdge:
        (void)fresh->DeleteEdge(r.src, r.dst);
        break;
      case DeltaOp::kSetProb:
        (void)fresh->SetProb(r.src, r.dst, r.prob);
        break;
    }
  }
  state->overlay = std::move(fresh);
  ++stats_.journal_rollbacks;
  if (stats_.staged_ops > 0) --stats_.staged_ops;
  if (state->overlay->pending_ops() == 0) {
    state->overlay = nullptr;
    state->base_entry = nullptr;
    state->base_pin.Release();
  }
}

template <typename Fn>
Result<serve::UpdateAck> UpdateManager::StageLocked(const std::string& name,
                                                    const std::string& record,
                                                    Fn&& op) {
  Result<NameState*> state_result = [&]() -> Result<NameState*> {
    if (name.find('@') != std::string::npos) {
      return Status::InvalidArgument(
          "updates target the base name; versions ('" + name +
          "') are immutable");
    }
    // Live staging treats a base-uid change as an operator reload and
    // restarts the lineage. During replay that heuristic is wrong: a uid
    // can only drift mid-replay through a degraded page-in fallback
    // (transient spill failure), and resetting there would wipe versions
    // the journal still holds and regress the version counter into
    // collisions. Replayed reloads are represented by their own second
    // `open` record instead.
    return StateLocked(name, /*reset_on_reload=*/!replaying_);
  }();
  if (!state_result.ok()) {
    ++stats_.rejected_ops;
    return state_result.status();
  }
  NameState& state = **state_result;
  const Status ensured = EnsureOverlayLocked(name, &state);
  if (!ensured.ok()) {
    ++stats_.rejected_ops;
    return ensured;
  }
  const Status st = op(*state.overlay);
  if (!st.ok()) {
    ++stats_.rejected_ops;
    if (state.overlay->pending_ops() == 0) {
      // Nothing staged: drop the graph pin acquired above.
      state.overlay = nullptr;
      state.base_entry = nullptr;
      state.base_pin.Release();
    }
    return st;
  }
  ++stats_.staged_ops;
  if (journal_ != nullptr && !replaying_) {
    // Lazily open the lineage in the journal: the `open` record carries
    // everything replay needs to restore the base (its on-disk source) and
    // to keep minting non-colliding versions (the counter).
    Status journaled = Status::OK();
    if (!state.journal_opened) {
      journaled = JournalAppendRetryLocked(
          "open " + name + " " + std::to_string(state.next_version) + " " +
          state.root_source);
      if (journaled.ok()) state.journal_opened = true;
    }
    if (journaled.ok()) journaled = JournalAppendRetryLocked(record);
    if (!journaled.ok()) {
      // The op is in memory but not on disk: served results would vanish
      // at the next restart. Roll it back so the `err` the client sees is
      // the whole truth — the op neither serves nor survives.
      RollbackLastStagedLocked(&state);
      return Status::IOError("update to '" + name +
                             "' could not be journaled (" +
                             journaled.message() + "); op rolled back");
    }
  }
  serve::UpdateAck ack;
  ack.pending = state.overlay->pending_ops();
  ack.live_edges = state.overlay->live_edge_count();
  return ack;
}

template <typename Fn>
Result<serve::UpdateAck> UpdateManager::Stage(const std::string& name,
                                              const std::string& record,
                                              Fn&& op) {
  std::lock_guard<std::mutex> lock(mu_);
  return StageLocked(name, record, std::forward<Fn>(op));
}

Result<serve::UpdateAck> UpdateManager::AddEdge(const std::string& name,
                                                NodeId src, NodeId dst,
                                                double prob) {
  return Stage(name,
               "add " + name + " " + std::to_string(src) + " " +
                   std::to_string(dst) + " " + FormatProb(prob),
               [&](DynamicGraph& g) { return g.AddEdge(src, dst, prob); });
}

Result<serve::UpdateAck> UpdateManager::DeleteEdge(const std::string& name,
                                                   NodeId src, NodeId dst) {
  return Stage(name,
               "del " + name + " " + std::to_string(src) + " " +
                   std::to_string(dst),
               [&](DynamicGraph& g) { return g.DeleteEdge(src, dst); });
}

Result<serve::UpdateAck> UpdateManager::SetProb(const std::string& name,
                                                NodeId src, NodeId dst,
                                                double prob) {
  return Stage(name,
               "set " + name + " " + std::to_string(src) + " " +
                   std::to_string(dst) + " " + FormatProb(prob),
               [&](DynamicGraph& g) { return g.SetProb(src, dst, prob); });
}

Result<serve::CommitInfo> UpdateManager::Commit(const std::string& name) {
  const int64_t start_micros = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked(name, start_micros);
}

Result<serve::CommitInfo> UpdateManager::CommitLocked(const std::string& name,
                                                      int64_t start_micros) {
  if (name.find('@') != std::string::npos) {
    return Status::InvalidArgument(
        "updates target the base name; versions ('" + name +
        "') are immutable");
  }
  Result<NameState*> state_result = StateLocked(name, /*reset_on_reload=*/true);
  if (!state_result.ok()) return state_result.status();
  NameState& state = **state_result;
  if (state.overlay == nullptr || state.overlay->pending_ops() == 0) {
    return Status::InvalidArgument("no staged updates for '" + name + "'");
  }

  const std::string versioned_name =
      name + "@v" + std::to_string(state.next_version);
  // The manager mints each version number exactly once, so an entry
  // (resident or spilled — hence Contains, not Get) under the upcoming
  // name can only be something the operator loaded by hand — refuse
  // (before paying for the snapshot) rather than clobber it.
  if (catalog_->Contains(versioned_name)) {
    return Status::AlreadyExists(
        "catalog name '" + versioned_name +
        "' is already taken by an externally loaded graph; evict it before "
        "committing");
  }

  CommitSnapshot snapshot = state.overlay->Commit();

  serve::CommitInfo info;
  info.versioned_name = versioned_name;
  info.version = state.next_version;
  info.nodes = snapshot.graph.num_nodes();
  info.edges = snapshot.graph.num_edges();
  info.ops = snapshot.ops;
  info.touched_nodes = snapshot.touched.size();

  const std::string source =
      "commit:" + name + "+" + std::to_string(snapshot.ops) + "ops";
  VULNDS_RETURN_NOT_OK(
      catalog_->Put(versioned_name, std::move(snapshot.graph), source));
  const std::shared_ptr<serve::CatalogEntry> new_entry =
      catalog_->Get(versioned_name);
  if (new_entry == nullptr && !catalog_->Contains(versioned_name)) {
    return Status::Internal("version '" + versioned_name +
                            "' was evicted during commit (catalog capacity "
                            "too small)");
  }

  if (journal_ != nullptr && !replaying_) {
    // Durability barrier, *before* the in-memory version list advances: the
    // commit record plus fsync. If the barrier fails after retries the
    // commit is unwound — the snapshot leaves the catalog, the staged ops
    // stay in the overlay, and the caller may retry — so an `ok committed`
    // line always names a version that survives a crash. (fsync is
    // inherently ambiguous on failure: the record may still reach disk, so
    // replay tolerates re-seeing a version it already restored.)
    Status barrier =
        JournalAppendRetryLocked("commit " + name + " " +
                                 std::to_string(info.version));
    if (barrier.ok()) barrier = JournalSyncRetryLocked();
    if (!barrier.ok()) {
      catalog_->Evict(versioned_name);
      return Status::IOError("commit of '" + name + "' is not durable (" +
                             barrier.message() +
                             "); staged updates kept, retry commit");
    }
  }

  // Exact context invalidation: bottom-k sample orders are pure in
  // (seed, budget) and carry to the new version bit-identically; bounds and
  // candidate reductions are functions of the graph the deltas touched and
  // start cold. Under a tight memory governor the fresh snapshot may have
  // been spilled cold by its own Put — the commit stands, the contexts
  // simply start empty when it pages back in.
  if (new_entry != nullptr) {
    std::scoped_lock context_locks(state.base_entry->context_mu,
                                   new_entry->context_mu);
    const DetectionContext& old_context = state.base_entry->context;
    info.carried = new_entry->context.AdoptGraphIndependent(old_context);
    info.dropped = old_context.lower_bounds.size() +
                   old_context.upper_bounds.size() +
                   old_context.reductions.size();
  }

  serve::VersionInfo version;
  version.version = state.next_version;
  version.catalog_name = versioned_name;
  version.nodes = info.nodes;
  version.edges = info.edges;
  version.ops = info.ops;
  state.versions.push_back(version);
  ++state.next_version;
  // The log is clean again: release the graph pins so the catalog's
  // eviction policy stays in charge of memory. The next staged op
  // re-attaches to the lineage tip (the version just committed).
  state.base_entry = nullptr;
  state.base_pin.Release();
  state.overlay = nullptr;

  ++stats_.commits;
  stats_.contexts_carried += info.carried;
  stats_.contexts_dropped += info.dropped;

  if (!replaying_) MaybeCompactLocked();

  info.seconds = static_cast<double>(NowMicros() - start_micros) * 1e-6;
  return info;
}

void UpdateManager::SetJournalCompactThreshold(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  compact_threshold_bytes_ = bytes;
}

void UpdateManager::BindObservability(obs::MetricRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = registry;
}

void UpdateManager::MaybeCompactLocked() {
  if (journal_ == nullptr || compact_threshold_bytes_ == 0) return;
  if (journal_->bytes() <= compact_threshold_bytes_) return;
  if (!CompactNowLocked().ok()) {
    // The journal just stays long; every record in it is still valid and
    // the next commit retries the compaction.
    serve::CountIoError(registry_, "journal_compact", "error");
  }
}

Status UpdateManager::CompactJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ == nullptr) return Status::OK();
  Status st = CompactNowLocked();
  if (!st.ok()) serve::CountIoError(registry_, "journal_compact", "error");
  return st;
}

Status UpdateManager::CompactNowLocked() {
  // Rewrite the journal as the minimal set of records that reconstructs
  // today's state: per lineage one `open` (version counter + base source),
  // one `version` record per committed version pointing at a crash-safely
  // written binary snapshot side file, and the staged-but-uncommitted tail
  // re-synthesized from the overlay. Everything is prepared beside the live
  // journal first; the swap itself is ReplaceWith's single rename().
  if (replay_incomplete_) {
    ++stats_.compactions_refused;
    return Status::Internal(
        "journal replay was incomplete; compacting would drop the records "
        "replay could not reconstruct — restart with readable side files "
        "first");
  }
  std::vector<std::string> payloads;
  std::unordered_set<std::string> referenced_side_files;
  for (auto& [name, state] : states_) {
    const bool has_versions = state.versions.size() > 1;
    const bool has_staged =
        state.overlay != nullptr && state.overlay->pending_ops() > 0;
    if (!state.journal_opened && !has_versions && !has_staged) continue;
    payloads.push_back("open " + name + " " +
                       std::to_string(state.next_version) + " " +
                       state.root_source);
    for (std::size_t i = 1; i < state.versions.size(); ++i) {
      const serve::VersionInfo& v = state.versions[i];
      Result<std::shared_ptr<serve::CatalogEntry>> resolved =
          catalog_->GetOrLoad(v.catalog_name);
      if (!resolved.ok() || *resolved == nullptr) {
        // The version is in the journal (op chain or side file) but cannot
        // be materialized right now — possibly a transient spill/page-in
        // failure. Abort: the uncompacted journal can still restore it on a
        // healthier day, while dropping its record here would be permanent.
        return Status::IOError("cannot resolve " + v.catalog_name +
                               " for compaction: " +
                               resolved.status().message());
      }
      const std::string side_path = journal_->path() + ".v." +
                                    SanitizeForPath(v.catalog_name) + ".vg2";
      VULNDS_RETURN_NOT_OK(WriteGraphFile((*resolved)->graph, side_path,
                                          GraphFileFormat::kBinary));
      referenced_side_files.insert(side_path);
      payloads.push_back("version " + name + " " +
                         std::to_string(v.version) + " " +
                         std::to_string(v.ops) + " " + side_path);
    }
    if (has_staged) {
      for (const DeltaRecord& r : state.overlay->log().records()) {
        switch (r.op) {
          case DeltaOp::kAddEdge:
            payloads.push_back("add " + name + " " + std::to_string(r.src) +
                               " " + std::to_string(r.dst) + " " +
                               FormatProb(r.prob));
            break;
          case DeltaOp::kDeleteEdge:
            payloads.push_back("del " + name + " " + std::to_string(r.src) +
                               " " + std::to_string(r.dst));
            break;
          case DeltaOp::kSetProb:
            payloads.push_back("set " + name + " " + std::to_string(r.src) +
                               " " + std::to_string(r.dst) + " " +
                               FormatProb(r.prob));
            break;
        }
      }
    }
  }
  VULNDS_RETURN_NOT_OK(journal_->ReplaceWith(payloads));
  ++stats_.journal_compactions;

  // Reclaim side files no longer referenced (dropped lineages, reloaded
  // bases): everything matching "<journal>.v.*" that the rewrite did not
  // emit. Best effort — an orphan costs disk, not correctness.
  const std::string& jpath = journal_->path();
  const std::size_t slash = jpath.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : jpath.substr(0, slash);
  const std::string file_prefix =
      (slash == std::string::npos ? jpath : jpath.substr(slash + 1)) + ".v.";
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* ent = ::readdir(d)) {
      const std::string fname = ent->d_name;
      if (fname.rfind(file_prefix, 0) != 0) continue;
      // Reconstruct the path exactly as the rewrite spelled it (no "./"
      // prefix for a relative journal path) so the referenced-set lookup
      // compares like with like.
      const std::string full =
          slash == std::string::npos ? fname : dir + "/" + fname;
      if (referenced_side_files.count(full) == 0) {
        (void)std::remove(full.c_str());
      }
    }
    ::closedir(d);
  }
  return Status::OK();
}

bool UpdateManager::ReplayOpenLocked(const std::string& name,
                                     uint64_t next_version,
                                     const std::string& source) {
  // Restore the base snapshot if it is not already there (the operator's
  // serve command line usually preloads it; replay fills the gaps). A
  // graph Put() from memory has no on-disk source to reload from.
  if (!catalog_->Contains(name)) {
    if (source.empty() || source == "<memory>" ||
        source.rfind("commit:", 0) == 0) {
      return false;
    }
    if (!catalog_->Load(name, source).ok()) return false;
  }
  Result<NameState*> state_result =
      StateLocked(name, /*reset_on_reload=*/false);
  if (!state_result.ok()) return false;
  NameState& state = **state_result;
  if (state.overlay != nullptr || state.versions.size() > 1) {
    // A second `open` for a known lineage means the base was reloaded
    // between these records: restart from the current snapshot exactly
    // like the live path did.
    Result<std::shared_ptr<serve::CatalogEntry>> resolved =
        catalog_->GetOrLoad(name);
    if (!resolved.ok() || *resolved == nullptr) return false;
    const std::shared_ptr<serve::CatalogEntry> entry = resolved.MoveValue();
    state.root_uid = entry->uid;
    state.root_source = entry->source;
    state.base_entry = nullptr;
    state.base_pin.Release();
    state.overlay = nullptr;
    state.versions.assign(1, BaseVersion(name, *entry));
  }
  // The recorded counter keeps replayed versions from colliding with ones
  // committed before this journal existed; never move it backwards.
  if (next_version > state.next_version) state.next_version = next_version;
  state.journal_opened = true;
  return true;
}

bool UpdateManager::ReplayVersionLocked(const std::string& name,
                                        uint64_t version, uint64_t ops,
                                        const std::string& path) {
  Result<NameState*> state_result =
      StateLocked(name, /*reset_on_reload=*/false);
  if (!state_result.ok()) return false;
  NameState& state = **state_result;
  for (const serve::VersionInfo& v : state.versions) {
    if (v.version == version) return true;  // already restored
  }
  const std::string versioned_name =
      name + "@v" + std::to_string(version);
  uint64_t nodes = 0;
  uint64_t edges = 0;
  if (catalog_->Contains(versioned_name)) {
    Result<std::shared_ptr<serve::CatalogEntry>> resolved =
        catalog_->GetOrLoad(versioned_name);
    if (!resolved.ok() || *resolved == nullptr) return false;
    nodes = (*resolved)->graph.num_nodes();
    edges = (*resolved)->graph.num_edges();
  } else {
    Result<UncertainGraph> loaded = ReadGraphFile(path);
    if (!loaded.ok()) return false;
    nodes = (*loaded).num_nodes();
    edges = (*loaded).num_edges();
    // The side file is the entry's source, so a later spill of this version
    // can fall back to reloading it if the spill page breaks.
    if (!catalog_->Put(versioned_name, loaded.MoveValue(), path).ok()) {
      return false;
    }
  }
  serve::VersionInfo v;
  v.version = version;
  v.catalog_name = versioned_name;
  v.nodes = nodes;
  v.edges = edges;
  v.ops = ops;
  state.versions.push_back(v);
  if (version >= state.next_version) state.next_version = version + 1;
  return true;
}

Result<JournalReplayStats> UpdateManager::ReplayJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  JournalReplayStats rs;
  if (journal_ == nullptr) return rs;
  rs.dropped_tail_bytes = journal_->dropped_tail_bytes();
  replaying_ = true;
  std::unordered_set<std::string> failed;
  for (const std::string& record : journal_->recovered()) {
    ++rs.records;
    std::istringstream in(record);
    std::string verb, name;
    if (!(in >> verb >> name)) {
      ++rs.skipped;
      continue;
    }
    if (failed.count(name) != 0) {
      ++rs.skipped;
      continue;
    }
    bool ok = false;
    if (verb == "open") {
      uint64_t next_version = 0;
      std::string source;
      if (in >> next_version) {
        std::getline(in, source);
        if (!source.empty() && source.front() == ' ') source.erase(0, 1);
        ok = ReplayOpenLocked(name, next_version, source);
        if (ok) ++rs.opens;
      }
    } else if (verb == "add" || verb == "set") {
      uint64_t src = 0, dst = 0;
      double prob = 0.0;
      if (in >> src >> dst >> prob) {
        const NodeId s = static_cast<NodeId>(src);
        const NodeId d = static_cast<NodeId>(dst);
        const bool adding = verb == "add";
        ok = StageLocked(name, record,
                         [&](DynamicGraph& g) {
                           return adding ? g.AddEdge(s, d, prob)
                                         : g.SetProb(s, d, prob);
                         })
                 .ok();
        if (ok) ++rs.ops;
      }
    } else if (verb == "del") {
      uint64_t src = 0, dst = 0;
      if (in >> src >> dst) {
        const NodeId s = static_cast<NodeId>(src);
        const NodeId d = static_cast<NodeId>(dst);
        ok = StageLocked(name, record,
                         [&](DynamicGraph& g) { return g.DeleteEdge(s, d); })
                 .ok();
        if (ok) ++rs.ops;
      }
    } else if (verb == "version") {
      // Compaction record: a committed version whose contents live in a
      // binary snapshot side file instead of an op chain.
      uint64_t version = 0, ops = 0;
      if (in >> version >> ops) {
        std::string path;
        std::getline(in, path);
        if (!path.empty() && path.front() == ' ') path.erase(0, 1);
        ok = ReplayVersionLocked(name, version, ops, path);
        if (ok) ++rs.commits;
      }
    } else if (verb == "commit") {
      uint64_t version = 0;
      if (in >> version) {
        const auto it = states_.find(name);
        bool already = false;
        if (it != states_.end()) {
          for (const serve::VersionInfo& v : it->second.versions) {
            if (v.version == version) already = true;
          }
        }
        if (already) {
          // A barrier that "failed" but still reached disk re-records a
          // version the retry also recorded: replay is idempotent there.
          ok = true;
        } else {
          // Force the counter to the recorded N so the replayed version
          // gets the exact committed name even if earlier records were
          // skipped.
          if (it != states_.end()) it->second.next_version = version;
          ok = CommitLocked(name, NowMicros()).ok();
          if (ok) ++rs.commits;
        }
      }
    }
    if (!ok) {
      ++rs.skipped;
      failed.insert(name);
      ++rs.failed_names;
    }
  }
  replaying_ = false;
  journal_->ReleaseRecovered();
  // An incomplete replay (transient EIO on a side file, abandoned lineage,
  // unparseable record) leaves the in-memory state missing things the
  // journal still holds. Compacting from that state would rewrite the
  // journal without them — turning a transient read failure into permanent
  // loss — so compaction stays blocked until a fully clean replay.
  replay_incomplete_ = rs.skipped > 0 || rs.failed_names > 0;
  return rs;
}

std::size_t UpdateManager::JournalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_ != nullptr ? journal_->bytes() : 0;
}

Result<std::vector<serve::VersionInfo>> UpdateManager::Versions(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  // `versions g@v2` is a read on g's lineage, not a mutation: resolve the
  // history through the base name.
  const std::size_t at = name.find('@');
  const std::string base = at == std::string::npos ? name : name.substr(0, at);
  Result<NameState*> state = StateLocked(base, /*reset_on_reload=*/false);
  if (!state.ok()) return state.status();
  return (*state)->versions;
}

UpdateManagerStats UpdateManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vulnds::dyn
