#include "dyn/dynamic_graph.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "vulnds/coin_columns.h"

namespace vulnds::dyn {

namespace {

// (endpoint, position-in-added-list) pairs sorted by endpoint, preserving
// list order within an endpoint; gives each touched node its staged arcs
// without scanning the whole added list per node.
std::vector<std::pair<NodeId, std::size_t>> GroupAdded(
    const std::vector<UncertainEdge>& added, bool by_src) {
  std::vector<std::pair<NodeId, std::size_t>> grouped;
  grouped.reserve(added.size());
  for (std::size_t i = 0; i < added.size(); ++i) {
    grouped.emplace_back(by_src ? added[i].src : added[i].dst, i);
  }
  std::stable_sort(grouped.begin(), grouped.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  return grouped;
}

}  // namespace

DynamicGraph::DynamicGraph(std::shared_ptr<const UncertainGraph> base)
    : base_(std::move(base)), log_(base_.get()) {}

void DynamicGraph::Rebase(std::shared_ptr<const UncertainGraph> new_base) {
  base_ = std::move(new_base);
  log_ = DeltaLog(base_.get());
}

CommitSnapshot DynamicGraph::Commit() const {
  const UncertainGraph& base = *base_;
  const std::size_t n = base.num_nodes();
  const std::size_t base_m = base.num_edges();

  const std::vector<EdgeId> deleted = log_.DeletedBaseEdges();
  const std::vector<UncertainEdge> added = log_.LiveAddedEdges();
  const std::size_t base_live = base_m - deleted.size();
  const std::size_t new_m = base_live + added.size();

  // Endpoints whose adjacency run content changes. Marked from the raw log,
  // so a net-zero pair (add then delete the same edge) rebuilds its runs
  // unnecessarily but never incorrectly.
  std::vector<char> out_touched(n, 0), in_touched(n, 0);
  for (const DeltaRecord& r : log_.records()) {
    out_touched[r.src] = 1;
    in_touched[r.dst] = 1;
  }

  // Degree deltas from the *final* staged state (net-zero pairs cancel).
  std::vector<long long> out_delta(n, 0), in_delta(n, 0);
  const std::span<const UncertainEdge> base_edges = base.edges();
  for (const EdgeId e : deleted) {
    --out_delta[base_edges[e].src];
    --in_delta[base_edges[e].dst];
  }
  for (const UncertainEdge& e : added) {
    ++out_delta[e.src];
    ++in_delta[e.dst];
  }

  // Base edge id -> compacted id. Identity when nothing was deleted; else
  // shift by the number of deleted ids below (deleted ids map to themselves
  // but are never emitted).
  const bool ids_shift = !deleted.empty();
  auto remap = [&deleted](EdgeId e) {
    const auto it = std::upper_bound(deleted.begin(), deleted.end(), e);
    return static_cast<EdgeId>(e - (it - deleted.begin()));
  };

  // New edge list: live base edges in original order (probabilities
  // patched), then staged insertions in log order; edge id == position.
  std::vector<UncertainEdge> edge_list;
  edge_list.reserve(new_m);
  {
    std::size_t next_deleted = 0;
    for (EdgeId e = 0; e < base_m; ++e) {
      if (next_deleted < deleted.size() && deleted[next_deleted] == e) {
        ++next_deleted;
        continue;
      }
      UncertainEdge edge = base_edges[e];
      if (const double* p = log_.BaseProbOverride(e)) edge.prob = *p;
      edge_list.push_back(edge);
    }
  }
  edge_list.insert(edge_list.end(), added.begin(), added.end());

  CommitSnapshot snapshot;
  snapshot.ops = log_.size();

  // One direction of the dual CSR: copy untouched runs, reassemble touched
  // ones from the base run plus this endpoint's staged insertions.
  const auto build_direction = [&](bool out_direction,
                                   std::vector<std::size_t>& offsets,
                                   std::vector<Arc>& arcs) {
    const std::vector<char>& touched = out_direction ? out_touched : in_touched;
    const std::vector<long long>& delta = out_direction ? out_delta : in_delta;
    const auto grouped = GroupAdded(added, out_direction);

    offsets.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      const long long base_deg = static_cast<long long>(
          out_direction ? base.OutDegree(v) : base.InDegree(v));
      offsets[v + 1] = offsets[v] + static_cast<std::size_t>(base_deg + delta[v]);
    }
    arcs.resize(new_m);

    for (NodeId v = 0; v < n; ++v) {
      const std::span<const Arc> base_run =
          out_direction ? base.OutArcs(v) : base.InArcs(v);
      Arc* dst = arcs.data() + offsets[v];
      if (!touched[v]) {
        std::copy(base_run.begin(), base_run.end(), dst);
        if (ids_shift) {
          for (std::size_t i = 0; i < base_run.size(); ++i) {
            dst[i].edge = remap(dst[i].edge);
          }
        }
        ++snapshot.runs_copied;
        continue;
      }
      ++snapshot.runs_rebuilt;
      for (const Arc& arc : base_run) {
        if (log_.IsBaseEdgeDeleted(arc.edge)) continue;
        Arc patched = arc;
        if (const double* p = log_.BaseProbOverride(arc.edge)) {
          patched.prob = *p;
        }
        if (ids_shift) patched.edge = remap(patched.edge);
        *dst++ = patched;
      }
      const auto lo = std::lower_bound(
          grouped.begin(), grouped.end(), v,
          [](const auto& a, NodeId node) { return a.first < node; });
      for (auto it = lo; it != grouped.end() && it->first == v; ++it) {
        const UncertainEdge& e = added[it->second];
        const EdgeId id = static_cast<EdgeId>(base_live + it->second);
        *dst++ = {out_direction ? e.dst : e.src, e.prob, id};
      }
    }
  };

  std::vector<std::size_t> out_offsets, in_offsets;
  std::vector<Arc> out_arcs, in_arcs;
  build_direction(true, out_offsets, out_arcs);
  build_direction(false, in_offsets, in_arcs);

  for (NodeId v = 0; v < n; ++v) {
    if (out_touched[v] || in_touched[v]) snapshot.touched.push_back(v);
  }

  std::vector<double> self_risk(base.self_risks().begin(),
                                base.self_risks().end());
  snapshot.graph = UncertainGraph::FromParts(
      std::move(self_risk), std::move(out_offsets), std::move(out_arcs),
      std::move(in_offsets), std::move(in_arcs), std::move(edge_list));

  // Carry the sampling kernels' coin columns across the version boundary:
  // BuildFrom copies every arc the delta did not touch instead of rehashing
  // it, and seeding the new graph's derived cache here means the first
  // query after a commit pays no O(m) column build. Only when the base ever
  // built them (a never-queried lineage stays lazy) and the new version is
  // still above the density gate (samplers ignore columns below it).
  if (CoinColumns::Worthwhile(snapshot.graph)) {
    if (const auto base_cols = base.derived().Peek<CoinColumns>()) {
      snapshot.graph.derived().Put(std::make_shared<const CoinColumns>(
          CoinColumns::BuildFrom(snapshot.graph, base, *base_cols, deleted)));
    }
  }
  return snapshot;
}

}  // namespace vulnds::dyn
