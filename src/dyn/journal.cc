#include "dyn/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace vulnds::dyn {

uint32_t Crc32(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= bytes[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

void PutU32(unsigned char* out, uint32_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

uint32_t GetU32(const unsigned char* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

// Reads exactly `len` bytes; returns bytes read (< len only at EOF/error).
std::size_t ReadFull(int fd, void* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, static_cast<char*>(buf) + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    done += static_cast<std::size_t>(n);
  }
  return done;
}

}  // namespace

Result<std::unique_ptr<DeltaJournal>> DeltaJournal::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open journal '" + path +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<DeltaJournal> journal(new DeltaJournal(path, fd));

  // Scan from the start; `valid_end` trails the last record that framed and
  // checksummed cleanly. Anything after it is a torn or corrupt tail.
  const off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < 0) {
    return Status::IOError("cannot size journal '" + path +
                           "': " + std::strerror(errno));
  }
  if (::lseek(fd, 0, SEEK_SET) < 0) {
    return Status::IOError("cannot rewind journal '" + path +
                           "': " + std::strerror(errno));
  }
  std::size_t valid_end = 0;
  unsigned char header[8];
  std::string payload;
  while (true) {
    if (ReadFull(fd, header, sizeof(header)) != sizeof(header)) break;
    const uint32_t len = GetU32(header);
    const uint32_t crc = GetU32(header + 4);
    if (len > kMaxRecordBytes) break;
    payload.resize(len);
    if (ReadFull(fd, payload.data(), len) != len) break;
    if (Crc32(payload.data(), len) != crc) break;
    journal->recovered_.push_back(payload);
    ++journal->records_;
    valid_end += sizeof(header) + len;
  }
  if (static_cast<off_t>(valid_end) < file_size) {
    journal->dropped_tail_bytes_ =
        static_cast<std::size_t>(file_size) - valid_end;
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      return Status::IOError("cannot truncate corrupt tail of journal '" +
                             path + "': " + std::strerror(errno));
    }
  }
  if (::lseek(fd, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    return Status::IOError("cannot seek journal '" + path +
                           "': " + std::strerror(errno));
  }
  journal->bytes_ = valid_end;
  return journal;
}

DeltaJournal::~DeltaJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status DeltaJournal::Append(const std::string& payload) {
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("journal record of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds the 1 MiB record cap");
  }
  std::string frame(8 + payload.size(), '\0');
  PutU32(reinterpret_cast<unsigned char*>(frame.data()),
         static_cast<uint32_t>(payload.size()));
  PutU32(reinterpret_cast<unsigned char*>(frame.data()) + 4,
         Crc32(payload.data(), payload.size()));
  std::memcpy(frame.data() + 8, payload.data(), payload.size());
  // One write() per record: a crash leaves at most one torn record at the
  // tail, which the next Open() truncates away.
  std::size_t done = 0;
  while (done < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + done, frame.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("journal append to '" + path_ +
                             "' failed: " + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  bytes_ += frame.size();
  ++records_;
  return Status::OK();
}

Status DeltaJournal::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("journal fsync of '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace vulnds::dyn
