#include "dyn/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace vulnds::dyn {

namespace {

void PutU32(unsigned char* out, uint32_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

uint32_t GetU32(const unsigned char* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

// Reads exactly `len` bytes; returns bytes read (< len only at EOF/error).
std::size_t ReadFull(int fd, void* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, static_cast<char*>(buf) + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    done += static_cast<std::size_t>(n);
  }
  return done;
}

// Appends the [len][crc][payload] frame for `payload` to `out`.
void AppendFrame(std::string* out, const std::string& payload) {
  const std::size_t base = out->size();
  out->resize(base + 8 + payload.size());
  auto* head = reinterpret_cast<unsigned char*>(out->data() + base);
  PutU32(head, static_cast<uint32_t>(payload.size()));
  PutU32(head + 4, Crc32(payload.data(), payload.size()));
  std::memcpy(out->data() + base + 8, payload.data(), payload.size());
}

}  // namespace

Result<std::unique_ptr<DeltaJournal>> DeltaJournal::Open(
    const std::string& path) {
  if (const auto o = fail::Check(fail::points::kJournalOpen);
      o != fail::Outcome::kNone) {
    return Status::IOError("cannot open journal '" + path + "': " +
                           std::strerror(fail::InjectedErrno(o)) +
                           " (injected)");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open journal '" + path +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<DeltaJournal> journal(new DeltaJournal(path, fd));

  // Scan from the start; `valid_end` trails the last record that framed and
  // checksummed cleanly. Anything after it is a torn or corrupt tail.
  const off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < 0) {
    return Status::IOError("cannot size journal '" + path +
                           "': " + std::strerror(errno));
  }
  if (::lseek(fd, 0, SEEK_SET) < 0) {
    return Status::IOError("cannot rewind journal '" + path +
                           "': " + std::strerror(errno));
  }
  std::size_t valid_end = 0;
  unsigned char header[8];
  std::string payload;
  while (true) {
    if (ReadFull(fd, header, sizeof(header)) != sizeof(header)) break;
    const uint32_t len = GetU32(header);
    const uint32_t crc = GetU32(header + 4);
    if (len > kMaxRecordBytes) break;
    payload.resize(len);
    if (ReadFull(fd, payload.data(), len) != len) break;
    if (Crc32(payload.data(), len) != crc) break;
    journal->recovered_.push_back(payload);
    ++journal->records_;
    valid_end += sizeof(header) + len;
  }
  if (static_cast<off_t>(valid_end) < file_size) {
    journal->dropped_tail_bytes_ =
        static_cast<std::size_t>(file_size) - valid_end;
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      return Status::IOError("cannot truncate corrupt tail of journal '" +
                             path + "': " + std::strerror(errno));
    }
  }
  if (::lseek(fd, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    return Status::IOError("cannot seek journal '" + path +
                           "': " + std::strerror(errno));
  }
  journal->bytes_ = valid_end;
  return journal;
}

DeltaJournal::~DeltaJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status DeltaJournal::Append(const std::string& payload) {
  if (wedged_) {
    return Status::IOError("journal '" + path_ +
                           "' is wedged after an unrecoverable write error");
  }
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("journal record of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds the 1 MiB record cap");
  }
  std::string frame;
  AppendFrame(&frame, payload);

  int failed_errno = 0;
  const fail::Outcome injected =
      fail::Check(fail::points::kJournalAppendWrite);
  if (injected == fail::Outcome::kShortWrite) {
    // Model a torn write: half the frame really lands, then the "syscall"
    // fails. The boundary rollback below must peel the partial record off.
    std::size_t done = 0;
    const std::size_t half = frame.size() / 2;
    while (done < half) {
      const ssize_t n = ::write(fd_, frame.data() + done, half - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      done += static_cast<std::size_t>(n);
    }
    failed_errno = EIO;
  } else if (injected != fail::Outcome::kNone) {
    failed_errno = fail::InjectedErrno(injected);
  } else {
    // One write() per record: a crash leaves at most one torn record at the
    // tail, which the next Open() truncates away.
    std::size_t done = 0;
    while (done < frame.size()) {
      const ssize_t n =
          ::write(fd_, frame.data() + done, frame.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        failed_errno = errno;
        break;
      }
      done += static_cast<std::size_t>(n);
    }
  }
  if (failed_errno != 0) {
    // Roll the file back to the last good record boundary so a retried
    // append never lands after torn bytes (replay stops at the first torn
    // record, which would silently drop everything written after it).
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET) < 0) {
      wedged_ = true;
      return Status::IOError("journal append to '" + path_ + "' failed (" +
                             std::strerror(failed_errno) +
                             ") and the partial record could not be rolled "
                             "back; journal wedged");
    }
    return Status::IOError(
        std::string("journal append to '") + path_ +
        "' failed: " + std::strerror(failed_errno) +
        (injected != fail::Outcome::kNone ? " (injected)" : ""));
  }
  bytes_ += frame.size();
  ++records_;
  return Status::OK();
}

Status DeltaJournal::Sync() {
  if (wedged_) {
    return Status::IOError("journal '" + path_ +
                           "' is wedged after an unrecoverable write error");
  }
  if (const auto o = fail::Check(fail::points::kJournalSyncFsync);
      o != fail::Outcome::kNone) {
    return Status::IOError("journal fsync of '" + path_ + "' failed: " +
                           std::strerror(fail::InjectedErrno(o)) +
                           " (injected)");
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError("journal fsync of '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Status DeltaJournal::ReplaceWith(const std::vector<std::string>& payloads) {
  for (const std::string& payload : payloads) {
    if (payload.size() > kMaxRecordBytes) {
      return Status::InvalidArgument("journal record of " +
                                     std::to_string(payload.size()) +
                                     " bytes exceeds the 1 MiB record cap");
    }
  }
  const std::string tmp_path =
      path_ + ".compact.tmp." + std::to_string(::getpid());
  const int tmp_fd =
      ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    return Status::IOError("cannot open compaction temp '" + tmp_path +
                           "': " + std::strerror(errno));
  }
  auto fail_with = [&](std::string msg) {
    ::close(tmp_fd);
    ::unlink(tmp_path.c_str());
    return Status::IOError(std::move(msg));
  };

  std::string body;
  for (const std::string& payload : payloads) AppendFrame(&body, payload);

  const fail::Outcome write_fault =
      fail::Check(fail::points::kJournalCompactWrite);
  if (write_fault == fail::Outcome::kShortWrite) {
    // A prefix really lands in the temp file, then the write "fails"; the
    // temp is discarded so the live journal is untouched either way.
    (void)!::write(tmp_fd, body.data(), body.size() / 2);
    return fail_with("journal compaction write to '" + tmp_path +
                     "' failed: " + std::strerror(EIO) + " (injected)");
  }
  if (write_fault != fail::Outcome::kNone) {
    return fail_with("journal compaction write to '" + tmp_path +
                     "' failed: " +
                     std::strerror(fail::InjectedErrno(write_fault)) +
                     " (injected)");
  }
  std::size_t done = 0;
  while (done < body.size()) {
    const ssize_t n = ::write(tmp_fd, body.data() + done, body.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail_with("journal compaction write to '" + tmp_path +
                       "' failed: " + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }

  if (const auto o = fail::Check(fail::points::kJournalCompactFsync);
      o != fail::Outcome::kNone) {
    return fail_with("journal compaction fsync of '" + tmp_path +
                     "' failed: " + std::strerror(fail::InjectedErrno(o)) +
                     " (injected)");
  }
  if (::fsync(tmp_fd) != 0) {
    return fail_with("journal compaction fsync of '" + tmp_path +
                     "' failed: " + std::strerror(errno));
  }

  if (const auto o = fail::Check(fail::points::kJournalCompactRename);
      o != fail::Outcome::kNone) {
    return fail_with("journal compaction rename to '" + path_ +
                     "' failed: " + std::strerror(fail::InjectedErrno(o)) +
                     " (injected)");
  }
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return fail_with("journal compaction rename to '" + path_ +
                     "' failed: " + std::strerror(errno));
  }

  // rename() moved the inode we already hold open as tmp_fd under the
  // journal path, so adopting tmp_fd — not reopening by name — leaves no
  // window where appends could go to a stale file.
  ::close(fd_);
  fd_ = tmp_fd;
  wedged_ = false;
  bytes_ = body.size();
  records_ = payloads.size();
  if (::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET) < 0) {
    wedged_ = true;
    return Status::IOError("cannot seek compacted journal '" + path_ +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace vulnds::dyn
