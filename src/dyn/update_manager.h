// UpdateManager: versioned dynamic updates over the serve GraphCatalog.
//
// Updates target a *base* catalog name ("g"); staged ops accumulate in a
// DynamicGraph overlay and Commit materializes them as a new immutable
// snapshot registered under "g@vN" with a monotonically increasing N.
// Versions stack: the overlay rebases onto each committed snapshot, so the
// next batch of updates builds on vN, not on the original base.
//
// Invalidation is exact by construction:
//   * every committed version is a *new* catalog entry with a fresh uid, so
//     the query engine's result cache — keyed by (name, uid, options) —
//     never serves a stale result for the new version, while results cached
//     against untouched versions (the base and every earlier vK) keep their
//     keys and keep hitting;
//   * the new entry's DetectionContext starts from the predecessor's
//     graph-independent intermediates only: bottom-k sample orders are pure
//     in (seed, budget) and carry forward bit-identically, whereas bounds
//     and candidate reductions are functions of the graph a delta just
//     touched and are dropped (recomputed on first use).
//
// Version names are immutable: update verbs addressed to a name containing
// '@' are rejected. All methods are thread-safe.

#ifndef VULNDS_DYN_UPDATE_MANAGER_H_
#define VULNDS_DYN_UPDATE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dyn/dynamic_graph.h"
#include "obs/query_trace.h"
#include "serve/graph_catalog.h"
#include "serve/update_backend.h"

namespace vulnds::dyn {

/// Aggregate counters across all names and commits.
struct UpdateManagerStats {
  std::size_t staged_ops = 0;        ///< accepted addedge/deledge/setprob
  std::size_t rejected_ops = 0;      ///< validation failures
  std::size_t commits = 0;
  std::size_t contexts_carried = 0;  ///< sample orders carried forward
  std::size_t contexts_dropped = 0;  ///< bounds/reductions invalidated
};

class UpdateManager : public serve::UpdateBackend {
 public:
  /// Creates a manager registering committed versions in `catalog` (not
  /// owned; must outlive the manager). `clock` overrides the wall-clock
  /// micros source behind CommitInfo::seconds (null = steady clock); tests
  /// inject a fixed clock to make the commit `time=` token deterministic.
  explicit UpdateManager(serve::GraphCatalog* catalog,
                         obs::ClockMicros clock = nullptr);

  Result<serve::UpdateAck> AddEdge(const std::string& name, NodeId src,
                                   NodeId dst, double prob) override;
  Result<serve::UpdateAck> DeleteEdge(const std::string& name, NodeId src,
                                      NodeId dst) override;
  Result<serve::UpdateAck> SetProb(const std::string& name, NodeId src,
                                   NodeId dst, double prob) override;
  Result<serve::CommitInfo> Commit(const std::string& name) override;
  Result<std::vector<serve::VersionInfo>> Versions(
      const std::string& name) override;

  UpdateManagerStats stats() const;

 private:
  // Per-base-name mutable state. Graph references are held only while ops
  // are staged (base_entry/overlay are released once the log is clean), so
  // an idle manager never blocks catalog eviction from reclaiming memory —
  // the lineage is re-resolved from the catalog on the next touch.
  struct NameState {
    uint64_t next_version = 1;
    // uid the plain catalog name had when this state was (re)opened; a
    // different uid on a later touch means the operator reloaded the base.
    uint64_t root_uid = 0;
    // Entry the overlay builds on — the root at first, then the latest
    // committed version. Null whenever no ops are staged.
    std::shared_ptr<serve::CatalogEntry> base_entry;
    std::unique_ptr<DynamicGraph> overlay;
    std::vector<serve::VersionInfo> versions;  // base (v0) first
  };

  // Returns the state for `name`, opening it from the catalog on first
  // touch. When the catalog entry behind `name` was reloaded and
  // `reset_on_reload` is set (the mutation paths), the lineage restarts
  // from the new snapshot — rejecting with a notice if staged ops had to be
  // discarded. Read paths pass false so they never mutate state or consume
  // the notice.
  Result<NameState*> StateLocked(const std::string& name,
                                 bool reset_on_reload);

  // Resolves the lineage tip from the catalog and attaches an overlay to
  // it; no-op when one is already attached.
  Status EnsureOverlayLocked(const std::string& name, NameState* state);

  template <typename Fn>
  Result<serve::UpdateAck> Stage(const std::string& name, Fn&& op);

  int64_t NowMicros() const {
    return clock_ ? clock_() : obs::SteadyNowMicros();
  }

  serve::GraphCatalog* catalog_;
  obs::ClockMicros clock_;
  mutable std::mutex mu_;
  std::map<std::string, NameState> states_;
  UpdateManagerStats stats_;
};

}  // namespace vulnds::dyn

#endif  // VULNDS_DYN_UPDATE_MANAGER_H_
