// UpdateManager: versioned dynamic updates over the serve GraphCatalog.
//
// Updates target a *base* catalog name ("g"); staged ops accumulate in a
// DynamicGraph overlay and Commit materializes them as a new immutable
// snapshot registered under "g@vN" with a monotonically increasing N.
// Versions stack: the overlay rebases onto each committed snapshot, so the
// next batch of updates builds on vN, not on the original base.
//
// Invalidation is exact by construction:
//   * every committed version is a *new* catalog entry with a fresh uid, so
//     the query engine's result cache — keyed by (name, uid, options) —
//     never serves a stale result for the new version, while results cached
//     against untouched versions (the base and every earlier vK) keep their
//     keys and keep hitting;
//   * the new entry's DetectionContext starts from the predecessor's
//     graph-independent intermediates only: bottom-k sample orders are pure
//     in (seed, budget) and carry forward bit-identically, whereas bounds
//     and candidate reductions are functions of the graph a delta just
//     touched and are dropped (recomputed on first use).
//
// Durability. When constructed with a DeltaJournal the manager records the
// write path as it happens: an `open` record the first time a lineage is
// touched (capturing the base's on-disk source and the version counter),
// one `add`/`set`/`del` record per accepted op, and a `commit` record —
// followed by an fsync — per materialized version. ReplayJournal() runs the
// recovered records back through the same staging/commit code at startup,
// reconstructing every committed name@vN and the staged-but-uncommitted
// tail after a crash (the journal tolerates a torn final record).
//
// IO failures never leave memory and disk disagreeing about what was
// promised. A journal append that still fails after 3 immediate retries
// rolls the just-staged op back out of the overlay and returns IOError (the
// client's `err` line is the truth: the op neither serves nor survives). A
// commit whose journal record or fsync fails after retries is unwound — the
// fresh snapshot is evicted, the staged ops stay in the overlay, and the
// caller gets IOError and may retry; the in-memory version list only
// advances after the durability barrier holds. (One ambiguity is inherent
// to fsync: a failed barrier may still reach disk, so replay tolerates a
// version it already has.) Failures are counted in stats().journal_errors
// and, when BindObservability was called, in
// vulnds_store_io_errors_total{site,outcome}.
//
// Compaction. The journal otherwise grows without bound; when a compaction
// threshold is set (SetJournalCompactThreshold, `serve
// journal_compact_bytes=N`) a commit that leaves the journal above the
// threshold rewrites it as: one `open` per live lineage, one `version`
// record per committed version pointing at a binary snapshot side file
// (`<journal>.v.<name>.vg2`, written crash-safely), and the staged-but-
// uncommitted ops re-synthesized from the overlay. The swap is a single
// rename() — a crash at any step of compaction leaves either the complete
// old journal or the complete new one, never a mix.
//
// Version names are immutable: update verbs addressed to a name containing
// '@' are rejected. All methods are thread-safe.

#ifndef VULNDS_DYN_UPDATE_MANAGER_H_
#define VULNDS_DYN_UPDATE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dyn/dynamic_graph.h"
#include "dyn/journal.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "serve/graph_catalog.h"
#include "serve/update_backend.h"

namespace vulnds::dyn {

/// Aggregate counters across all names and commits.
struct UpdateManagerStats {
  std::size_t staged_ops = 0;        ///< accepted addedge/deledge/setprob
  std::size_t rejected_ops = 0;      ///< validation failures
  std::size_t commits = 0;
  std::size_t contexts_carried = 0;  ///< sample orders carried forward
  std::size_t contexts_dropped = 0;  ///< bounds/reductions invalidated
  std::size_t journal_errors = 0;    ///< appends/fsyncs failed after retries
  std::size_t journal_rollbacks = 0;   ///< staged ops rolled back (unjournaled)
  std::size_t journal_compactions = 0; ///< successful journal rewrites
  std::size_t compactions_refused = 0; ///< rewrites blocked by a damaged replay
};

/// What ReplayJournal reconstructed (or had to give up on).
struct JournalReplayStats {
  std::size_t records = 0;       ///< journal records processed
  std::size_t opens = 0;         ///< lineages (re)opened
  std::size_t ops = 0;           ///< staged ops re-applied
  std::size_t commits = 0;       ///< versions re-materialized
  std::size_t skipped = 0;       ///< records dropped (failed lineage/parse)
  std::size_t failed_names = 0;  ///< lineages abandoned mid-replay
  std::size_t dropped_tail_bytes = 0;  ///< torn tail truncated at Open()
};

class UpdateManager : public serve::UpdateBackend {
 public:
  /// Creates a manager registering committed versions in `catalog` (not
  /// owned; must outlive the manager). `clock` overrides the wall-clock
  /// micros source behind CommitInfo::seconds (null = steady clock); tests
  /// inject a fixed clock to make the commit `time=` token deterministic.
  explicit UpdateManager(serve::GraphCatalog* catalog,
                         obs::ClockMicros clock = nullptr);

  /// As above, additionally journaling every staged op and commit to
  /// `journal` (not owned; may be null = no durability; must outlive the
  /// manager). Call ReplayJournal() once, before serving traffic, to
  /// restore the state DeltaJournal::Open recovered.
  UpdateManager(serve::GraphCatalog* catalog, DeltaJournal* journal,
                obs::ClockMicros clock = nullptr);

  Result<serve::UpdateAck> AddEdge(const std::string& name, NodeId src,
                                   NodeId dst, double prob) override;
  Result<serve::UpdateAck> DeleteEdge(const std::string& name, NodeId src,
                                      NodeId dst) override;
  Result<serve::UpdateAck> SetProb(const std::string& name, NodeId src,
                                   NodeId dst, double prob) override;
  Result<serve::CommitInfo> Commit(const std::string& name) override;
  Result<std::vector<serve::VersionInfo>> Versions(
      const std::string& name) override;
  std::size_t JournalBytes() const override;

  /// Replays the records DeltaJournal::Open recovered, re-staging and
  /// re-committing them through the normal code path (with journaling
  /// suppressed — the records are already on disk). A lineage whose base
  /// cannot be restored (source gone, "<memory>" Put) or whose replay hits
  /// a validation error is abandoned and its remaining records skipped, so
  /// one bad lineage never poisons the others. Consumes the recovered
  /// buffer; call once, before serving traffic.
  Result<JournalReplayStats> ReplayJournal();

  /// Compacts the journal once it exceeds `bytes` after a commit (0 = never,
  /// the default). See the class comment for the rewrite's shape.
  void SetJournalCompactThreshold(std::size_t bytes);

  /// Rewrites the journal now regardless of the threshold (tests and
  /// operator tooling). No-op OK when there is no journal.
  Status CompactJournal();

  /// Routes IO-failure counters (vulnds_store_io_errors_total) through
  /// `registry` (not owned; may be null to unbind). Call before traffic.
  void BindObservability(obs::MetricRegistry* registry);

  UpdateManagerStats stats() const;

 private:
  // Per-base-name mutable state. Graph references are held only while ops
  // are staged (base_entry/overlay are released once the log is clean), so
  // an idle manager never blocks catalog eviction from reclaiming memory —
  // the lineage is re-resolved from the catalog on the next touch. The pin
  // keeps the staged-against snapshot from being SPILLED mid-lineage
  // (holders of the shared_ptr are safe either way; the pin just avoids a
  // pointless disk round trip for a graph with a dirty overlay).
  struct NameState {
    uint64_t next_version = 1;
    // uid the plain catalog name had when this state was (re)opened; a
    // different uid on a later touch means the operator reloaded the base.
    uint64_t root_uid = 0;
    // Source the root snapshot was loaded from; written into the journal's
    // `open` record so replay can restore the base after a restart.
    std::string root_source;
    // True once this lineage's `open` record is in the journal; reset when
    // a reload restarts the lineage (the next op re-opens it).
    bool journal_opened = false;
    // Entry the overlay builds on — the root at first, then the latest
    // committed version. Null whenever no ops are staged.
    std::shared_ptr<serve::CatalogEntry> base_entry;
    serve::ScopedEntryPin base_pin;
    std::unique_ptr<DynamicGraph> overlay;
    std::vector<serve::VersionInfo> versions;  // base (v0) first
  };

  // Returns the state for `name`, opening it from the catalog on first
  // touch (paging the snapshot back in if it was spilled). When the catalog
  // entry behind `name` was reloaded and `reset_on_reload` is set (the
  // mutation paths), the lineage restarts from the new snapshot — rejecting
  // with a notice if staged ops had to be discarded. Read paths pass false
  // so they never mutate state or consume the notice.
  Result<NameState*> StateLocked(const std::string& name,
                                 bool reset_on_reload);

  // Resolves the lineage tip from the catalog (paging it back in if it was
  // spilled) and attaches an overlay to it; no-op when one is already
  // attached.
  Status EnsureOverlayLocked(const std::string& name, NameState* state);

  // Stages one op; `record` is its journal payload (replay grammar line).
  template <typename Fn>
  Result<serve::UpdateAck> StageLocked(const std::string& name,
                                       const std::string& record, Fn&& op);

  template <typename Fn>
  Result<serve::UpdateAck> Stage(const std::string& name,
                                 const std::string& record, Fn&& op);

  // The shared commit body; Commit() and replay both land here.
  Result<serve::CommitInfo> CommitLocked(const std::string& name,
                                         int64_t start_micros);

  // Appends to the journal with up to 3 immediate attempts; counts the
  // failure (stats + metrics) when all attempts fail.
  Status JournalAppendRetryLocked(const std::string& payload);
  // fsync with the same bounded-retry discipline.
  Status JournalSyncRetryLocked();

  // Rebuilds the overlay without its most recent record — the undo path
  // when that record could not be journaled. The surviving records were
  // validated at staging time, so the rebuild cannot fail.
  void RollbackLastStagedLocked(NameState* state);

  // Runs compaction when a threshold is set and the journal is above it;
  // failures are counted and swallowed (the journal just stays long).
  void MaybeCompactLocked();
  Status CompactNowLocked();

  // Replay handler for one `open` record; returns false when the lineage
  // could not be restored (caller abandons the name).
  bool ReplayOpenLocked(const std::string& name, uint64_t next_version,
                        const std::string& source);

  // Replay handler for one compaction `version` record: restores the
  // committed name@vN from its snapshot side file.
  bool ReplayVersionLocked(const std::string& name, uint64_t version,
                           uint64_t ops, const std::string& path);

  int64_t NowMicros() const {
    return clock_ ? clock_() : obs::SteadyNowMicros();
  }

  serve::GraphCatalog* catalog_;
  DeltaJournal* journal_ = nullptr;
  obs::ClockMicros clock_;
  obs::MetricRegistry* registry_ = nullptr;
  std::size_t compact_threshold_bytes_ = 0;
  mutable std::mutex mu_;
  std::map<std::string, NameState> states_;
  UpdateManagerStats stats_;
  // True while ReplayJournal runs records back through Stage/Commit:
  // suppresses journaling (the records are already on disk).
  bool replaying_ = false;
  // True when ReplayJournal could not reconstruct every record (unreadable
  // side file, abandoned lineage, unparseable record). Compaction rewrites
  // the journal from in-memory state, so rewriting from an incomplete
  // replay would permanently destroy the records replay failed on — every
  // compaction is refused until a fully clean replay clears the flag.
  bool replay_incomplete_ = false;
};

}  // namespace vulnds::dyn

#endif  // VULNDS_DYN_UPDATE_MANAGER_H_
