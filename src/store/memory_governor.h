// MemoryGovernor: one byte budget over every serving-layer memory pool.
//
// Before this module, three pools fought over RAM with inconsistent
// accounting: the graph catalog charged snapshot bytes only, warm
// DetectionContexts were telemetry, and the result cache was entry-counted.
// The governor unifies them in the classic buffer-pool mold: every pool
// *charges* its resident bytes under a charge class (snapshot / context /
// cached result), one global budget bounds the sum, and when a charge
// pushes the total over budget the governor *sheds* — asking the registered
// shedders to free bytes in a fixed preference order:
//
//   1. kContext  — warm per-graph intermediates. Pure functions of
//                  (graph, key), so dropping one costs recompute, never
//                  correctness; always the cheapest bytes to give back.
//   2. kSnapshot — resident graphs. With a spill directory the catalog
//                  writes the coldest snapshot to disk and pages it back on
//                  demand; without one it evicts (reloadable from source).
//   3. kResult   — cached query results. Shed last: a result is the
//                  finished product of the other two classes' work.
//
// Pinning is cooperative: pools skip entries their owners have pinned (the
// catalog skips CatalogEntry::pins > 0), so a snapshot under an in-flight
// query is never spilled from under it. A fully-pinned pool simply frees
// nothing and the governor moves to the next class; the budget is therefore
// a target the shed loop restores whenever anything unpinned remains, not a
// hard allocation fence.
//
// Thread safety: charges are lock-free per-class atomics; shedding is
// serialized by one mutex. Shedders run under that mutex and MUST NOT call
// Charge or Recharge (re-entering the shed loop) — Discharge is always safe
// and is exactly what freeing memory should call. The governor must outlive
// every pool operation that charges through it.

#ifndef VULNDS_STORE_MEMORY_GOVERNOR_H_
#define VULNDS_STORE_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace vulnds::store {

/// The charge classes, in shed-preference order (contexts go first).
enum class ChargeClass : int { kContext = 0, kSnapshot = 1, kResult = 2 };
inline constexpr std::size_t kChargeClassCount = 3;

/// Stable label text for metrics / stats ("context", "snapshot", "result").
const char* ChargeClassName(ChargeClass cls);

struct MemoryGovernorOptions {
  /// Global byte budget over all classes; 0 = unbounded (the governor still
  /// accounts, so resident_bytes reporting works, but never sheds).
  std::size_t budget_bytes = 0;
};

class MemoryGovernor {
 public:
  /// Frees up to `want` bytes of one class; returns the bytes it freed
  /// (which it must itself Discharge). Runs under the shed mutex: it may
  /// call Discharge but never Charge/Recharge, and must tolerate being
  /// unable to free anything (everything pinned or busy) by returning 0.
  using Shedder = std::function<std::size_t(std::size_t want)>;

  explicit MemoryGovernor(const MemoryGovernorOptions& options = {});

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Registers a shedder for `cls`. Multiple shedders per class are tried
  /// in registration order. Registration is expected at setup time, but is
  /// safe at any point.
  void RegisterShedder(ChargeClass cls, Shedder shedder);

  /// Adds `bytes` to the class charge, then sheds if the total exceeds the
  /// budget. Never call while holding a lock a shedder needs.
  void Charge(ChargeClass cls, std::size_t bytes);

  /// Subtracts `bytes` from the class charge. Never sheds, never locks —
  /// always safe, including from inside a shedder.
  void Discharge(ChargeClass cls, std::size_t bytes);

  /// Replaces an earlier charge of `old_bytes` with `new_bytes` in one
  /// step (sheds only if the total grew over budget).
  void Recharge(ChargeClass cls, std::size_t old_bytes, std::size_t new_bytes);

  /// True when a single entry of `bytes` could never fit the budget —
  /// pools reject such entries outright instead of shedding everything
  /// else first (see ShardedLruCache's rejected_oversize).
  bool Oversize(std::size_t bytes) const {
    const std::size_t budget = budget_bytes_;
    return budget != 0 && bytes > budget;
  }

  /// Runs the shed loop if the total is over budget. Charge calls this
  /// automatically; exposed for pools that batch several Discharge/Charge
  /// pairs and want one settlement at the end.
  void MaybeShed();

  std::size_t budget() const { return budget_bytes_; }
  std::size_t charged(ChargeClass cls) const {
    return charged_[static_cast<int>(cls)].load(std::memory_order_relaxed);
  }
  std::size_t total_charged() const;

  /// Shed telemetry: calls that freed bytes, and the bytes freed, per class.
  std::size_t sheds(ChargeClass cls) const {
    return sheds_[static_cast<int>(cls)].load(std::memory_order_relaxed);
  }
  std::size_t shed_bytes(ChargeClass cls) const {
    return shed_bytes_[static_cast<int>(cls)].load(std::memory_order_relaxed);
  }

 private:
  const std::size_t budget_bytes_;
  std::atomic<std::size_t> charged_[kChargeClassCount] = {};
  std::atomic<std::size_t> sheds_[kChargeClassCount] = {};
  std::atomic<std::size_t> shed_bytes_[kChargeClassCount] = {};

  // Guards shedders_ and serializes the shed loop: two concurrent
  // over-budget charges must not both shed where one sufficed. Shedders do
  // disk I/O (spilling) under this mutex — crossing the budget is allowed
  // to be slow; staying under it is free.
  std::mutex shed_mu_;
  std::vector<Shedder> shedders_[kChargeClassCount];
};

}  // namespace vulnds::store

#endif  // VULNDS_STORE_MEMORY_GOVERNOR_H_
