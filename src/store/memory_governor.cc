#include "store/memory_governor.h"

namespace vulnds::store {

const char* ChargeClassName(ChargeClass cls) {
  switch (cls) {
    case ChargeClass::kContext:
      return "context";
    case ChargeClass::kSnapshot:
      return "snapshot";
    case ChargeClass::kResult:
      return "result";
  }
  return "unknown";
}

MemoryGovernor::MemoryGovernor(const MemoryGovernorOptions& options)
    : budget_bytes_(options.budget_bytes) {}

void MemoryGovernor::RegisterShedder(ChargeClass cls, Shedder shedder) {
  std::lock_guard<std::mutex> lock(shed_mu_);
  shedders_[static_cast<int>(cls)].push_back(std::move(shedder));
}

void MemoryGovernor::Charge(ChargeClass cls, std::size_t bytes) {
  if (bytes == 0) return;
  charged_[static_cast<int>(cls)].fetch_add(bytes, std::memory_order_relaxed);
  MaybeShed();
}

void MemoryGovernor::Discharge(ChargeClass cls, std::size_t bytes) {
  if (bytes == 0) return;
  charged_[static_cast<int>(cls)].fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryGovernor::Recharge(ChargeClass cls, std::size_t old_bytes,
                              std::size_t new_bytes) {
  if (old_bytes == new_bytes) return;
  auto& charge = charged_[static_cast<int>(cls)];
  if (new_bytes > old_bytes) {
    charge.fetch_add(new_bytes - old_bytes, std::memory_order_relaxed);
    MaybeShed();
  } else {
    charge.fetch_sub(old_bytes - new_bytes, std::memory_order_relaxed);
  }
}

std::size_t MemoryGovernor::total_charged() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kChargeClassCount; ++i) {
    total += charged_[i].load(std::memory_order_relaxed);
  }
  return total;
}

void MemoryGovernor::MaybeShed() {
  if (budget_bytes_ == 0 || total_charged() <= budget_bytes_) return;
  std::lock_guard<std::mutex> lock(shed_mu_);
  // Re-check under the mutex: a concurrent shed may already have brought us
  // back under budget while we waited.
  while (true) {
    const std::size_t total = total_charged();
    if (total <= budget_bytes_) return;
    const std::size_t want = total - budget_bytes_;
    std::size_t freed = 0;
    for (std::size_t i = 0; i < kChargeClassCount && freed < want; ++i) {
      for (auto& shedder : shedders_[i]) {
        const std::size_t got = shedder(want - freed);
        if (got > 0) {
          freed += got;
          sheds_[i].fetch_add(1, std::memory_order_relaxed);
          shed_bytes_[i].fetch_add(got, std::memory_order_relaxed);
        }
        if (freed >= want) break;
      }
    }
    // No shedder made progress (everything pinned, or nothing registered):
    // accept running over budget rather than spinning.
    if (freed == 0) return;
  }
}

}  // namespace vulnds::store
