#include "vulnds/sample_size.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vulnds {

double PairMisorderBound(std::size_t t, double eps) {
  return std::exp(-static_cast<double>(t) * eps * eps / 2.0);
}

namespace {

std::size_t SizeFromPairCount(double eps, double delta, double pairs) {
  assert(eps > 0.0 && eps < 1.0);
  assert(delta > 0.0 && delta < 1.0);
  if (pairs <= 0.0) return 0;
  const double t = 2.0 / (eps * eps) * std::log(pairs / delta);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(t)));
}

}  // namespace

std::size_t BasicSampleSize(double eps, double delta, std::size_t k, std::size_t n) {
  const double pairs =
      static_cast<double>(k) * (static_cast<double>(n) - static_cast<double>(k));
  return SizeFromPairCount(eps, delta, pairs);
}

std::size_t ReducedSampleSize(double eps, double delta, std::size_t k,
                              std::size_t k_verified, std::size_t candidate_count) {
  if (k_verified >= k) return 0;
  const double rem = static_cast<double>(k - k_verified);
  const double others = static_cast<double>(candidate_count) - rem;
  return SizeFromPairCount(eps, delta, rem * others);
}

}  // namespace vulnds
