// Algorithm 5: reverse sampling over the transposed graph.
//
// Instead of materializing a whole world forward, each candidate runs a
// reverse BFS asking "can a self-defaulted node reach me through surviving
// edges?". Coin flips for nodes (self-risk) and edges (diffusion) are
// memoized per sample, so every candidate observes the same world and the
// per-sample work is proportional to the explored region, not the graph.
//
// Worlds are *pure functions* of (seed, sample index, entity id): an
// entity's coin is the hash of its id under the world seed. The world a
// sampler observes therefore does not depend on traversal order, which lets
// tests verify that reverse evaluation equals forward evaluation of the
// identical world (tests/vulnds/reverse_sampler_test.cc).
//
// Two forms of per-sample caching are applied, both conclusions that follow
// deterministically from the coins (they change cost, never results):
//  * a node whose self-risk coin came up "default" is recorded as defaulted
//    (the paper's line 13);
//  * when a candidate's BFS exhausts without finding a default, every node
//    it fully explored is recorded as non-defaulted — any later traversal
//    entering that region can stop immediately, since reverse-reachability
//    is transitive. This generalizes the paper's line-7 reuse of h-values.

#ifndef VULNDS_VULNDS_REVERSE_SAMPLER_H_
#define VULNDS_VULNDS_REVERSE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "graph/uncertain_graph.h"
#include "simd/coin_kernels.h"
#include "vulnds/coin_columns.h"

namespace vulnds {

/// Seed identifying the world of sample `sample_index` under run seed `seed`.
uint64_t WorldSeed(uint64_t seed, uint64_t sample_index);

/// True iff node v self-defaults in the world (pure in its arguments).
bool WorldNodeSelfDefaults(uint64_t world_seed, NodeId v, double self_risk);

/// True iff edge e survives in the world (pure in its arguments).
bool WorldEdgeSurvives(uint64_t world_seed, EdgeId e, double prob);

/// Evaluates candidate default indicators world-by-world. One instance per
/// thread; reusable across samples.
///
/// Coins run through the batched kernel layer (simd/coin_kernels.h): the
/// whole in-arc run of a BFS node is tested per iteration against the
/// precomputed CoinColumns, survivors pushed in ascending arc order, so the
/// visitation order — and every result — is bit-identical to the scalar
/// WorldEdgeSurvives loop for every tier.
class ReverseSampler {
 public:
  /// Prepares a sampler for the given candidate set (node ids into `graph`).
  /// `columns` must be the graph's columns when supplied (worker samplers
  /// share the run's instance); passing nullptr uses the graph's cached
  /// CoinColumns::Shared. `tier` picks the kernel implementation —
  /// execution-only, results are identical.
  ReverseSampler(const UncertainGraph& graph, std::vector<NodeId> candidates,
                 const CoinColumns* columns = nullptr,
                 simd::SimdTier tier = simd::DefaultTier());

  /// The candidate set, in the order `defaulted` entries are reported.
  const std::vector<NodeId>& candidates() const { return candidates_; }

  /// Evaluates all candidates in the world identified by `world_seed`.
  /// Writes one flag per candidate into `defaulted` (resized to the
  /// candidate count) and returns the number of node expansions performed.
  std::size_t SampleWorld(uint64_t world_seed, std::vector<char>* defaulted);

  /// Kernel telemetry accumulated across every SampleWorld call so far.
  const simd::CoinKernelStats& coin_stats() const { return coin_stats_; }

 private:
  enum class Conclusion : char { kUnknown = 0, kDefaulted, kSafe };

  // Evaluates one candidate in the current sample; assumes stamps are set.
  bool EvaluateCandidate(NodeId v, std::size_t* touched);

  bool NodeSelfDefaults(NodeId v);
  Conclusion GetConclusion(NodeId v) const;
  void SetConclusion(NodeId v, Conclusion c);

  const UncertainGraph& graph_;
  std::vector<NodeId> candidates_;
  // Keeps the graph's shared columns alive when none were passed in.
  std::shared_ptr<const CoinColumns> owned_columns_;
  const CoinColumns* columns_;
  simd::SimdTier tier_;

  uint64_t edge_seed_ = 0;     // world_seed_ ^ kEdgeSalt, set per world
  uint64_t node_seed_ = 0;     // world_seed_ ^ kNodeSalt, set per world
  uint64_t sample_stamp_ = 0;  // bumped per SampleWorld
  uint64_t visit_stamp_ = 0;   // bumped per candidate BFS

  std::vector<uint64_t> conclusion_stamp_;
  std::vector<char> conclusion_;
  std::vector<uint64_t> visited_stamp_;
  std::vector<NodeId> queue_;
  std::vector<NodeId> explored_;
  std::vector<uint32_t> survivor_scratch_;
  simd::CoinKernelStats coin_stats_;
};

/// Aggregate estimates from `t` reverse samples.
struct ReverseSampleStats {
  std::vector<double> estimates;  ///< p̂(v) per candidate (candidate order)
  std::size_t samples = 0;
  std::size_t nodes_touched = 0;
  /// Kernel telemetry (batched vs tail coin evaluations). Like
  /// nodes_touched it measures cost, not answers: totals vary with the
  /// simd tier, never the estimates.
  simd::CoinKernelStats coin_stats;
};

/// Runs Algorithm 5 for `t` samples; parallel over samples when `pool` is
/// provided (deterministic: worlds are indexed, partial counts are reduced
/// in worker order). `columns` may carry the graph's columns when the caller
/// already holds them; nullptr uses the graph's cached CoinColumns::Shared.
/// `tier` is execution-only: results are bit-identical for every tier.
ReverseSampleStats RunReverseSampling(const UncertainGraph& graph,
                                      const std::vector<NodeId>& candidates,
                                      std::size_t t, uint64_t seed,
                                      ThreadPool* pool = nullptr,
                                      const CoinColumns* columns = nullptr,
                                      simd::SimdTier tier = simd::DefaultTier());

}  // namespace vulnds

#endif  // VULNDS_VULNDS_REVERSE_SAMPLER_H_
