// Algorithm 5: reverse sampling over the transposed graph.
//
// Instead of materializing a whole world forward, each candidate runs a
// reverse BFS asking "can a self-defaulted node reach me through surviving
// edges?". Coin flips for nodes (self-risk) and edges (diffusion) are
// memoized per sample, so every candidate observes the same world and the
// per-sample work is proportional to the explored region, not the graph.
//
// Worlds are *pure functions* of (seed, sample index, entity id): an
// entity's coin is the hash of its id under the world seed. The world a
// sampler observes therefore does not depend on traversal order, which lets
// tests verify that reverse evaluation equals forward evaluation of the
// identical world (tests/vulnds/reverse_sampler_test.cc).
//
// Two forms of per-sample caching are applied, both conclusions that follow
// deterministically from the coins (they change cost, never results):
//  * a node whose self-risk coin came up "default" is recorded as defaulted
//    (the paper's line 13);
//  * when a candidate's BFS exhausts without finding a default, every node
//    it fully explored is recorded as non-defaulted — any later traversal
//    entering that region can stop immediately, since reverse-reachability
//    is transitive. This generalizes the paper's line-7 reuse of h-values.

#ifndef VULNDS_VULNDS_REVERSE_SAMPLER_H_
#define VULNDS_VULNDS_REVERSE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Seed identifying the world of sample `sample_index` under run seed `seed`.
uint64_t WorldSeed(uint64_t seed, uint64_t sample_index);

/// True iff node v self-defaults in the world (pure in its arguments).
bool WorldNodeSelfDefaults(uint64_t world_seed, NodeId v, double self_risk);

/// True iff edge e survives in the world (pure in its arguments).
bool WorldEdgeSurvives(uint64_t world_seed, EdgeId e, double prob);

/// Evaluates candidate default indicators world-by-world. One instance per
/// thread; reusable across samples.
class ReverseSampler {
 public:
  /// Prepares a sampler for the given candidate set (node ids into `graph`).
  ReverseSampler(const UncertainGraph& graph, std::vector<NodeId> candidates);

  /// The candidate set, in the order `defaulted` entries are reported.
  const std::vector<NodeId>& candidates() const { return candidates_; }

  /// Evaluates all candidates in the world identified by `world_seed`.
  /// Writes one flag per candidate into `defaulted` (resized to the
  /// candidate count) and returns the number of node expansions performed.
  std::size_t SampleWorld(uint64_t world_seed, std::vector<char>* defaulted);

 private:
  enum class Conclusion : char { kUnknown = 0, kDefaulted, kSafe };

  // Evaluates one candidate in the current sample; assumes stamps are set.
  bool EvaluateCandidate(NodeId v, std::size_t* touched);

  bool EdgeSurvives(EdgeId e);
  bool NodeSelfDefaults(NodeId v);
  Conclusion GetConclusion(NodeId v) const;
  void SetConclusion(NodeId v, Conclusion c);

  const UncertainGraph& graph_;
  std::vector<NodeId> candidates_;

  uint64_t world_seed_ = 0;
  uint64_t sample_stamp_ = 0;  // bumped per SampleWorld
  uint64_t visit_stamp_ = 0;   // bumped per candidate BFS

  std::vector<uint64_t> conclusion_stamp_;
  std::vector<char> conclusion_;
  std::vector<uint64_t> visited_stamp_;
  std::vector<NodeId> queue_;
  std::vector<NodeId> explored_;
};

/// Aggregate estimates from `t` reverse samples.
struct ReverseSampleStats {
  std::vector<double> estimates;  ///< p̂(v) per candidate (candidate order)
  std::size_t samples = 0;
  std::size_t nodes_touched = 0;
};

/// Runs Algorithm 5 for `t` samples; parallel over samples when `pool` is
/// provided (deterministic: worlds are indexed, partial counts are reduced
/// in worker order).
ReverseSampleStats RunReverseSampling(const UncertainGraph& graph,
                                      const std::vector<NodeId>& candidates,
                                      std::size_t t, uint64_t seed,
                                      ThreadPool* pool = nullptr);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_REVERSE_SAMPLER_H_
