// Precomputed per-graph coin columns for the batched world kernels.
//
// A world coin (reverse_sampler.h) is `UniformHash(world_seed ^ salt)
// .HashUnit(id) < prob`. Both expensive halves are seed-independent and
// therefore per-graph constants:
//   * the inner hash round Mix64(id + C)            (simd::CoinInnerHash),
//   * the exact integer threshold of prob           (simd::CoinThreshold).
// CoinColumns materializes them once per graph in struct-of-arrays form so a
// per-world coin collapses to one Mix64 and one integer compare — and so the
// AVX2 tier can evaluate a whole adjacency run of in-edges per iteration.
//
// Layout. In-arc runs are stored in InArcs order but PADDED: node v's run
// starts at pad_offsets[v] and holds InDegree(v) real slots followed by
// alignment slots up to the next multiple of simd::kCoinLanes. Padding slots
// carry threshold 0, which no hash is ever below, so a kernel may evaluate
// them freely (CoinSurvivorsPadded does) without producing a survivor —
// worlds are pure, extra coins are free. The columns are immutable after
// Build and safe to share across worker samplers.
//
// Ownership. Shared() caches one instance in the graph's DerivedCache, so
// every query against the same resident graph amortizes the O(n + m) build —
// rebuilding per run is ~85us even on a 3k-edge graph, which dominates a
// warm sub-millisecond query. The footprint is a deterministic function of
// the graph's shape (EstimateBytes) and is included in the serving layer's
// EstimateGraphBytes, so the byte governor accounts for it up front.
//
// Density gate. Columns only pay when adjacency runs actually fill vector
// lanes: below an average in-degree of kCoinLanes the batched kernel is
// mostly evaluating padding, and the O(n + m) build (plus the per-commit
// carry-forward on dynamic graphs) costs more than it saves. Worthwhile()
// decides from the graph's shape alone — deterministic, so every layer
// (samplers, byte accounting, commit seeding) agrees — and samplers fall
// back to the direct per-arc coin evaluation, which is bit-identical by the
// kernel contract (coin_kernels.h): same inner hash, same exact threshold.

#ifndef VULNDS_VULNDS_COIN_COLUMNS_H_
#define VULNDS_VULNDS_COIN_COLUMNS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/uncertain_graph.h"

namespace vulnds {

struct CoinColumns {
  /// Start of node v's padded in-arc run; size n + 1 (the last entry is the
  /// padded column length). Run v holds InDegree(v) real slots.
  std::vector<std::size_t> pad_offsets;
  std::vector<uint64_t> edge_inner;      ///< Mix64(edge_id + C) per slot
  std::vector<uint64_t> edge_threshold;  ///< CoinThreshold(prob); 0 in pads
  std::vector<NodeId> edge_neighbor;     ///< in-neighbor u of the arc (u, v)
  std::vector<uint64_t> node_inner;      ///< Mix64(v + C), size n
  std::vector<uint64_t> node_threshold;  ///< CoinThreshold(self_risk(v))
  /// Longest padded run — the survivor-scratch capacity a sampler needs.
  std::size_t max_run = 0;

  /// True when the graph is dense enough (average in-degree >= kCoinLanes)
  /// for the padded columns to beat direct per-arc coin evaluation. A pure
  /// function of the graph's shape; samplers, the byte governor, and the
  /// dynamic-commit seeding all consult it so they stay in agreement.
  static bool Worthwhile(const UncertainGraph& graph);

  /// Builds the columns for `graph`; O(n + m) plus one CoinThreshold fixup
  /// per arc and node.
  static CoinColumns Build(const UncertainGraph& graph);

  /// The per-graph shared instance, built on first use and cached in the
  /// graph's DerivedCache (thread-safe; concurrent first callers wait for
  /// one build). The returned pointer keeps the columns alive even if the
  /// graph is destroyed mid-run.
  static std::shared_ptr<const CoinColumns> Shared(const UncertainGraph& graph);

  /// Builds columns for `graph` reusing `base_cols` (the columns of `base`,
  /// a previous version of the same graph whose edges with the sorted base
  /// ids `deleted` were removed, probabilities possibly patched, and new
  /// edges appended with ids >= the live base count — exactly the layout a
  /// dynamic-update commit produces). Inner hashes are pure in the numeric
  /// edge id and thresholds pure in the probability, so unchanged arcs are
  /// copied instead of rehashed; a remapped id recomputes only its Mix64, a
  /// changed probability only its threshold. Falls back to recomputing any
  /// arc it cannot match, so the result equals Build(graph) for ANY inputs —
  /// reuse changes cost, never content.
  static CoinColumns BuildFrom(const UncertainGraph& graph,
                               const UncertainGraph& base,
                               const CoinColumns& base_cols,
                               std::span<const EdgeId> deleted);

  /// Approximate resident bytes (vector payloads), for byte accounting.
  std::size_t ApproxBytes() const;

  /// What ApproxBytes will report once built — a deterministic function of
  /// the graph's shape, computable without building, so residency budgets
  /// can charge the columns alongside the graph itself.
  static std::size_t EstimateBytes(const UncertainGraph& graph);
};

}  // namespace vulnds

#endif  // VULNDS_VULNDS_COIN_COLUMNS_H_
