#include "vulnds/bounds.h"

#include <cmath>
#include <string>

namespace vulnds {

namespace {

// Change threshold below which a value counts as "not updated"; keeps the
// change-propagation sparse on converged regions.
constexpr double kChangeEps = 1e-12;

Status ValidateOrder(int order) {
  if (order < 1) {
    return Status::InvalidArgument("bound order must be >= 1, got " +
                                   std::to_string(order));
  }
  return Status::OK();
}

// Runs fn(v) for every node, on the pool when one is provided. Each call
// writes only node v's slots, so the parallel sweep is race-free and
// bit-identical to the serial order.
void SweepNodes(std::size_t n, ThreadPool* pool,
                const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(n, fn);
    return;
  }
  for (std::size_t v = 0; v < n; ++v) fn(v);
}

// Runs iterations 2..order of either bound; `probs` holds the order-1
// values on entry and the order-z values on exit. The per-node update is a
// pure function of the previous iteration (Jacobi), so the sweep
// parallelizes over nodes; the `any`-changed flag is reduced serially in
// ascending node order afterwards, keeping the early-fixpoint exit on the
// same iteration for every thread count.
void IterateEquationOne(const UncertainGraph& graph, int order,
                        std::vector<double>* probs, ThreadPool* pool) {
  const std::size_t n = graph.num_nodes();
  std::vector<char> changed(n, 1);  // everything counts as updated at order 1
  std::vector<char> next_changed(n, 0);
  std::vector<double> next(n, 0.0);
  for (int i = 2; i <= order; ++i) {
    SweepNodes(n, pool, [&](std::size_t v) {
      bool in_changed = false;
      for (const Arc& arc : graph.InArcs(static_cast<NodeId>(v))) {
        if (changed[arc.neighbor]) {
          in_changed = true;
          break;
        }
      }
      if (!in_changed) {
        next[v] = (*probs)[v];
        next_changed[v] = 0;
        return;
      }
      const double updated =
          EquationOne(graph, static_cast<NodeId>(v), *probs);
      next_changed[v] = std::fabs(updated - (*probs)[v]) > kChangeEps ? 1 : 0;
      next[v] = updated;
    });
    bool any = false;
    for (std::size_t v = 0; v < n; ++v) any = any || next_changed[v];
    probs->swap(next);
    changed.swap(next_changed);
    if (!any) break;  // fixpoint reached before the requested order
  }
}

}  // namespace

double EquationOne(const UncertainGraph& graph, NodeId v,
                   const std::vector<double>& probs) {
  double survive = 1.0;
  for (const Arc& arc : graph.InArcs(v)) {
    survive *= 1.0 - arc.prob * probs[arc.neighbor];
  }
  return 1.0 - (1.0 - graph.self_risk(v)) * survive;
}

Result<std::vector<double>> LowerBounds(const UncertainGraph& graph, int order,
                                        ThreadPool* pool) {
  VULNDS_RETURN_NOT_OK(ValidateOrder(order));
  // Order 1 (Algorithm 2, lines 2-4): the self-risk alone.
  std::vector<double> probs(graph.self_risks().begin(), graph.self_risks().end());
  IterateEquationOne(graph, order, &probs, pool);
  return probs;
}

Result<std::vector<double>> UpperBounds(const UncertainGraph& graph, int order,
                                        ThreadPool* pool) {
  VULNDS_RETURN_NOT_OK(ValidateOrder(order));
  // Order 1 (Algorithm 3, lines 3-4): every in-neighbor treated as
  // defaulted with probability 1.
  const std::size_t n = graph.num_nodes();
  std::vector<double> probs(n, 0.0);
  SweepNodes(n, pool, [&](std::size_t v) {
    double survive = 1.0;
    for (const Arc& arc : graph.InArcs(static_cast<NodeId>(v))) {
      survive *= 1.0 - arc.prob;
    }
    probs[v] = 1.0 - (1.0 - graph.self_risk(static_cast<NodeId>(v))) * survive;
  });
  IterateEquationOne(graph, order, &probs, pool);
  return probs;
}

}  // namespace vulnds
