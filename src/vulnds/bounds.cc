#include "vulnds/bounds.h"

#include <cmath>
#include <string>

namespace vulnds {

namespace {

// Change threshold below which a value counts as "not updated"; keeps the
// change-propagation sparse on converged regions.
constexpr double kChangeEps = 1e-12;

Status ValidateOrder(int order) {
  if (order < 1) {
    return Status::InvalidArgument("bound order must be >= 1, got " +
                                   std::to_string(order));
  }
  return Status::OK();
}

// Runs iterations 2..order of either bound; `probs` holds the order-1
// values on entry and the order-z values on exit.
void IterateEquationOne(const UncertainGraph& graph, int order,
                        std::vector<double>* probs) {
  const std::size_t n = graph.num_nodes();
  std::vector<char> changed(n, 1);  // everything counts as updated at order 1
  std::vector<char> next_changed(n, 0);
  std::vector<double> next(n, 0.0);
  for (int i = 2; i <= order; ++i) {
    bool any = false;
    for (NodeId v = 0; v < n; ++v) {
      bool in_changed = false;
      for (const Arc& arc : graph.InArcs(v)) {
        if (changed[arc.neighbor]) {
          in_changed = true;
          break;
        }
      }
      if (!in_changed) {
        next[v] = (*probs)[v];
        next_changed[v] = 0;
        continue;
      }
      const double updated = EquationOne(graph, v, *probs);
      next_changed[v] = std::fabs(updated - (*probs)[v]) > kChangeEps ? 1 : 0;
      any = any || next_changed[v];
      next[v] = updated;
    }
    probs->swap(next);
    changed.swap(next_changed);
    if (!any) break;  // fixpoint reached before the requested order
  }
}

}  // namespace

double EquationOne(const UncertainGraph& graph, NodeId v,
                   const std::vector<double>& probs) {
  double survive = 1.0;
  for (const Arc& arc : graph.InArcs(v)) {
    survive *= 1.0 - arc.prob * probs[arc.neighbor];
  }
  return 1.0 - (1.0 - graph.self_risk(v)) * survive;
}

Result<std::vector<double>> LowerBounds(const UncertainGraph& graph, int order) {
  VULNDS_RETURN_NOT_OK(ValidateOrder(order));
  // Order 1 (Algorithm 2, lines 2-4): the self-risk alone.
  std::vector<double> probs(graph.self_risks().begin(), graph.self_risks().end());
  IterateEquationOne(graph, order, &probs);
  return probs;
}

Result<std::vector<double>> UpperBounds(const UncertainGraph& graph, int order) {
  VULNDS_RETURN_NOT_OK(ValidateOrder(order));
  // Order 1 (Algorithm 3, lines 3-4): every in-neighbor treated as
  // defaulted with probability 1.
  const std::size_t n = graph.num_nodes();
  std::vector<double> probs(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    double survive = 1.0;
    for (const Arc& arc : graph.InArcs(v)) {
      survive *= 1.0 - arc.prob;
    }
    probs[v] = 1.0 - (1.0 - graph.self_risk(v)) * survive;
  }
  IterateEquationOne(graph, order, &probs);
  return probs;
}

}  // namespace vulnds
