// TopKDetector: the unified facade over the five methods the paper
// evaluates (§4.1): N, SN, SR, BSR and BSRBK.
//
//   N      Algorithm 1 with a fixed sample size.
//   SN     Algorithm 1 with the (eps, delta) sample size of Equation 3.
//   SR     reverse sampling (Algorithm 5) over the candidate set obtained
//          from rule 2 of Lemma 1 only; sample size from Equation 3.
//   BSR    bounds + full candidate reduction (verify k', prune to B) +
//          reverse sampling with the reduced size of Equation 4.
//   BSRBK  BSR with the bottom-k early-stopping condition (Theorem 6).

#ifndef VULNDS_VULNDS_DETECTOR_H_
#define VULNDS_VULNDS_DETECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/uncertain_graph.h"
#include "obs/query_trace.h"
#include "simd/dispatch.h"
#include "vulnds/bsrbk.h"
#include "vulnds/candidate_reduction.h"

namespace vulnds {

/// The five evaluated methods.
enum class Method {
  kNaive = 0,       ///< N
  kSampleNaive,     ///< SN
  kSampleReverse,   ///< SR
  kBsr,             ///< BSR
  kBsrbk,           ///< BSRBK
};

/// All methods in the paper's legend order.
const std::vector<Method>& AllMethods();

/// Printable method name ("N", "SN", "SR", "BSR", "BSRBK").
std::string MethodName(Method method);

/// Detector configuration; the defaults are the paper's experiment settings
/// (eps = 0.3, delta = 0.1, bound order 2, bk = 16).
struct DetectorOptions {
  Method method = Method::kBsrbk;
  std::size_t k = 1;                 ///< how many vulnerable nodes to return
  double eps = 0.3;                  ///< (eps, delta)-approximation epsilon
  double delta = 0.1;                ///< (eps, delta)-approximation delta
  std::size_t naive_samples = 10000; ///< fixed sample size of method N
  int bound_order = 2;               ///< z of Algorithms 2 and 3
  int bk = 16;                       ///< bottom-k parameter of BSRBK
  uint64_t seed = 42;                ///< RNG seed (worlds and hashes)
  ThreadPool* pool = nullptr;        ///< optional sampling parallelism
  /// Requested sampling parallelism for transports that construct the pool
  /// on the caller's behalf (serve protocol / CLI `threads=`): 0 means "the
  /// session default". DetectTopK itself only consumes `pool`; results are
  /// bit-identical for every thread count, so neither field is part of a
  /// query's identity (CanonicalizeOptions clears both).
  std::size_t threads = 0;
  /// BSRBK wave schedule (serve protocol / CLI `wave=adaptive|fixed:N`).
  /// Execution-only like `threads`: every schedule folds the identical
  /// hash-order stream, so results are bit-identical and CanonicalizeOptions
  /// clears both fields out of the result-cache key.
  WaveMode wave_mode = WaveMode::kAdaptive;
  std::size_t wave_size = 0;  ///< fixed-mode worlds per wave (0 = auto)
  /// Kernel tier request (serve protocol / CLI `simd=auto|avx2|scalar`).
  /// Execution-only like `threads` and `wave`: every tier computes
  /// bit-identical results (simd/coin_kernels.h contract), kAuto defers to
  /// the process default (VULNDS_SIMD env, else CPUID), and an unavailable
  /// tier degrades to scalar. CanonicalizeOptions clears it out of the
  /// result-cache key.
  simd::SimdMode simd_mode = simd::SimdMode::kAuto;
  /// Optional observability span: when set, DetectTopK records one stage
  /// per pipeline phase (bounds, reduce, sampling) and the bottom-k runner
  /// publishes its wave detail onto it. Execution-only like `pool`: never
  /// part of a query's identity (CanonicalizeOptions clears it).
  obs::QueryTrace* trace = nullptr;
};

/// Outcome of a detection run.
struct DetectionResult {
  /// The k selected nodes, strongest first (verified nodes precede sampled
  /// ones; within each group ordered by decreasing score).
  std::vector<NodeId> topk;
  /// Score aligned with `topk`: sampled estimate for sampled nodes, the
  /// lower bound for nodes verified without sampling.
  std::vector<double> scores;

  std::size_t samples_budget = 0;     ///< t given by the method's formula
  std::size_t samples_processed = 0;  ///< worlds actually materialized
  std::size_t verified_count = 0;     ///< k' (BSR/BSRBK only)
  std::size_t candidate_count = 0;    ///< |B| (SR/BSR/BSRBK only)
  std::size_t nodes_touched = 0;      ///< total BFS expansions
  bool early_stopped = false;         ///< BSRBK stop condition fired

  /// Wave-schedule telemetry of the BSRBK sampling stage (0 for the other
  /// methods and for serial runs). Unlike every field above, these vary
  /// with pool width and wave plan — they measure the schedule, not the
  /// answer — so they are never part of response payloads compared across
  /// thread counts.
  std::size_t worlds_wasted = 0;  ///< worlds materialized past the stop
  std::size_t waves_issued = 0;   ///< parallel waves dispatched

  /// Coin-kernel telemetry of the sampling stage (SR/BSR/BSRBK): coin slots
  /// evaluated in full vector lanes vs one at a time. Varies with the simd
  /// tier (and, through wasted worlds, the schedule) exactly like the wave
  /// telemetry above — cost measurements, never part of response payloads.
  std::uint64_t simd_batched_coins = 0;
  std::uint64_t simd_tail_coins = 0;
};

/// Reusable per-graph derived state for repeated detections on the SAME
/// graph (the serving layer keeps one per catalog entry). Caches the
/// deterministic intermediates that dominate query setup:
///   * order-z lower/upper bounds (keyed by bound order),
///   * Algorithm 4 candidate reductions (keyed by bound order and k),
///   * bottom-k sample processing orders (keyed by seed and budget t).
/// Every cached value is a pure function of (graph, key), so results with a
/// warm context are bit-identical to a cold run. Not thread-safe; guard
/// externally when sharing across requests.
struct DetectionContext {
  std::map<int, std::vector<double>> lower_bounds;
  std::map<int, std::vector<double>> upper_bounds;
  std::map<std::pair<int, std::size_t>, CandidateReduction> reductions;
  std::map<std::pair<uint64_t, std::size_t>, BottomKSampleOrder> sample_orders;

  std::size_t reuse_hits = 0;    ///< cached intermediates served
  std::size_t reuse_misses = 0;  ///< intermediates computed and stored

  /// Copies the intermediates that do NOT depend on the graph from `other`
  /// into this context: bottom-k sample orders are pure in (seed, budget),
  /// so they stay bit-identical across graph mutations. Bounds and
  /// candidate reductions are functions of the graph and are deliberately
  /// left cold. Used by the dynamic-update write path when a new graph
  /// version inherits state from its predecessor. Returns the number of
  /// entries copied (existing keys are kept, not overwritten).
  std::size_t AdoptGraphIndependent(const DetectionContext& other);

  /// Approximate resident bytes of the cached intermediates (vector
  /// payloads plus per-entry map overhead). The serving layer charges this
  /// against hot-graph residency reporting: a catalog entry's byte estimate
  /// covers the immutable graph only, while the context grows with query
  /// traffic — this is the growing half. Deterministic in the cached keys,
  /// so tests can pin its behavior.
  std::size_t ApproxBytes() const;
};

/// The hard cap on DetectorOptions::threads: a transport-facing sanity bound
/// so a hostile `threads=` request cannot make the serving process spawn an
/// unbounded number of OS threads. Kept at or below the serve engine's
/// per-engine pool budget so every value that validates can actually be
/// honored by a fresh engine.
inline constexpr std::size_t kMaxDetectThreads = 64;

/// Validates `options` against `graph` without running anything: k in
/// [1, n], eps/delta finite and in (0, 1) — NaN is rejected, not merely not
/// accepted — bound_order >= 1, bk >= 3, threads <= kMaxDetectThreads.
/// DetectTopK performs the same check; callers that cache results by
/// options should validate before consulting their cache so invalid
/// requests fail identically warm or cold.
Status ValidateDetectorOptions(const UncertainGraph& graph,
                               const DetectorOptions& options);

/// Runs the configured method on `graph`. Fails on invalid k / parameters.
Result<DetectionResult> DetectTopK(const UncertainGraph& graph,
                                   const DetectorOptions& options);

/// Same, reusing (and filling) `context` for the deterministic per-graph
/// intermediates. `context` must only ever be used with this graph. Passing
/// nullptr behaves like the two-argument overload.
Result<DetectionResult> DetectTopK(const UncertainGraph& graph,
                                   const DetectorOptions& options,
                                   DetectionContext* context);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_DETECTOR_H_
