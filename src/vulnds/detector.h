// TopKDetector: the unified facade over the five methods the paper
// evaluates (§4.1): N, SN, SR, BSR and BSRBK.
//
//   N      Algorithm 1 with a fixed sample size.
//   SN     Algorithm 1 with the (eps, delta) sample size of Equation 3.
//   SR     reverse sampling (Algorithm 5) over the candidate set obtained
//          from rule 2 of Lemma 1 only; sample size from Equation 3.
//   BSR    bounds + full candidate reduction (verify k', prune to B) +
//          reverse sampling with the reduced size of Equation 4.
//   BSRBK  BSR with the bottom-k early-stopping condition (Theorem 6).

#ifndef VULNDS_VULNDS_DETECTOR_H_
#define VULNDS_VULNDS_DETECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// The five evaluated methods.
enum class Method {
  kNaive = 0,       ///< N
  kSampleNaive,     ///< SN
  kSampleReverse,   ///< SR
  kBsr,             ///< BSR
  kBsrbk,           ///< BSRBK
};

/// All methods in the paper's legend order.
const std::vector<Method>& AllMethods();

/// Printable method name ("N", "SN", "SR", "BSR", "BSRBK").
std::string MethodName(Method method);

/// Detector configuration; the defaults are the paper's experiment settings
/// (eps = 0.3, delta = 0.1, bound order 2, bk = 16).
struct DetectorOptions {
  Method method = Method::kBsrbk;
  std::size_t k = 1;                 ///< how many vulnerable nodes to return
  double eps = 0.3;                  ///< (eps, delta)-approximation epsilon
  double delta = 0.1;                ///< (eps, delta)-approximation delta
  std::size_t naive_samples = 10000; ///< fixed sample size of method N
  int bound_order = 2;               ///< z of Algorithms 2 and 3
  int bk = 16;                       ///< bottom-k parameter of BSRBK
  uint64_t seed = 42;                ///< RNG seed (worlds and hashes)
  ThreadPool* pool = nullptr;        ///< optional sampling parallelism
};

/// Outcome of a detection run.
struct DetectionResult {
  /// The k selected nodes, strongest first (verified nodes precede sampled
  /// ones; within each group ordered by decreasing score).
  std::vector<NodeId> topk;
  /// Score aligned with `topk`: sampled estimate for sampled nodes, the
  /// lower bound for nodes verified without sampling.
  std::vector<double> scores;

  std::size_t samples_budget = 0;     ///< t given by the method's formula
  std::size_t samples_processed = 0;  ///< worlds actually materialized
  std::size_t verified_count = 0;     ///< k' (BSR/BSRBK only)
  std::size_t candidate_count = 0;    ///< |B| (SR/BSR/BSRBK only)
  std::size_t nodes_touched = 0;      ///< total BFS expansions
  bool early_stopped = false;         ///< BSRBK stop condition fired
};

/// Runs the configured method on `graph`. Fails on invalid k / parameters.
Result<DetectionResult> DetectTopK(const UncertainGraph& graph,
                                   const DetectorOptions& options);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_DETECTOR_H_
