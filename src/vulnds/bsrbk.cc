#include "vulnds/bsrbk.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/hash.h"
#include "common/rng.h"
#include "vulnds/reverse_sampler.h"

namespace vulnds {

namespace {
constexpr uint64_t kSampleHashSalt = 0x27220A95FE1D83D5ULL;
}  // namespace

BottomKSampleOrder MakeBottomKSampleOrder(uint64_t seed, std::size_t t) {
  BottomKSampleOrder out;
  const UniformHash sample_hash(Mix64(seed ^ kSampleHashSalt));
  out.order.resize(t);
  std::iota(out.order.begin(), out.order.end(), 0);
  out.hash_of.resize(t);
  for (std::size_t i = 0; i < t; ++i) out.hash_of[i] = sample_hash.HashUnit(i);
  std::sort(out.order.begin(), out.order.end(), [&](uint32_t a, uint32_t b) {
    return out.hash_of[a] < out.hash_of[b];
  });
  return out;
}

Result<BottomKRunStats> RunBottomKSampling(const UncertainGraph& graph,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t t, std::size_t needed,
                                           int bk, uint64_t seed,
                                           const BottomKSampleOrder* precomputed) {
  if (bk < 3) {
    return Status::InvalidArgument("bk must be >= 3, got " + std::to_string(bk));
  }
  if (needed == 0) {
    return Status::InvalidArgument("needed must be >= 1");
  }
  BottomKRunStats stats;
  stats.total_samples = t;
  stats.estimates.assign(candidates.size(), 0.0);
  stats.reached_bk.assign(candidates.size(), 0);
  if (t == 0 || candidates.empty()) return stats;
  needed = std::min(needed, candidates.size());

  // Hash every sample id without materializing the worlds (O(t)), then
  // process in ascending hash order. A caller that issues many queries with
  // the same (seed, t) passes the order in precomputed once.
  BottomKSampleOrder local;
  if (precomputed == nullptr) {
    local = MakeBottomKSampleOrder(seed, t);
    precomputed = &local;
  } else if (precomputed->order.size() != t || precomputed->hash_of.size() != t) {
    return Status::InvalidArgument("precomputed sample order size mismatch");
  }
  const std::vector<uint32_t>& order = precomputed->order;
  const std::vector<double>& hash_of = precomputed->hash_of;

  ReverseSampler sampler(graph, candidates);
  std::vector<uint32_t> counts(candidates.size(), 0);
  std::vector<double> kth_hash(candidates.size(), 0.0);
  std::vector<char> defaulted;
  std::size_t reached = 0;

  for (std::size_t pos = 0; pos < t; ++pos) {
    const uint32_t sample_id = order[pos];
    stats.nodes_touched += sampler.SampleWorld(WorldSeed(seed, sample_id), &defaulted);
    ++stats.samples_processed;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (!defaulted[c] || stats.reached_bk[c]) continue;
      if (++counts[c] == static_cast<uint32_t>(bk)) {
        stats.reached_bk[c] = 1;
        kth_hash[c] = hash_of[sample_id];
        ++reached;
      }
    }
    if (reached >= needed) {
      stats.early_stopped = true;
      break;
    }
  }

  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (stats.reached_bk[c]) {
      // Raw sketch estimate, deliberately NOT clamped to 1: the ordering of
      // Theorem 6 is "smaller L(A, bk) first", and clamping would collapse
      // every strong candidate into a tie. Callers clamp for reporting.
      stats.estimates[c] =
          static_cast<double>(bk - 1) / (kth_hash[c] * static_cast<double>(t));
    } else {
      stats.estimates[c] = static_cast<double>(counts[c]) /
                           static_cast<double>(stats.samples_processed);
    }
  }
  return stats;
}

}  // namespace vulnds
