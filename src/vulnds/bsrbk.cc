#include "vulnds/bsrbk.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <string>

#include "common/hash.h"
#include "common/rng.h"
#include "vulnds/coin_columns.h"
#include "vulnds/reverse_sampler.h"

namespace vulnds {

namespace {

constexpr uint64_t kSampleHashSalt = 0x27220A95FE1D83D5ULL;

// Worlds materialized per worker per wave (the fixed schedule's width and
// the adaptive schedule's ramp ceiling). Larger waves amortize the
// ParallelFor synchronization; smaller waves bound the work wasted past the
// early-stop position (at most one wave). The value never affects results,
// only cost — the fold below is position-by-position in hash order.
constexpr std::size_t kWaveWorldsPerWorker = 32;

// The adaptive schedule's default geometric growth factor between waves.
constexpr std::size_t kDefaultRamp = 2;

// Memory guardrails for the parallel path; neither changes results (worker
// count and wave schedule are execution knobs only — property-tested), they
// only keep a wide pool on a huge graph from ballooning the process.
// Each ReverseSampler holds ~25 bytes per graph node (three per-node
// arrays plus two reserved queues); each wave slot holds one bitmap of
// |candidates| bytes.
constexpr std::size_t kMaxSamplerBytes = std::size_t{512} << 20;
constexpr std::size_t kMaxWaveBytes = std::size_t{64} << 20;
constexpr std::size_t kSamplerBytesPerNode = 25;

// Sentinel for "no candidate trajectory supports a stop estimate yet".
constexpr std::size_t kUnknownDistance = std::numeric_limits<std::size_t>::max();

// Publishes the run's wave-level detail onto the query's trace span. The
// early-stop position is the count of worlds folded — the hash-order prefix
// length the estimates are based on.
void ExportTraceDetail(const BottomKRunStats& stats, obs::QueryTrace* trace) {
  if (trace == nullptr) return;
  trace->waves_issued = stats.waves_issued;
  trace->worlds_wasted = stats.worlds_wasted;
  trace->early_stop_position = stats.samples_processed;
  trace->early_stopped = stats.early_stopped;
}

// The serial count-folding state of the bottom-k run. Folding sample
// `order[pos]` is the only place counters, kth_hash and the stop decision
// are touched, so both the serial loop and the wave-parallel path fold
// through this one code path and stay bit-identical by construction.
class BottomKFolder {
 public:
  BottomKFolder(std::size_t num_candidates, std::size_t needed, int bk,
                const std::vector<double>& hash_of, simd::SimdTier tier,
                BottomKRunStats* stats)
      : needed_(needed),
        bk_(static_cast<uint32_t>(bk)),
        tier_(tier),
        hash_of_(hash_of),
        stats_(stats),
        counts_(num_candidates, 0),
        kth_hash_(num_candidates, 0.0),
        active_scratch_(num_candidates) {}

  /// Folds one materialized world into the counters; returns true when the
  /// early-stop condition fired and no further position may be folded.
  bool Fold(uint32_t sample_id, const std::vector<char>& defaulted,
            std::size_t touched) {
    stats_->nodes_touched += touched;
    ++stats_->samples_processed;
    // The batched form of `if (!defaulted[c] || reached_bk[c]) continue`.
    // Snapshotting the active set up front is exact: folding candidate c can
    // only set reached_bk[c] for c itself, which the loop below re-checks
    // by construction (each c appears once, and was unreached when scanned).
    const std::size_t active = simd::FindActive(
        tier_, reinterpret_cast<const unsigned char*>(defaulted.data()),
        reinterpret_cast<const unsigned char*>(stats_->reached_bk.data()),
        counts_.size(), active_scratch_.data());
    for (std::size_t i = 0; i < active; ++i) {
      const std::size_t c = active_scratch_[i];
      if (++counts_[c] == bk_) {
        stats_->reached_bk[c] = 1;
        kth_hash_[c] = hash_of_[sample_id];
        ++reached_;
      }
    }
    if (reached_ >= needed_) {
      stats_->early_stopped = true;
      return true;
    }
    return false;
  }

  /// Estimates how many MORE hash-order positions must fold before the stop
  /// fires, or kUnknownDistance when no candidate supports an estimate yet.
  /// Per unreached candidate the projected distance is
  ///   (bk - count) / rate,   rate = max(prefix frequency, lower bound),
  /// and the stop needs the (needed - reached)-th fastest of them, so that
  /// order statistic is the estimate. A lower bound can only understate the
  /// true rate, so its projection only overstates the distance; the prefix
  /// frequency is noisy both ways, which is why the caller ramps instead of
  /// trusting a single early estimate. Pure in the fold state — identical
  /// at any given position for every thread count and schedule.
  std::size_t EstimateRemainingToStop(
      const std::vector<double>* lower, std::vector<double>* scratch) const {
    if (reached_ >= needed_) return 0;
    const std::size_t still_needed = needed_ - reached_;
    const double processed = static_cast<double>(stats_->samples_processed);
    scratch->clear();
    for (std::size_t c = 0; c < counts_.size(); ++c) {
      if (stats_->reached_bk[c]) continue;
      double rate = processed > 0.0
                        ? static_cast<double>(counts_[c]) / processed
                        : 0.0;
      if (lower != nullptr) rate = std::max(rate, (*lower)[c]);
      if (!(rate > 0.0)) continue;  // no signal for this candidate yet
      scratch->push_back(static_cast<double>(bk_ - counts_[c]) / rate);
    }
    if (scratch->size() < still_needed) return kUnknownDistance;
    std::nth_element(scratch->begin(), scratch->begin() + (still_needed - 1),
                     scratch->end());
    const double distance = std::ceil((*scratch)[still_needed - 1]);
    if (!(distance < static_cast<double>(kUnknownDistance))) {
      return kUnknownDistance;
    }
    return static_cast<std::size_t>(distance);
  }

  /// Writes the per-candidate estimates once folding is done.
  void FinishEstimates(std::size_t t) const {
    for (std::size_t c = 0; c < counts_.size(); ++c) {
      if (stats_->reached_bk[c]) {
        // Raw sketch estimate, deliberately NOT clamped to 1: the ordering
        // of Theorem 6 is "smaller L(A, bk) first", and clamping would
        // collapse every strong candidate into a tie. Callers clamp for
        // reporting.
        stats_->estimates[c] = static_cast<double>(bk_ - 1) /
                               (kth_hash_[c] * static_cast<double>(t));
      } else {
        stats_->estimates[c] = static_cast<double>(counts_[c]) /
                               static_cast<double>(stats_->samples_processed);
      }
    }
  }

 private:
  std::size_t needed_;
  uint32_t bk_;
  simd::SimdTier tier_;
  std::size_t reached_ = 0;
  const std::vector<double>& hash_of_;
  BottomKRunStats* stats_;
  std::vector<uint32_t> counts_;
  std::vector<double> kth_hash_;
  std::vector<uint32_t> active_scratch_;
};

}  // namespace

BottomKSampleOrder MakeBottomKSampleOrder(uint64_t seed, std::size_t t,
                                          simd::SimdTier tier) {
  BottomKSampleOrder out;
  const uint64_t sample_seed = Mix64(seed ^ kSampleHashSalt);
  out.order.resize(t);
  std::iota(out.order.begin(), out.order.end(), 0);
  // Batched Hash64 over the contiguous id range; the HashUnit conversion
  // (>> 11, + 0.5, * 2^-53) stays scalar — it is exact double arithmetic
  // either way, so hash_of is bit-identical to UniformHash::HashUnit for
  // every tier.
  std::vector<uint64_t> raw(t);
  simd::HashBatch(tier, sample_seed, 0, t, raw.data(), nullptr);
  out.hash_of.resize(t);
  for (std::size_t i = 0; i < t; ++i) {
    out.hash_of[i] =
        (static_cast<double>(raw[i] >> 11) + 0.5) * 0x1.0p-53;
  }
  std::sort(out.order.begin(), out.order.end(), [&](uint32_t a, uint32_t b) {
    return out.hash_of[a] < out.hash_of[b];
  });
  return out;
}

Result<BottomKRunStats> RunBottomKSampling(const UncertainGraph& graph,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t t, std::size_t needed,
                                           int bk, uint64_t seed,
                                           const BottomKSampleOrder* precomputed,
                                           ThreadPool* pool,
                                           std::size_t wave_size) {
  BottomKRunOptions run;
  run.precomputed = precomputed;
  run.pool = pool;
  run.wave.mode = WaveMode::kFixed;
  run.wave.fixed_size = wave_size;
  return RunBottomKSampling(graph, candidates, t, needed, bk, seed, run);
}

Result<BottomKRunStats> RunBottomKSampling(const UncertainGraph& graph,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t t, std::size_t needed,
                                           int bk, uint64_t seed,
                                           const BottomKRunOptions& run) {
  if (bk < 3) {
    return Status::InvalidArgument("bk must be >= 3, got " + std::to_string(bk));
  }
  if (needed == 0) {
    return Status::InvalidArgument("needed must be >= 1");
  }
  if (run.candidate_lower_bounds != nullptr &&
      run.candidate_lower_bounds->size() != candidates.size()) {
    return Status::InvalidArgument("candidate lower bounds size mismatch");
  }
  BottomKRunStats stats;
  stats.total_samples = t;
  stats.estimates.assign(candidates.size(), 0.0);
  stats.reached_bk.assign(candidates.size(), 0);
  if (t == 0 || candidates.empty()) {
    ExportTraceDetail(stats, run.trace);
    return stats;
  }
  needed = std::min(needed, candidates.size());

  // Hash every sample id without materializing the worlds (O(t)), then
  // process in ascending hash order. A caller that issues many queries with
  // the same (seed, t) passes the order in precomputed once.
  const BottomKSampleOrder* precomputed = run.precomputed;
  BottomKSampleOrder local;
  if (precomputed == nullptr) {
    local = MakeBottomKSampleOrder(seed, t, run.simd_tier);
    precomputed = &local;
  } else if (precomputed->order.size() != t || precomputed->hash_of.size() != t) {
    return Status::InvalidArgument("precomputed sample order size mismatch");
  }
  const std::vector<uint32_t>& order = precomputed->order;
  const std::vector<double>& hash_of = precomputed->hash_of;

  const simd::SimdTier tier = run.simd_tier;
  BottomKFolder folder(candidates.size(), needed, bk, hash_of, tier, &stats);

  // The graph's cached columns when the caller has none; every sampler
  // (serial or worker) reads the same immutable columns.
  const CoinColumns* columns = run.coin_columns;
  std::shared_ptr<const CoinColumns> shared_columns;
  if (columns == nullptr && CoinColumns::Worthwhile(graph)) {
    shared_columns = CoinColumns::Shared(graph);
    columns = shared_columns.get();
  }

  ThreadPool* pool = run.pool;
  std::size_t workers = pool == nullptr ? 1 : std::min(pool->num_threads(), t);
  const std::size_t per_sampler = kSamplerBytesPerNode * graph.num_nodes() + 1;
  workers = std::min(
      workers, std::max<std::size_t>(1, kMaxSamplerBytes / per_sampler));
  if (workers <= 1) {
    // The serial loop stops exactly at the stop position: zero waste, no
    // wave machinery (worlds_wasted == waves_issued == 0 by definition).
    ReverseSampler sampler(graph, candidates, columns, tier);
    std::vector<char> defaulted;
    for (std::size_t pos = 0; pos < t; ++pos) {
      const uint32_t sample_id = order[pos];
      const std::size_t touched =
          sampler.SampleWorld(WorldSeed(seed, sample_id), &defaulted);
      if (folder.Fold(sample_id, defaulted, touched)) break;
    }
    stats.coin_stats.Add(sampler.coin_stats());
    folder.FinishEstimates(t);
    ExportTraceDetail(stats, run.trace);
    return stats;
  }

  // Wave-parallel: materialize the bitmaps of the next wave of consecutive
  // hash-order positions in parallel (one persistent sampler per worker, a
  // contiguous slice of the wave each), then fold serially. SampleWorld's
  // memoization is per-world, so a world's bitmap and touch count are pure
  // in its seed — independent of which sampler materializes it and of what
  // that sampler processed before. The wave schedule below only decides how
  // far past the fold frontier to speculate; the fold itself never sees it.
  const std::size_t byte_cap = std::max(
      workers, kMaxWaveBytes / std::max<std::size_t>(1, candidates.size()));
  const std::size_t cap =
      std::max<std::size_t>(1,
                            std::min({workers * kWaveWorldsPerWorker, byte_cap,
                                      t}));
  const bool adaptive = run.wave.mode == WaveMode::kAdaptive;
  std::size_t fixed_size = run.wave.fixed_size;
  if (fixed_size == 0) fixed_size = workers * kWaveWorldsPerWorker;
  // A hostile fixed:N must not allocate N wave slots up front; the byte cap
  // and the budget bound the slot vector for every schedule.
  fixed_size = std::min({fixed_size, byte_cap, t});
  const std::size_t ramp = run.wave.ramp == 0 ? kDefaultRamp : run.wave.ramp;
  // Ramp state: grows geometrically regardless of what the estimate clamps
  // each issued wave to, so a transient underestimate (noisy early prefix
  // frequency) costs one small wave, not a permanently stalled ramp.
  std::size_t ramp_size = run.wave.probe_size == 0
                              ? workers
                              : std::min(run.wave.probe_size, cap);
  ramp_size = std::max<std::size_t>(1, std::min(ramp_size, cap));

  const std::size_t max_slots = adaptive ? cap : std::max(fixed_size, cap);
  std::vector<std::unique_ptr<ReverseSampler>> samplers;
  samplers.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    samplers.push_back(
        std::make_unique<ReverseSampler>(graph, candidates, columns, tier));
  }
  std::vector<std::vector<char>> wave_defaulted(max_slots);
  std::vector<std::size_t> wave_touched(max_slots, 0);
  std::vector<double> estimate_scratch;

  std::size_t wave_begin = 0;
  while (wave_begin < t) {
    std::size_t wave = fixed_size;
    if (adaptive) {
      wave = ramp_size;
      const std::size_t distance = folder.EstimateRemainingToStop(
          run.candidate_lower_bounds, &estimate_scratch);
      if (distance != kUnknownDistance) {
        // Clamp the wave to the projected distance-to-stop, but never below
        // one world per worker: a narrower wave idles workers without
        // saving any work that the stop would not already save.
        wave = std::min(wave, std::max(workers, distance));
      }
      ramp_size = std::min(cap, ramp_size * ramp);
    }
    const std::size_t count = std::min(wave, t - wave_begin);
    const std::size_t active = std::min(workers, count);
    const std::size_t chunk = (count + active - 1) / active;
    pool->ParallelFor(active, [&](std::size_t w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        wave_touched[i] = samplers[w]->SampleWorld(
            WorldSeed(seed, order[wave_begin + i]), &wave_defaulted[i]);
      }
    });
    ++stats.waves_issued;
    bool stop = false;
    std::size_t folded = 0;
    for (std::size_t i = 0; i < count && !stop; ++i) {
      stop = folder.Fold(order[wave_begin + i], wave_defaulted[i],
                         wave_touched[i]);
      ++folded;
    }
    if (stop) {
      stats.worlds_wasted += count - folded;
      break;
    }
    wave_begin += count;
  }
  // Worker-order sum, like nodes_touched: coin telemetry covers every
  // materialized world, wasted ones included (it measures cost).
  for (const auto& sampler : samplers) {
    stats.coin_stats.Add(sampler->coin_stats());
  }
  folder.FinishEstimates(t);
  ExportTraceDetail(stats, run.trace);
  return stats;
}

}  // namespace vulnds
