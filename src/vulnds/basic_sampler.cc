#include "vulnds/basic_sampler.h"

#include <algorithm>

namespace vulnds {

ForwardWorldSampler::ForwardWorldSampler(const UncertainGraph& graph)
    : graph_(graph) {
  queue_.reserve(graph.num_nodes());
}

std::size_t ForwardWorldSampler::SampleWorld(Rng& rng, std::vector<char>* defaulted) {
  const std::size_t n = graph_.num_nodes();
  defaulted->assign(n, 0);
  queue_.clear();

  // Lines 4-8: self-risk coin per node seeds the BFS frontier.
  for (NodeId v = 0; v < n; ++v) {
    if (rng.Bernoulli(graph_.self_risk(v))) {
      (*defaulted)[v] = 1;
      queue_.push_back(v);
    }
  }
  std::size_t touched = queue_.size();

  // Lines 10-19: propagate along out-edges; each edge's diffusion coin is
  // flipped at most once (its head is marked defaulted on success, and a
  // defaulted head is never re-tested for that edge because the BFS pops
  // each node once).
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId u = queue_[head];
    for (const Arc& arc : graph_.OutArcs(u)) {
      if ((*defaulted)[arc.neighbor]) continue;
      if (!rng.Bernoulli(arc.prob)) continue;
      (*defaulted)[arc.neighbor] = 1;
      queue_.push_back(arc.neighbor);
      ++touched;
    }
  }
  return touched;
}

namespace {

// Serial chunk: samples [begin, end) accumulated into counts/touched.
void RunChunk(const UncertainGraph& graph, const Rng& base, std::size_t begin,
              std::size_t end, std::vector<uint32_t>* counts, std::size_t* touched) {
  ForwardWorldSampler sampler(graph);
  std::vector<char> defaulted;
  for (std::size_t i = begin; i < end; ++i) {
    Rng rng = base.Fork(i);
    *touched += sampler.SampleWorld(rng, &defaulted);
    for (std::size_t v = 0; v < defaulted.size(); ++v) {
      (*counts)[v] += defaulted[v];
    }
  }
}

}  // namespace

BasicSampleStats RunBasicSampling(const UncertainGraph& graph, std::size_t t,
                                  uint64_t seed, ThreadPool* pool) {
  const std::size_t n = graph.num_nodes();
  BasicSampleStats stats;
  stats.samples = t;
  stats.estimates.assign(n, 0.0);
  if (t == 0 || n == 0) return stats;

  const Rng base(seed);
  std::vector<uint32_t> counts(n, 0);

  if (pool == nullptr || pool->num_threads() <= 1 || t < 16) {
    RunChunk(graph, base, 0, t, &counts, &stats.nodes_touched);
  } else {
    const std::size_t workers = std::min<std::size_t>(pool->num_threads(), t);
    std::vector<std::vector<uint32_t>> partial(workers,
                                               std::vector<uint32_t>(n, 0));
    std::vector<std::size_t> partial_touched(workers, 0);
    const std::size_t chunk = (t + workers - 1) / workers;
    pool->ParallelFor(workers, [&](std::size_t w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(t, begin + chunk);
      if (begin < end) {
        RunChunk(graph, base, begin, end, &partial[w], &partial_touched[w]);
      }
    });
    for (std::size_t w = 0; w < workers; ++w) {
      stats.nodes_touched += partial_touched[w];
      for (std::size_t v = 0; v < n; ++v) counts[v] += partial[w][v];
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    stats.estimates[v] = static_cast<double>(counts[v]) / static_cast<double>(t);
  }
  return stats;
}

}  // namespace vulnds
