// Precision@k: the effectiveness metric of Figures 4 and 7.

#ifndef VULNDS_VULNDS_PRECISION_H_
#define VULNDS_VULNDS_PRECISION_H_

#include <span>

#include "graph/uncertain_graph.h"

namespace vulnds {

/// |result ∩ truth| / |truth|; order inside the sets is irrelevant.
/// Returns 1.0 for an empty truth set (nothing to find).
double PrecisionAtK(std::span<const NodeId> result, std::span<const NodeId> truth);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_PRECISION_H_
