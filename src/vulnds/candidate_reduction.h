// Algorithm 4 / Lemma 1: candidate verification and pruning.
//
// With Tl / Tu the k-th largest lower / upper bound:
//   rule 1: pl(v) >= Tu  =>  v is certainly in the top-k (verified),
//   rule 2: pu(v) <  Tl  =>  v is certainly outside the top-k (pruned).
// The survivors form the candidate set B; the remaining problem is a
// top-(k - k') selection over B.

#ifndef VULNDS_VULNDS_CANDIDATE_REDUCTION_H_
#define VULNDS_VULNDS_CANDIDATE_REDUCTION_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Result of Algorithm 4.
struct CandidateReduction {
  std::vector<NodeId> verified;    ///< rule-1 nodes, by decreasing pl
  std::vector<NodeId> candidates;  ///< the set B, ascending node id
  double threshold_lower = 0.0;    ///< Tl, the k-th largest pl
  double threshold_upper = 0.0;    ///< Tu, the k-th largest pu

  /// k' in the paper.
  std::size_t num_verified() const { return verified.size(); }
};

/// Runs Algorithm 4 on the given bounds. Requires equally sized bound
/// vectors and 1 <= k <= n. Ties: if more than k nodes satisfy rule 1
/// (possible only when bounds tie exactly), the k with the largest pl
/// (then smallest id) are verified and the rest stay candidates, keeping
/// |verified| <= k.
Result<CandidateReduction> ReduceCandidates(std::span<const double> lower,
                                            std::span<const double> upper,
                                            std::size_t k);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_CANDIDATE_REDUCTION_H_
