// Algorithm 1: the basic forward Monte-Carlo sampler.
//
// One sample materializes a possible world lazily: every node flips its
// self-risk coin, then a forward BFS from the self-defaulted seeds flips
// each encountered edge's diffusion coin once. A node's default indicator is
// accumulated over samples; the estimate p̂(v) = defaults(v) / t is unbiased.
//
// Sampling is embarrassingly parallel. Each sample i draws from an
// Rng forked at index i from the caller's seed, so results are identical
// for any thread count (including the serial path).

#ifndef VULNDS_VULNDS_BASIC_SAMPLER_H_
#define VULNDS_VULNDS_BASIC_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Output of a basic sampling run.
struct BasicSampleStats {
  std::vector<double> estimates;  ///< p̂(v) per node
  std::size_t samples = 0;        ///< number of worlds generated (t)
  std::size_t nodes_touched = 0;  ///< total BFS work, for cost accounting
};

/// Workspace for drawing single worlds with Algorithm 1's forward process.
/// Reusable across samples; not thread-safe (one instance per thread).
class ForwardWorldSampler {
 public:
  explicit ForwardWorldSampler(const UncertainGraph& graph);

  /// Draws one world with `rng` and marks each defaulted node in
  /// `defaulted` (resized to n). Returns the number of nodes touched.
  std::size_t SampleWorld(Rng& rng, std::vector<char>* defaulted);

 private:
  const UncertainGraph& graph_;
  std::vector<NodeId> queue_;
};

/// Runs Algorithm 1 with `t` samples. If `pool` is non-null the samples are
/// distributed across its workers (deterministically; see file comment).
BasicSampleStats RunBasicSampling(const UncertainGraph& graph, std::size_t t,
                                  uint64_t seed, ThreadPool* pool = nullptr);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_BASIC_SAMPLER_H_
