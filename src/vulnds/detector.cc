#include "vulnds/detector.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "vulnds/basic_sampler.h"
#include "vulnds/bounds.h"
#include "vulnds/bsrbk.h"
#include "vulnds/candidate_reduction.h"
#include "vulnds/reverse_sampler.h"
#include "vulnds/sample_size.h"
#include "vulnds/topk.h"

namespace vulnds {

const std::vector<Method>& AllMethods() {
  static const std::vector<Method> kMethods = {
      Method::kNaive, Method::kSampleNaive, Method::kSampleReverse, Method::kBsr,
      Method::kBsrbk};
  return kMethods;
}

std::string MethodName(Method method) {
  switch (method) {
    case Method::kNaive:
      return "N";
    case Method::kSampleNaive:
      return "SN";
    case Method::kSampleReverse:
      return "SR";
    case Method::kBsr:
      return "BSR";
    case Method::kBsrbk:
      return "BSRBK";
  }
  return "?";
}

Status ValidateDetectorOptions(const UncertainGraph& graph,
                               const DetectorOptions& o) {
  if (o.k == 0 || o.k > graph.num_nodes()) {
    return Status::InvalidArgument("k must be in [1, n], got " + std::to_string(o.k));
  }
  // The open-interval checks are phrased positively because every
  // comparison against NaN is false: `eps <= 0 || eps >= 1` would wave a
  // NaN through into the sample-size math, where casting it to size_t is
  // undefined behavior.
  if (!std::isfinite(o.eps) || !(o.eps > 0.0 && o.eps < 1.0)) {
    return Status::InvalidArgument("eps must be finite and in (0, 1)");
  }
  if (!std::isfinite(o.delta) || !(o.delta > 0.0 && o.delta < 1.0)) {
    return Status::InvalidArgument("delta must be finite and in (0, 1)");
  }
  if (o.bound_order < 1) {
    return Status::InvalidArgument("bound_order must be >= 1");
  }
  if (o.bk < 3) {
    return Status::InvalidArgument("bk must be >= 3");
  }
  if (o.threads > kMaxDetectThreads) {
    return Status::InvalidArgument("threads must be <= " +
                                   std::to_string(kMaxDetectThreads));
  }
  return Status::OK();
}

std::size_t DetectionContext::AdoptGraphIndependent(
    const DetectionContext& other) {
  std::size_t copied = 0;
  for (const auto& [key, order] : other.sample_orders) {
    copied += sample_orders.emplace(key, order).second ? 1 : 0;
  }
  return copied;
}

std::size_t DetectionContext::ApproxBytes() const {
  // Red-black tree nodes cost roughly three pointers + color + key/value
  // on top of each payload; an exact figure is allocator-specific and not
  // worth chasing for a residency report.
  constexpr std::size_t kMapNodeOverhead = 4 * sizeof(void*);
  std::size_t bytes = sizeof(DetectionContext);
  for (const auto& [order, values] : lower_bounds) {
    bytes += kMapNodeOverhead + values.capacity() * sizeof(double);
  }
  for (const auto& [order, values] : upper_bounds) {
    bytes += kMapNodeOverhead + values.capacity() * sizeof(double);
  }
  for (const auto& [key, reduction] : reductions) {
    bytes += kMapNodeOverhead + sizeof(CandidateReduction) +
             reduction.verified.capacity() * sizeof(NodeId) +
             reduction.candidates.capacity() * sizeof(NodeId);
  }
  for (const auto& [key, order] : sample_orders) {
    bytes += kMapNodeOverhead + sizeof(BottomKSampleOrder) +
             order.order.capacity() * sizeof(uint32_t) +
             order.hash_of.capacity() * sizeof(double);
  }
  return bytes;
}

namespace {

// N / SN: full-graph forward sampling, then a global top-k.
DetectionResult DetectByBasicSampling(const UncertainGraph& graph,
                                      const DetectorOptions& o, std::size_t t) {
  DetectionResult result;
  result.samples_budget = t;
  if (o.trace != nullptr) o.trace->BeginStage("sampling");
  const BasicSampleStats stats = RunBasicSampling(graph, t, o.seed, o.pool);
  if (o.trace != nullptr) o.trace->EndStage();
  result.samples_processed = stats.samples;
  result.nodes_touched = stats.nodes_touched;
  result.topk = TopKByScore(stats.estimates, o.k);
  result.scores.reserve(result.topk.size());
  for (const NodeId v : result.topk) result.scores.push_back(stats.estimates[v]);
  return result;
}

// Appends (node, score) pairs ordered by decreasing score, id tiebreak.
void AppendRanked(const std::vector<NodeId>& nodes, const std::vector<double>& score,
                  std::size_t limit, DetectionResult* result) {
  std::vector<std::size_t> idx(nodes.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return nodes[a] < nodes[b];
  });
  for (std::size_t i = 0; i < idx.size() && i < limit; ++i) {
    result->topk.push_back(nodes[idx[i]]);
    result->scores.push_back(score[idx[i]]);
  }
}

// Returns the order-z bounds, from `ctx` when warm. The returned pointers
// stay valid while `storage` / the context are alive (map nodes are stable).
Status GetBounds(const UncertainGraph& graph, const DetectorOptions& o,
                 DetectionContext* ctx,
                 std::pair<std::vector<double>, std::vector<double>>* storage,
                 const std::vector<double>** lower,
                 const std::vector<double>** upper) {
  if (ctx != nullptr) {
    const auto lo = ctx->lower_bounds.find(o.bound_order);
    const auto hi = ctx->upper_bounds.find(o.bound_order);
    if (lo != ctx->lower_bounds.end() && hi != ctx->upper_bounds.end()) {
      ++ctx->reuse_hits;
      *lower = &lo->second;
      *upper = &hi->second;
      return Status::OK();
    }
  }
  Result<std::vector<double>> lo = LowerBounds(graph, o.bound_order, o.pool);
  if (!lo.ok()) return lo.status();
  Result<std::vector<double>> hi = UpperBounds(graph, o.bound_order, o.pool);
  if (!hi.ok()) return hi.status();
  if (ctx != nullptr) {
    ++ctx->reuse_misses;
    *lower = &(ctx->lower_bounds[o.bound_order] = lo.MoveValue());
    *upper = &(ctx->upper_bounds[o.bound_order] = hi.MoveValue());
  } else {
    storage->first = lo.MoveValue();
    storage->second = hi.MoveValue();
    *lower = &storage->first;
    *upper = &storage->second;
  }
  return Status::OK();
}

}  // namespace

Result<DetectionResult> DetectTopK(const UncertainGraph& graph,
                                   const DetectorOptions& o) {
  return DetectTopK(graph, o, nullptr);
}

Result<DetectionResult> DetectTopK(const UncertainGraph& graph,
                                   const DetectorOptions& o,
                                   DetectionContext* ctx) {
  VULNDS_RETURN_NOT_OK(ValidateDetectorOptions(graph, o));
  const std::size_t n = graph.num_nodes();

  switch (o.method) {
    case Method::kNaive:
      return DetectByBasicSampling(graph, o, o.naive_samples);
    case Method::kSampleNaive:
      return DetectByBasicSampling(graph, o,
                                   BasicSampleSize(o.eps, o.delta, o.k, n));
    default:
      break;
  }

  // SR / BSR / BSRBK all start from the order-z bounds.
  // The kernel tier is resolved once per query from the request knob (kAuto
  // = process default). Coin columns are NOT resolved here: the sampling
  // runners pull the graph's cached CoinColumns::Shared and hand them to
  // every worker. They deliberately do not live in the warm
  // DetectionContext — they are graph-sized, so charging them to every
  // session's governed context bytes would overflow tight budgets with a
  // copy per session of what is one immutable per-graph structure; the
  // graph's derived cache holds the single copy, accounted once by
  // EstimateGraphBytes.
  const simd::SimdTier simd_tier = simd::ResolveTier(o.simd_mode);
  std::pair<std::vector<double>, std::vector<double>> bound_storage;
  const std::vector<double>* lower = nullptr;
  const std::vector<double>* upper = nullptr;
  if (o.trace != nullptr) o.trace->BeginStage("bounds");
  VULNDS_RETURN_NOT_OK(GetBounds(graph, o, ctx, &bound_storage, &lower, &upper));
  if (o.trace != nullptr) o.trace->EndStage();

  DetectionResult result;

  if (o.method == Method::kSampleReverse) {
    // Rule 2 of Lemma 1 only: prune nodes with pu(v) < Tl; no verification,
    // sample size still Equation 3.
    if (o.trace != nullptr) o.trace->BeginStage("reduce");
    const double tl = KthLargest(*lower, o.k);
    std::vector<NodeId> candidates;
    for (NodeId v = 0; v < n; ++v) {
      if ((*upper)[v] >= tl) candidates.push_back(v);
    }
    if (o.trace != nullptr) o.trace->EndStage();
    result.candidate_count = candidates.size();
    const std::size_t t = BasicSampleSize(o.eps, o.delta, o.k, n);
    result.samples_budget = t;
    if (o.trace != nullptr) o.trace->BeginStage("sampling");
    const ReverseSampleStats stats = RunReverseSampling(
        graph, candidates, t, o.seed, o.pool, nullptr, simd_tier);
    if (o.trace != nullptr) o.trace->EndStage();
    result.samples_processed = stats.samples;
    result.nodes_touched = stats.nodes_touched;
    result.simd_batched_coins = stats.coin_stats.batched_coins;
    result.simd_tail_coins = stats.coin_stats.tail_coins;
    AppendRanked(candidates, stats.estimates, o.k, &result);
    return result;
  }

  // BSR / BSRBK: full Algorithm 4 reduction, cached per (order, k).
  if (o.trace != nullptr) o.trace->BeginStage("reduce");
  const CandidateReduction* reduced = nullptr;
  CandidateReduction reduction_storage;
  const std::pair<int, std::size_t> reduction_key{o.bound_order, o.k};
  if (ctx != nullptr && ctx->reductions.count(reduction_key) != 0) {
    ++ctx->reuse_hits;
    reduced = &ctx->reductions.at(reduction_key);
  } else {
    Result<CandidateReduction> r = ReduceCandidates(*lower, *upper, o.k);
    if (!r.ok()) return r.status();
    if (ctx != nullptr) {
      ++ctx->reuse_misses;
      reduced = &(ctx->reductions[reduction_key] = r.MoveValue());
    } else {
      reduction_storage = r.MoveValue();
      reduced = &reduction_storage;
    }
  }
  if (o.trace != nullptr) o.trace->EndStage();
  result.verified_count = reduced->num_verified();
  result.candidate_count = reduced->candidates.size();

  // Verified nodes enter the result immediately, scored by their lower
  // bound (they were never sampled).
  for (const NodeId v : reduced->verified) {
    result.topk.push_back(v);
    result.scores.push_back((*lower)[v]);
  }
  const std::size_t needed = o.k - reduced->num_verified();
  if (needed == 0) return result;

  if (reduced->candidates.size() <= needed) {
    // Every candidate is selected; no ordering problem remains.
    AppendRanked(reduced->candidates,
                 std::vector<double>(reduced->candidates.size(), 0.0), needed,
                 &result);
    // Score them by their lower bound for reporting.
    for (std::size_t i = result.topk.size() - reduced->candidates.size();
         i < result.topk.size(); ++i) {
      result.scores[i] = (*lower)[result.topk[i]];
    }
    return result;
  }

  const std::size_t t = ReducedSampleSize(o.eps, o.delta, o.k,
                                          reduced->num_verified(),
                                          reduced->candidates.size());
  result.samples_budget = t;

  if (o.method == Method::kBsr) {
    if (o.trace != nullptr) o.trace->BeginStage("sampling");
    const ReverseSampleStats stats = RunReverseSampling(
        graph, reduced->candidates, t, o.seed, o.pool, nullptr, simd_tier);
    if (o.trace != nullptr) o.trace->EndStage();
    result.samples_processed = stats.samples;
    result.nodes_touched = stats.nodes_touched;
    result.simd_batched_coins = stats.coin_stats.batched_coins;
    result.simd_tail_coins = stats.coin_stats.tail_coins;
    AppendRanked(reduced->candidates, stats.estimates, needed, &result);
    return result;
  }

  // BSRBK; the hash-sorted sample order is pure in (seed, t) and cached.
  // The order build (hash + sort over t ids) is charged to the sampling
  // stage: on a cold query it is real per-sample work.
  if (o.trace != nullptr) o.trace->BeginStage("sampling");
  const BottomKSampleOrder* order = nullptr;
  if (ctx != nullptr) {
    const std::pair<uint64_t, std::size_t> order_key{o.seed, t};
    const auto it = ctx->sample_orders.find(order_key);
    if (it != ctx->sample_orders.end()) {
      ++ctx->reuse_hits;
      order = &it->second;
    } else {
      ++ctx->reuse_misses;
      order = &(ctx->sample_orders[order_key] =
                    MakeBottomKSampleOrder(o.seed, t, simd_tier));
    }
  }
  BottomKRunOptions exec;
  exec.precomputed = order;
  exec.pool = o.pool;
  exec.wave.mode = o.wave_mode;
  exec.wave.fixed_size = o.wave_size;
  exec.trace = o.trace;
  exec.simd_tier = simd_tier;
  // The adaptive scheduler's analytic floor: each candidate defaults at
  // least as often as its lower bound says, so the bound sharpens the
  // stop-distance estimate before any counts accumulate. Aligned with the
  // candidate set; execution-only (the bounds already shaped the candidate
  // set above — here they only steer wave sizing).
  std::vector<double> candidate_lower;
  if (o.wave_mode == WaveMode::kAdaptive) {
    candidate_lower.reserve(reduced->candidates.size());
    for (const NodeId v : reduced->candidates) {
      candidate_lower.push_back((*lower)[v]);
    }
    exec.candidate_lower_bounds = &candidate_lower;
  }
  Result<BottomKRunStats> run = RunBottomKSampling(
      graph, reduced->candidates, t, needed, o.bk, o.seed, exec);
  if (o.trace != nullptr) o.trace->EndStage();
  if (!run.ok()) return run.status();
  result.samples_processed = run->samples_processed;
  result.nodes_touched = run->nodes_touched;
  result.early_stopped = run->early_stopped;
  result.worlds_wasted = run->worlds_wasted;
  result.waves_issued = run->waves_issued;
  result.simd_batched_coins = run->coin_stats.batched_coins;
  result.simd_tail_coins = run->coin_stats.tail_coins;
  AppendRanked(reduced->candidates, run->estimates, needed, &result);
  // Sketch scores can exceed 1; clamp for reporting (ranking is done).
  for (double& score : result.scores) score = std::min(score, 1.0);
  return result;
}

}  // namespace vulnds
