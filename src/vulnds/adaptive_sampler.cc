#include "vulnds/adaptive_sampler.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "vulnds/reverse_sampler.h"

namespace vulnds {

Result<AdaptiveRunStats> RunAdaptiveSampling(const UncertainGraph& graph,
                                             const std::vector<NodeId>& candidates,
                                             const AdaptiveOptions& options) {
  const std::size_t c = candidates.size();
  if (c == 0) return Status::InvalidArgument("empty candidate set");
  if (options.k == 0 || options.k > c) {
    return Status::InvalidArgument("k must be in [1, |candidates|], got " +
                                   std::to_string(options.k));
  }
  if (options.eps <= 0.0 || options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("eps must be > 0 and delta in (0, 1)");
  }
  if (options.batch == 0) return Status::InvalidArgument("batch must be > 0");

  AdaptiveRunStats stats;
  stats.estimates.assign(c, 0.0);
  stats.radii.assign(c, 1.0);
  if (options.max_samples == 0) return stats;

  // Union-bound split of delta over candidates and checkpoints.
  const double checkpoints = std::max(
      1.0, std::ceil(std::log2(static_cast<double>(options.max_samples))));
  const double delta_each =
      options.delta / (static_cast<double>(c) * checkpoints);
  const double log_term = std::log(3.0 / delta_each);

  ReverseSampler sampler(graph, candidates);
  std::vector<uint32_t> counts(c, 0);
  std::vector<char> defaulted;

  std::size_t t = 0;
  while (t < options.max_samples) {
    const std::size_t stop = std::min(options.max_samples, t + options.batch);
    for (; t < stop; ++t) {
      sampler.SampleWorld(WorldSeed(options.seed, t), &defaulted);
      for (std::size_t i = 0; i < c; ++i) counts[i] += defaulted[i];
    }
    // Empirical-Bernstein radius per candidate (Bernoulli variance).
    const auto dt = static_cast<double>(t);
    for (std::size_t i = 0; i < c; ++i) {
      const double mean = static_cast<double>(counts[i]) / dt;
      const double variance = mean * (1.0 - mean);
      stats.estimates[i] = mean;
      stats.radii[i] =
          std::sqrt(2.0 * variance * log_term / dt) + 3.0 * log_term / dt;
    }
    // Separation test: the k-th largest lower limit must clear the
    // (k+1)-th largest upper limit minus eps.
    std::vector<double> lower(c);
    std::vector<double> upper(c);
    for (std::size_t i = 0; i < c; ++i) {
      lower[i] = stats.estimates[i] - stats.radii[i];
      upper[i] = stats.estimates[i] + stats.radii[i];
    }
    std::vector<std::size_t> order(c);
    for (std::size_t i = 0; i < c; ++i) order[i] = i;
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(options.k - 1),
                     order.end(), [&](std::size_t a, std::size_t b) {
                       return stats.estimates[a] > stats.estimates[b];
                     });
    // Lowest lower limit among the current top-k...
    double kth_lower = 1.0;
    for (std::size_t i = 0; i < options.k; ++i) {
      kth_lower = std::min(kth_lower, lower[order[i]]);
    }
    // ...must beat the highest upper limit outside it (within eps slack).
    double rest_upper = -1.0;
    for (std::size_t i = options.k; i < c; ++i) {
      rest_upper = std::max(rest_upper, upper[order[i]]);
    }
    if (options.k == c || kth_lower >= rest_upper - options.eps) {
      stats.separated = true;
      break;
    }
  }
  stats.samples_used = t;
  return stats;
}

}  // namespace vulnds
