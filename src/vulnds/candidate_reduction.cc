#include "vulnds/candidate_reduction.h"

#include <algorithm>
#include <string>

#include "vulnds/topk.h"

namespace vulnds {

Result<CandidateReduction> ReduceCandidates(std::span<const double> lower,
                                            std::span<const double> upper,
                                            std::size_t k) {
  const std::size_t n = lower.size();
  if (upper.size() != n) {
    return Status::InvalidArgument("bound vectors differ in size");
  }
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, n], got " + std::to_string(k));
  }

  CandidateReduction out;
  out.threshold_lower = KthLargest(lower, k);
  out.threshold_upper = KthLargest(upper, k);

  std::vector<NodeId> rule1;
  for (NodeId v = 0; v < n; ++v) {
    if (lower[v] >= out.threshold_upper) {
      rule1.push_back(v);
    }
  }
  // More than k rule-1 hits implies exact ties across the k-th upper bound;
  // verify the strongest k and demote the rest to candidates.
  std::sort(rule1.begin(), rule1.end(), [&](NodeId a, NodeId b) {
    if (lower[a] != lower[b]) return lower[a] > lower[b];
    return a < b;
  });
  std::vector<char> is_verified(n, 0);
  for (std::size_t i = 0; i < rule1.size() && i < k; ++i) {
    out.verified.push_back(rule1[i]);
    is_verified[rule1[i]] = 1;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (is_verified[v]) continue;
    if (upper[v] >= out.threshold_lower) {
      out.candidates.push_back(v);
    }
  }
  return out;
}

}  // namespace vulnds
