#include "vulnds/reverse_sampler.h"

#include <algorithm>

#include "common/hash.h"
#include "common/rng.h"

namespace vulnds {

namespace {
// Domain separators so node coins, edge coins and world seeds never collide.
constexpr uint64_t kNodeSalt = 0x9AE16A3B2F90404FULL;
constexpr uint64_t kEdgeSalt = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kWorldSalt = 0x165667B19E3779F9ULL;
}  // namespace

uint64_t WorldSeed(uint64_t seed, uint64_t sample_index) {
  return Mix64(seed ^ Mix64(sample_index + kWorldSalt));
}

bool WorldNodeSelfDefaults(uint64_t world_seed, NodeId v, double self_risk) {
  if (self_risk <= 0.0) return false;
  if (self_risk >= 1.0) return true;
  return UniformHash(world_seed ^ kNodeSalt).HashUnit(v) < self_risk;
}

bool WorldEdgeSurvives(uint64_t world_seed, EdgeId e, double prob) {
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return UniformHash(world_seed ^ kEdgeSalt).HashUnit(e) < prob;
}

ReverseSampler::ReverseSampler(const UncertainGraph& graph,
                               std::vector<NodeId> candidates,
                               const CoinColumns* columns,
                               simd::SimdTier tier)
    : graph_(graph),
      candidates_(std::move(candidates)),
      columns_(columns),
      tier_(tier),
      conclusion_stamp_(graph.num_nodes(), 0),
      conclusion_(graph.num_nodes(), 0),
      visited_stamp_(graph.num_nodes(), 0) {
  if (columns_ == nullptr && CoinColumns::Worthwhile(graph)) {
    owned_columns_ = CoinColumns::Shared(graph);
    columns_ = owned_columns_.get();
  }
  queue_.reserve(graph.num_nodes());
  explored_.reserve(graph.num_nodes());
  // columns_ may stay null on sparse graphs (below the density gate): the
  // sampler then evaluates coins directly off the arcs — same inner hash,
  // same exact threshold, so bit-identical — with no column build at all.
  if (columns_ != nullptr) survivor_scratch_.resize(columns_->max_run);
}

bool ReverseSampler::NodeSelfDefaults(NodeId v) {
  // The integer form of WorldNodeSelfDefaults (CoinThreshold folds the
  // 0/1 early-outs in); bit-identical by the kernel contract.
  ++coin_stats_.tail_coins;
  if (columns_ == nullptr) {
    return simd::CoinHits(node_seed_, simd::CoinInnerHash(v),
                          simd::CoinThreshold(graph_.self_risk(v)));
  }
  return simd::CoinHits(node_seed_, columns_->node_inner[v],
                        columns_->node_threshold[v]);
}

ReverseSampler::Conclusion ReverseSampler::GetConclusion(NodeId v) const {
  if (conclusion_stamp_[v] != sample_stamp_) return Conclusion::kUnknown;
  return static_cast<Conclusion>(conclusion_[v]);
}

void ReverseSampler::SetConclusion(NodeId v, Conclusion c) {
  conclusion_stamp_[v] = sample_stamp_;
  conclusion_[v] = static_cast<char>(c);
}

bool ReverseSampler::EvaluateCandidate(NodeId v, std::size_t* touched) {
  // Algorithm 5 lines 2-20, one candidate.
  switch (GetConclusion(v)) {
    case Conclusion::kDefaulted:
      return true;
    case Conclusion::kSafe:
      return false;
    case Conclusion::kUnknown:
      break;
  }
  ++visit_stamp_;
  queue_.clear();
  explored_.clear();
  queue_.push_back(v);
  visited_stamp_[v] = visit_stamp_;

  bool found_default = false;
  for (std::size_t head = 0; head < queue_.size() && !found_default; ++head) {
    const NodeId u = queue_[head];
    ++*touched;
    // Line 7: reuse a previous conclusion about u in this sample.
    const Conclusion known = GetConclusion(u);
    if (known == Conclusion::kDefaulted) {
      found_default = true;
      break;
    }
    if (known == Conclusion::kSafe) continue;  // dead region; do not expand
    explored_.push_back(u);
    // Lines 9-13: flip u's self-risk coin (memoized by world purity).
    if (NodeSelfDefaults(u)) {
      SetConclusion(u, Conclusion::kDefaulted);
      found_default = true;
      break;
    }
    // Lines 14-20: expand along surviving in-edges. The whole adjacency
    // run's coins are evaluated in one batched-kernel call (worlds are pure,
    // so testing a coin for an already-visited neighbor changes nothing);
    // survivors come back in ascending arc order, and the visited check +
    // push below runs in that order — the queue is byte-identical to the
    // scalar loop's.
    if (columns_ == nullptr) {
      // Sparse graph below the density gate: direct per-arc coins, in the
      // same ascending arc order as the padded kernel's survivor list.
      for (const Arc& arc : graph_.InArcs(u)) {
        ++coin_stats_.tail_coins;
        if (!simd::CoinHits(edge_seed_, simd::CoinInnerHash(arc.edge),
                            simd::CoinThreshold(arc.prob))) {
          continue;
        }
        if (visited_stamp_[arc.neighbor] == visit_stamp_) continue;
        visited_stamp_[arc.neighbor] = visit_stamp_;
        queue_.push_back(arc.neighbor);
      }
    } else {
      const std::size_t run_begin = columns_->pad_offsets[u];
      const std::size_t survivors = simd::CoinSurvivorsPadded(
          tier_, edge_seed_, columns_->edge_inner.data() + run_begin,
          columns_->edge_threshold.data() + run_begin, graph_.InDegree(u),
          survivor_scratch_.data(), &coin_stats_);
      for (std::size_t s = 0; s < survivors; ++s) {
        const NodeId neighbor =
            columns_->edge_neighbor[run_begin + survivor_scratch_[s]];
        if (visited_stamp_[neighbor] == visit_stamp_) continue;
        visited_stamp_[neighbor] = visit_stamp_;
        queue_.push_back(neighbor);
      }
    }
  }

  if (found_default) {
    SetConclusion(v, Conclusion::kDefaulted);
    return true;
  }
  // Exhausted without a default: the whole explored region is reverse-
  // unreachable from any defaulted node in this world.
  for (const NodeId u : explored_) SetConclusion(u, Conclusion::kSafe);
  SetConclusion(v, Conclusion::kSafe);
  return false;
}

std::size_t ReverseSampler::SampleWorld(uint64_t world_seed,
                                        std::vector<char>* defaulted) {
  edge_seed_ = world_seed ^ kEdgeSalt;
  node_seed_ = world_seed ^ kNodeSalt;
  ++sample_stamp_;
  defaulted->assign(candidates_.size(), 0);
  std::size_t touched = 0;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    (*defaulted)[i] = EvaluateCandidate(candidates_[i], &touched) ? 1 : 0;
  }
  return touched;
}

namespace {

void RunChunk(const UncertainGraph& graph, const std::vector<NodeId>& candidates,
              const CoinColumns* columns, simd::SimdTier tier, uint64_t seed,
              std::size_t begin, std::size_t end, std::vector<uint32_t>* counts,
              std::size_t* touched, simd::CoinKernelStats* coin_stats) {
  ReverseSampler sampler(graph, candidates, columns, tier);
  std::vector<char> defaulted;
  for (std::size_t i = begin; i < end; ++i) {
    *touched += sampler.SampleWorld(WorldSeed(seed, i), &defaulted);
    simd::AccumulateCounts(
        tier, counts->data(),
        reinterpret_cast<const unsigned char*>(defaulted.data()),
        defaulted.size());
  }
  coin_stats->Add(sampler.coin_stats());
}

}  // namespace

ReverseSampleStats RunReverseSampling(const UncertainGraph& graph,
                                      const std::vector<NodeId>& candidates,
                                      std::size_t t, uint64_t seed,
                                      ThreadPool* pool,
                                      const CoinColumns* columns,
                                      simd::SimdTier tier) {
  ReverseSampleStats stats;
  stats.samples = t;
  stats.estimates.assign(candidates.size(), 0.0);
  if (t == 0 || candidates.empty()) return stats;

  // The graph's cached columns when the caller has none (and the graph is
  // dense enough for them to pay — below the gate the samplers evaluate
  // coins directly off the arcs, bit-identically); every worker
  // sampler shares them read-only.
  std::shared_ptr<const CoinColumns> shared_columns;
  if (columns == nullptr && CoinColumns::Worthwhile(graph)) {
    shared_columns = CoinColumns::Shared(graph);
    columns = shared_columns.get();
  }

  std::vector<uint32_t> counts(candidates.size(), 0);
  if (pool == nullptr || pool->num_threads() <= 1 || t < 16) {
    RunChunk(graph, candidates, columns, tier, seed, 0, t, &counts,
             &stats.nodes_touched, &stats.coin_stats);
  } else {
    const std::size_t workers = std::min<std::size_t>(pool->num_threads(), t);
    std::vector<std::vector<uint32_t>> partial(
        workers, std::vector<uint32_t>(candidates.size(), 0));
    std::vector<std::size_t> partial_touched(workers, 0);
    std::vector<simd::CoinKernelStats> partial_coins(workers);
    const std::size_t chunk = (t + workers - 1) / workers;
    pool->ParallelFor(workers, [&](std::size_t w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(t, begin + chunk);
      if (begin < end) {
        RunChunk(graph, candidates, columns, tier, seed, begin, end,
                 &partial[w], &partial_touched[w], &partial_coins[w]);
      }
    });
    for (std::size_t w = 0; w < workers; ++w) {
      stats.nodes_touched += partial_touched[w];
      stats.coin_stats.Add(partial_coins[w]);
      for (std::size_t c = 0; c < candidates.size(); ++c) counts[c] += partial[w][c];
    }
  }
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    stats.estimates[c] = static_cast<double>(counts[c]) / static_cast<double>(t);
  }
  return stats;
}

}  // namespace vulnds
