#include "vulnds/reverse_sampler.h"

#include <algorithm>

#include "common/hash.h"
#include "common/rng.h"

namespace vulnds {

namespace {
// Domain separators so node coins, edge coins and world seeds never collide.
constexpr uint64_t kNodeSalt = 0x9AE16A3B2F90404FULL;
constexpr uint64_t kEdgeSalt = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kWorldSalt = 0x165667B19E3779F9ULL;
}  // namespace

uint64_t WorldSeed(uint64_t seed, uint64_t sample_index) {
  return Mix64(seed ^ Mix64(sample_index + kWorldSalt));
}

bool WorldNodeSelfDefaults(uint64_t world_seed, NodeId v, double self_risk) {
  if (self_risk <= 0.0) return false;
  if (self_risk >= 1.0) return true;
  return UniformHash(world_seed ^ kNodeSalt).HashUnit(v) < self_risk;
}

bool WorldEdgeSurvives(uint64_t world_seed, EdgeId e, double prob) {
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return UniformHash(world_seed ^ kEdgeSalt).HashUnit(e) < prob;
}

ReverseSampler::ReverseSampler(const UncertainGraph& graph,
                               std::vector<NodeId> candidates)
    : graph_(graph),
      candidates_(std::move(candidates)),
      conclusion_stamp_(graph.num_nodes(), 0),
      conclusion_(graph.num_nodes(), 0),
      visited_stamp_(graph.num_nodes(), 0) {
  queue_.reserve(graph.num_nodes());
  explored_.reserve(graph.num_nodes());
}

bool ReverseSampler::EdgeSurvives(EdgeId e) {
  return WorldEdgeSurvives(world_seed_, e, graph_.edges()[e].prob);
}

bool ReverseSampler::NodeSelfDefaults(NodeId v) {
  return WorldNodeSelfDefaults(world_seed_, v, graph_.self_risk(v));
}

ReverseSampler::Conclusion ReverseSampler::GetConclusion(NodeId v) const {
  if (conclusion_stamp_[v] != sample_stamp_) return Conclusion::kUnknown;
  return static_cast<Conclusion>(conclusion_[v]);
}

void ReverseSampler::SetConclusion(NodeId v, Conclusion c) {
  conclusion_stamp_[v] = sample_stamp_;
  conclusion_[v] = static_cast<char>(c);
}

bool ReverseSampler::EvaluateCandidate(NodeId v, std::size_t* touched) {
  // Algorithm 5 lines 2-20, one candidate.
  switch (GetConclusion(v)) {
    case Conclusion::kDefaulted:
      return true;
    case Conclusion::kSafe:
      return false;
    case Conclusion::kUnknown:
      break;
  }
  ++visit_stamp_;
  queue_.clear();
  explored_.clear();
  queue_.push_back(v);
  visited_stamp_[v] = visit_stamp_;

  bool found_default = false;
  for (std::size_t head = 0; head < queue_.size() && !found_default; ++head) {
    const NodeId u = queue_[head];
    ++*touched;
    // Line 7: reuse a previous conclusion about u in this sample.
    const Conclusion known = GetConclusion(u);
    if (known == Conclusion::kDefaulted) {
      found_default = true;
      break;
    }
    if (known == Conclusion::kSafe) continue;  // dead region; do not expand
    explored_.push_back(u);
    // Lines 9-13: flip u's self-risk coin (memoized by world purity).
    if (NodeSelfDefaults(u)) {
      SetConclusion(u, Conclusion::kDefaulted);
      found_default = true;
      break;
    }
    // Lines 14-20: expand along surviving in-edges.
    for (const Arc& arc : graph_.InArcs(u)) {
      if (visited_stamp_[arc.neighbor] == visit_stamp_) continue;
      if (!EdgeSurvives(arc.edge)) continue;
      visited_stamp_[arc.neighbor] = visit_stamp_;
      queue_.push_back(arc.neighbor);
    }
  }

  if (found_default) {
    SetConclusion(v, Conclusion::kDefaulted);
    return true;
  }
  // Exhausted without a default: the whole explored region is reverse-
  // unreachable from any defaulted node in this world.
  for (const NodeId u : explored_) SetConclusion(u, Conclusion::kSafe);
  SetConclusion(v, Conclusion::kSafe);
  return false;
}

std::size_t ReverseSampler::SampleWorld(uint64_t world_seed,
                                        std::vector<char>* defaulted) {
  world_seed_ = world_seed;
  ++sample_stamp_;
  defaulted->assign(candidates_.size(), 0);
  std::size_t touched = 0;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    (*defaulted)[i] = EvaluateCandidate(candidates_[i], &touched) ? 1 : 0;
  }
  return touched;
}

namespace {

void RunChunk(const UncertainGraph& graph, const std::vector<NodeId>& candidates,
              uint64_t seed, std::size_t begin, std::size_t end,
              std::vector<uint32_t>* counts, std::size_t* touched) {
  ReverseSampler sampler(graph, candidates);
  std::vector<char> defaulted;
  for (std::size_t i = begin; i < end; ++i) {
    *touched += sampler.SampleWorld(WorldSeed(seed, i), &defaulted);
    for (std::size_t c = 0; c < defaulted.size(); ++c) {
      (*counts)[c] += defaulted[c];
    }
  }
}

}  // namespace

ReverseSampleStats RunReverseSampling(const UncertainGraph& graph,
                                      const std::vector<NodeId>& candidates,
                                      std::size_t t, uint64_t seed,
                                      ThreadPool* pool) {
  ReverseSampleStats stats;
  stats.samples = t;
  stats.estimates.assign(candidates.size(), 0.0);
  if (t == 0 || candidates.empty()) return stats;

  std::vector<uint32_t> counts(candidates.size(), 0);
  if (pool == nullptr || pool->num_threads() <= 1 || t < 16) {
    RunChunk(graph, candidates, seed, 0, t, &counts, &stats.nodes_touched);
  } else {
    const std::size_t workers = std::min<std::size_t>(pool->num_threads(), t);
    std::vector<std::vector<uint32_t>> partial(
        workers, std::vector<uint32_t>(candidates.size(), 0));
    std::vector<std::size_t> partial_touched(workers, 0);
    const std::size_t chunk = (t + workers - 1) / workers;
    pool->ParallelFor(workers, [&](std::size_t w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(t, begin + chunk);
      if (begin < end) {
        RunChunk(graph, candidates, seed, begin, end, &partial[w],
                 &partial_touched[w]);
      }
    });
    for (std::size_t w = 0; w < workers; ++w) {
      stats.nodes_touched += partial_touched[w];
      for (std::size_t c = 0; c < candidates.size(); ++c) counts[c] += partial[w][c];
    }
  }
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    stats.estimates[c] = static_cast<double>(counts[c]) / static_cast<double>(t);
  }
  return stats;
}

}  // namespace vulnds
