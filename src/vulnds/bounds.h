// Algorithms 2 and 3: iterative lower / upper bounds on default probability.
//
// Both algorithms iterate Equation 1,
//   p(v) = 1 - (1 - ps(v)) * prod_{x in N(v)} (1 - p(v|x) p(x)),
// Jacobi style: iteration i reads iteration i-1's values. The lower bound
// starts from p(v) = ps(v) (order 1) and grows monotonically; the upper
// bound starts from Equation 1 with every in-neighbor treated as certainly
// defaulted (order 1) and shrinks monotonically. A node is re-evaluated only
// if one of its in-neighbors changed in the previous iteration, exactly as
// the pseudo-code prescribes.
//
// Soundness note (also in DESIGN.md): the upper bound is sound on every
// graph; the lower bound is exact on in-trees and can over-count slightly
// when distinct in-paths share an ancestor, because Equation 1 assumes
// independent in-neighbor events. This matches the paper.
//
// Parallelism. Each Jacobi iteration reads only the previous iteration's
// values and writes node v's slot alone, so the per-node sweep runs on the
// pool with the samplers' discipline — static chunking over node ids, the
// convergence flag folded in fixed (ascending-node) order afterwards — and
// the returned bounds are bit-identical to the serial loop for any thread
// count, including the early-fixpoint exit happening on the same iteration.

#ifndef VULNDS_VULNDS_BOUNDS_H_
#define VULNDS_VULNDS_BOUNDS_H_

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Equation 1 evaluated at node v with in-neighbor probabilities taken from
/// `probs` (indexed by node id).
double EquationOne(const UncertainGraph& graph, NodeId v,
                   const std::vector<double>& probs);

/// Algorithm 2: order-z lower bounds pl(v). Requires order >= 1.
/// `pool` parallelizes the per-node sweeps (nullptr = serial); the result
/// is bit-identical for every thread count.
Result<std::vector<double>> LowerBounds(const UncertainGraph& graph, int order,
                                        ThreadPool* pool = nullptr);

/// Algorithm 3: order-z upper bounds pu(v). Requires order >= 1.
/// `pool` as in LowerBounds.
Result<std::vector<double>> UpperBounds(const UncertainGraph& graph, int order,
                                        ThreadPool* pool = nullptr);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_BOUNDS_H_
