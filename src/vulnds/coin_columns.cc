#include "vulnds/coin_columns.h"

#include <algorithm>

#include "simd/coin_kernels.h"

namespace vulnds {

namespace {

inline std::size_t RoundUpToLanes(std::size_t n) {
  return (n + simd::kCoinLanes - 1) / simd::kCoinLanes * simd::kCoinLanes;
}

// The padded layout pass shared by Build and BuildFrom; allocates the edge
// columns zeroed. threshold 0 in the padding slots is what makes
// over-reading them safe: no 53-bit hash is < 0, so a padding slot can
// never survive.
void LayOut(const UncertainGraph& graph, CoinColumns* cols) {
  const std::size_t n = graph.num_nodes();
  cols->pad_offsets.resize(n + 1);
  std::size_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    cols->pad_offsets[v] = total;
    const std::size_t run = RoundUpToLanes(graph.InDegree(v));
    cols->max_run = std::max(cols->max_run, run);
    total += run;
  }
  cols->pad_offsets[n] = total;
  cols->edge_inner.assign(total, 0);
  cols->edge_threshold.assign(total, 0);
  cols->edge_neighbor.assign(total, 0);
}

}  // namespace

bool CoinColumns::Worthwhile(const UncertainGraph& graph) {
  // Average in-degree of at least one vector block; below that, padded runs
  // are mostly alignment slots and the build never amortizes (a degree-1
  // graph pads 4 slots per real arc). Shape-only, so every layer agrees.
  return graph.num_edges() >= simd::kCoinLanes * graph.num_nodes();
}

CoinColumns CoinColumns::Build(const UncertainGraph& graph) {
  CoinColumns cols;
  const std::size_t n = graph.num_nodes();
  LayOut(graph, &cols);
  for (NodeId v = 0; v < n; ++v) {
    std::size_t slot = cols.pad_offsets[v];
    for (const Arc& arc : graph.InArcs(v)) {
      cols.edge_inner[slot] = simd::CoinInnerHash(arc.edge);
      cols.edge_threshold[slot] = simd::CoinThreshold(arc.prob);
      cols.edge_neighbor[slot] = arc.neighbor;
      ++slot;
    }
  }

  cols.node_inner.resize(n);
  cols.node_threshold.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    cols.node_inner[v] = simd::CoinInnerHash(v);
    cols.node_threshold[v] = simd::CoinThreshold(graph.self_risk(v));
  }
  return cols;
}

CoinColumns CoinColumns::BuildFrom(const UncertainGraph& graph,
                                   const UncertainGraph& base,
                                   const CoinColumns& base_cols,
                                   std::span<const EdgeId> deleted) {
  const std::size_t n = graph.num_nodes();
  if (base.num_nodes() != n || base_cols.pad_offsets.size() != n + 1 ||
      base_cols.node_inner.size() != n) {
    return Build(graph);  // not a version of the same graph — nothing to reuse
  }
  // Base edge id -> compacted id, or kGone for deleted ids. A flat table
  // instead of per-arc binary searches: the merge loop below consults it
  // once per old arc, and O(base_m) sequential writes beat O(m log d)
  // branchy lookups even for a handful of deletions.
  constexpr EdgeId kGone = static_cast<EdgeId>(-1);
  std::vector<EdgeId> new_id(base.num_edges());
  {
    std::size_t next_deleted = 0;
    for (EdgeId e = 0; e < new_id.size(); ++e) {
      if (next_deleted < deleted.size() && deleted[next_deleted] == e) {
        ++next_deleted;
        new_id[e] = kGone;
      } else {
        new_id[e] = e - static_cast<EdgeId>(next_deleted);
      }
    }
  }

  CoinColumns cols;
  LayOut(graph, &cols);
  for (NodeId v = 0; v < n; ++v) {
    const std::span<const Arc> new_run = graph.InArcs(v);
    const std::span<const Arc> old_run = base.InArcs(v);
    const std::size_t old_base = base_cols.pad_offsets[v];
    std::size_t old_i = 0;
    std::size_t slot = cols.pad_offsets[v];
    for (const Arc& arc : new_run) {
      cols.edge_neighbor[slot] = arc.neighbor;
      while (old_i < old_run.size() && new_id[old_run[old_i].edge] == kGone) {
        ++old_i;
      }
      if (old_i < old_run.size() && new_id[old_run[old_i].edge] == arc.edge) {
        // The same logical edge. Its inner hash transfers unless deletions
        // shifted its numeric id; its threshold unless the probability was
        // patched. (In-runs of both versions ascend by edge id, so the
        // two-pointer walk pairs logical edges exactly once.)
        const Arc& old_arc = old_run[old_i];
        cols.edge_inner[slot] = old_arc.edge == arc.edge
                                    ? base_cols.edge_inner[old_base + old_i]
                                    : simd::CoinInnerHash(arc.edge);
        cols.edge_threshold[slot] =
            old_arc.prob == arc.prob
                ? base_cols.edge_threshold[old_base + old_i]
                : simd::CoinThreshold(arc.prob);
        ++old_i;
      } else {
        // Staged insertion (or an arc the base cannot account for — then
        // this is just Build's computation; reuse never changes content).
        cols.edge_inner[slot] = simd::CoinInnerHash(arc.edge);
        cols.edge_threshold[slot] = simd::CoinThreshold(arc.prob);
      }
      ++slot;
    }
  }

  // Node ids are stable across versions, so the inner hashes transfer
  // wholesale; thresholds transfer wherever the self-risk is unchanged
  // (edge-only deltas never touch it, but compare defensively).
  cols.node_inner = base_cols.node_inner;
  cols.node_threshold.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    cols.node_threshold[v] = graph.self_risk(v) == base.self_risk(v)
                                 ? base_cols.node_threshold[v]
                                 : simd::CoinThreshold(graph.self_risk(v));
  }
  return cols;
}

std::shared_ptr<const CoinColumns> CoinColumns::Shared(
    const UncertainGraph& graph) {
  return graph.derived().GetOrBuild<CoinColumns>(
      [&graph] { return Build(graph); });
}

std::size_t CoinColumns::EstimateBytes(const UncertainGraph& graph) {
  const std::size_t n = graph.num_nodes();
  std::size_t padded = 0;
  for (NodeId v = 0; v < n; ++v) padded += RoundUpToLanes(graph.InDegree(v));
  return sizeof(CoinColumns) + (n + 1) * sizeof(std::size_t) +
         padded * (2 * sizeof(uint64_t) + sizeof(NodeId)) +
         n * 2 * sizeof(uint64_t);
}

std::size_t CoinColumns::ApproxBytes() const {
  return sizeof(CoinColumns) +
         pad_offsets.capacity() * sizeof(std::size_t) +
         edge_inner.capacity() * sizeof(uint64_t) +
         edge_threshold.capacity() * sizeof(uint64_t) +
         edge_neighbor.capacity() * sizeof(NodeId) +
         node_inner.capacity() * sizeof(uint64_t) +
         node_threshold.capacity() * sizeof(uint64_t);
}

}  // namespace vulnds
