// Adaptive sequential sampling (extension beyond the paper).
//
// The paper's Theorem 4 fixes the sample size t up-front from the worst
// case (every estimate variance at its maximum 1/4). When true default
// probabilities sit near 0 or 1 — typical after candidate reduction — far
// fewer samples suffice. This module adds an anytime variant: after each
// batch of worlds it recomputes an empirical-Bernstein confidence radius
//
//   r(v) = sqrt(2 * Var_t(v) * log(3/delta') / t) + 3 * log(3/delta') / t
//
// per candidate (Audibert et al. 2009; delta' = delta / (|B| * ceil(log2 T))
// by union bound over candidates and checkpoints) and stops as soon as the
// k-th largest lower confidence limit clears the (k+1)-th largest upper
// confidence limit — i.e. the top-k is confidently separated — or the
// fixed-t budget of Theorem 5 is exhausted, whichever happens first.
// The returned set therefore keeps the (eps, delta) contract while often
// sampling a small fraction of the worst-case budget.

#ifndef VULNDS_VULNDS_ADAPTIVE_SAMPLER_H_
#define VULNDS_VULNDS_ADAPTIVE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// Configuration of the adaptive run.
struct AdaptiveOptions {
  std::size_t k = 1;           ///< how many nodes must be separated
  double eps = 0.3;            ///< slack added to the separation test
  double delta = 0.1;          ///< overall failure budget
  std::size_t max_samples = 100000;  ///< hard budget T
  std::size_t batch = 32;      ///< worlds per confidence checkpoint
  uint64_t seed = 42;
};

/// Result of the adaptive run.
struct AdaptiveRunStats {
  std::vector<double> estimates;   ///< p̂ per candidate (candidate order)
  std::vector<double> radii;       ///< final confidence radius per candidate
  std::size_t samples_used = 0;
  bool separated = false;  ///< stop condition fired before the budget
};

/// Runs reverse sampling over `candidates`, stopping early once the top-k
/// is separated within eps at confidence 1 - delta. Requires
/// 1 <= k <= |candidates| and a non-empty candidate set.
Result<AdaptiveRunStats> RunAdaptiveSampling(const UncertainGraph& graph,
                                             const std::vector<NodeId>& candidates,
                                             const AdaptiveOptions& options);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_ADAPTIVE_SAMPLER_H_
