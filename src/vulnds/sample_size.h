// Hoeffding-based sample-size formulas (Theorems 3-5 of the paper).

#ifndef VULNDS_VULNDS_SAMPLE_SIZE_H_
#define VULNDS_VULNDS_SAMPLE_SIZE_H_

#include <cstddef>

namespace vulnds {

/// Per-pair misordering bound of Theorem 3: the probability that the
/// estimated order of two nodes whose true probabilities differ by at least
/// `eps` is inverted after `t` samples is at most exp(-t * eps^2 / 2).
double PairMisorderBound(std::size_t t, double eps);

/// Equation 3: t = (2 / eps^2) * ln(k (n - k) / delta), the sample size that
/// makes Algorithm 1 an (eps, delta)-approximation (Theorem 4). Returns at
/// least 1; returns 0 when the pair count k (n - k) is zero (nothing to
/// separate: k == 0 or k == n).
std::size_t BasicSampleSize(double eps, double delta, std::size_t k, std::size_t n);

/// Equation 4: the reduced size for the reverse-sampling method (Theorem 5)
/// with k' verified nodes and candidate set B:
///   t = (2 / eps^2) * ln((k - k') (|B| - k + k') / delta).
/// Returns 0 when no pairs remain to order (everything verified, or the
/// candidate set is exactly the remaining slots).
std::size_t ReducedSampleSize(double eps, double delta, std::size_t k,
                              std::size_t k_verified, std::size_t candidate_count);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_SAMPLE_SIZE_H_
