#include "vulnds/topk.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace vulnds {

namespace {

// Orders candidate ids by (score desc, id asc) and keeps the first k.
std::vector<NodeId> SelectTopK(std::vector<NodeId> ids,
                               std::span<const double> scores, std::size_t k) {
  k = std::min(k, ids.size());
  auto cmp = [&scores](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(k),
                    ids.end(), cmp);
  ids.resize(k);
  return ids;
}

}  // namespace

std::vector<NodeId> TopKByScore(std::span<const double> scores, std::size_t k) {
  std::vector<NodeId> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0);
  return SelectTopK(std::move(ids), scores, k);
}

std::vector<NodeId> TopKByScoreSubset(std::span<const double> scores,
                                      std::span<const NodeId> subset, std::size_t k) {
  std::vector<NodeId> ids(subset.begin(), subset.end());
  return SelectTopK(std::move(ids), scores, k);
}

double KthLargest(std::span<const double> scores, std::size_t k) {
  if (scores.empty()) return -std::numeric_limits<double>::infinity();
  k = std::min(std::max<std::size_t>(k, 1), scores.size());
  std::vector<double> copy(scores.begin(), scores.end());
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   copy.end(), std::greater<double>());
  return copy[k - 1];
}

}  // namespace vulnds
