#include "vulnds/ground_truth.h"

#include "vulnds/basic_sampler.h"
#include "vulnds/topk.h"

namespace vulnds {

std::vector<NodeId> GroundTruth::TopK(std::size_t k) const {
  return TopKByScore(probabilities, k);
}

GroundTruth ComputeGroundTruth(const UncertainGraph& graph, std::size_t samples,
                               uint64_t seed, ThreadPool* pool) {
  GroundTruth gt;
  BasicSampleStats stats = RunBasicSampling(graph, samples, seed, pool);
  gt.probabilities = std::move(stats.estimates);
  gt.samples = samples;
  return gt;
}

}  // namespace vulnds
