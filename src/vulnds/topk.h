// Top-k selection over score vectors with deterministic tie-breaking.

#ifndef VULNDS_VULNDS_TOPK_H_
#define VULNDS_VULNDS_TOPK_H_

#include <cstddef>
#include <span>
#include <vector>

#include "graph/uncertain_graph.h"

namespace vulnds {

/// Node ids of the k largest scores, ordered by decreasing score; ties break
/// toward the smaller node id so results are deterministic. k is clamped to
/// the score count.
std::vector<NodeId> TopKByScore(std::span<const double> scores, std::size_t k);

/// Same, but restricted to the given subset of nodes; `scores` is indexed by
/// node id.
std::vector<NodeId> TopKByScoreSubset(std::span<const double> scores,
                                      std::span<const NodeId> subset, std::size_t k);

/// The k-th largest value of `scores` (1-based: k=1 is the maximum).
/// k is clamped to [1, scores.size()]; returns -infinity for empty input.
double KthLargest(std::span<const double> scores, std::size_t k);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_TOPK_H_
