// Bottom-k early-stopped reverse sampling (paper §3.3, Theorem 6).
//
// Every sample id in [0, t) is hashed into (0, 1); samples are materialized
// in ascending hash order. Each candidate counts the samples in which it
// defaulted; the hash value of its bk-th such sample is L(A, bk) of the
// bottom-k sketch over "samples where v defaults", giving the estimate
//   p̂(v) = (bk - 1) / (L(A, bk) * t).
// Because samples arrive in ascending hash order, the first candidate to
// reach bk has the smallest L and hence the largest estimate (Theorem 6);
// processing stops once `needed` candidates have reached bk. If the stream
// is exhausted first, the run degrades to plain reverse sampling and the
// prefix estimates count / processed are used (the prefix in hash order is
// a uniformly random subset of worlds, so these remain unbiased).
//
// Parallel execution (deterministic): each sampled world is a pure function
// of WorldSeed(seed, sample_id), so with a ThreadPool the run materializes
// the `defaulted` bitmaps of a fixed-size wave of consecutive hash-order
// positions in parallel, then folds the wave's counts serially in ascending
// hash order. The fold — and therefore the early-stop position, every
// counter, kth_hash, samples_processed, nodes_touched and every estimate —
// is bit-identical to the serial loop for any thread count and any wave
// size; only wasted work (worlds materialized past the stop position inside
// the final wave) varies.

#ifndef VULNDS_VULNDS_BSRBK_H_
#define VULNDS_VULNDS_BSRBK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// The hash-sorted processing order of the sample ids [0, t): order[i] is the
/// id of the i-th smallest hash, hash_of[id] its hash value. Pure in
/// (seed, t), so a serving layer can compute it once per (seed, t) pair and
/// reuse it across queries (DetectionContext does exactly that).
struct BottomKSampleOrder {
  std::vector<uint32_t> order;
  std::vector<double> hash_of;
};

/// Hashes and sorts the sample ids [0, t) for run seed `seed`.
BottomKSampleOrder MakeBottomKSampleOrder(uint64_t seed, std::size_t t);

/// Result of a bottom-k sampling run.
struct BottomKRunStats {
  /// Score per candidate (candidate order): the raw sketch estimate
  /// (bk-1)/(L * t) for candidates that reached bk — which may exceed 1 and
  /// must not be clamped before ranking, or Theorem 6's order collapses
  /// into ties — and the prefix frequency for the rest.
  std::vector<double> estimates;
  /// Flag per candidate: did its counter reach bk?
  std::vector<char> reached_bk;
  std::size_t samples_processed = 0;  ///< worlds folded into the counters
  std::size_t total_samples = 0;      ///< the budget t
  std::size_t nodes_touched = 0;      ///< BFS expansions of folded worlds
  bool early_stopped = false;  ///< true iff `needed` candidates reached bk
};

/// Runs bottom-k early-stopped reverse sampling over `candidates` with a
/// budget of `t` worlds, stopping once `needed` candidates reach `bk`
/// defaults. Requires bk >= 3 (sketch estimator) and needed >= 1.
/// `precomputed` optionally supplies MakeBottomKSampleOrder(seed, t) — it
/// must have been built for exactly that (seed, t) pair.
///
/// `pool` enables wave-parallel world materialization; `wave_size` overrides
/// the number of hash-order positions materialized per wave (0 picks a
/// multiple of the pool width). Results are bit-identical across every
/// combination of pool, thread count and wave size, including serial.
Result<BottomKRunStats> RunBottomKSampling(const UncertainGraph& graph,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t t, std::size_t needed,
                                           int bk, uint64_t seed,
                                           const BottomKSampleOrder* precomputed = nullptr,
                                           ThreadPool* pool = nullptr,
                                           std::size_t wave_size = 0);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_BSRBK_H_
