// Bottom-k early-stopped reverse sampling (paper §3.3, Theorem 6).
//
// Every sample id in [0, t) is hashed into (0, 1); samples are materialized
// in ascending hash order. Each candidate counts the samples in which it
// defaulted; the hash value of its bk-th such sample is L(A, bk) of the
// bottom-k sketch over "samples where v defaults", giving the estimate
//   p̂(v) = (bk - 1) / (L(A, bk) * t).
// Because samples arrive in ascending hash order, the first candidate to
// reach bk has the smallest L and hence the largest estimate (Theorem 6);
// processing stops once `needed` candidates have reached bk. If the stream
// is exhausted first, the run degrades to plain reverse sampling and the
// prefix estimates count / processed are used (the prefix in hash order is
// a uniformly random subset of worlds, so these remain unbiased).
//
// Parallel execution (deterministic): each sampled world is a pure function
// of WorldSeed(seed, sample_id), so with a ThreadPool the run materializes
// the `defaulted` bitmaps of a wave of consecutive hash-order positions in
// parallel, then folds the wave's counts serially in ascending hash order.
// The fold — and therefore the early-stop position, every counter, kth_hash,
// samples_processed, nodes_touched and every estimate — is bit-identical to
// the serial loop for any thread count and ANY wave schedule (fixed or
// adaptive); only wasted work (worlds materialized past the stop position
// inside the final wave) varies, and is reported as telemetry.
//
// Wave scheduling. A fixed schedule issues equal-size waves, so every
// early-stopping run throws away up to wave_size - 1 fully materialized
// worlds past the stop. The adaptive schedule instead estimates, before each
// wave, how many more hash-order positions must fold before the stop fires:
// each unreached candidate's default rate is bounded below by its prefix
// frequency (count so far / positions folded — the gap between its current
// bottom-k hash trajectory and the positions still pending) and, when the
// caller supplies them, by its analytic lower bound (bounds.cc; the true
// rate can only exceed a lower bound, so the per-candidate projection
// (bk - count) / rate only OVERestimates the distance and clamping to it
// never cuts a wave short of the stop systematically). The wave then ramps
// geometrically — small probe waves while the estimate is uncertain, up to
// workers × kWaveWorldsPerWorker once the stop is provably far — and the
// final wave is clamped to the estimate. Underestimates cost one extra
// ParallelFor round; they can never change a result.

#ifndef VULNDS_VULNDS_BSRBK_H_
#define VULNDS_VULNDS_BSRBK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/uncertain_graph.h"
#include "obs/query_trace.h"
#include "simd/coin_kernels.h"

namespace vulnds {

struct CoinColumns;

/// The hash-sorted processing order of the sample ids [0, t): order[i] is the
/// id of the i-th smallest hash, hash_of[id] its hash value. Pure in
/// (seed, t), so a serving layer can compute it once per (seed, t) pair and
/// reuse it across queries (DetectionContext does exactly that).
struct BottomKSampleOrder {
  std::vector<uint32_t> order;
  std::vector<double> hash_of;
};

/// Hashes and sorts the sample ids [0, t) for run seed `seed`. The bulk
/// Hash64 work runs on the batched kernel of `tier`; the exact HashUnit
/// double conversion stays scalar, so the result is bit-identical for every
/// tier (and cacheable across requests that force different tiers).
BottomKSampleOrder MakeBottomKSampleOrder(
    uint64_t seed, std::size_t t,
    simd::SimdTier tier = simd::DefaultTier());

/// How the parallel path sizes its waves. Execution-only: results are
/// bit-identical for every mode (and never part of a query's identity).
enum class WaveMode {
  kAdaptive = 0,  ///< ramp + stop-distance clamp (default)
  kFixed,         ///< equal-size waves (PR 3 behavior)
};

/// Wave schedule knobs; all execution-only. Zero always means "default".
struct BottomKWavePlan {
  WaveMode mode = WaveMode::kAdaptive;
  /// kFixed: worlds per wave (0 = workers × kWaveWorldsPerWorker).
  std::size_t fixed_size = 0;
  /// kAdaptive: first probe-wave size (0 = one world per worker).
  std::size_t probe_size = 0;
  /// kAdaptive: geometric growth factor between waves (0 = 2).
  std::size_t ramp = 0;
};

/// Execution inputs of a bottom-k run, none of which may change a result:
/// they shape wall-clock time and wasted work only.
struct BottomKRunOptions {
  /// MakeBottomKSampleOrder(seed, t) when the caller already has it; must
  /// have been built for exactly that (seed, t) pair.
  const BottomKSampleOrder* precomputed = nullptr;
  /// Wave-parallel world materialization (nullptr = serial loop).
  ThreadPool* pool = nullptr;
  BottomKWavePlan wave;
  /// Optional per-candidate lower bounds on default probability, aligned
  /// with `candidates`. Sharpens the adaptive stop estimate before any
  /// counts accumulate; ignored by the fixed schedule.
  const std::vector<double>* candidate_lower_bounds = nullptr;
  /// Observability span for the query carrying this run: on completion the
  /// runner publishes its wave-level detail (waves_issued, worlds_wasted,
  /// early-stop position) onto the trace. Execution-only — the trace never
  /// influences the run.
  obs::QueryTrace* trace = nullptr;
  /// The graph's columns when the caller already holds them; nullptr uses
  /// the graph's cached CoinColumns::Shared. Must match `graph` exactly.
  const CoinColumns* coin_columns = nullptr;
  /// Kernel tier for coin batches and count folds. Execution-only like the
  /// wave plan: every tier computes bit-identical results by the kernel
  /// contract (property-tested in tests/simd/).
  simd::SimdTier simd_tier = simd::DefaultTier();
};

/// Result of a bottom-k sampling run.
struct BottomKRunStats {
  /// Score per candidate (candidate order): the raw sketch estimate
  /// (bk-1)/(L * t) for candidates that reached bk — which may exceed 1 and
  /// must not be clamped before ranking, or Theorem 6's order collapses
  /// into ties — and the prefix frequency for the rest.
  std::vector<double> estimates;
  /// Flag per candidate: did its counter reach bk?
  std::vector<char> reached_bk;
  std::size_t samples_processed = 0;  ///< worlds folded into the counters
  std::size_t total_samples = 0;      ///< the budget t
  std::size_t nodes_touched = 0;      ///< BFS expansions of folded worlds
  bool early_stopped = false;  ///< true iff `needed` candidates reached bk

  // Schedule telemetry — the only fields that legitimately vary with pool
  // width, wave plan and simd tier (everything above is bit-identical
  // across them).
  std::size_t worlds_wasted = 0;  ///< materialized but never folded
  std::size_t waves_issued = 0;   ///< ParallelFor rounds (0 for serial)
  /// Coin-kernel telemetry over every materialized world (wasted included).
  simd::CoinKernelStats coin_stats;
};

/// Runs bottom-k early-stopped reverse sampling over `candidates` with a
/// budget of `t` worlds, stopping once `needed` candidates reach `bk`
/// defaults. Requires bk >= 3 (sketch estimator) and needed >= 1. `run`
/// carries the execution knobs (precomputed order, pool, wave plan, lower
/// bounds); results are bit-identical across every combination of them,
/// including serial.
Result<BottomKRunStats> RunBottomKSampling(const UncertainGraph& graph,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t t, std::size_t needed,
                                           int bk, uint64_t seed,
                                           const BottomKRunOptions& run);

/// Legacy fixed-schedule entry point: `wave_size` worlds per wave (0 picks a
/// multiple of the pool width). Kept for callers that predate the adaptive
/// scheduler; equivalent to BottomKRunOptions{precomputed, pool,
/// {WaveMode::kFixed, wave_size}}.
Result<BottomKRunStats> RunBottomKSampling(const UncertainGraph& graph,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t t, std::size_t needed,
                                           int bk, uint64_t seed,
                                           const BottomKSampleOrder* precomputed = nullptr,
                                           ThreadPool* pool = nullptr,
                                           std::size_t wave_size = 0);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_BSRBK_H_
