#include "vulnds/precision.h"

#include <algorithm>
#include <vector>

namespace vulnds {

double PrecisionAtK(std::span<const NodeId> result, std::span<const NodeId> truth) {
  if (truth.empty()) return 1.0;
  std::vector<NodeId> a(result.begin(), result.end());
  std::vector<NodeId> b(truth.begin(), truth.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<NodeId> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) / static_cast<double>(truth.size());
}

}  // namespace vulnds
