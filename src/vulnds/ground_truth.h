// Ground truth for precision evaluation: the paper uses the top-k of 20 000
// sampled possible worlds as the reference ranking (§4.1).

#ifndef VULNDS_VULNDS_GROUND_TRUTH_H_
#define VULNDS_VULNDS_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "graph/uncertain_graph.h"

namespace vulnds {

/// The paper's reference sample count.
inline constexpr std::size_t kPaperGroundTruthSamples = 20000;

/// Reference default probabilities and the ranking they induce.
struct GroundTruth {
  std::vector<double> probabilities;  ///< per node
  std::size_t samples = 0;

  /// Top-k node ids under the reference probabilities.
  std::vector<NodeId> TopK(std::size_t k) const;
};

/// Estimates ground truth with `samples` forward Monte-Carlo worlds.
GroundTruth ComputeGroundTruth(const UncertainGraph& graph, std::size_t samples,
                               uint64_t seed, ThreadPool* pool = nullptr);

}  // namespace vulnds

#endif  // VULNDS_VULNDS_GROUND_TRUTH_H_
