#include "obs/query_trace.h"

#include <chrono>

namespace vulnds::obs {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t QueryTrace::Now() const {
  return clock_ ? clock_() : SteadyNowMicros();
}

void QueryTrace::BeginStage(const std::string& name) {
  if (open_) EndStage();
  stages_.push_back({name, 0});
  open_ = true;
  open_start_ = Now();
}

void QueryTrace::EndStage() {
  if (!open_) return;
  stages_.back().micros = Now() - open_start_;
  open_ = false;
}

void QueryTrace::AddStage(const std::string& name, int64_t micros) {
  if (open_) EndStage();
  stages_.push_back({name, micros});
}

int64_t QueryTrace::TotalMicros() const {
  int64_t total = 0;
  for (const StageSpan& span : stages_) total += span.micros;
  return total;
}

}  // namespace vulnds::obs
