#include "obs/slow_query_log.h"

#include <cstdio>
#include <sstream>

namespace vulnds::obs {

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (unsigned char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string FormatSlowQueryRecord(const SlowQueryRecord& record) {
  std::ostringstream out;
  out << "{\"verb\":\"" << JsonEscape(record.verb) << "\","
      << "\"graph\":\"" << JsonEscape(record.graph) << "\","
      << "\"options\":\"" << JsonEscape(record.options) << "\","
      << "\"total_micros\":" << record.total_micros << ","
      << "\"cached\":" << (record.cached ? "true" : "false");
  if (record.trace != nullptr) {
    out << ",\"stages\":[";
    bool first = true;
    for (const StageSpan& span : record.trace->stages()) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << JsonEscape(span.name)
          << "\",\"micros\":" << span.micros << "}";
    }
    out << "]"
        << ",\"waves_issued\":" << record.trace->waves_issued
        << ",\"worlds_wasted\":" << record.trace->worlds_wasted
        << ",\"early_stop_position\":" << record.trace->early_stop_position
        << ",\"early_stopped\":"
        << (record.trace->early_stopped ? "true" : "false");
  }
  out << "}";
  return out.str();
}

bool SlowQueryLog::MaybeLog(const SlowQueryRecord& record) {
  if (threshold_micros_ < 0 || record.total_micros < threshold_micros_) {
    return false;
  }
  const std::string line = FormatSlowQueryRecord(record);
  std::lock_guard<std::mutex> lock(mu_);
  (*sink_) << line << "\n";
  sink_->flush();
  ++logged_;
  return true;
}

uint64_t SlowQueryLog::logged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logged_;
}

}  // namespace vulnds::obs
