// Metric registry for the serving stack: named counters, gauges and
// fixed-bucket histograms with Prometheus text exposition.
//
// Design contract, mirroring production metric layers (one registry, many
// feeding subsystems):
//   * The hot path is lock-free: Counter::Increment, Gauge::Set and
//     Histogram::Observe are relaxed atomics — no mutex is ever taken while
//     recording a measurement, so instrumenting the serve engine's cached
//     hit path costs a handful of atomic adds.
//   * Registration (Get*) is mutex-guarded get-or-create keyed by
//     (name, labels): callers resolve their handles once (construction or
//     first use) and keep the raw pointer, which stays valid for the
//     registry's lifetime. Re-resolving the same (name, labels) returns the
//     SAME metric, so two subsystems naming the same series share storage.
//   * Reads (Value, Quantile, RenderPrometheus) are moment-in-time
//     snapshots: each atomic is individually exact, cross-metric and
//     cross-bucket sums may lag concurrent writers but are never torn —
//     rendered histogram series keep their cumulative invariants under
//     concurrent Observe (the `_count` line is the `+Inf` bucket by
//     construction).
//
// Naming convention (enforced by scripts/check_metrics.py, documented in
// README "Observability"): vulnds_<subsystem>_<name>_<unit>, counters end
// in _total, histograms name their unit (e.g. _micros).

#ifndef VULNDS_OBS_METRICS_H_
#define VULNDS_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vulnds::obs {

/// One "key=value" metric label. Values may contain any bytes; the renderer
/// escapes backslash, double quote and newline per the exposition format.
using Label = std::pair<std::string, std::string>;
using LabelSet = std::vector<Label>;

/// Monotonically increasing counter. Lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Scrape-time mirror hook: overwrites the value. For counters whose
  /// source of truth is an externally synchronized structure (per-shard
  /// cache/catalog counters guarded by shard mutexes) that the serve layer
  /// copies into the registry when rendering. The source must itself be
  /// monotone or the rendered counter will violate counter semantics.
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time gauge (resident bytes, shard sizes, ...). Lock-free.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with cumulative Prometheus semantics and an
/// in-process quantile estimator. Observe is lock-free: one binary search
/// over the (immutable) bucket bounds plus three relaxed atomic adds.
class Histogram {
 public:
  /// `bounds` are the finite bucket upper edges, strictly increasing; the
  /// implicit +Inf bucket is always appended. An empty or unsorted bounds
  /// vector is normalized (sorted, deduplicated, non-finite edges dropped).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Observations recorded so far (the +Inf cumulative count).
  uint64_t Count() const;

  /// Sum of every observed value.
  double Sum() const;

  /// The finite bucket upper edges (exposition order).
  const std::vector<double>& bounds() const { return bounds_; }

  /// Cumulative count per bucket, one entry per finite bound plus the final
  /// +Inf entry. Monotone non-decreasing by construction even under
  /// concurrent Observe: per-bucket counts are read once, then prefix-summed.
  std::vector<uint64_t> CumulativeCounts() const;

  /// Estimates the q-th quantile (q in [0, 1]) by linear interpolation
  /// inside the bucket containing the target rank — the same estimator
  /// Prometheus' histogram_quantile() applies server-side, so a bench can
  /// gate on p99s without scraping. Returns 0 when empty. Ranks landing in
  /// the +Inf bucket return the largest finite bound (the estimate is a
  /// lower bound there; size the ladder so real traffic stays finite).
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;                      // finite upper edges
  std::unique_ptr<std::atomic<uint64_t>[]> counts_; // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Metric kind, driving the exposition TYPE line.
enum class MetricKind { kCounter = 0, kGauge, kHistogram };

/// Thread-safe named registry. One per serving process; every subsystem
/// exports through it (the `metrics` verb renders exactly this).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Get-or-create. `help` is fixed by the first registration of `name`;
  /// registering an existing (name, labels) with a different kind throws
  /// std::logic_error (a programming error, not an operational condition).
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const LabelSet& labels = {});
  /// `bounds` are fixed by the first registration of `name`; later calls
  /// with different bounds reuse the existing ladder (one family, one
  /// bucket layout — required for the exposition to be coherent).
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<double>& bounds,
                          const LabelSet& labels = {});

  /// Renders the whole registry in Prometheus text exposition format:
  /// families in name order, one HELP and one TYPE line per family, series
  /// in label order, histogram series as cumulative _bucket{le=...} plus
  /// _sum and _count. Deterministic given the recorded values.
  std::string RenderPrometheus() const;

  /// Number of registered families (for tests / lint).
  std::size_t family_count() const;

 private:
  struct Series {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<double> bounds;  // histogram families only
    std::map<std::string, Series> series;  // keyed by serialized labels
  };

  Series* GetSeries(const std::string& name, const std::string& help,
                    MetricKind kind, const LabelSet& labels,
                    const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Escapes a label value for the exposition format: backslash, double quote
/// and newline become \\, \" and \n.
std::string EscapeLabelValue(const std::string& value);

/// Escapes a HELP text: backslash and newline become \\ and \n.
std::string EscapeHelp(const std::string& value);

/// Serializes a label set as {k1="v1",k2="v2"} (empty string when empty),
/// with `extra` appended last when non-null (the histogram le label).
std::string RenderLabels(const LabelSet& labels, const Label* extra = nullptr);

/// The default latency ladder for serve-path histograms, in microseconds:
/// 1-2.5-5 decades from 1us to 10s. Wide enough that a cached hit (~10us)
/// and a cold paper-scale detect (seconds) both land in interpolatable
/// buckets.
const std::vector<double>& LatencyBucketsMicros();

}  // namespace vulnds::obs

#endif  // VULNDS_OBS_METRICS_H_
