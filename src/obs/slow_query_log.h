// Slow-query log: queries whose total latency exceeds a configured
// threshold emit one structured JSONL line to a sink (a file opened by the
// CLI's serve slowlog= flag, or any ostream in tests). The write path is
// mutex-guarded — slow queries are by definition rare, so a lock here never
// contends with the metrics hot path.

#ifndef VULNDS_OBS_SLOW_QUERY_LOG_H_
#define VULNDS_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/query_trace.h"

namespace vulnds::obs {

/// One slow query, ready to serialize.
struct SlowQueryRecord {
  std::string verb;     // "detect" | "truth"
  std::string graph;    // catalog name as requested, incl. @vN when pinned
  std::string options;  // canonical options key (cache-key grade)
  int64_t total_micros = 0;
  bool cached = false;
  const QueryTrace* trace = nullptr;  // optional per-stage detail
};

/// Serializes one record as a single-line JSON object (no trailing newline).
/// Schema (documented in README "Observability"):
///   {"verb":..., "graph":..., "options":..., "total_micros":N,
///    "cached":true|false, "stages":[{"name":...,"micros":N},...],
///    "waves_issued":N, "worlds_wasted":N, "early_stop_position":N,
///    "early_stopped":true|false}
/// The stages/wave fields are present only when a trace is attached.
std::string FormatSlowQueryRecord(const SlowQueryRecord& record);

/// Threshold-gated JSONL sink. Thread-safe.
class SlowQueryLog {
 public:
  /// `sink` must outlive the log. Queries at or above `threshold_micros`
  /// are logged; a negative threshold disables logging entirely.
  SlowQueryLog(std::ostream* sink, int64_t threshold_micros)
      : sink_(sink), threshold_micros_(threshold_micros) {}

  int64_t threshold_micros() const { return threshold_micros_; }

  /// Writes one JSONL line if the record crosses the threshold. Returns
  /// whether it logged.
  bool MaybeLog(const SlowQueryRecord& record);

  /// Lines written so far.
  uint64_t logged() const;

 private:
  std::ostream* sink_;
  int64_t threshold_micros_;
  mutable std::mutex mu_;
  uint64_t logged_ = 0;
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslash, control characters).
std::string JsonEscape(const std::string& value);

}  // namespace vulnds::obs

#endif  // VULNDS_OBS_SLOW_QUERY_LOG_H_
