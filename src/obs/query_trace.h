// Per-query stage spans: a QueryTrace rides along a single Detect/Truth
// request and records wall-time per pipeline stage (bounds fixpoint,
// candidate reduction, sampling waves, cache insert) plus wave-level detail
// from the bottom-k runner. One trace belongs to one query; it is NOT
// thread-safe on its own. When a batch leader executes a follower's job the
// promise/future handoff already orders the leader's writes before the
// follower's reads, so the single-owner contract holds across threads.
//
// The clock is injectable (ClockMicros) so tests and the serve protocol's
// time= token can be made deterministic; SteadyNowMicros() is the
// production default and matches common/timer.h's steady_clock basis.

#ifndef VULNDS_OBS_QUERY_TRACE_H_
#define VULNDS_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace vulnds::obs {

/// Monotonic microsecond clock. Injectable everywhere a wall time is
/// recorded (traces, the serve time= token, update commits) so tests can
/// pin it; null means SteadyNowMicros.
using ClockMicros = std::function<int64_t()>;

/// steady_clock now, in microseconds since an arbitrary epoch.
int64_t SteadyNowMicros();

/// One completed pipeline stage.
struct StageSpan {
  std::string name;
  int64_t micros = 0;
};

/// Trace for one query. Stages are recorded in execution order via the
/// Begin/End pair (nested stages are not modeled — the detect pipeline is
/// sequential) or injected whole via AddStage.
class QueryTrace {
 public:
  QueryTrace() = default;
  explicit QueryTrace(ClockMicros clock) : clock_(std::move(clock)) {}

  /// Starts timing `name`. An unfinished previous stage is ended first so a
  /// forgotten EndStage cannot double-count time.
  void BeginStage(const std::string& name);

  /// Ends the stage opened by the last BeginStage. No-op when none is open.
  void EndStage();

  /// Appends a pre-measured stage (used when the caller already timed the
  /// work, e.g. the cache-hit fast path).
  void AddStage(const std::string& name, int64_t micros);

  const std::vector<StageSpan>& stages() const { return stages_; }

  /// Sum of all recorded stage micros.
  int64_t TotalMicros() const;

  int64_t Now() const;

  // Wave-level detail, filled by the bottom-k runner when this trace is
  // attached to a BSRBK run (zero otherwise).
  uint64_t waves_issued = 0;
  uint64_t worlds_wasted = 0;
  /// Sample index the run stopped at (== total planned samples when the
  /// early-stop rule never fired).
  uint64_t early_stop_position = 0;
  bool early_stopped = false;

 private:
  ClockMicros clock_;  // null -> SteadyNowMicros
  std::vector<StageSpan> stages_;
  bool open_ = false;
  int64_t open_start_ = 0;
};

}  // namespace vulnds::obs

#endif  // VULNDS_OBS_QUERY_TRACE_H_
