#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vulnds::obs {

namespace {

// Serialized-label key for the per-family series map. Uses the rendered
// form so the map's iteration order is the exposition order.
std::string SeriesKey(const LabelSet& labels) { return RenderLabels(labels); }

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// %.17g round-trips doubles; exposition values use the shortest exact form
// a scraper can parse back. Integers render without an exponent.
std::string FormatValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    std::ostringstream out;
    out << static_cast<long long>(value);
    return out.str();
  }
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  bounds_.erase(std::remove_if(bounds_.begin(), bounds_.end(),
                               [](double b) { return !std::isfinite(b); }),
                bounds_.end());
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  // First bucket whose upper edge admits the value; the +Inf bucket (index
  // bounds_.size()) catches everything else, NaN included, so Count() always
  // equals the number of Observe calls.
  const std::size_t index = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[index].fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> cumulative(bounds_.size() + 1, 0);
  uint64_t running = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    running += counts_[i].load(std::memory_order_relaxed);
    cumulative[i] = running;
  }
  return cumulative;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<uint64_t> cumulative = CumulativeCounts();
  const uint64_t total = cumulative.back();
  if (total == 0) return 0.0;
  // Target rank in [1, total]; the bucket holding it gets interpolated.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * total)));
  std::size_t bucket = 0;
  while (bucket < cumulative.size() && cumulative[bucket] < rank) ++bucket;
  if (bucket >= bounds_.size()) {
    // +Inf bucket: no finite upper edge to interpolate toward. Report the
    // largest finite bound (a lower bound on the true quantile).
    return bounds_.empty() ? 0.0 : bounds_.back();
  }
  const double upper = bounds_[bucket];
  const double lower = bucket == 0 ? 0.0 : bounds_[bucket - 1];
  const uint64_t below = bucket == 0 ? 0 : cumulative[bucket - 1];
  const uint64_t in_bucket = cumulative[bucket] - below;
  if (in_bucket == 0) return upper;
  const double fraction =
      static_cast<double>(rank - below) / static_cast<double>(in_bucket);
  return lower + (upper - lower) * fraction;
}

MetricRegistry::Series* MetricRegistry::GetSeries(
    const std::string& name, const std::string& help, MetricKind kind,
    const LabelSet& labels, const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [family_it, family_created] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (family_created) {
    family.help = help;
    family.kind = kind;
    if (bounds != nullptr) family.bounds = *bounds;
  } else if (family.kind != kind) {
    throw std::logic_error("metric '" + name + "' registered as " +
                           KindName(family.kind) + ", requested as " +
                           KindName(kind));
  }
  auto [series_it, series_created] =
      family.series.try_emplace(SeriesKey(labels));
  Series& series = series_it->second;
  if (series_created) {
    series.labels = labels;
    switch (kind) {
      case MetricKind::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        series.histogram = std::make_unique<Histogram>(family.bounds);
        break;
    }
  }
  return &series;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    const LabelSet& labels) {
  return GetSeries(name, help, MetricKind::kCounter, labels, nullptr)
      ->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                const LabelSet& labels) {
  return GetSeries(name, help, MetricKind::kGauge, labels, nullptr)
      ->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        const std::vector<double>& bounds,
                                        const LabelSet& labels) {
  return GetSeries(name, help, MetricKind::kHistogram, labels, &bounds)
      ->histogram.get();
}

std::string MetricRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    out << "# HELP " << name << " " << EscapeHelp(family.help) << "\n";
    out << "# TYPE " << name << " " << KindName(family.kind) << "\n";
    for (const auto& [key, series] : family.series) {
      switch (family.kind) {
        case MetricKind::kCounter:
          out << name << RenderLabels(series.labels) << " "
              << series.counter->Value() << "\n";
          break;
        case MetricKind::kGauge:
          out << name << RenderLabels(series.labels) << " "
              << FormatValue(series.gauge->Value()) << "\n";
          break;
        case MetricKind::kHistogram: {
          const Histogram& hist = *series.histogram;
          const std::vector<uint64_t> cumulative = hist.CumulativeCounts();
          for (std::size_t i = 0; i < hist.bounds().size(); ++i) {
            const Label le{"le", FormatValue(hist.bounds()[i])};
            out << name << "_bucket" << RenderLabels(series.labels, &le)
                << " " << cumulative[i] << "\n";
          }
          const Label le_inf{"le", "+Inf"};
          out << name << "_bucket" << RenderLabels(series.labels, &le_inf)
              << " " << cumulative.back() << "\n";
          out << name << "_sum" << RenderLabels(series.labels) << " "
              << FormatValue(hist.Sum()) << "\n";
          // _count is the +Inf cumulative read from the SAME snapshot, so
          // the exposition invariant holds under concurrent Observe.
          out << name << "_count" << RenderLabels(series.labels) << " "
              << cumulative.back() << "\n";
          break;
        }
      }
    }
  }
  return out.str();
}

std::size_t MetricRegistry::family_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeHelp(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderLabels(const LabelSet& labels, const Label* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra->first;
    out += "=\"";
    out += EscapeLabelValue(extra->second);
    out += "\"";
  }
  out += "}";
  return out;
}

const std::vector<double>& LatencyBucketsMicros() {
  // 1-2.5-5 ladder over seven decades: 1us (cached-hit floor) to 10s
  // (paper-scale cold detect ceiling).
  static const std::vector<double> kBuckets = {
      1,       2.5,       5,       10,      25,      50,        100,
      250,     500,       1000,    2500,    5000,    10000,     25000,
      50000,   100000,    250000,  500000,  1000000, 2500000,   5000000,
      10000000};
  return kBuckets;
}

}  // namespace vulnds::obs
