// NetServer: the serve stack's real transport — a TCP and/or Unix-domain
// front end running one ServeSession per connection over the shared
// QueryEngine / UpdateBackend, with production traffic discipline.
//
// Architecture. One acceptor thread polls the listeners plus a drain
// self-pipe; each admitted connection gets a dedicated thread running the
// blocking read -> LineSplitter -> ServeSession -> send loop (sessions are
// long-lived blocking loops, so they must never run on the engine's
// sampling pool — see serve_server.h). The protocol spoken over a socket is
// byte-identical to the stdin front: both feed the same ServeSession through
// the same splitter.
//
// Traffic discipline:
//   * Admission control. At most `max_connections` connections are live;
//     an over-cap client is accepted just long enough to receive a single
//     "err busy" line and a clean close — never a silent hang, never an
//     unbounded backlog. Because every admitted request runs synchronously
//     on its connection's thread, the cap also bounds the engine's
//     concurrent request load (the serve layer's backpressure valve).
//   * Line cap. Socket reads flow through the same capped LineSplitter as
//     stdin (kMaxRequestLineBytes): a hostile client streaming bytes
//     without a newline holds at most the cap in memory and earns one err.
//   * Timeouts. idle_timeout_ms bounds the quiet time between requests;
//     read_timeout_ms bounds the stall once a request line has started
//     (slow-loris); write_timeout_ms bounds a response send against an
//     unread socket. Each expiry counts a vulnds_net_timeouts_total{kind}
//     and closes the connection (idle/read get a best-effort err line).
//   * Graceful drain. BeginDrain() — or one byte written to drain_fd(),
//     which is async-signal-safe and what the SIGTERM handler does — stops
//     the acceptor, wakes every connection via the shared drain pipe,
//     lets requests already received run to completion with their
//     responses fully sent, then closes. Join() returns once every thread
//     is done; counters live in the engine's MetricRegistry so the final
//     scrape/stats flush sees them. The protocol's `shutdown` verb triggers
//     the same drain from any connected client.
//
// Metrics (registered at construction so the families are present from the
// first scrape): vulnds_net_connections{state=active|draining} gauges,
// vulnds_net_accepted_total, vulnds_net_rejected_total{reason},
// vulnds_net_timeouts_total{kind}, and a per-connection request-count
// histogram vulnds_net_requests_per_connection.

#ifndef VULNDS_NET_NET_SERVER_H_
#define VULNDS_NET_NET_SERVER_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/session.h"
#include "serve/update_backend.h"

namespace vulnds::net {

struct NetServerOptions {
  /// TCP listener: port -1 disables, 0 binds an ephemeral port (read it
  /// back with tcp_port() after Start()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// Unix-domain listener: empty disables. A stale socket file is replaced
  /// at Start() and unlinked again when the server drains.
  std::string unix_path;

  /// Admission cap: live connections beyond this answer one "err busy" and
  /// are closed. Also the bound on concurrent in-flight requests.
  std::size_t max_connections = 64;

  int idle_timeout_ms = 300'000;  ///< max quiet time between requests
  int read_timeout_ms = 30'000;   ///< max stall inside a started line
  int write_timeout_ms = 10'000;  ///< budget for sending one response
  int listen_backlog = 128;
};

/// Point-in-time copy of the net layer's counters (source of truth is the
/// engine's MetricRegistry; this is the test/ops-friendly view).
struct NetStatsSnapshot {
  std::size_t accepted = 0;
  std::size_t rejected_busy = 0;
  std::size_t idle_timeouts = 0;
  std::size_t read_timeouts = 0;
  std::size_t write_timeouts = 0;
  std::size_t active = 0;    ///< connections currently open, not draining
  std::size_t draining = 0;  ///< connections finishing in-flight work
};

class NetServer {
 public:
  /// `updates` may be nullptr (update verbs answer errors). Metrics are
  /// registered in engine->registry().
  NetServer(serve::QueryEngine* engine, serve::UpdateBackend* updates,
            NetServerOptions options);

  /// Drains and joins; a destructed server has no live threads.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds the configured listeners and starts the acceptor thread. At
  /// least one transport must be configured.
  Status Start();

  /// The bound TCP port (after Start(); -1 when TCP is disabled).
  int tcp_port() const { return bound_tcp_port_; }

  /// Begins graceful drain: stop accepting, wake every connection, finish
  /// requests already received, close. Idempotent, callable from any
  /// thread (NOT from a signal handler — write to drain_fd() there).
  void BeginDrain();

  /// Write end of the drain self-pipe. Writing one byte triggers the same
  /// drain as BeginDrain() and is async-signal-safe — this is the fd a
  /// SIGTERM handler writes to (see InstallDrainOnSignal).
  int drain_fd() const { return drain_pipe_write_; }

  /// Blocks until the acceptor and every connection thread have finished.
  /// Without a prior drain this waits for clients to leave on their own;
  /// after BeginDrain() it completes promptly.
  void Join();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  NetStatsSnapshot stats() const;

  /// The shared per-server session counters (exported by the `metrics`
  /// and `stats` verbs of every session this server runs).
  const serve::ServerStats& server_stats() const { return server_stats_; }

 private:
  struct Conn {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void RunConnection(Conn* conn);
  /// Accepts from one listener and either admits (spawns a connection
  /// thread) or rejects with "err busy".
  void HandleAccept(const Socket& listener);
  /// Joins and erases finished connections (acceptor housekeeping).
  void ReapFinishedConns();

  serve::QueryEngine* engine_;
  serve::UpdateBackend* updates_;
  NetServerOptions options_;

  Socket tcp_listener_;
  Socket unix_listener_;
  int bound_tcp_port_ = -1;

  // Drain self-pipe: the write end is the async-signal-safe trigger; the
  // read end is polled by the acceptor AND every connection, and is never
  // drained, so one written byte wakes every poller forever after.
  int drain_pipe_read_ = -1;
  int drain_pipe_write_ = -1;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  std::thread acceptor_;
  std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;
  /// Live connections, counted at admission time in the acceptor so two
  /// racing accepts cannot both squeeze under the cap.
  std::atomic<std::size_t> live_conns_{0};

  serve::ServerStats server_stats_;

  // Registry-backed counters/gauges, resolved once at construction.
  obs::Counter* accepted_;
  obs::Counter* rejected_busy_;
  obs::Counter* idle_timeouts_;
  obs::Counter* read_timeouts_;
  obs::Counter* write_timeouts_;
  obs::Gauge* active_gauge_;
  obs::Gauge* draining_gauge_;
  obs::Histogram* requests_per_conn_;
};

/// Installs a `signum` (typically SIGTERM) handler that writes one byte to
/// `server`'s drain fd — the POSIX-correct graceful-stop hook: the handler
/// itself only calls write(2). One server per process can be registered;
/// installing for another server replaces the target. Call
/// ResetDrainSignal before the server is destroyed.
Status InstallDrainOnSignal(NetServer* server, int signum);

/// Restores the default disposition for `signum` and forgets the server.
void ResetDrainSignal(int signum);

}  // namespace vulnds::net

#endif  // VULNDS_NET_NET_SERVER_H_
