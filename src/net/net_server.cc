#include "net/net_server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "common/line_splitter.h"
#include "serve/io_metrics.h"

namespace vulnds::net {

namespace {

/// Request-per-connection count ladder: short scripted sessions land in the
/// low buckets, long-lived bench/ops sessions in the high ones.
const std::vector<double>& RequestsPerConnBuckets() {
  static const std::vector<double> kBuckets = {0,  1,   2,   5,    10,
                                               25, 100, 500, 2500, 10000};
  return kBuckets;
}

}  // namespace

NetServer::NetServer(serve::QueryEngine* engine, serve::UpdateBackend* updates,
                     NetServerOptions options)
    : engine_(engine), updates_(updates), options_(std::move(options)) {
  obs::MetricRegistry* reg = engine_->registry();
  accepted_ = reg->GetCounter("vulnds_net_accepted_total",
                              "Connections admitted by the socket front end");
  rejected_busy_ =
      reg->GetCounter("vulnds_net_rejected_total",
                      "Connections refused by the socket front end",
                      {{"reason", "busy"}});
  const std::string timeout_help =
      "Connections closed by a net-layer deadline";
  idle_timeouts_ = reg->GetCounter("vulnds_net_timeouts_total", timeout_help,
                                   {{"kind", "idle"}});
  read_timeouts_ = reg->GetCounter("vulnds_net_timeouts_total", timeout_help,
                                   {{"kind", "read"}});
  write_timeouts_ = reg->GetCounter("vulnds_net_timeouts_total", timeout_help,
                                    {{"kind", "write"}});
  const std::string conn_help = "Open socket connections by lifecycle state";
  active_gauge_ =
      reg->GetGauge("vulnds_net_connections", conn_help, {{"state", "active"}});
  draining_gauge_ = reg->GetGauge("vulnds_net_connections", conn_help,
                                  {{"state", "draining"}});
  requests_per_conn_ = reg->GetHistogram(
      "vulnds_net_requests_per_connection",
      "Requests served over one connection's lifetime",
      RequestsPerConnBuckets());
}

NetServer::~NetServer() {
  if (started_.load(std::memory_order_acquire)) {
    BeginDrain();
    Join();
  }
  if (drain_pipe_read_ >= 0) ::close(drain_pipe_read_);
  if (drain_pipe_write_ >= 0) ::close(drain_pipe_write_);
}

Status NetServer::Start() {
  if (options_.tcp_port < 0 && options_.unix_path.empty()) {
    return Status::InvalidArgument(
        "net server needs a transport: tcp port and/or unix path");
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError("pipe: " + std::string(std::strerror(errno)));
  }
  drain_pipe_read_ = pipe_fds[0];
  drain_pipe_write_ = pipe_fds[1];
  // Non-blocking write end: the SIGTERM handler's write(2) must never block
  // even if the pipe is somehow full (any prior byte already woke everyone).
  (void)SetNonBlocking(drain_pipe_write_);

  if (options_.tcp_port >= 0) {
    Result<Socket> listener = ListenTcp(options_.tcp_host, options_.tcp_port,
                                        options_.listen_backlog);
    if (!listener.ok()) return listener.status();
    tcp_listener_ = listener.MoveValue();
    Result<int> port = TcpPort(tcp_listener_);
    if (!port.ok()) return port.status();
    bound_tcp_port_ = port.value();
  }
  if (!options_.unix_path.empty()) {
    Result<Socket> listener =
        ListenUnix(options_.unix_path, options_.listen_backlog);
    if (!listener.ok()) return listener.status();
    unix_listener_ = listener.MoveValue();
  }

  started_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetServer::BeginDrain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  if (drain_pipe_write_ >= 0) {
    const char byte = 'd';
    // The byte is the wakeup; the atomic above is the state. A full pipe
    // (impossible with one byte, but cheap to tolerate) is fine to ignore.
    (void)!::write(drain_pipe_write_, &byte, 1);
  }
}

void NetServer::Join() {
  if (acceptor_.joinable()) acceptor_.join();
  // After the acceptor exits nothing mutates conns_ concurrently, but take
  // the lock anyway so TSan sees the handoff.
  std::list<std::unique_ptr<Conn>> remaining;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    remaining.swap(conns_);
  }
  for (auto& conn : remaining) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

NetStatsSnapshot NetServer::stats() const {
  NetStatsSnapshot snapshot;
  snapshot.accepted = accepted_->Value();
  snapshot.rejected_busy = rejected_busy_->Value();
  snapshot.idle_timeouts = idle_timeouts_->Value();
  snapshot.read_timeouts = read_timeouts_->Value();
  snapshot.write_timeouts = write_timeouts_->Value();
  snapshot.active = static_cast<std::size_t>(active_gauge_->Value());
  snapshot.draining = static_cast<std::size_t>(draining_gauge_->Value());
  return snapshot;
}

void NetServer::AcceptLoop() {
  for (;;) {
    std::vector<struct pollfd> pfds;
    pfds.push_back({drain_pipe_read_, POLLIN, 0});
    if (tcp_listener_.valid()) pfds.push_back({tcp_listener_.fd(), POLLIN, 0});
    if (unix_listener_.valid()) {
      pfds.push_back({unix_listener_.fd(), POLLIN, 0});
    }
    // Wake periodically even with no traffic so finished connections are
    // reaped promptly rather than accumulating until the next accept.
    const int rc = ::poll(pfds.data(), pfds.size(), 1000);
    if (rc < 0 && errno != EINTR) break;
    if (draining_.load(std::memory_order_acquire) ||
        (pfds[0].revents & POLLIN) != 0) {
      // The pipe byte may have come straight from a signal handler, which
      // cannot touch the atomic itself — publish the state here.
      BeginDrain();
      break;
    }
    if (rc > 0) {
      for (std::size_t i = 1; i < pfds.size(); ++i) {
        if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
        const Socket& listener =
            pfds[i].fd == tcp_listener_.fd() ? tcp_listener_ : unix_listener_;
        HandleAccept(listener);
      }
    }
    ReapFinishedConns();
  }
  // Drain: stop accepting immediately. Closing the listeners makes new
  // connects fail fast instead of queueing in a dead backlog.
  tcp_listener_.Close();
  unix_listener_.Close();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  // Connections saw the same pipe byte; wait for them here so Join() only
  // has stragglers to collect.
  for (;;) {
    ReapFinishedConns();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void NetServer::HandleAccept(const Socket& listener) {
  // Accept everything the poll reported; with a non-blocking listener the
  // loop ends on NotFound (EAGAIN).
  for (;;) {
    Result<Socket> accepted = Accept(listener);
    if (!accepted.ok()) return;
    Socket socket = accepted.MoveValue();
    const std::size_t live = live_conns_.load(std::memory_order_acquire);
    if (live >= options_.max_connections) {
      rejected_busy_->Increment();
      static constexpr char kBusy[] = "err busy\n";
      (void)SendAll(socket.fd(), kBusy, sizeof(kBusy) - 1,
                    options_.write_timeout_ms);
      // Half-close so the err line is delivered before the FIN even if the
      // client already sent a request we will never read.
      ::shutdown(socket.fd(), SHUT_WR);
      continue;  // Socket destructor closes
    }
    live_conns_.fetch_add(1, std::memory_order_acq_rel);
    accepted_->Increment();
    active_gauge_->Add(1);
    auto conn = std::make_unique<Conn>();
    conn->socket = std::move(socket);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { RunConnection(raw); });
  }
}

void NetServer::ReapFinishedConns() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void NetServer::RunConnection(Conn* conn) {
  const int fd = conn->socket.fd();
  server_stats_.sessions_started.fetch_add(1, std::memory_order_relaxed);
  serve::ServeSession session(engine_, updates_, &server_stats_);
  session.set_drain_hook([this] { BeginDrain(); });
  LineSplitter splitter(serve::kMaxRequestLineBytes);

  std::size_t requests = 0;
  bool counted_draining = false;  // gauge state: active -> draining
  int64_t last_byte_ms = SteadyMillis();
  int64_t last_request_ms = last_byte_ms;
  bool open = true;

  // Sends one response within the write budget; false poisons the stream.
  auto send_response = [&](const std::string& text) {
    const IoStatus st =
        SendAll(fd, text.data(), text.size(), options_.write_timeout_ms);
    if (st == IoStatus::kTimeout) write_timeouts_->Increment();
    if (st == IoStatus::kError) {
      // A hard send failure (real or injected) drops only this connection;
      // the session's committed state is untouched.
      serve::CountIoError(engine_->registry(), "net_send", "error");
    }
    return st == IoStatus::kOk;
  };
  // Runs every complete line the splitter holds. Returns false when the
  // connection should close (quit/shutdown, or a failed send).
  auto pump_events = [&] {
    std::string line;
    for (;;) {
      const LineSplitter::Event event = splitter.Next(&line);
      if (event == LineSplitter::Event::kNone) return true;
      std::ostringstream out;
      bool keep_going = true;
      if (event == LineSplitter::Event::kOversized) {
        session.HandleOversizedLine(out);
      } else {
        keep_going = session.HandleLine(line, out);
        ++requests;
        last_request_ms = SteadyMillis();
      }
      const std::string response = out.str();
      if (!response.empty() && !send_response(response)) return false;
      if (!keep_going) return false;
    }
  };

  while (open) {
    if (!pump_events()) break;
    if (draining_.load(std::memory_order_acquire)) {
      if (!counted_draining) {
        counted_draining = true;
        active_gauge_->Add(-1);
        draining_gauge_->Add(1);
      }
      // One zero-wait sweep picks up requests the kernel had already
      // received when the drain fired; they count as in-flight and are
      // answered. Anything arriving after the sweep is the client's loss.
      char buf[4096];
      std::size_t received = 0;
      for (int sweep = 0; sweep < 64; ++sweep) {  // bounded: drain must end
        if (RecvSome(fd, buf, sizeof(buf), 0, &received) != IoStatus::kOk) {
          break;
        }
        splitter.Feed(buf, received);
      }
      (void)pump_events();
      break;
    }

    // Two deadlines, one armed at a time: mid-line we are waiting for the
    // rest of a started request (read timeout, the slow-loris bound);
    // between requests we are waiting for the client to want something
    // (idle timeout).
    const bool mid_line = splitter.mid_line();
    const int64_t now = SteadyMillis();
    const int64_t budget = mid_line ? options_.read_timeout_ms
                                    : options_.idle_timeout_ms;
    const int64_t anchor = mid_line ? last_byte_ms : last_request_ms;
    const int64_t remaining = anchor + budget - now;
    if (remaining <= 0) {
      if (mid_line) {
        read_timeouts_->Increment();
        (void)send_response("err read timeout, closing\n");
      } else {
        idle_timeouts_->Increment();
        (void)send_response("err idle timeout, closing\n");
      }
      break;
    }

    struct pollfd pfds[2] = {{fd, POLLIN, 0}, {drain_pipe_read_, POLLIN, 0}};
    const int rc = ::poll(pfds, 2, static_cast<int>(remaining));
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;  // deadline re-checked at loop top
    if ((pfds[1].revents & POLLIN) != 0) {
      // Signal-handler path: the byte precedes the atomic; publish it so
      // the loop top (after pumping any data read below) drains.
      BeginDrain();
    }
    if ((pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      char buf[4096];
      std::size_t received = 0;
      const IoStatus st = RecvSome(fd, buf, sizeof(buf), 0, &received);
      switch (st) {
        case IoStatus::kOk:
          splitter.Feed(buf, received);
          last_byte_ms = SteadyMillis();
          break;
        case IoStatus::kTimeout:
          break;  // spurious readiness; deadlines re-arm at loop top
        case IoStatus::kClosed: {
          // Peer EOF. Complete lines were already pumped at the loop top,
          // so only a final unterminated line can remain; it still deserves
          // an answer (getline parity with the stdin front), best-effort.
          std::string line;
          const LineSplitter::Event tail = splitter.Finish(&line);
          if (tail != LineSplitter::Event::kNone) {
            std::ostringstream out;
            if (tail == LineSplitter::Event::kOversized) {
              session.HandleOversizedLine(out);
            } else {
              session.HandleLine(line, out);
              ++requests;
            }
            if (!out.str().empty()) (void)send_response(out.str());
          }
          open = false;
          break;
        }
        case IoStatus::kError:
          open = false;
          break;
      }
    }
  }

  ::shutdown(fd, SHUT_WR);
  requests_per_conn_->Observe(static_cast<double>(requests));
  if (counted_draining) {
    draining_gauge_->Add(-1);
  } else {
    active_gauge_->Add(-1);
  }
  server_stats_.sessions_finished.fetch_add(1, std::memory_order_relaxed);
  live_conns_.fetch_sub(1, std::memory_order_acq_rel);
  conn->done.store(true, std::memory_order_release);
}

namespace {

// One drain target per process: the handler may only call async-signal-safe
// functions, so it writes a byte to the registered fd and nothing else.
std::atomic<int> g_drain_signal_fd{-1};

extern "C" void DrainSignalHandler(int /*signum*/) {
  const int fd = g_drain_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    (void)!::write(fd, &byte, 1);
  }
}

}  // namespace

Status InstallDrainOnSignal(NetServer* server, int signum) {
  g_drain_signal_fd.store(server->drain_fd(), std::memory_order_relaxed);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = DrainSignalHandler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (::sigaction(signum, &action, nullptr) != 0) {
    return Status::IOError("sigaction: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

void ResetDrainSignal(int signum) {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = SIG_DFL;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(signum, &action, nullptr);
  g_drain_signal_fd.store(-1, std::memory_order_relaxed);
}

}  // namespace vulnds::net
