#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace vulnds::net {

namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// Waits for `events` on `fd` for at most `timeout_ms` (< 0 waits forever).
/// Returns poll's result with EINTR retried against the same deadline.
int PollOne(int fd, short events, int timeout_ms) {
  const int64_t deadline = timeout_ms < 0 ? -1 : SteadyMillis() + timeout_ms;
  for (;;) {
    int wait = -1;
    if (deadline >= 0) {
      const int64_t remaining = deadline - SteadyMillis();
      wait = remaining > 0 ? static_cast<int>(remaining) : 0;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, wait);
    if (rc >= 0 || errno != EINTR) return rc;
  }
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(ErrnoText("fcntl(O_NONBLOCK)"));
  }
  return Status::OK();
}

Result<Socket> ListenTcp(const std::string& host, int port, int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("tcp port out of range: " +
                                   std::to_string(port));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad tcp host '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoText("socket"));
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(ErrnoText(("bind " + host + ":" +
                                      std::to_string(port)).c_str()));
  }
  if (const Status st = SetNonBlocking(fd); !st.ok()) return st;
  if (::listen(fd, backlog) != 0) return Status::IOError(ErrnoText("listen"));
  return sock;
}

Result<int> TcpPort(const Socket& socket) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return Status::IOError(ErrnoText("getsockname"));
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<Socket> ListenUnix(const std::string& path, int backlog) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path empty or longer than " +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoText("socket"));
  ::unlink(path.c_str());  // drop a stale socket file from a previous run
  Socket sock(fd);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(ErrnoText(("bind " + path).c_str()));
  }
  if (const Status st = SetNonBlocking(fd); !st.ok()) return st;
  if (::listen(fd, backlog) != 0) return Status::IOError(ErrnoText("listen"));
  return sock;
}

Result<Socket> DialTcp(const std::string& host, int port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad tcp host '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoText("socket"));
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(ErrnoText(("connect " + host + ":" +
                                      std::to_string(port)).c_str()));
  }
  if (const Status st = SetNonBlocking(fd); !st.ok()) return st;
  return sock;
}

Result<Socket> DialUnix(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long: '" +
                                   path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoText("socket"));
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(ErrnoText(("connect " + path).c_str()));
  }
  if (const Status st = SetNonBlocking(fd); !st.ok()) return st;
  return sock;
}

Result<Socket> Accept(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      if (const Status st = SetNonBlocking(fd); !st.ok()) return st;
      return sock;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      // The pending client vanished between poll and accept.
      return Status::NotFound("no pending connection");
    }
    return Status::IOError(ErrnoText("accept"));
  }
}

IoStatus RecvSome(int fd, char* buf, std::size_t cap, int timeout_ms,
                  std::size_t* received) {
  *received = 0;
  const int rc = PollOne(fd, POLLIN, timeout_ms);
  if (rc == 0) return IoStatus::kTimeout;
  if (rc < 0) return IoStatus::kError;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) {
      *received = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    // POLLIN without data (spurious wakeup on a fresh event): report it as
    // a zero-progress timeout so the caller re-enters its deadline loop.
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
    if (errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
}

IoStatus SendAll(int fd, const char* data, std::size_t size, int timeout_ms) {
  // Injected send failure: the connection layer must drop the stream
  // exactly as it would on a real mid-response EIO (the response may be
  // partially delivered; the stream is poisoned either way).
  if (fail::Check(fail::points::kNetSendWrite) != fail::Outcome::kNone) {
    return IoStatus::kError;
  }
  const int64_t deadline = SteadyMillis() + timeout_ms;
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int64_t remaining = deadline - SteadyMillis();
      if (remaining <= 0) return IoStatus::kTimeout;
      const int rc = PollOne(fd, POLLOUT, static_cast<int>(remaining));
      if (rc == 0) return IoStatus::kTimeout;
      if (rc < 0) return IoStatus::kError;
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return IoStatus::kClosed;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

}  // namespace vulnds::net
