// Thin POSIX socket layer for the serve front end: owning fd wrapper,
// TCP / Unix-domain listeners and dialers, and deadline-bounded I/O.
//
// Everything here is transport plumbing with two hard rules:
//   * no call blocks past its deadline — sockets are switched to
//     non-blocking and every wait goes through poll(2) with a computed
//     remaining-time budget, so a stalled or hostile peer costs bounded
//     wall time, never a wedged thread;
//   * no call raises SIGPIPE — writes use send(MSG_NOSIGNAL), so a peer
//     closing mid-response surfaces as kClosed, not process death.
// Errors carry errno text in the Status message. The layer knows nothing
// about the serve protocol; framing lives in common/line_splitter.h and
// policy (caps, timeouts, drain) in net_server.h.

#ifndef VULNDS_NET_SOCKET_H_
#define VULNDS_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace vulnds::net {

/// Owning file-descriptor handle; move-only, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Binds and listens on TCP `host:port`. Port 0 binds an ephemeral port —
/// read the actual one back with TcpPort(). SO_REUSEADDR is set so a
/// restarted server does not trip over TIME_WAIT.
Result<Socket> ListenTcp(const std::string& host, int port, int backlog);

/// The locally bound TCP port of a listening/connected socket.
Result<int> TcpPort(const Socket& socket);

/// Binds and listens on a Unix-domain socket at `path`. A stale socket
/// file at the path is unlinked first (the caller owns the path's
/// namespace); the file is unlinked again by NetServer on drain.
Result<Socket> ListenUnix(const std::string& path, int backlog);

/// Blocking client connects (tests, benches, the CLI's own tooling).
Result<Socket> DialTcp(const std::string& host, int port);
Result<Socket> DialUnix(const std::string& path);

/// Accepts one pending connection from a listener; the returned socket is
/// already non-blocking. Call only after poll reported the listener
/// readable; a racing client that vanished returns kClosed-like NotFound.
Result<Socket> Accept(const Socket& listener);

/// Marks `fd` non-blocking (listeners and accepted/dialed sockets).
Status SetNonBlocking(int fd);

/// Outcome of one deadline-bounded I/O call.
enum class IoStatus {
  kOk,       ///< made progress (RecvSome: >= 1 byte; SendAll: all bytes)
  kTimeout,  ///< deadline expired before the call could complete
  kClosed,   ///< peer closed (recv 0, EPIPE/ECONNRESET on send)
  kError,    ///< unexpected errno; connection should be dropped
};

/// Receives up to `cap` bytes, waiting at most `timeout_ms` for the first
/// byte. kOk sets *received >= 1; a peer shutdown is kClosed.
IoStatus RecvSome(int fd, char* buf, std::size_t cap, int timeout_ms,
                  std::size_t* received);

/// Sends the whole buffer, spending at most `timeout_ms` total across
/// short writes. Partial progress past the deadline is kTimeout — the
/// caller must treat the stream as poisoned either way.
IoStatus SendAll(int fd, const char* data, std::size_t size, int timeout_ms);

/// steady_clock now in milliseconds: the deadline arithmetic base shared
/// by this layer and the connection loops above it.
int64_t SteadyMillis();

}  // namespace vulnds::net

#endif  // VULNDS_NET_SOCKET_H_
