// vulnds_cli: command-line front end for the library.
//
//   vulnds_cli generate <dataset> <scale> <seed> <out.graph>
//       Instantiates a registry dataset (Table 2 name, case-insensitive)
//       and writes it in the vulnds-graph text format.
//   vulnds_cli convert <in.graph> <out.graph> <text|binary>
//       Re-encodes a graph between the text format and the v2 binary
//       snapshot format (input format is auto-detected).
//   vulnds_cli stats <graph>
//       Prints node/edge counts and degree statistics.
//   vulnds_cli detect <graph> <k> [method] [key=value ...]
//       Runs top-k detection (method one of N, SN, SR, BSR, BSRBK; default
//       BSRBK) and prints the ranked nodes with scores. Flags: eps=, delta=,
//       seed=, samples= (method N budget), order= (bound order z), bk=,
//       threads= (sampling threads; 0 = one per hardware core), wave=
//       (BSRBK wave schedule: adaptive | fixed | fixed:N), simd= (kernel
//       tier: auto | avx2 | scalar; VULNDS_SIMD sets the process default).
//       Results are bit-identical for every thread count, wave schedule
//       and kernel tier.
//   vulnds_cli truth <graph> <k> [samples] [seed]
//       Prints the Monte-Carlo reference top-k (default 20000 worlds).
//   vulnds_cli serve [cache_capacity] [threads=N] [shards=N] [catalog_bytes=N]
//              [cache_shards=N] [mem_bytes=N] [spill_dir=DIR] [journal=PATH]
//              [journal_compact_bytes=N] [slowlog=path] [slowlog_ms=N]
//              [tcp=PORT] [unix=PATH] [max_conns=N]
//              [idle_timeout_ms=N] [read_timeout_ms=N] [write_timeout_ms=N]
//       Speaks the line-oriented serve protocol on stdin/stdout: graphs are
//       loaded once into a name-sharded catalog (shards= shard count,
//       catalog_bytes= resident byte budget, both optional) and repeated
//       queries hit a key-hashed sharded result cache (cache_shards= shard
//       count; 1 reproduces the old single-mutex cache).
//       Storage hierarchy: mem_bytes=N puts the whole memory hierarchy
//       (snapshots + warm detection contexts + cached results) under one
//       global byte budget; under pressure the coldest contexts are dropped
//       first, then — with spill_dir=DIR — the coldest unpinned snapshots
//       are parked on disk in the binary format and paged back on demand.
//       journal=PATH makes updates durable: every staged op and commit is
//       appended to a checksummed delta log (fsync'd at commits) and
//       replayed at startup, so committed name@vN versions survive a crash.
//       journal_compact_bytes=N bounds the journal: once a commit leaves it
//       above N bytes it is rewritten around binary snapshots of the
//       committed versions (crash-safe at every step). VULNDS_FAILPOINTS
//       arms IO fault injection (see README "Fault injection & recovery").
//       See README "Storage & durability".
//       Sampling runs on the process-wide pool by default; threads=N pins a
//       dedicated pool of N workers (requests can override per query with
//       the detect threads= key). Dynamic updates are enabled:
//       addedge/deledge/setprob stage edge mutations, commit materializes
//       them as a new immutable version registered under <name>@vN, and
//       versions lists the history.
//       Observability: the `metrics` verb renders the whole registry as
//       Prometheus text exposition; slowlog=path appends one JSON line per
//       query at or above slowlog_ms= milliseconds (default 0: every query)
//       with per-stage micros and wave detail. See README "Observability".
//       Network serving: tcp=PORT (0 = ephemeral; the bound port is printed
//       as "listening tcp=HOST:PORT") and/or unix=PATH switch the front end
//       from stdin to sockets, one session per connection over the shared
//       engine, with max_conns= admission control and the three *_timeout_ms=
//       deadlines. SIGTERM/SIGINT (or the `shutdown` verb) drain gracefully:
//       stop accepting, finish in-flight requests, exit 0. See README
//       "Network serving".
//
// All numbers are parsed with checked helpers (common/parse.h): a malformed
// argument is a usage error, never a silent zero.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "common/failpoint.h"
#include "common/parse.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "dyn/journal.h"
#include "dyn/update_manager.h"
#include "gen/datasets.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "net/net_server.h"
#include "obs/slow_query_log.h"
#include "serve/graph_catalog.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "store/memory_governor.h"
#include "vulnds/detector.h"
#include "vulnds/ground_truth.h"

namespace {

using namespace vulnds;

std::optional<DatasetId> ParseDataset(const std::string& name) {
  const std::string lower = AsciiLower(name);
  for (const DatasetId id : AllDatasets()) {
    if (AsciiLower(DatasetName(id)) == lower) return id;
  }
  return std::nullopt;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  vulnds_cli generate <dataset> <scale> <seed> <out.graph>\n"
               "  vulnds_cli convert <in.graph> <out.graph> <text|binary>\n"
               "  vulnds_cli stats <graph>\n"
               "  vulnds_cli detect <graph> <k> [method] [key=value ...]\n"
               "      keys: eps= delta= seed= samples= order= bk= method= threads=\n"
               "            wave=adaptive|fixed|fixed:N simd=auto|avx2|scalar\n"
               "  vulnds_cli truth <graph> <k> [samples] [seed]\n"
               "  vulnds_cli serve [cache_capacity] [threads=N] [shards=N]\n"
               "             [catalog_bytes=N] [cache_shards=N]\n"
               "             [mem_bytes=N] [spill_dir=DIR] [journal=PATH]\n"
               "             [journal_compact_bytes=N]\n"
               "             [slowlog=path] [slowlog_ms=N]\n"
               "             [tcp=PORT] [unix=PATH] [max_conns=N]\n"
               "             [idle_timeout_ms=N] [read_timeout_ms=N]\n"
               "             [write_timeout_ms=N]\n"
               "      serve verbs: load save detect truth stats metrics\n"
               "      catalog evict addedge deledge setprob commit versions\n"
               "      shutdown quit\n");
  return 2;
}

// Prints the parse error and returns false when `token` is not a valid
// number of the helper's type.
template <typename ParseFn, typename T>
bool ParseArgOr(ParseFn parse, const char* what, const std::string& token, T* out) {
  auto result = parse(token);
  if (!result.ok()) {
    std::fprintf(stderr, "bad %s: %s\n", what, result.status().message().c_str());
    return false;
  }
  *out = static_cast<T>(*result);
  return true;
}

int CmdGenerate(int argc, char** argv) {
  if (argc != 6) return Usage();
  const std::optional<DatasetId> id = ParseDataset(argv[2]);
  if (!id) {
    std::fprintf(stderr, "unknown dataset '%s'\n", argv[2]);
    return 1;
  }
  double scale = 0.0;
  uint64_t seed = 0;
  if (!ParseArgOr(ParseDouble, "scale", argv[3], &scale) ||
      !ParseArgOr(ParseUint64, "seed", argv[4], &seed)) {
    return Usage();
  }
  Result<UncertainGraph> graph = MakeDataset(*id, scale, seed);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const Status st = WriteGraphFile(*graph, argv[5]);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu nodes / %zu edges to %s\n", graph->num_nodes(),
              graph->num_edges(), argv[5]);
  return 0;
}

int CmdConvert(int argc, char** argv) {
  if (argc != 5) return Usage();
  const std::string fmt = AsciiLower(argv[4]);
  if (fmt != "text" && fmt != "binary") {
    std::fprintf(stderr, "unknown format '%s' (want text|binary)\n", argv[4]);
    return 1;
  }
  Result<UncertainGraph> graph = ReadGraphFile(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "read failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const Status st = WriteGraphFile(
      *graph, argv[3],
      fmt == "binary" ? GraphFileFormat::kBinary : GraphFileFormat::kText);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu nodes / %zu edges to %s (%s)\n", graph->num_nodes(),
              graph->num_edges(), argv[3], fmt.c_str());
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc != 3) return Usage();
  Result<UncertainGraph> graph = ReadGraphFile(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "read failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const GraphStats s = ComputeStats(*graph);
  std::printf("nodes:          %zu\n", s.num_nodes);
  std::printf("edges:          %zu\n", s.num_edges);
  std::printf("avg degree:     %.3f\n", s.avg_degree);
  std::printf("max degree:     %zu\n", s.max_degree);
  std::printf("max out-degree: %zu\n", s.max_out_degree);
  std::printf("max in-degree:  %zu\n", s.max_in_degree);
  return 0;
}

int CmdDetect(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<UncertainGraph> graph = ReadGraphFile(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "read failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  DetectorOptions options;
  if (!ParseArgOr(ParseUint64, "k", argv[3], &options.k)) return Usage();
  // Method and key=value flags share the serve protocol's parser, so the
  // batch and serve flag vocabularies cannot drift apart.
  int next = 4;
  if (next < argc && std::string(argv[next]).find('=') == std::string::npos) {
    Result<Method> method = serve::ParseMethodToken(argv[next]);
    if (!method.ok()) {
      std::fprintf(stderr, "%s\n", method.status().message().c_str());
      return 1;
    }
    options.method = *method;
    ++next;
  }
  for (; next < argc; ++next) {
    const Status st = serve::ApplyDetectFlag(argv[next], &options);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.message().c_str());
      return Usage();
    }
  }
  if (options.threads > kMaxDetectThreads) {
    std::fprintf(stderr, "threads must be <= %zu\n", kMaxDetectThreads);
    return Usage();
  }
  // threads=0 (the default) sizes the pool to the hardware; the results are
  // the same either way, only the wall time moves.
  ThreadPool pool(options.threads);
  options.pool = &pool;

  WallTimer timer;
  Result<DetectionResult> result = DetectTopK(*graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "detect failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  TextTable table;
  table.SetHeader({"rank", "node", "score"});
  for (std::size_t i = 0; i < result->topk.size(); ++i) {
    table.AddRow({std::to_string(i + 1), std::to_string(result->topk[i]),
                  TextTable::Num(result->scores[i], 5)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("method=%s time=%.3fs samples=%zu/%zu verified=%zu |B|=%zu%s\n",
              MethodName(options.method).c_str(), timer.Seconds(),
              result->samples_processed, result->samples_budget,
              result->verified_count, result->candidate_count,
              result->early_stopped ? " (early stop)" : "");
  if (options.method == Method::kBsrbk && result->waves_issued > 0) {
    // Schedule telemetry (varies with threads/wave; the ranking does not).
    std::printf("waves=%zu wasted_worlds=%zu wave_mode=%s\n",
                result->waves_issued, result->worlds_wasted,
                options.wave_mode == WaveMode::kAdaptive ? "adaptive" : "fixed");
  }
  return 0;
}

int CmdTruth(int argc, char** argv) {
  if (argc < 4 || argc > 6) return Usage();
  Result<UncertainGraph> graph = ReadGraphFile(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "read failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::size_t k = 0;
  std::size_t samples = kPaperGroundTruthSamples;
  uint64_t seed = 777;
  if (!ParseArgOr(ParseUint64, "k", argv[3], &k)) return Usage();
  if (argc > 4 && !ParseArgOr(ParseUint64, "samples", argv[4], &samples)) {
    return Usage();
  }
  if (argc > 5 && !ParseArgOr(ParseUint64, "seed", argv[5], &seed)) return Usage();
  ThreadPool pool;
  const GroundTruth gt = ComputeGroundTruth(*graph, samples, seed, &pool);
  TextTable table;
  table.SetHeader({"rank", "node", "p(default)"});
  std::size_t rank = 1;
  for (const NodeId v : gt.TopK(k)) {
    table.AddRow({std::to_string(rank++), std::to_string(v),
                  TextTable::Num(gt.probabilities[v], 5)});
  }
  std::printf("%s(%zu sampled worlds)\n", table.ToString().c_str(), samples);
  return 0;
}

int CmdServe(int argc, char** argv) {
  if (argc > 20) return Usage();
  serve::QueryEngineOptions engine_options;
  serve::GraphCatalogOptions catalog_options;
  net::NetServerOptions net_options;
  bool tcp_seen = false;
  bool max_conns_seen = false;
  std::optional<std::size_t> threads;
  std::string slowlog_path;
  std::optional<std::uint64_t> slowlog_ms;
  std::size_t mem_bytes = 0;
  std::string journal_path;
  std::size_t journal_compact_bytes = 0;
  bool capacity_seen = false;
  // Fault injection (tests / chaos tooling): arm failpoints named in
  // VULNDS_FAILPOINTS before any IO the knobs below can trigger, and echo
  // the armed set to stderr so a chaos run is reproducible from its log.
  if (const Status armed = fail::ArmFromEnv(); !armed.ok()) {
    std::fprintf(stderr, "serve: %s\n", armed.message().c_str());
    return 1;
  }
  for (const std::string& point : fail::ArmedPoints()) {
    std::fprintf(stderr, "failpoint armed: %s\n", point.c_str());
  }
  // Parses one of the net-layer `<key>_ms=` timeout knobs into *out.
  const auto parse_timeout = [&](const std::string& arg, const char* key,
                                 std::size_t key_len, int* out) {
    if (*out >= 0) {
      std::fprintf(stderr, "duplicate %s= argument\n", key);
      return false;
    }
    std::uint64_t ms = 0;
    if (!ParseArgOr(ParseUint64, key, arg.substr(key_len), &ms) ||
        ms > 86'400'000) {
      std::fprintf(stderr, "%s= must be a millisecond count (<= 1 day)\n", key);
      return false;
    }
    *out = static_cast<int>(ms);
    return true;
  };
  // Sentinel: -1 = "not set yet" so duplicates are caught; defaults are
  // restored after parsing.
  const net::NetServerOptions net_defaults;
  net_options.idle_timeout_ms = -1;
  net_options.read_timeout_ms = -1;
  net_options.write_timeout_ms = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("tcp=", 0) == 0) {
      if (tcp_seen) {
        std::fprintf(stderr, "duplicate tcp= argument\n");
        return Usage();
      }
      std::uint64_t port = 0;
      if (!ParseArgOr(ParseUint64, "tcp", arg.substr(4), &port) ||
          port > 65535) {
        std::fprintf(stderr, "tcp= needs a port in [0, 65535] (0 = ephemeral)\n");
        return Usage();
      }
      net_options.tcp_port = static_cast<int>(port);
      tcp_seen = true;
    } else if (arg.rfind("unix=", 0) == 0) {
      if (!net_options.unix_path.empty()) {
        std::fprintf(stderr, "duplicate unix= argument\n");
        return Usage();
      }
      net_options.unix_path = arg.substr(5);
      if (net_options.unix_path.empty()) {
        std::fprintf(stderr, "unix= needs a socket path\n");
        return Usage();
      }
    } else if (arg.rfind("max_conns=", 0) == 0) {
      if (max_conns_seen) {
        std::fprintf(stderr, "duplicate max_conns= argument\n");
        return Usage();
      }
      if (!ParseArgOr(ParseUint64, "max_conns", arg.substr(10),
                      &net_options.max_connections) ||
          net_options.max_connections == 0) {
        std::fprintf(stderr, "max_conns= needs a positive count\n");
        return Usage();
      }
      max_conns_seen = true;
    } else if (arg.rfind("idle_timeout_ms=", 0) == 0) {
      if (!parse_timeout(arg, "idle_timeout_ms", 16,
                         &net_options.idle_timeout_ms)) {
        return Usage();
      }
    } else if (arg.rfind("read_timeout_ms=", 0) == 0) {
      if (!parse_timeout(arg, "read_timeout_ms", 16,
                         &net_options.read_timeout_ms)) {
        return Usage();
      }
    } else if (arg.rfind("write_timeout_ms=", 0) == 0) {
      if (!parse_timeout(arg, "write_timeout_ms", 17,
                         &net_options.write_timeout_ms)) {
        return Usage();
      }
    } else if (arg.rfind("threads=", 0) == 0) {
      if (threads.has_value()) {
        std::fprintf(stderr, "duplicate threads= argument\n");
        return Usage();
      }
      std::size_t n = 0;
      if (!ParseArgOr(ParseUint64, "threads", arg.substr(8), &n)) return Usage();
      if (n > kMaxDetectThreads) {
        std::fprintf(stderr, "threads must be <= %zu\n", kMaxDetectThreads);
        return Usage();
      }
      threads = n;
    } else if (arg.rfind("shards=", 0) == 0) {
      if (catalog_options.shards != 0) {
        std::fprintf(stderr, "duplicate shards= argument\n");
        return Usage();
      }
      if (!ParseArgOr(ParseUint64, "shards", arg.substr(7),
                      &catalog_options.shards)) {
        return Usage();
      }
    } else if (arg.rfind("catalog_bytes=", 0) == 0) {
      if (catalog_options.byte_budget != 0) {
        std::fprintf(stderr, "duplicate catalog_bytes= argument\n");
        return Usage();
      }
      if (!ParseArgOr(ParseUint64, "catalog_bytes", arg.substr(14),
                      &catalog_options.byte_budget)) {
        return Usage();
      }
    } else if (arg.rfind("mem_bytes=", 0) == 0) {
      if (mem_bytes != 0) {
        std::fprintf(stderr, "duplicate mem_bytes= argument\n");
        return Usage();
      }
      if (!ParseArgOr(ParseUint64, "mem_bytes", arg.substr(10), &mem_bytes) ||
          mem_bytes == 0) {
        std::fprintf(stderr, "mem_bytes= needs a positive byte budget\n");
        return Usage();
      }
    } else if (arg.rfind("spill_dir=", 0) == 0) {
      if (!catalog_options.spill_dir.empty()) {
        std::fprintf(stderr, "duplicate spill_dir= argument\n");
        return Usage();
      }
      catalog_options.spill_dir = arg.substr(10);
      if (catalog_options.spill_dir.empty()) {
        std::fprintf(stderr, "spill_dir= needs a directory path\n");
        return Usage();
      }
    } else if (arg.rfind("journal=", 0) == 0) {
      if (!journal_path.empty()) {
        std::fprintf(stderr, "duplicate journal= argument\n");
        return Usage();
      }
      journal_path = arg.substr(8);
      if (journal_path.empty()) {
        std::fprintf(stderr, "journal= needs a file path\n");
        return Usage();
      }
    } else if (arg.rfind("journal_compact_bytes=", 0) == 0) {
      if (journal_compact_bytes != 0) {
        std::fprintf(stderr, "duplicate journal_compact_bytes= argument\n");
        return Usage();
      }
      if (!ParseArgOr(ParseUint64, "journal_compact_bytes", arg.substr(22),
                      &journal_compact_bytes) ||
          journal_compact_bytes == 0) {
        std::fprintf(stderr,
                     "journal_compact_bytes= needs a positive byte "
                     "threshold\n");
        return Usage();
      }
    } else if (arg.rfind("cache_shards=", 0) == 0) {
      if (engine_options.result_cache_shards != 0) {
        std::fprintf(stderr, "duplicate cache_shards= argument\n");
        return Usage();
      }
      if (!ParseArgOr(ParseUint64, "cache_shards", arg.substr(13),
                      &engine_options.result_cache_shards)) {
        return Usage();
      }
    } else if (arg.rfind("slowlog=", 0) == 0) {
      if (!slowlog_path.empty()) {
        std::fprintf(stderr, "duplicate slowlog= argument\n");
        return Usage();
      }
      slowlog_path = arg.substr(8);
      if (slowlog_path.empty()) {
        std::fprintf(stderr, "slowlog= needs a path\n");
        return Usage();
      }
    } else if (arg.rfind("slowlog_ms=", 0) == 0) {
      if (slowlog_ms.has_value()) {
        std::fprintf(stderr, "duplicate slowlog_ms= argument\n");
        return Usage();
      }
      std::uint64_t ms = 0;
      if (!ParseArgOr(ParseUint64, "slowlog_ms", arg.substr(11), &ms)) {
        return Usage();
      }
      slowlog_ms = ms;
    } else if (capacity_seen) {
      // A second positional number is a mistake (e.g. `serve 100 4` where
      // `threads=4` was meant); refuse rather than silently overwrite.
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return Usage();
    } else if (ParseArgOr(ParseUint64, "cache_capacity", arg,
                          &engine_options.result_cache_capacity)) {
      capacity_seen = true;
    } else {
      return Usage();
    }
  }
  // Default: the process-wide shared pool; threads=N pins a dedicated pool
  // (N = 0 means one worker per hardware core).
  std::optional<ThreadPool> own_pool;
  if (threads.has_value()) own_pool.emplace(*threads);
  engine_options.pool = own_pool.has_value() ? &*own_pool : &ThreadPool::Global();
  if (slowlog_ms.has_value() && slowlog_path.empty()) {
    std::fprintf(stderr, "slowlog_ms= needs slowlog=path\n");
    return Usage();
  }
  std::ofstream slowlog_file;
  std::optional<obs::SlowQueryLog> slowlog;
  if (!slowlog_path.empty()) {
    slowlog_file.open(slowlog_path, std::ios::app);
    if (!slowlog_file) {
      std::fprintf(stderr, "cannot open slowlog '%s'\n", slowlog_path.c_str());
      return 1;
    }
    const std::int64_t threshold_micros =
        static_cast<std::int64_t>(slowlog_ms.value_or(0)) * 1000;
    slowlog.emplace(&slowlog_file, threshold_micros);
    engine_options.slowlog = &*slowlog;
  }
  // Construction (and thus destruction) order matters: the governor must
  // outlive the catalog that charges through it, the catalog must outlive
  // the engine and the update manager, and the journal must outlive the
  // update manager that appends to it.
  std::optional<store::MemoryGovernor> governor;
  if (mem_bytes != 0) {
    store::MemoryGovernorOptions governor_options;
    governor_options.budget_bytes = mem_bytes;
    governor.emplace(governor_options);
    catalog_options.governor = &*governor;
  }
  if (journal_compact_bytes != 0 && journal_path.empty()) {
    std::fprintf(stderr, "journal_compact_bytes= needs journal=\n");
    return Usage();
  }
  serve::GraphCatalog catalog(catalog_options);
  std::unique_ptr<dyn::DeltaJournal> journal;
  if (!journal_path.empty()) {
    Result<std::unique_ptr<dyn::DeltaJournal>> opened =
        dyn::DeltaJournal::Open(journal_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "serve: %s\n", opened.status().message().c_str());
      return 1;
    }
    journal = opened.MoveValue();
  }
  serve::QueryEngine engine(&catalog, engine_options);
  dyn::UpdateManager updates(&catalog, journal.get());
  updates.BindObservability(engine.registry());
  updates.SetJournalCompactThreshold(journal_compact_bytes);
  if (journal != nullptr) {
    const Result<dyn::JournalReplayStats> replayed = updates.ReplayJournal();
    if (!replayed.ok()) {
      std::fprintf(stderr, "serve: journal replay failed: %s\n",
                   replayed.status().message().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "journal replayed: %zu records, %zu commits, %zu staged ops, "
                 "%zu skipped, %zu torn-tail bytes dropped\n",
                 replayed->records, replayed->commits, replayed->ops,
                 replayed->skipped, replayed->dropped_tail_bytes);
  }

  const bool socket_mode = tcp_seen || !net_options.unix_path.empty();
  if (net_options.idle_timeout_ms < 0) {
    net_options.idle_timeout_ms = net_defaults.idle_timeout_ms;
  }
  if (net_options.read_timeout_ms < 0) {
    net_options.read_timeout_ms = net_defaults.read_timeout_ms;
  }
  if (net_options.write_timeout_ms < 0) {
    net_options.write_timeout_ms = net_defaults.write_timeout_ms;
  }
  if (!socket_mode &&
      (max_conns_seen ||
       net_options.idle_timeout_ms != net_defaults.idle_timeout_ms ||
       net_options.read_timeout_ms != net_defaults.read_timeout_ms ||
       net_options.write_timeout_ms != net_defaults.write_timeout_ms)) {
    std::fprintf(stderr, "net options need tcp= and/or unix=\n");
    return Usage();
  }

  if (socket_mode) {
    net::NetServer server(&engine, &updates, net_options);
    if (const Status st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "serve: %s\n", st.message().c_str());
      return 1;
    }
    // One "listening ..." line per transport, flushed before any traffic:
    // scripts parse these to learn the ephemeral TCP port / socket path.
    if (tcp_seen) {
      std::printf("listening tcp=%s:%d\n", net_options.tcp_host.c_str(),
                  server.tcp_port());
    }
    if (!net_options.unix_path.empty()) {
      std::printf("listening unix=%s\n", net_options.unix_path.c_str());
    }
    std::fflush(stdout);
    // SIGTERM/SIGINT write one byte to the drain pipe (async-signal-safe):
    // stop accepting, finish in-flight requests, flush stats, exit 0.
    (void)net::InstallDrainOnSignal(&server, SIGTERM);
    (void)net::InstallDrainOnSignal(&server, SIGINT);
    server.Join();
    net::ResetDrainSignal(SIGTERM);
    net::ResetDrainSignal(SIGINT);
    const serve::ServerStats& stats = server.server_stats();
    const net::NetStatsSnapshot net_stats = server.stats();
    std::fprintf(stderr,
                 "serve drained: %zu sessions, %zu requests, %zu errors, "
                 "%zu updates; %zu rejected busy, %zu timeouts\n",
                 stats.sessions_finished.load(), stats.requests.load(),
                 stats.errors.load(), stats.updates.load(),
                 net_stats.rejected_busy,
                 net_stats.idle_timeouts + net_stats.read_timeouts +
                     net_stats.write_timeouts);
    return 0;
  }

  // Server-level counters even for the single-session stdin front, so the
  // `metrics` verb exports the full vulnds_server_* family set.
  serve::ServerStats server;
  const serve::ServeLoopStats stats = serve::RunServeLoop(
      std::cin, std::cout, engine, &updates, &server);
  std::fprintf(stderr, "serve session: %zu requests, %zu errors, %zu updates\n",
               stats.requests, stats.errors, stats.updates);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "convert") return CmdConvert(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "detect") return CmdDetect(argc, argv);
  if (command == "truth") return CmdTruth(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  return Usage();
}
