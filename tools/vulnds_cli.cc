// vulnds_cli: command-line front end for the library.
//
//   vulnds_cli generate <dataset> <scale> <seed> <out.graph>
//       Instantiates a registry dataset (Table 2 name, case-insensitive)
//       and writes it in the vulnds-graph text format.
//   vulnds_cli stats <graph>
//       Prints node/edge counts and degree statistics.
//   vulnds_cli detect <graph> <k> [method] [eps] [delta] [seed]
//       Runs top-k detection (method one of N, SN, SR, BSR, BSRBK;
//       default BSRBK) and prints the ranked nodes with scores.
//   vulnds_cli truth <graph> <k> [samples] [seed]
//       Prints the Monte-Carlo reference top-k (default 20000 worlds).

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "gen/datasets.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "vulnds/detector.h"
#include "vulnds/ground_truth.h"

namespace {

using namespace vulnds;

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::optional<DatasetId> ParseDataset(const std::string& name) {
  const std::string lower = Lower(name);
  for (const DatasetId id : AllDatasets()) {
    if (Lower(DatasetName(id)) == lower) return id;
  }
  return std::nullopt;
}

std::optional<Method> ParseMethod(const std::string& name) {
  const std::string lower = Lower(name);
  for (const Method m : AllMethods()) {
    if (Lower(MethodName(m)) == lower) return m;
  }
  return std::nullopt;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  vulnds_cli generate <dataset> <scale> <seed> <out.graph>\n"
               "  vulnds_cli stats <graph>\n"
               "  vulnds_cli detect <graph> <k> [method] [eps] [delta] [seed]\n"
               "  vulnds_cli truth <graph> <k> [samples] [seed]\n");
  return 2;
}

int CmdGenerate(int argc, char** argv) {
  if (argc != 6) return Usage();
  const std::optional<DatasetId> id = ParseDataset(argv[2]);
  if (!id) {
    std::fprintf(stderr, "unknown dataset '%s'\n", argv[2]);
    return 1;
  }
  const double scale = std::atof(argv[3]);
  const auto seed = static_cast<uint64_t>(std::atoll(argv[4]));
  Result<UncertainGraph> graph = MakeDataset(*id, scale, seed);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const Status st = WriteGraphFile(*graph, argv[5]);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu nodes / %zu edges to %s\n", graph->num_nodes(),
              graph->num_edges(), argv[5]);
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc != 3) return Usage();
  Result<UncertainGraph> graph = ReadGraphFile(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "read failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const GraphStats s = ComputeStats(*graph);
  std::printf("nodes:          %zu\n", s.num_nodes);
  std::printf("edges:          %zu\n", s.num_edges);
  std::printf("avg degree:     %.3f\n", s.avg_degree);
  std::printf("max degree:     %zu\n", s.max_degree);
  std::printf("max out-degree: %zu\n", s.max_out_degree);
  std::printf("max in-degree:  %zu\n", s.max_in_degree);
  return 0;
}

int CmdDetect(int argc, char** argv) {
  if (argc < 4 || argc > 8) return Usage();
  Result<UncertainGraph> graph = ReadGraphFile(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "read failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  DetectorOptions options;
  options.k = static_cast<std::size_t>(std::atoll(argv[3]));
  if (argc > 4) {
    const std::optional<Method> method = ParseMethod(argv[4]);
    if (!method) {
      std::fprintf(stderr, "unknown method '%s'\n", argv[4]);
      return 1;
    }
    options.method = *method;
  }
  if (argc > 5) options.eps = std::atof(argv[5]);
  if (argc > 6) options.delta = std::atof(argv[6]);
  if (argc > 7) options.seed = static_cast<uint64_t>(std::atoll(argv[7]));
  ThreadPool pool;
  options.pool = &pool;

  WallTimer timer;
  Result<DetectionResult> result = DetectTopK(*graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "detect failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  TextTable table;
  table.SetHeader({"rank", "node", "score"});
  for (std::size_t i = 0; i < result->topk.size(); ++i) {
    table.AddRow({std::to_string(i + 1), std::to_string(result->topk[i]),
                  TextTable::Num(result->scores[i], 5)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("method=%s time=%.3fs samples=%zu/%zu verified=%zu |B|=%zu%s\n",
              MethodName(options.method).c_str(), timer.Seconds(),
              result->samples_processed, result->samples_budget,
              result->verified_count, result->candidate_count,
              result->early_stopped ? " (early stop)" : "");
  return 0;
}

int CmdTruth(int argc, char** argv) {
  if (argc < 4 || argc > 6) return Usage();
  Result<UncertainGraph> graph = ReadGraphFile(argv[2]);
  if (!graph.ok()) {
    std::fprintf(stderr, "read failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const auto k = static_cast<std::size_t>(std::atoll(argv[3]));
  const std::size_t samples =
      argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4]))
               : kPaperGroundTruthSamples;
  const uint64_t seed = argc > 5 ? static_cast<uint64_t>(std::atoll(argv[5])) : 777;
  ThreadPool pool;
  const GroundTruth gt = ComputeGroundTruth(*graph, samples, seed, &pool);
  TextTable table;
  table.SetHeader({"rank", "node", "p(default)"});
  std::size_t rank = 1;
  for (const NodeId v : gt.TopK(k)) {
    table.AddRow({std::to_string(rank++), std::to_string(v),
                  TextTable::Num(gt.probabilities[v], 5)});
  }
  std::printf("%s(%zu sampled worlds)\n", table.ToString().c_str(), samples);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "detect") return CmdDetect(argc, argv);
  if (command == "truth") return CmdTruth(argc, argv);
  return Usage();
}
