#include "vulnds/basic_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "exact/possible_world.h"
#include "testing/test_graphs.h"

namespace vulnds {
namespace {

TEST(BasicSamplerTest, ZeroSamplesGiveZeroEstimates) {
  UncertainGraph g = testing::ChainGraph(0.5, 0.5);
  const BasicSampleStats stats = RunBasicSampling(g, 0, 1);
  EXPECT_EQ(stats.samples, 0u);
  for (const double e : stats.estimates) EXPECT_DOUBLE_EQ(e, 0.0);
}

TEST(BasicSamplerTest, DeterministicNodesAreExact) {
  UncertainGraphBuilder b(3);
  ASSERT_TRUE(b.SetSelfRisk(0, 1.0).ok());
  ASSERT_TRUE(b.SetSelfRisk(1, 0.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 2, 1.0).ok());
  UncertainGraph g = b.Build().MoveValue();
  const BasicSampleStats stats = RunBasicSampling(g, 200, 3);
  EXPECT_DOUBLE_EQ(stats.estimates[0], 1.0);  // always self-defaults
  EXPECT_DOUBLE_EQ(stats.estimates[1], 0.0);  // no risk, no in-edges
  EXPECT_DOUBLE_EQ(stats.estimates[2], 1.0);  // certain diffusion from 0
}

TEST(BasicSamplerTest, NoBackwardDiffusion) {
  // c's default must not infect b or a (edges point a -> b -> c).
  UncertainGraphBuilder b(3);
  ASSERT_TRUE(b.SetSelfRisk(2, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 1.0).ok());
  UncertainGraph g = b.Build().MoveValue();
  const BasicSampleStats stats = RunBasicSampling(g, 500, 5);
  EXPECT_DOUBLE_EQ(stats.estimates[0], 0.0);
  EXPECT_DOUBLE_EQ(stats.estimates[1], 0.0);
  EXPECT_DOUBLE_EQ(stats.estimates[2], 1.0);
}

TEST(BasicSamplerTest, SameSeedSameEstimates) {
  UncertainGraph g = testing::RandomSmallGraph(10, 0.2, 7);
  const BasicSampleStats a = RunBasicSampling(g, 1000, 42);
  const BasicSampleStats b2 = RunBasicSampling(g, 1000, 42);
  EXPECT_EQ(a.estimates, b2.estimates);
}

TEST(BasicSamplerTest, DifferentSeedsDiffer) {
  UncertainGraph g = testing::RandomSmallGraph(10, 0.2, 7);
  const BasicSampleStats a = RunBasicSampling(g, 1000, 42);
  const BasicSampleStats b2 = RunBasicSampling(g, 1000, 43);
  EXPECT_NE(a.estimates, b2.estimates);
}

TEST(BasicSamplerTest, ParallelEqualsSerial) {
  UncertainGraph g = testing::RandomSmallGraph(12, 0.25, 9);
  ThreadPool pool(8);
  const BasicSampleStats serial = RunBasicSampling(g, 2000, 77, nullptr);
  const BasicSampleStats parallel = RunBasicSampling(g, 2000, 77, &pool);
  EXPECT_EQ(serial.estimates, parallel.estimates);
  EXPECT_EQ(serial.nodes_touched, parallel.nodes_touched);
}

TEST(BasicSamplerTest, ConvergesToExactOnPaperExample) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  const auto exact = ExactDefaultProbabilities(g);
  ASSERT_TRUE(exact.ok());
  const std::size_t t = 40000;
  const BasicSampleStats stats = RunBasicSampling(g, t, 2024);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // 5 sigma of a binomial proportion.
    const double sigma = std::sqrt((*exact)[v] * (1 - (*exact)[v]) / t);
    EXPECT_NEAR(stats.estimates[v], (*exact)[v], 5 * sigma + 1e-9) << "node " << v;
  }
}

TEST(BasicSamplerTest, TouchedCountsAtLeastDefaults) {
  UncertainGraph g = testing::PaperExampleGraph(0.5);
  const BasicSampleStats stats = RunBasicSampling(g, 100, 5);
  EXPECT_GT(stats.nodes_touched, 0u);
}

// Property sweep: unbiasedness against the exact oracle across random
// graphs and seeds.
class SamplerOracleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SamplerOracleSweep, EstimatesWithinFiveSigmaOfExact) {
  const uint64_t seed = GetParam();
  UncertainGraph g = testing::RandomSmallGraph(5, 0.35, seed);
  const auto exact = ExactDefaultProbabilities(g);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  const std::size_t t = 20000;
  const BasicSampleStats stats = RunBasicSampling(g, t, seed ^ 0xABCDEF);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double p = (*exact)[v];
    const double sigma = std::sqrt(p * (1 - p) / t);
    EXPECT_NEAR(stats.estimates[v], p, 5 * sigma + 1e-9)
        << "node " << v << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerOracleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace vulnds
