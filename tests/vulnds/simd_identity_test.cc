// End-to-end tier bit-identity: the simd= knob must never change a single
// bit of any result — rankings, scores, the early-stop position, kth hash
// order, samples_processed — for any (tier, thread count, wave schedule)
// combination. On hosts without AVX2 the forced-avx2 mode legally degrades
// to scalar, so every assertion still holds (identity becomes trivial);
// tests/simd/ covers the kernels lane-by-lane.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "simd/dispatch.h"
#include "testing/test_graphs.h"
#include "vulnds/bsrbk.h"
#include "vulnds/coin_columns.h"
#include "vulnds/detector.h"
#include "vulnds/reverse_sampler.h"

namespace vulnds {
namespace {

std::vector<NodeId> AllNodes(const UncertainGraph& g) {
  std::vector<NodeId> ids(g.num_nodes());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

void ExpectSameResult(const DetectionResult& a, const DetectionResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.topk, b.topk) << what;
  ASSERT_EQ(a.scores.size(), b.scores.size()) << what;
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    // Bitwise, not approximate: the contract is identity.
    EXPECT_EQ(a.scores[i], b.scores[i]) << what << " score " << i;
  }
  EXPECT_EQ(a.samples_budget, b.samples_budget) << what;
  EXPECT_EQ(a.samples_processed, b.samples_processed) << what;
  EXPECT_EQ(a.verified_count, b.verified_count) << what;
  EXPECT_EQ(a.candidate_count, b.candidate_count) << what;
  EXPECT_EQ(a.nodes_touched, b.nodes_touched) << what;
  EXPECT_EQ(a.early_stopped, b.early_stopped) << what;
}

TEST(SimdIdentityTest, SampleOrderIsIdenticalAcrossTiers) {
  for (const std::size_t t : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{1000}}) {
    const BottomKSampleOrder scalar =
        MakeBottomKSampleOrder(42, t, simd::SimdTier::kScalar);
    const BottomKSampleOrder best =
        MakeBottomKSampleOrder(42, t, simd::BestSupportedTier());
    EXPECT_EQ(scalar.order, best.order) << "t=" << t;
    ASSERT_EQ(scalar.hash_of.size(), best.hash_of.size());
    for (std::size_t i = 0; i < t; ++i) {
      EXPECT_EQ(scalar.hash_of[i], best.hash_of[i]) << "t=" << t << " i=" << i;
    }
  }
}

TEST(SimdIdentityTest, DirectPathMatchesColumnKernelsOnSparseGraphs) {
  // Below the density gate samplers skip the columns and evaluate coins
  // straight off the arcs; forcing columns in must not change a bit, in
  // either tier.
  const UncertainGraph g = testing::RandomSmallGraph(60, 0.03, 515);
  ASSERT_FALSE(CoinColumns::Worthwhile(g));
  const std::vector<NodeId> candidates = AllNodes(g);
  const ReverseSampleStats direct = RunReverseSampling(
      g, candidates, 600, 5, nullptr, nullptr, simd::SimdTier::kScalar);
  const CoinColumns cols = CoinColumns::Build(g);
  for (const simd::SimdTier tier :
       {simd::SimdTier::kScalar, simd::BestSupportedTier()}) {
    const ReverseSampleStats kernels =
        RunReverseSampling(g, candidates, 600, 5, nullptr, &cols, tier);
    ASSERT_EQ(kernels.estimates.size(), direct.estimates.size());
    for (std::size_t c = 0; c < kernels.estimates.size(); ++c) {
      EXPECT_EQ(kernels.estimates[c], direct.estimates[c])
          << "tier=" << simd::SimdTierName(tier) << " candidate " << c;
    }
    EXPECT_EQ(kernels.nodes_touched, direct.nodes_touched);
  }
}

TEST(SimdIdentityTest, ReverseSamplingIsIdenticalAcrossTiersAndThreads) {
  const UncertainGraph g = testing::RandomSmallGraph(40, 0.12, 2024);
  const std::vector<NodeId> candidates = AllNodes(g);
  const ReverseSampleStats reference = RunReverseSampling(
      g, candidates, 800, 7, nullptr, nullptr, simd::SimdTier::kScalar);
  ThreadPool pool2(2), pool7(7);
  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &pool2, &pool7}) {
    for (const simd::SimdTier tier :
         {simd::SimdTier::kScalar, simd::BestSupportedTier()}) {
      const ReverseSampleStats stats =
          RunReverseSampling(g, candidates, 800, 7, pool, nullptr, tier);
      ASSERT_EQ(stats.estimates.size(), reference.estimates.size());
      for (std::size_t c = 0; c < stats.estimates.size(); ++c) {
        EXPECT_EQ(stats.estimates[c], reference.estimates[c])
            << "tier=" << simd::SimdTierName(tier) << " candidate " << c;
      }
      EXPECT_EQ(stats.nodes_touched, reference.nodes_touched)
          << "tier=" << simd::SimdTierName(tier);
    }
  }
}

TEST(SimdIdentityTest, BottomKRunIsIdenticalAcrossTiersThreadsAndWaves) {
  const UncertainGraph g = testing::RandomSmallGraph(40, 0.12, 4711);
  const std::vector<NodeId> candidates = AllNodes(g);
  BottomKRunOptions serial_scalar;
  serial_scalar.simd_tier = simd::SimdTier::kScalar;
  const Result<BottomKRunStats> reference =
      RunBottomKSampling(g, candidates, 1500, 3, 8, 99, serial_scalar);
  ASSERT_TRUE(reference.ok());

  ThreadPool pool2(2), pool7(7);
  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &pool2, &pool7}) {
    for (const simd::SimdTier tier :
         {simd::SimdTier::kScalar, simd::BestSupportedTier()}) {
      for (const WaveMode mode : {WaveMode::kAdaptive, WaveMode::kFixed}) {
        BottomKRunOptions run;
        run.pool = pool;
        run.simd_tier = tier;
        run.wave.mode = mode;
        const Result<BottomKRunStats> stats =
            RunBottomKSampling(g, candidates, 1500, 3, 8, 99, run);
        ASSERT_TRUE(stats.ok());
        const std::string what = std::string("tier=") + simd::SimdTierName(tier);
        EXPECT_EQ(stats->samples_processed, reference->samples_processed) << what;
        EXPECT_EQ(stats->early_stopped, reference->early_stopped) << what;
        EXPECT_EQ(stats->nodes_touched, reference->nodes_touched) << what;
        EXPECT_EQ(stats->reached_bk, reference->reached_bk) << what;
        ASSERT_EQ(stats->estimates.size(), reference->estimates.size());
        for (std::size_t c = 0; c < stats->estimates.size(); ++c) {
          EXPECT_EQ(stats->estimates[c], reference->estimates[c])
              << what << " candidate " << c;
        }
      }
    }
  }
}

TEST(SimdIdentityTest, FullDetectTranscriptsIdenticalAcrossTiersAndThreads) {
  const UncertainGraph graphs[] = {testing::PaperExampleGraph(0.3),
                                   testing::RandomSmallGraph(50, 0.1, 321)};
  ThreadPool pool2(2), pool7(7);
  for (const UncertainGraph& g : graphs) {
    for (const Method method :
         {Method::kSampleReverse, Method::kBsr, Method::kBsrbk}) {
      DetectorOptions reference_options;
      reference_options.method = method;
      reference_options.k = 3;
      reference_options.simd_mode = simd::SimdMode::kScalar;
      const Result<DetectionResult> reference =
          DetectTopK(g, reference_options);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();

      for (const simd::SimdMode mode :
           {simd::SimdMode::kAuto, simd::SimdMode::kScalar,
            simd::SimdMode::kAvx2}) {
        for (ThreadPool* pool :
             {static_cast<ThreadPool*>(nullptr), &pool2, &pool7}) {
          DetectorOptions options = reference_options;
          options.simd_mode = mode;
          options.pool = pool;
          const Result<DetectionResult> got = DetectTopK(g, options);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ExpectSameResult(*reference, *got,
                           std::string(MethodName(method)) + " simd=" +
                               simd::SimdModeName(mode));
        }
      }
    }
  }
}

// A warm context must serve the same bits as a cold run when the tiers of
// the warming query and the served query differ: cached sample orders are
// tier-independent by construction.
TEST(SimdIdentityTest, WarmContextServesIdenticalBitsAcrossTiers) {
  const UncertainGraph g = testing::RandomSmallGraph(40, 0.15, 777);
  DetectorOptions scalar_options;
  scalar_options.k = 3;
  scalar_options.simd_mode = simd::SimdMode::kScalar;
  DetectorOptions avx2_options = scalar_options;
  avx2_options.simd_mode = simd::SimdMode::kAvx2;

  const Result<DetectionResult> cold = DetectTopK(g, scalar_options);
  ASSERT_TRUE(cold.ok());

  DetectionContext warmed_by_avx2;
  ASSERT_TRUE(DetectTopK(g, avx2_options, &warmed_by_avx2).ok());
  const Result<DetectionResult> warm_scalar =
      DetectTopK(g, scalar_options, &warmed_by_avx2);
  ASSERT_TRUE(warm_scalar.ok());
  EXPECT_GT(warmed_by_avx2.reuse_hits, 0u);
  ExpectSameResult(*cold, *warm_scalar, "warm avx2 -> scalar");
}

}  // namespace
}  // namespace vulnds
