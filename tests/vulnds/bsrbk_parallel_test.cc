// Property tests for the wave-parallel bottom-k path: for EVERY thread
// count and EVERY wave size, RunBottomKSampling must be bit-identical to
// the serial loop — same estimates, same early-stop position, same
// nodes_touched. The serial run is the specification; the parallel run is
// only allowed to change wall-clock time.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "testing/test_graphs.h"
#include "vulnds/bsrbk.h"

namespace vulnds {
namespace {

// A graph big enough that worlds have non-trivial BFS work but early stop
// still fires for reachable bk: a noisy ring with chords.
UncertainGraph RingWithChords(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  UncertainGraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    testing::CheckOk(b.SetSelfRisk(v, 0.05 + 0.4 * rng.NextDouble()));
  }
  for (NodeId v = 0; v < n; ++v) {
    testing::CheckOk(b.AddEdge(v, (v + 1) % n, rng.NextDouble()));
    if (rng.NextDouble() < 0.5) {
      const NodeId w = (v + 2 + rng.NextBounded(n - 3)) % n;
      if (w != v) testing::CheckOk(b.AddEdge(v, w, 0.5 * rng.NextDouble()));
    }
  }
  return b.Build().MoveValue();
}

std::vector<NodeId> AllNodes(const UncertainGraph& g) {
  std::vector<NodeId> ids(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = v;
  return ids;
}

void ExpectBitIdentical(const BottomKRunStats& serial,
                        const BottomKRunStats& parallel, const char* what) {
  EXPECT_EQ(serial.samples_processed, parallel.samples_processed) << what;
  EXPECT_EQ(serial.total_samples, parallel.total_samples) << what;
  EXPECT_EQ(serial.nodes_touched, parallel.nodes_touched) << what;
  EXPECT_EQ(serial.early_stopped, parallel.early_stopped) << what;
  ASSERT_EQ(serial.estimates.size(), parallel.estimates.size()) << what;
  for (std::size_t c = 0; c < serial.estimates.size(); ++c) {
    EXPECT_EQ(serial.estimates[c], parallel.estimates[c])  // bit-exact
        << what << " candidate " << c;
    EXPECT_EQ(serial.reached_bk[c], parallel.reached_bk[c])
        << what << " candidate " << c;
  }
}

// The thread counts every property below sweeps: serial-by-width, two, an
// odd count that never divides the budgets, and the hardware width.
std::vector<std::size_t> SweptThreadCounts() {
  return {1, 2, 7,
          std::max<std::size_t>(1, std::thread::hardware_concurrency())};
}

TEST(BsrbkParallelTest, ThreadCountSweepIsBitIdentical) {
  const UncertainGraph g = RingWithChords(40, 97);
  const std::vector<NodeId> candidates = AllNodes(g);
  for (const std::size_t needed : {std::size_t{1}, std::size_t{3}}) {
    const auto serial =
        RunBottomKSampling(g, candidates, 500, needed, 8, 1234);
    ASSERT_TRUE(serial.ok());
    for (const std::size_t threads : SweptThreadCounts()) {
      ThreadPool pool(threads);
      const auto parallel = RunBottomKSampling(g, candidates, 500, needed, 8,
                                               1234, nullptr, &pool);
      ASSERT_TRUE(parallel.ok());
      ExpectBitIdentical(*serial, *parallel,
                         ("threads=" + std::to_string(threads) +
                          " needed=" + std::to_string(needed))
                             .c_str());
    }
  }
}

TEST(BsrbkParallelTest, WaveSizeNeverChangesResults) {
  // Wave boundaries must be invisible: sweep sizes that divide t, don't
  // divide t, exceed t, and degenerate to one world per wave.
  const UncertainGraph g = RingWithChords(25, 5);
  const std::vector<NodeId> candidates = AllNodes(g);
  const std::size_t t = 100;  // deliberately not divisible by 7 or 32
  const auto serial = RunBottomKSampling(g, candidates, t, 2, 6, 77);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(3);
  for (const std::size_t wave : {std::size_t{1}, std::size_t{7},
                                 std::size_t{25}, std::size_t{100},
                                 std::size_t{1000}}) {
    const auto parallel = RunBottomKSampling(g, candidates, t, 2, 6, 77,
                                             nullptr, &pool, wave);
    ASSERT_TRUE(parallel.ok());
    ExpectBitIdentical(*serial, *parallel,
                       ("wave=" + std::to_string(wave)).c_str());
  }
}

TEST(BsrbkParallelTest, EarlyStopOnWaveBoundaryEdgeCases) {
  // Engineer the hardest alignment: the serial run tells us the stop
  // position S, then waves of exactly S (bk reached on the LAST sample of
  // the first wave), S - 1 (stop is the first sample of the second wave)
  // and S + 1 (wave outruns the stop) must all fold to the same answer.
  const UncertainGraph g = RingWithChords(30, 11);
  const std::vector<NodeId> candidates = AllNodes(g);
  const std::size_t t = 2000;
  const auto serial = RunBottomKSampling(g, candidates, t, 1, 8, 31);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(serial->early_stopped);
  const std::size_t stop = serial->samples_processed;
  ASSERT_GT(stop, 1u);
  for (const std::size_t threads : SweptThreadCounts()) {
    ThreadPool pool(threads);
    for (const std::size_t wave : {stop, stop - 1, stop + 1}) {
      const auto parallel = RunBottomKSampling(g, candidates, t, 1, 8, 31,
                                               nullptr, &pool, wave);
      ASSERT_TRUE(parallel.ok());
      ExpectBitIdentical(*serial, *parallel,
                         ("threads=" + std::to_string(threads) +
                          " wave=" + std::to_string(wave))
                             .c_str());
    }
  }
}

TEST(BsrbkParallelTest, ExhaustedBudgetMatchesAcrossThreadCounts) {
  // No early stop (bk unreachable): every one of the t worlds is folded and
  // the prefix-frequency estimates must still match bit-exactly.
  UncertainGraphBuilder b(6);
  for (NodeId v = 0; v < 6; ++v) testing::CheckOk(b.SetSelfRisk(v, 0.02));
  const UncertainGraph g = b.Build().MoveValue();
  const std::vector<NodeId> candidates = AllNodes(g);
  const auto serial = RunBottomKSampling(g, candidates, 333, 1, 64, 9);
  ASSERT_TRUE(serial.ok());
  ASSERT_FALSE(serial->early_stopped);
  EXPECT_EQ(serial->samples_processed, 333u);
  for (const std::size_t threads : SweptThreadCounts()) {
    ThreadPool pool(threads);
    const auto parallel =
        RunBottomKSampling(g, candidates, 333, 1, 64, 9, nullptr, &pool);
    ASSERT_TRUE(parallel.ok());
    ExpectBitIdentical(*serial, *parallel,
                       ("threads=" + std::to_string(threads)).c_str());
  }
}

TEST(BsrbkParallelTest, PrecomputedOrderAndPoolCompose) {
  // The context-warm serving path hands in the sample order; the pool must
  // not perturb it.
  const UncertainGraph g = RingWithChords(20, 3);
  const std::vector<NodeId> candidates = AllNodes(g);
  const BottomKSampleOrder order = MakeBottomKSampleOrder(55, 400);
  const auto serial = RunBottomKSampling(g, candidates, 400, 2, 8, 55, &order);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  const auto parallel =
      RunBottomKSampling(g, candidates, 400, 2, 8, 55, &order, &pool);
  ASSERT_TRUE(parallel.ok());
  ExpectBitIdentical(*serial, *parallel, "precomputed order");
}

TEST(BsrbkParallelTest, SeedSweepPropertyAcrossThreadCounts) {
  // Broad property sweep: many (graph, seed) pairs, all thread counts.
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const UncertainGraph g = RingWithChords(15 + seed % 7, seed * 13 + 1);
    const std::vector<NodeId> candidates = AllNodes(g);
    const auto serial =
        RunBottomKSampling(g, candidates, 200 + seed * 37, 2, 5, seed);
    ASSERT_TRUE(serial.ok());
    for (const std::size_t threads : SweptThreadCounts()) {
      ThreadPool pool(threads);
      const auto parallel = RunBottomKSampling(
          g, candidates, 200 + seed * 37, 2, 5, seed, nullptr, &pool);
      ASSERT_TRUE(parallel.ok());
      ExpectBitIdentical(*serial, *parallel,
                         ("seed=" + std::to_string(seed) +
                          " threads=" + std::to_string(threads))
                             .c_str());
    }
  }
}

}  // namespace
}  // namespace vulnds
