#include "vulnds/reverse_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "exact/possible_world.h"
#include "testing/test_graphs.h"

namespace vulnds {
namespace {

std::vector<NodeId> AllNodes(const UncertainGraph& g) {
  std::vector<NodeId> ids(g.num_nodes());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(WorldPurityTest, CoinsAreDeterministic) {
  const uint64_t w = WorldSeed(42, 7);
  EXPECT_EQ(WorldSeed(42, 7), w);
  EXPECT_NE(WorldSeed(42, 8), w);
  EXPECT_NE(WorldSeed(43, 7), w);
  EXPECT_EQ(WorldNodeSelfDefaults(w, 3, 0.5), WorldNodeSelfDefaults(w, 3, 0.5));
  EXPECT_EQ(WorldEdgeSurvives(w, 9, 0.5), WorldEdgeSurvives(w, 9, 0.5));
}

TEST(WorldPurityTest, DeterministicProbabilities) {
  const uint64_t w = WorldSeed(1, 1);
  EXPECT_FALSE(WorldNodeSelfDefaults(w, 0, 0.0));
  EXPECT_TRUE(WorldNodeSelfDefaults(w, 0, 1.0));
  EXPECT_FALSE(WorldEdgeSurvives(w, 0, 0.0));
  EXPECT_TRUE(WorldEdgeSurvives(w, 0, 1.0));
}

TEST(WorldPurityTest, CoinFrequenciesMatchProbability) {
  int node_hits = 0;
  int edge_hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const uint64_t w = WorldSeed(5, static_cast<uint64_t>(i));
    node_hits += WorldNodeSelfDefaults(w, 11, 0.3) ? 1 : 0;
    edge_hits += WorldEdgeSurvives(w, 11, 0.7) ? 1 : 0;
  }
  EXPECT_NEAR(node_hits / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(edge_hits / static_cast<double>(n), 0.7, 0.01);
}

// The core equivalence property: reverse evaluation of world w equals
// forward evaluation (exact::EvaluateWorld) of the identical world.
class ReverseForwardEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReverseForwardEquivalence, MatchesForwardEvaluationWorldByWorld) {
  const uint64_t seed = GetParam();
  UncertainGraph g = testing::RandomSmallGraph(9, 0.3, seed);
  ReverseSampler sampler(g, AllNodes(g));
  std::vector<char> reverse_flags;
  for (uint64_t sample = 0; sample < 200; ++sample) {
    const uint64_t w = WorldSeed(seed ^ 0x5555, sample);
    // Materialize the same world forward.
    std::vector<char> self(g.num_nodes());
    std::vector<char> edges(g.num_edges());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      self[v] = WorldNodeSelfDefaults(w, v, g.self_risk(v)) ? 1 : 0;
    }
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      edges[e] = WorldEdgeSurvives(w, e, g.edges()[e].prob) ? 1 : 0;
    }
    const std::vector<char> forward = EvaluateWorld(g, self, edges);
    sampler.SampleWorld(w, &reverse_flags);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(reverse_flags[v], forward[v])
          << "world " << sample << " node " << v << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseForwardEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(ReverseSamplerTest, CandidateSubsetOnly) {
  UncertainGraph g = testing::PaperExampleGraph(0.3);
  const std::vector<NodeId> candidates = {3, 4};
  ReverseSampler sampler(g, candidates);
  std::vector<char> flags;
  sampler.SampleWorld(WorldSeed(1, 0), &flags);
  EXPECT_EQ(flags.size(), 2u);
}

TEST(ReverseSamplerTest, EstimatesConvergeToExact) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  const auto exact = ExactDefaultProbabilities(g);
  ASSERT_TRUE(exact.ok());
  const std::size_t t = 40000;
  const ReverseSampleStats stats = RunReverseSampling(g, AllNodes(g), t, 99);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double p = (*exact)[v];
    const double sigma = std::sqrt(p * (1 - p) / t);
    EXPECT_NEAR(stats.estimates[v], p, 5 * sigma + 1e-9) << "node " << v;
  }
}

TEST(ReverseSamplerTest, ParallelEqualsSerial) {
  UncertainGraph g = testing::RandomSmallGraph(12, 0.25, 21);
  ThreadPool pool(8);
  const std::vector<NodeId> candidates = {0, 3, 5, 7, 11};
  const ReverseSampleStats serial =
      RunReverseSampling(g, candidates, 3000, 7, nullptr);
  const ReverseSampleStats parallel =
      RunReverseSampling(g, candidates, 3000, 7, &pool);
  EXPECT_EQ(serial.estimates, parallel.estimates);
}

TEST(ReverseSamplerTest, AgreesWithForwardSamplerDistribution) {
  // Forward (Algorithm 1) and reverse (Algorithm 5) estimate the same
  // quantity; on 20k samples they must agree within Monte-Carlo error.
  UncertainGraph g = testing::RandomSmallGraph(10, 0.3, 31);
  const std::size_t t = 20000;
  const ReverseSampleStats rev = RunReverseSampling(g, AllNodes(g), t, 1);
  // Compare against the exact oracle (cheapest precise reference).
  const auto exact = ExactDefaultProbabilities(g);
  if (exact.ok()) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const double p = (*exact)[v];
      const double sigma = std::sqrt(p * (1 - p) / t) + 1e-9;
      EXPECT_NEAR(rev.estimates[v], p, 5 * sigma);
    }
  }
}

TEST(ReverseSamplerTest, ZeroSamples) {
  UncertainGraph g = testing::ChainGraph(0.5, 0.5);
  const ReverseSampleStats stats = RunReverseSampling(g, {0, 1}, 0, 1);
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_EQ(stats.estimates, (std::vector<double>{0.0, 0.0}));
}

TEST(ReverseSamplerTest, EmptyCandidates) {
  UncertainGraph g = testing::ChainGraph(0.5, 0.5);
  const ReverseSampleStats stats = RunReverseSampling(g, {}, 100, 1);
  EXPECT_TRUE(stats.estimates.empty());
}

TEST(ReverseSamplerTest, SharedWorldAcrossCandidates) {
  // With ps(a)=1 and certain edges a->b->c, every candidate must default in
  // every world, and conclusions must be shared consistently.
  UncertainGraphBuilder b(3);
  ASSERT_TRUE(b.SetSelfRisk(0, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 1.0).ok());
  UncertainGraph g = b.Build().MoveValue();
  ReverseSampler sampler(g, {2, 1, 0});
  std::vector<char> flags;
  for (uint64_t s = 0; s < 50; ++s) {
    sampler.SampleWorld(WorldSeed(3, s), &flags);
    EXPECT_EQ(flags, (std::vector<char>{1, 1, 1}));
  }
}

TEST(ReverseSamplerTest, TouchedIsBoundedByCandidateWork) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  ReverseSampler sampler(g, {4});
  std::vector<char> flags;
  const std::size_t touched = sampler.SampleWorld(WorldSeed(9, 0), &flags);
  // One candidate can touch at most every node once.
  EXPECT_LE(touched, g.num_nodes());
}

}  // namespace
}  // namespace vulnds
