// Property tests for the ADAPTIVE wave scheduler: for every thread count,
// every ramp schedule, and every (honest or adversarial) lower-bound hint,
// RunBottomKSampling must be bit-identical to the serial loop. The schedule
// may only move wall-clock time and the worlds_wasted / waves_issued
// telemetry; the moment it moves anything else, these tests fail.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "testing/test_graphs.h"
#include "vulnds/bsrbk.h"

namespace vulnds {
namespace {

// Same generator family as bsrbk_parallel_test: a noisy ring with chords,
// big enough that worlds do non-trivial BFS work but early stop still fires.
UncertainGraph RingWithChords(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  UncertainGraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    testing::CheckOk(b.SetSelfRisk(v, 0.05 + 0.4 * rng.NextDouble()));
  }
  for (NodeId v = 0; v < n; ++v) {
    testing::CheckOk(b.AddEdge(v, (v + 1) % n, rng.NextDouble()));
    if (rng.NextDouble() < 0.5) {
      const NodeId w = (v + 2 + rng.NextBounded(n - 3)) % n;
      if (w != v) testing::CheckOk(b.AddEdge(v, w, 0.5 * rng.NextDouble()));
    }
  }
  return b.Build().MoveValue();
}

std::vector<NodeId> AllNodes(const UncertainGraph& g) {
  std::vector<NodeId> ids(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = v;
  return ids;
}

void ExpectBitIdentical(const BottomKRunStats& serial,
                        const BottomKRunStats& adaptive, const char* what) {
  EXPECT_EQ(serial.samples_processed, adaptive.samples_processed) << what;
  EXPECT_EQ(serial.total_samples, adaptive.total_samples) << what;
  EXPECT_EQ(serial.nodes_touched, adaptive.nodes_touched) << what;
  EXPECT_EQ(serial.early_stopped, adaptive.early_stopped) << what;
  ASSERT_EQ(serial.estimates.size(), adaptive.estimates.size()) << what;
  for (std::size_t c = 0; c < serial.estimates.size(); ++c) {
    EXPECT_EQ(serial.estimates[c], adaptive.estimates[c])  // bit-exact
        << what << " candidate " << c;
    EXPECT_EQ(serial.reached_bk[c], adaptive.reached_bk[c])
        << what << " candidate " << c;
  }
}

std::vector<std::size_t> SweptThreadCounts() {
  return {1, 2, 7,
          std::max<std::size_t>(1, std::thread::hardware_concurrency())};
}

BottomKRunOptions AdaptiveRun(ThreadPool* pool, std::size_t probe,
                              std::size_t ramp,
                              const std::vector<double>* lower = nullptr) {
  BottomKRunOptions run;
  run.pool = pool;
  run.wave.mode = WaveMode::kAdaptive;
  run.wave.probe_size = probe;
  run.wave.ramp = ramp;
  run.candidate_lower_bounds = lower;
  return run;
}

TEST(BsrbkAdaptiveTest, RampScheduleSweepIsBitIdentical) {
  const UncertainGraph g = RingWithChords(40, 97);
  const std::vector<NodeId> candidates = AllNodes(g);
  const auto serial = RunBottomKSampling(g, candidates, 500, 2, 8, 1234);
  ASSERT_TRUE(serial.ok());
  // Probe and ramp shape every wave boundary; none of them may matter.
  const std::size_t probes[] = {0, 1, 3, 64, 1000};
  const std::size_t ramps[] = {0, 2, 3, 7};
  for (const std::size_t threads : SweptThreadCounts()) {
    ThreadPool pool(threads);
    for (const std::size_t probe : probes) {
      for (const std::size_t ramp : ramps) {
        const auto adaptive = RunBottomKSampling(
            g, candidates, 500, 2, 8, 1234,
            AdaptiveRun(&pool, probe, ramp));
        ASSERT_TRUE(adaptive.ok());
        ExpectBitIdentical(*serial, *adaptive,
                           ("threads=" + std::to_string(threads) +
                            " probe=" + std::to_string(probe) +
                            " ramp=" + std::to_string(ramp))
                               .c_str());
      }
    }
  }
}

TEST(BsrbkAdaptiveTest, AdversarialStopAlignments) {
  // The serial run tells us the stop position S; then a probe wave of
  // exactly S (stop on the last world of the first wave), S - 1 (stop is
  // the first world of the second wave), S + 1 (the probe outruns the
  // stop), and a probe far beyond S (stop deep inside the first wave) must
  // all fold to the same answer.
  const UncertainGraph g = RingWithChords(30, 11);
  const std::vector<NodeId> candidates = AllNodes(g);
  const std::size_t t = 2000;
  const auto serial = RunBottomKSampling(g, candidates, t, 1, 8, 31);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(serial->early_stopped);
  const std::size_t stop = serial->samples_processed;
  ASSERT_GT(stop, 1u);
  for (const std::size_t threads : SweptThreadCounts()) {
    ThreadPool pool(threads);
    for (const std::size_t probe : {stop, stop - 1, stop + 1, 4 * stop}) {
      const auto adaptive = RunBottomKSampling(g, candidates, t, 1, 8, 31,
                                               AdaptiveRun(&pool, probe, 2));
      ASSERT_TRUE(adaptive.ok());
      ExpectBitIdentical(*serial, *adaptive,
                         ("threads=" + std::to_string(threads) +
                          " probe=" + std::to_string(probe))
                             .c_str());
      if (threads > 1) {
        // Whatever the alignment, waste is bounded by the final wave and
        // the telemetry must account exactly for materialized - folded.
        EXPECT_TRUE(adaptive->early_stopped);
        EXPECT_GE(adaptive->waves_issued, 1u);
      }
    }
  }
}

TEST(BsrbkAdaptiveTest, LyingLowerBoundsNeverChangeResults) {
  // The lower-bound hint steers the estimator only. Bounds that overstate
  // the default rate (estimate undershoots -> waves clamp too small) and
  // bounds that understate it (estimate overshoots -> waves ramp to the
  // cap) must both leave every result byte identical.
  const UncertainGraph g = RingWithChords(25, 5);
  const std::vector<NodeId> candidates = AllNodes(g);
  const std::size_t t = 600;
  const auto serial = RunBottomKSampling(g, candidates, t, 2, 6, 77);
  ASSERT_TRUE(serial.ok());
  const std::vector<double> overshoot(candidates.size(), 1e-9);
  const std::vector<double> undershoot(candidates.size(), 0.999);
  const std::vector<double> zeros(candidates.size(), 0.0);
  for (const std::size_t threads : SweptThreadCounts()) {
    ThreadPool pool(threads);
    for (const std::vector<double>* lower :
         {&overshoot, &undershoot, &zeros,
          static_cast<const std::vector<double>*>(nullptr)}) {
      const auto adaptive = RunBottomKSampling(
          g, candidates, t, 2, 6, 77, AdaptiveRun(&pool, 0, 0, lower));
      ASSERT_TRUE(adaptive.ok());
      ExpectBitIdentical(*serial, *adaptive,
                         ("threads=" + std::to_string(threads)).c_str());
    }
  }
}

TEST(BsrbkAdaptiveTest, MismatchedLowerBoundSizeIsRejected) {
  const UncertainGraph g = RingWithChords(10, 3);
  const std::vector<NodeId> candidates = AllNodes(g);
  ThreadPool pool(2);
  const std::vector<double> wrong(candidates.size() + 1, 0.1);
  const auto run = RunBottomKSampling(g, candidates, 100, 1, 4, 7,
                                      AdaptiveRun(&pool, 0, 0, &wrong));
  EXPECT_FALSE(run.ok());
}

TEST(BsrbkAdaptiveTest, ExhaustedBudgetWastesNothing) {
  // No early stop (bk unreachable): every world folds, so the schedule may
  // issue however many waves it likes but must waste zero worlds.
  UncertainGraphBuilder b(6);
  for (NodeId v = 0; v < 6; ++v) testing::CheckOk(b.SetSelfRisk(v, 0.02));
  const UncertainGraph g = b.Build().MoveValue();
  const std::vector<NodeId> candidates = AllNodes(g);
  const auto serial = RunBottomKSampling(g, candidates, 333, 1, 64, 9);
  ASSERT_TRUE(serial.ok());
  ASSERT_FALSE(serial->early_stopped);
  for (const std::size_t threads : SweptThreadCounts()) {
    ThreadPool pool(threads);
    const auto adaptive = RunBottomKSampling(g, candidates, 333, 1, 64, 9,
                                             AdaptiveRun(&pool, 0, 0));
    ASSERT_TRUE(adaptive.ok());
    ExpectBitIdentical(*serial, *adaptive,
                       ("threads=" + std::to_string(threads)).c_str());
    EXPECT_EQ(adaptive->worlds_wasted, 0u);
    EXPECT_EQ(adaptive->samples_processed, 333u);
  }
}

TEST(BsrbkAdaptiveTest, AdaptiveWastesLessThanFixedOnShortStop) {
  // The scheduler's reason to exist: a stop position far inside the fixed
  // wave. With 4 workers the fixed schedule materializes a 128-world wave;
  // a stop in the first few dozen positions wastes most of it, while the
  // adaptive probe-and-clamp schedule wastes a handful. Deterministic given
  // the seed, so a strict inequality is safe to pin.
  const UncertainGraph g = RingWithChords(35, 19);
  const std::vector<NodeId> candidates = AllNodes(g);
  const std::size_t t = 4000;
  const auto serial = RunBottomKSampling(g, candidates, t, 1, 6, 13);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(serial->early_stopped);
  ASSERT_LT(serial->samples_processed, 64u)
      << "workload drifted; pick a seed with a short stop";
  ThreadPool pool(4);
  BottomKRunOptions fixed;
  fixed.pool = &pool;
  fixed.wave.mode = WaveMode::kFixed;
  const auto fixed_run =
      RunBottomKSampling(g, candidates, t, 1, 6, 13, fixed);
  ASSERT_TRUE(fixed_run.ok());
  const auto adaptive_run = RunBottomKSampling(g, candidates, t, 1, 6, 13,
                                               AdaptiveRun(&pool, 0, 0));
  ASSERT_TRUE(adaptive_run.ok());
  ExpectBitIdentical(*serial, *fixed_run, "fixed");
  ExpectBitIdentical(*serial, *adaptive_run, "adaptive");
  EXPECT_LT(adaptive_run->worlds_wasted, fixed_run->worlds_wasted);
}

TEST(BsrbkAdaptiveTest, SeedSweepAcrossThreadCountsAndHints) {
  // Broad property sweep mirroring the fixed-schedule suite: many
  // (graph, seed) pairs, every thread count, with and without hints.
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const UncertainGraph g = RingWithChords(15 + seed % 7, seed * 13 + 1);
    const std::vector<NodeId> candidates = AllNodes(g);
    const std::size_t t = 200 + seed * 37;
    const auto serial = RunBottomKSampling(g, candidates, t, 2, 5, seed);
    ASSERT_TRUE(serial.ok());
    const std::vector<double> hint(candidates.size(), 0.01 * (seed % 5));
    for (const std::size_t threads : SweptThreadCounts()) {
      ThreadPool pool(threads);
      const auto adaptive = RunBottomKSampling(
          g, candidates, t, 2, 5, seed, AdaptiveRun(&pool, 0, 0, &hint));
      ASSERT_TRUE(adaptive.ok());
      ExpectBitIdentical(*serial, *adaptive,
                         ("seed=" + std::to_string(seed) +
                          " threads=" + std::to_string(threads))
                             .c_str());
    }
  }
}

}  // namespace
}  // namespace vulnds
