#include "vulnds/bounds.h"

#include <gtest/gtest.h>

#include "exact/possible_world.h"
#include "testing/test_graphs.h"

namespace vulnds {
namespace {

TEST(BoundsTest, OrderValidation) {
  UncertainGraph g = testing::ChainGraph(0.2, 0.2);
  EXPECT_FALSE(LowerBounds(g, 0).ok());
  EXPECT_FALSE(UpperBounds(g, -1).ok());
  EXPECT_TRUE(LowerBounds(g, 1).ok());
}

TEST(BoundsTest, LowerOrderOneIsSelfRisk) {
  UncertainGraph g = testing::RandomSmallGraph(8, 0.3, 3);
  const auto lower = LowerBounds(g, 1);
  ASSERT_TRUE(lower.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ((*lower)[v], g.self_risk(v));
  }
}

TEST(BoundsTest, UpperOrderOneClosedForm) {
  // Chain a->b->c with ps=0.2, pe=0.3:
  // pu(a) = 0.2; pu(b) = pu(c) = 1 - 0.8 * (1 - 0.3) = 0.44.
  UncertainGraph g = testing::ChainGraph(0.2, 0.3);
  const auto upper = UpperBounds(g, 1);
  ASSERT_TRUE(upper.ok());
  EXPECT_NEAR((*upper)[0], 0.2, 1e-12);
  EXPECT_NEAR((*upper)[1], 0.44, 1e-12);
  EXPECT_NEAR((*upper)[2], 0.44, 1e-12);
}

TEST(BoundsTest, EquationOneMatchesPaperExample) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  std::vector<double> probs = {0.2, 0.0, 0.0, 0.0, 0.0};
  // p(B) with p(A) = 0.2: 1 - 0.8 * (1 - 0.2 * 0.2) = 0.232.
  EXPECT_NEAR(EquationOne(g, 1, probs), 0.232, 1e-12);
}

TEST(BoundsTest, LowerGrowsWithOrder) {
  UncertainGraph g = testing::RandomSmallGraph(10, 0.3, 11);
  const auto l1 = LowerBounds(g, 1);
  const auto l2 = LowerBounds(g, 2);
  const auto l4 = LowerBounds(g, 4);
  ASSERT_TRUE(l1.ok() && l2.ok() && l4.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE((*l2)[v], (*l1)[v] - 1e-12);
    EXPECT_GE((*l4)[v], (*l2)[v] - 1e-12);
  }
}

TEST(BoundsTest, UpperShrinksWithOrder) {
  UncertainGraph g = testing::RandomSmallGraph(10, 0.3, 13);
  const auto u1 = UpperBounds(g, 1);
  const auto u2 = UpperBounds(g, 2);
  const auto u4 = UpperBounds(g, 4);
  ASSERT_TRUE(u1.ok() && u2.ok() && u4.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE((*u2)[v], (*u1)[v] + 1e-12);
    EXPECT_LE((*u4)[v], (*u2)[v] + 1e-12);
  }
}

TEST(BoundsTest, LowerNeverExceedsUpper) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    UncertainGraph g = testing::RandomSmallGraph(12, 0.25, seed);
    for (int order = 1; order <= 4; ++order) {
      const auto lower = LowerBounds(g, order);
      const auto upper = UpperBounds(g, order);
      ASSERT_TRUE(lower.ok() && upper.ok());
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_LE((*lower)[v], (*upper)[v] + 1e-12)
            << "seed " << seed << " order " << order << " node " << v;
      }
    }
  }
}

TEST(BoundsTest, ExactOnChainAtConvergence) {
  // On an in-tree Equation 1 is exact; high order converges both bounds to
  // the true probabilities.
  UncertainGraph g = testing::ChainGraph(0.2, 0.3);
  const auto exact = ExactDefaultProbabilities(g);
  const auto lower = LowerBounds(g, 10);
  const auto upper = UpperBounds(g, 10);
  ASSERT_TRUE(exact.ok() && lower.ok() && upper.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR((*lower)[v], (*exact)[v], 1e-9);
    EXPECT_NEAR((*upper)[v], (*exact)[v], 1e-9);
  }
}

TEST(BoundsTest, UpperBoundIsSoundOnRandomGraphs) {
  // Equation 1 over-counts correlated unions, so the descending iteration
  // stays above the true probability on every graph.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    UncertainGraph g = testing::RandomSmallGraph(5, 0.35, seed);
    const auto exact = ExactDefaultProbabilities(g);
    ASSERT_TRUE(exact.ok());
    for (int order = 1; order <= 5; ++order) {
      const auto upper = UpperBounds(g, order);
      ASSERT_TRUE(upper.ok());
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_GE((*upper)[v], (*exact)[v] - 1e-9)
            << "seed " << seed << " order " << order << " node " << v;
      }
    }
  }
}

TEST(BoundsTest, LowerBoundSoundOnTrees) {
  // In-trees have no shared ancestors, so the lower bound is a true bound
  // at every order.
  UncertainGraphBuilder b(7);  // binary out-tree rooted at 0
  for (NodeId v = 0; v < 7; ++v) ASSERT_TRUE(b.SetSelfRisk(v, 0.15).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 0.4).ok());
  ASSERT_TRUE(b.AddEdge(0, 2, 0.4).ok());
  ASSERT_TRUE(b.AddEdge(1, 3, 0.4).ok());
  ASSERT_TRUE(b.AddEdge(1, 4, 0.4).ok());
  ASSERT_TRUE(b.AddEdge(2, 5, 0.4).ok());
  ASSERT_TRUE(b.AddEdge(2, 6, 0.4).ok());
  UncertainGraph g = b.Build().MoveValue();
  const auto exact = ExactDefaultProbabilities(g);
  ASSERT_TRUE(exact.ok());
  for (int order = 1; order <= 6; ++order) {
    const auto lower = LowerBounds(g, order);
    ASSERT_TRUE(lower.ok());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE((*lower)[v], (*exact)[v] + 1e-9)
          << "order " << order << " node " << v;
    }
  }
}

TEST(BoundsTest, FixpointEarlyExitMatchesHighOrder) {
  // Once converged, higher orders change nothing.
  UncertainGraph g = testing::ChainGraph(0.2, 0.3);
  const auto a = LowerBounds(g, 10);
  const auto b = LowerBounds(g, 50);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(BoundsTest, IsolatedNodesBoundedBySelfRisk) {
  UncertainGraphBuilder b(4);
  ASSERT_TRUE(b.SetAllSelfRisks({0.1, 0.4, 0.7, 0.0}).ok());
  UncertainGraph g = b.Build().MoveValue();
  const auto lower = LowerBounds(g, 3);
  const auto upper = UpperBounds(g, 3);
  ASSERT_TRUE(lower.ok() && upper.ok());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ((*lower)[v], g.self_risk(v));
    EXPECT_DOUBLE_EQ((*upper)[v], g.self_risk(v));
  }
}

}  // namespace
}  // namespace vulnds
