#include "vulnds/detector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "exact/possible_world.h"
#include "gen/datasets.h"
#include "testing/test_graphs.h"
#include "vulnds/precision.h"

namespace vulnds {
namespace {

DetectorOptions BaseOptions(Method m, std::size_t k) {
  DetectorOptions o;
  o.method = m;
  o.k = k;
  o.naive_samples = 4000;
  o.seed = 42;
  return o;
}

TEST(DetectorTest, ValidatesParameters) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  DetectorOptions o = BaseOptions(Method::kBsrbk, 2);
  o.k = 0;
  EXPECT_FALSE(DetectTopK(g, o).ok());
  o.k = 6;
  EXPECT_FALSE(DetectTopK(g, o).ok());
  o = BaseOptions(Method::kBsrbk, 2);
  o.eps = 0.0;
  EXPECT_FALSE(DetectTopK(g, o).ok());
  o = BaseOptions(Method::kBsrbk, 2);
  o.delta = 1.0;
  EXPECT_FALSE(DetectTopK(g, o).ok());
  o = BaseOptions(Method::kBsrbk, 2);
  o.bound_order = 0;
  EXPECT_FALSE(DetectTopK(g, o).ok());
  o = BaseOptions(Method::kBsrbk, 2);
  o.bk = 2;
  EXPECT_FALSE(DetectTopK(g, o).ok());
  o = BaseOptions(Method::kBsrbk, 2);
  o.threads = kMaxDetectThreads + 1;
  EXPECT_FALSE(DetectTopK(g, o).ok());
}

TEST(DetectorTest, ValidationRejectsNonFiniteEpsDelta) {
  // `eps <= 0 || eps >= 1` is false for NaN; without an isfinite() check a
  // poisoned option would reach the sample-size math, where a NaN-to-size_t
  // cast is undefined behavior.
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  const double bad[] = {std::nan(""), HUGE_VAL, -HUGE_VAL};
  for (const double v : bad) {
    DetectorOptions o = BaseOptions(Method::kBsrbk, 2);
    o.eps = v;
    EXPECT_EQ(DetectTopK(g, o).status().code(), StatusCode::kInvalidArgument);
    o = BaseOptions(Method::kBsrbk, 2);
    o.delta = v;
    EXPECT_EQ(DetectTopK(g, o).status().code(), StatusCode::kInvalidArgument);
    o = BaseOptions(Method::kSampleNaive, 2);
    o.eps = v;
    EXPECT_EQ(ValidateDetectorOptions(g, o).code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(DetectorTest, MethodNamesMatchPaper) {
  EXPECT_EQ(MethodName(Method::kNaive), "N");
  EXPECT_EQ(MethodName(Method::kSampleNaive), "SN");
  EXPECT_EQ(MethodName(Method::kSampleReverse), "SR");
  EXPECT_EQ(MethodName(Method::kBsr), "BSR");
  EXPECT_EQ(MethodName(Method::kBsrbk), "BSRBK");
  EXPECT_EQ(AllMethods().size(), 5u);
}

TEST(DetectorTest, ResultHasKEntriesAlignedWithScores) {
  UncertainGraph g = testing::RandomSmallGraph(20, 0.15, 5);
  for (const Method m : AllMethods()) {
    const auto r = DetectTopK(g, BaseOptions(m, 4));
    ASSERT_TRUE(r.ok()) << MethodName(m);
    EXPECT_EQ(r->topk.size(), 4u) << MethodName(m);
    EXPECT_EQ(r->scores.size(), 4u) << MethodName(m);
    // No duplicate nodes in the answer.
    std::vector<NodeId> sorted = r->topk;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
        << MethodName(m);
  }
}

TEST(DetectorTest, DeterministicAcrossRuns) {
  UncertainGraph g = testing::RandomSmallGraph(30, 0.1, 6);
  for (const Method m : AllMethods()) {
    const auto a = DetectTopK(g, BaseOptions(m, 5));
    const auto b = DetectTopK(g, BaseOptions(m, 5));
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->topk, b->topk) << MethodName(m);
    EXPECT_EQ(a->scores, b->scores) << MethodName(m);
  }
}

TEST(DetectorTest, PoolDoesNotChangeResults) {
  // Every method — including the wave-parallel BSRBK hot path — must return
  // bit-identical rankings, scores and sampling counters with and without a
  // pool.
  UncertainGraph g = testing::RandomSmallGraph(30, 0.1, 8);
  ThreadPool pool(8);
  for (const Method m : AllMethods()) {
    DetectorOptions serial = BaseOptions(m, 5);
    DetectorOptions parallel = BaseOptions(m, 5);
    parallel.pool = &pool;
    const auto a = DetectTopK(g, serial);
    const auto b = DetectTopK(g, parallel);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->topk, b->topk) << MethodName(m);
    EXPECT_EQ(a->scores, b->scores) << MethodName(m);
    EXPECT_EQ(a->samples_processed, b->samples_processed) << MethodName(m);
    EXPECT_EQ(a->early_stopped, b->early_stopped) << MethodName(m);
  }
}

TEST(DetectorTest, PaperExampleTopIsNodeE) {
  // In Figure 3's graph, E dominates every other node. With a large fixed
  // sample size (method N) the detector must find it exactly; the
  // size-optimized methods only promise the (eps, delta) contract, checked
  // in ApproximationContractSweep, because the B/C/D/E probabilities are
  // within eps of each other on this tiny example.
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  DetectorOptions o = BaseOptions(Method::kNaive, 1);
  o.naive_samples = 20000;
  const auto r = DetectTopK(g, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->topk[0], 4u);
}

TEST(DetectorTest, PaperExampleAllMethodsWithinEps) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  const auto exact = ExactDefaultProbabilities(g);
  ASSERT_TRUE(exact.ok());
  const double p_top = (*exact)[4];
  for (const Method m : AllMethods()) {
    const auto r = DetectTopK(g, BaseOptions(m, 1));
    ASSERT_TRUE(r.ok()) << MethodName(m);
    EXPECT_GE((*exact)[r->topk[0]], p_top - 0.3) << MethodName(m);
  }
}

TEST(DetectorTest, VerifiedCountBoundedByK) {
  UncertainGraph g = MakeDataset(DatasetId::kInterbank, 1.0, 4).MoveValue();
  const auto r = DetectTopK(g, BaseOptions(Method::kBsr, 10));
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->verified_count, 10u);
  EXPECT_LE(r->candidate_count, g.num_nodes());
}

TEST(DetectorTest, BudgetAccountingSane) {
  UncertainGraph g = MakeDataset(DatasetId::kInterbank, 1.0, 4).MoveValue();
  const auto naive = DetectTopK(g, BaseOptions(Method::kNaive, 5));
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->samples_budget, 4000u);
  EXPECT_EQ(naive->samples_processed, 4000u);

  const auto bsrbk = DetectTopK(g, BaseOptions(Method::kBsrbk, 5));
  ASSERT_TRUE(bsrbk.ok());
  EXPECT_LE(bsrbk->samples_processed, bsrbk->samples_budget);
}

TEST(DetectorTest, KEqualsNReturnsEveryNode) {
  UncertainGraph g = testing::RandomSmallGraph(12, 0.2, 10);
  const auto r = DetectTopK(g, BaseOptions(Method::kBsr, 12));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->topk.size(), 12u);
}

// The (eps, delta) contract, checked against the exact oracle:
//   for v in R:     p(v) >= Pk - eps
//   for v not in R: p(v) <  Pk + eps
// With delta = 0.1 a rare failure is legal, so the sweep tolerates one
// failing seed out of the set.
class ApproximationContractSweep
    : public ::testing::TestWithParam<std::tuple<Method, uint64_t>> {};

TEST_P(ApproximationContractSweep, EpsDeltaContractHolds) {
  const auto [method, seed] = GetParam();
  UncertainGraph g = testing::RandomSmallGraph(5, 0.4, seed);
  const auto exact = ExactDefaultProbabilities(g);
  ASSERT_TRUE(exact.ok());
  const std::size_t k = 2;
  const auto truth = ExactTopK(g, k);
  ASSERT_TRUE(truth.ok());
  const double pk = (*exact)[truth->back()];

  DetectorOptions o = BaseOptions(method, k);
  o.eps = 0.3;
  o.delta = 0.1;
  o.seed = seed * 1000 + 7;
  const auto r = DetectTopK(g, o);
  ASSERT_TRUE(r.ok());
  std::vector<char> in_result(g.num_nodes(), 0);
  for (const NodeId v : r->topk) in_result[v] = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_result[v]) {
      EXPECT_GE((*exact)[v], pk - o.eps - 1e-9) << "included " << v;
    } else {
      EXPECT_LT((*exact)[v], pk + o.eps + 1e-9) << "excluded " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsBySeeds, ApproximationContractSweep,
    ::testing::Combine(::testing::ValuesIn(AllMethods()),
                       ::testing::Values<uint64_t>(1, 2, 3, 4, 5)),
    [](const ::testing::TestParamInfo<std::tuple<Method, uint64_t>>& info) {
      return MethodName(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Integration on a registry dataset: all methods should agree closely with
// a high-sample ground truth.
TEST(DetectorIntegrationTest, MethodsAgreeOnInterbank) {
  UncertainGraph g = MakeDataset(DatasetId::kInterbank, 1.0, 2).MoveValue();
  const std::size_t k = 6;  // ~5% of 125
  DetectorOptions reference = BaseOptions(Method::kNaive, k);
  reference.naive_samples = 20000;
  const auto ref = DetectTopK(g, reference);
  ASSERT_TRUE(ref.ok());
  for (const Method m :
       {Method::kSampleNaive, Method::kSampleReverse, Method::kBsr,
        Method::kBsrbk}) {
    const auto r = DetectTopK(g, BaseOptions(m, k));
    ASSERT_TRUE(r.ok()) << MethodName(m);
    const double precision = PrecisionAtK(r->topk, ref->topk);
    EXPECT_GE(precision, 0.5) << MethodName(m);
  }
}

}  // namespace
}  // namespace vulnds
