// Deterministic parallel bounds: LowerBounds/UpperBounds on a pool must be
// bit-identical to the serial loop for every thread count, order, and graph
// shape — including the early-fixpoint exit and the change-propagation
// sparsity it depends on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "testing/test_graphs.h"
#include "vulnds/bounds.h"
#include "vulnds/detector.h"

namespace vulnds {
namespace {

// Bitwise equality of double vectors: EXPECT_EQ on doubles compares values
// (so -0.0 == 0.0 and NaN != NaN); determinism is a claim about bytes.
void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what,
                        std::size_t threads) {
  ASSERT_EQ(a.size(), b.size()) << what << " threads=" << threads;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
        << what << " diverges at node " << i << " with " << threads
        << " threads: serial=" << a[i] << " parallel=" << b[i];
  }
}

std::vector<std::size_t> ThreadCounts() {
  std::vector<std::size_t> counts = {1, 2, 7};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  return counts;
}

TEST(BoundsParallelTest, BitIdenticalAcrossThreadCounts) {
  for (const uint64_t seed : {3u, 11u, 29u}) {
    const UncertainGraph g = testing::RandomSmallGraph(120, 0.05, seed);
    for (const int order : {1, 2, 3, 5, 9}) {
      const auto serial_lo = LowerBounds(g, order);
      const auto serial_hi = UpperBounds(g, order);
      ASSERT_TRUE(serial_lo.ok() && serial_hi.ok());
      for (const std::size_t threads : ThreadCounts()) {
        ThreadPool pool(threads);
        const auto lo = LowerBounds(g, order, &pool);
        const auto hi = UpperBounds(g, order, &pool);
        ASSERT_TRUE(lo.ok() && hi.ok());
        ExpectBitIdentical(*serial_lo, *lo, "lower", threads);
        ExpectBitIdentical(*serial_hi, *hi, "upper", threads);
      }
    }
  }
}

TEST(BoundsParallelTest, EarlyFixpointExitsOnSameIteration) {
  // A chain converges quickly: high orders hit the fixpoint exit, which
  // must fire identically (and leave identical values) in parallel. The
  // chain also exercises the sparse "in-neighbor unchanged" path.
  const UncertainGraph g = testing::ChainGraph(0.3, 0.6);
  for (const int order : {2, 4, 16, 64}) {
    const auto serial = LowerBounds(g, order);
    ASSERT_TRUE(serial.ok());
    for (const std::size_t threads : ThreadCounts()) {
      ThreadPool pool(threads);
      const auto parallel = LowerBounds(g, order, &pool);
      ASSERT_TRUE(parallel.ok());
      ExpectBitIdentical(*serial, *parallel, "lower-fixpoint", threads);
    }
  }
}

TEST(BoundsParallelTest, DetectWithPoolMatchesSerialDetect) {
  // The full path: DetectorOptions.pool flows into GetBounds, and the
  // ranked result must not move by a single ulp.
  const UncertainGraph g = testing::RandomSmallGraph(60, 0.08, 7);
  DetectorOptions options;
  options.method = Method::kBsrbk;
  options.k = 5;
  options.bound_order = 3;
  const auto serial = DetectTopK(g, options);
  ASSERT_TRUE(serial.ok());
  for (const std::size_t threads : ThreadCounts()) {
    ThreadPool pool(threads);
    DetectorOptions parallel_options = options;
    parallel_options.pool = &pool;
    const auto parallel = DetectTopK(g, parallel_options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->topk, parallel->topk) << threads << " threads";
    ExpectBitIdentical(serial->scores, parallel->scores, "scores", threads);
    EXPECT_EQ(serial->samples_processed, parallel->samples_processed);
    EXPECT_EQ(serial->verified_count, parallel->verified_count);
  }
}

TEST(BoundsParallelTest, EmptyAndTinyGraphs) {
  // n < threads exercises ParallelFor's short-chunk partition.
  ThreadPool pool(7);
  const UncertainGraph tiny = testing::ChainGraph(0.2, 0.4);
  const auto serial = UpperBounds(tiny, 4);
  const auto parallel = UpperBounds(tiny, 4, &pool);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectBitIdentical(*serial, *parallel, "tiny-upper", 7);
}

}  // namespace
}  // namespace vulnds
