// DetectionContext reuse must never change results: a warm context returns
// bit-identical output to a cold run for every method and parameter mix.

#include <gtest/gtest.h>

#include "testing/test_graphs.h"
#include "vulnds/detector.h"

namespace vulnds {
namespace {

void ExpectSameResult(const DetectionResult& a, const DetectionResult& b) {
  EXPECT_EQ(a.topk, b.topk);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_EQ(a.scores[i], b.scores[i]);  // bit-exact
  }
  EXPECT_EQ(a.samples_budget, b.samples_budget);
  EXPECT_EQ(a.samples_processed, b.samples_processed);
  EXPECT_EQ(a.verified_count, b.verified_count);
  EXPECT_EQ(a.candidate_count, b.candidate_count);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
}

TEST(DetectionContextTest, WarmContextBitIdenticalAcrossMethods) {
  const UncertainGraph g = testing::RandomSmallGraph(30, 0.15, 5);
  DetectionContext ctx;
  for (const Method method : AllMethods()) {
    DetectorOptions o;
    o.method = method;
    o.k = 3;
    o.naive_samples = 500;
    Result<DetectionResult> cold = DetectTopK(g, o);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    // Run twice with the context: the second run hits every cached layer.
    Result<DetectionResult> warm1 = DetectTopK(g, o, &ctx);
    Result<DetectionResult> warm2 = DetectTopK(g, o, &ctx);
    ASSERT_TRUE(warm1.ok());
    ASSERT_TRUE(warm2.ok());
    ExpectSameResult(*cold, *warm1);
    ExpectSameResult(*cold, *warm2);
  }
}

TEST(DetectionContextTest, IntermediatesAreReused) {
  const UncertainGraph g = testing::RandomSmallGraph(25, 0.2, 11);
  DetectionContext ctx;
  DetectorOptions o;
  o.method = Method::kBsrbk;
  o.k = 2;
  ASSERT_TRUE(DetectTopK(g, o, &ctx).ok());
  const std::size_t misses_after_first = ctx.reuse_misses;
  EXPECT_GT(misses_after_first, 0u);
  EXPECT_EQ(ctx.reuse_hits, 0u);
  ASSERT_TRUE(DetectTopK(g, o, &ctx).ok());
  // The repeat computes nothing new.
  EXPECT_EQ(ctx.reuse_misses, misses_after_first);
  EXPECT_GT(ctx.reuse_hits, 0u);
}

TEST(DetectionContextTest, BoundsSharedAcrossKAndMethod) {
  const UncertainGraph g = testing::RandomSmallGraph(25, 0.2, 17);
  DetectionContext ctx;
  DetectorOptions o;
  o.method = Method::kBsr;
  o.k = 2;
  ASSERT_TRUE(DetectTopK(g, o, &ctx).ok());
  EXPECT_EQ(ctx.lower_bounds.size(), 1u);
  // Different k and method, same bound order: bounds map must not grow.
  o.method = Method::kSampleReverse;
  o.k = 4;
  ASSERT_TRUE(DetectTopK(g, o, &ctx).ok());
  EXPECT_EQ(ctx.lower_bounds.size(), 1u);
  EXPECT_EQ(ctx.upper_bounds.size(), 1u);
  // A different bound order computes a second entry.
  o.bound_order = 3;
  ASSERT_TRUE(DetectTopK(g, o, &ctx).ok());
  EXPECT_EQ(ctx.lower_bounds.size(), 2u);
}

TEST(DetectionContextTest, SampleOrderKeyedBySeed) {
  const UncertainGraph g = testing::RandomSmallGraph(25, 0.2, 23);
  DetectionContext ctx;
  DetectorOptions o;
  o.method = Method::kBsrbk;
  o.k = 2;
  ASSERT_TRUE(DetectTopK(g, o, &ctx).ok());
  const std::size_t orders_after_first = ctx.sample_orders.size();
  o.seed = o.seed + 1;
  Result<DetectionResult> different_seed = DetectTopK(g, o, &ctx);
  ASSERT_TRUE(different_seed.ok());
  // A new seed must not reuse the old processing order.
  EXPECT_GE(ctx.sample_orders.size(), orders_after_first);
}

TEST(DetectionContextTest, ApproxBytesTracksWarmIntermediates) {
  // The serving layer reports context bytes alongside catalog bytes; the
  // estimate must start small, grow monotonically as intermediates warm,
  // and not grow when a repeat query reuses everything.
  const UncertainGraph g = testing::RandomSmallGraph(30, 0.15, 5);
  DetectionContext ctx;
  const std::size_t empty = ctx.ApproxBytes();
  EXPECT_GT(empty, 0u);  // the struct itself is charged
  DetectorOptions o;
  o.method = Method::kBsrbk;
  o.k = 3;
  ASSERT_TRUE(DetectTopK(g, o, &ctx).ok());
  const std::size_t warm = ctx.ApproxBytes();
  EXPECT_GT(warm, empty) << "bounds/reduction/order caches must be charged";
  ASSERT_TRUE(DetectTopK(g, o, &ctx).ok());
  EXPECT_EQ(ctx.ApproxBytes(), warm) << "a fully warm repeat adds nothing";
  o.bound_order = 3;  // new intermediates under a fresh key
  ASSERT_TRUE(DetectTopK(g, o, &ctx).ok());
  EXPECT_GT(ctx.ApproxBytes(), warm);
}

TEST(DetectionContextTest, PrecomputedSampleOrderSizeMismatchRejected) {
  const UncertainGraph g = testing::RandomSmallGraph(10, 0.3, 3);
  const BottomKSampleOrder wrong = MakeBottomKSampleOrder(42, 10);
  const std::vector<NodeId> candidates = {0, 1, 2};
  EXPECT_EQ(RunBottomKSampling(g, candidates, 20, 1, 4, 42, &wrong)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(DetectionContextTest, PrecomputedSampleOrderBitIdentical) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 0.25, 9);
  const std::vector<NodeId> candidates = {0, 3, 7, 11, 15};
  const std::size_t t = 400;
  const uint64_t seed = 1234;
  const BottomKSampleOrder order = MakeBottomKSampleOrder(seed, t);
  Result<BottomKRunStats> with = RunBottomKSampling(g, candidates, t, 2, 4, seed, &order);
  Result<BottomKRunStats> without = RunBottomKSampling(g, candidates, t, 2, 4, seed);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->samples_processed, without->samples_processed);
  EXPECT_EQ(with->early_stopped, without->early_stopped);
  ASSERT_EQ(with->estimates.size(), without->estimates.size());
  for (std::size_t i = 0; i < with->estimates.size(); ++i) {
    EXPECT_EQ(with->estimates[i], without->estimates[i]);
  }
}

}  // namespace
}  // namespace vulnds
