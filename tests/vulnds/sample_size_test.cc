#include "vulnds/sample_size.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vulnds {
namespace {

TEST(PairMisorderTest, MatchesClosedForm) {
  EXPECT_NEAR(PairMisorderBound(100, 0.3), std::exp(-100 * 0.09 / 2.0), 1e-15);
  EXPECT_DOUBLE_EQ(PairMisorderBound(0, 0.3), 1.0);
}

TEST(PairMisorderTest, DecreasesWithSamples) {
  EXPECT_GT(PairMisorderBound(10, 0.2), PairMisorderBound(100, 0.2));
  EXPECT_GT(PairMisorderBound(100, 0.1), PairMisorderBound(100, 0.3));
}

TEST(BasicSampleSizeTest, MatchesEquation3) {
  // t = 2/eps^2 * ln(k(n-k)/delta), rounded up.
  const double expected =
      2.0 / (0.3 * 0.3) * std::log(5.0 * (100.0 - 5.0) / 0.1);
  EXPECT_EQ(BasicSampleSize(0.3, 0.1, 5, 100),
            static_cast<std::size_t>(std::ceil(expected)));
}

TEST(BasicSampleSizeTest, PaperScaleValue) {
  // Sanity for a Guarantee-sized run: n = 31309, k = 5%.
  const std::size_t t = BasicSampleSize(0.3, 0.1, 1565, 31309);
  EXPECT_GT(t, 300u);
  EXPECT_LT(t, 600u);
}

TEST(BasicSampleSizeTest, DegenerateKGivesZero) {
  EXPECT_EQ(BasicSampleSize(0.3, 0.1, 0, 100), 0u);
  EXPECT_EQ(BasicSampleSize(0.3, 0.1, 100, 100), 0u);
}

TEST(BasicSampleSizeTest, MonotoneInParameters) {
  EXPECT_GT(BasicSampleSize(0.1, 0.1, 5, 100), BasicSampleSize(0.3, 0.1, 5, 100));
  EXPECT_GT(BasicSampleSize(0.3, 0.01, 5, 100), BasicSampleSize(0.3, 0.1, 5, 100));
  EXPECT_GE(BasicSampleSize(0.3, 0.1, 5, 1000), BasicSampleSize(0.3, 0.1, 5, 100));
}

TEST(ReducedSampleSizeTest, MatchesEquation4) {
  // k = 10, k' = 4, |B| = 50: pairs = 6 * 44.
  const double expected = 2.0 / (0.3 * 0.3) * std::log(6.0 * 44.0 / 0.1);
  EXPECT_EQ(ReducedSampleSize(0.3, 0.1, 10, 4, 50),
            static_cast<std::size_t>(std::ceil(expected)));
}

TEST(ReducedSampleSizeTest, AllVerifiedNeedsNoSamples) {
  EXPECT_EQ(ReducedSampleSize(0.3, 0.1, 10, 10, 50), 0u);
  EXPECT_EQ(ReducedSampleSize(0.3, 0.1, 10, 12, 50), 0u);
}

TEST(ReducedSampleSizeTest, CandidatesEqualRemainingNeedsNoSamples) {
  // |B| == k - k': zero "other" nodes to separate from.
  EXPECT_EQ(ReducedSampleSize(0.3, 0.1, 10, 4, 6), 0u);
}

TEST(ReducedSampleSizeTest, NeverExceedsBasicSize) {
  // Pruning can only reduce the pair count: (k-k')(|B|-k+k') <= k(n-k)
  // whenever |B| <= n and k' >= 0.
  const std::size_t n = 1000;
  const std::size_t k = 50;
  const std::size_t basic = BasicSampleSize(0.3, 0.1, k, n);
  for (std::size_t kp : {0u, 10u, 49u}) {
    for (std::size_t b : {60u, 200u, 999u}) {
      EXPECT_LE(ReducedSampleSize(0.3, 0.1, k, kp, b), basic)
          << "k'=" << kp << " |B|=" << b;
    }
  }
}

// Theorem 4's union bound: with t from Equation 3, the failure probability
// k(n-k) * exp(-t eps^2 / 2) is at most delta.
class UnionBoundSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(UnionBoundSweep, FailureMassAtMostDelta) {
  const auto [k, n] = GetParam();
  if (k >= n) GTEST_SKIP();
  const double eps = 0.3;
  const double delta = 0.1;
  const std::size_t t = BasicSampleSize(eps, delta, k, n);
  const double pairs = static_cast<double>(k) * static_cast<double>(n - k);
  EXPECT_LE(pairs * PairMisorderBound(t, eps), delta + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UnionBoundSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 5, 50, 500),
                       ::testing::Values<std::size_t>(10, 100, 10000, 62586)));

}  // namespace
}  // namespace vulnds
