#include "vulnds/topk.h"

#include <gtest/gtest.h>

#include <limits>

namespace vulnds {
namespace {

TEST(TopKTest, OrdersByScoreDescending) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  EXPECT_EQ(TopKByScore(scores, 2), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(TopKByScore(scores, 4), (std::vector<NodeId>{1, 3, 2, 0}));
}

TEST(TopKTest, TiesBreakTowardSmallerId) {
  const std::vector<double> scores = {0.5, 0.5, 0.5};
  EXPECT_EQ(TopKByScore(scores, 2), (std::vector<NodeId>{0, 1}));
}

TEST(TopKTest, KClampedToSize) {
  const std::vector<double> scores = {0.3, 0.1};
  EXPECT_EQ(TopKByScore(scores, 10).size(), 2u);
  EXPECT_TRUE(TopKByScore(scores, 0).empty());
}

TEST(TopKTest, EmptyInput) {
  EXPECT_TRUE(TopKByScore({}, 3).empty());
}

TEST(TopKSubsetTest, RestrictsToSubset) {
  const std::vector<double> scores = {0.9, 0.1, 0.8, 0.7};
  const std::vector<NodeId> subset = {1, 2, 3};
  EXPECT_EQ(TopKByScoreSubset(scores, subset, 2), (std::vector<NodeId>{2, 3}));
}

TEST(TopKSubsetTest, SubsetSmallerThanK) {
  const std::vector<double> scores = {0.9, 0.1};
  const std::vector<NodeId> subset = {1};
  EXPECT_EQ(TopKByScoreSubset(scores, subset, 5), (std::vector<NodeId>{1}));
}

TEST(KthLargestTest, BasicValues) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  EXPECT_DOUBLE_EQ(KthLargest(scores, 1), 0.9);
  EXPECT_DOUBLE_EQ(KthLargest(scores, 2), 0.7);
  EXPECT_DOUBLE_EQ(KthLargest(scores, 4), 0.1);
}

TEST(KthLargestTest, ClampsK) {
  const std::vector<double> scores = {0.2, 0.4};
  EXPECT_DOUBLE_EQ(KthLargest(scores, 0), 0.4);   // clamped to 1
  EXPECT_DOUBLE_EQ(KthLargest(scores, 99), 0.2);  // clamped to size
}

TEST(KthLargestTest, EmptyIsMinusInfinity) {
  EXPECT_EQ(KthLargest({}, 1), -std::numeric_limits<double>::infinity());
}

TEST(KthLargestTest, DuplicatesCounted) {
  const std::vector<double> scores = {0.5, 0.5, 0.3};
  EXPECT_DOUBLE_EQ(KthLargest(scores, 2), 0.5);
  EXPECT_DOUBLE_EQ(KthLargest(scores, 3), 0.3);
}

}  // namespace
}  // namespace vulnds
