#include "vulnds/candidate_reduction.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "exact/possible_world.h"
#include "testing/test_graphs.h"
#include "vulnds/bounds.h"

namespace vulnds {
namespace {

TEST(CandidateReductionTest, Validation) {
  const std::vector<double> l = {0.1, 0.2};
  const std::vector<double> u = {0.3, 0.4};
  const std::vector<double> short_u = {0.3};
  EXPECT_FALSE(ReduceCandidates(l, short_u, 1).ok());  // size mismatch
  EXPECT_FALSE(ReduceCandidates(l, u, 0).ok());
  EXPECT_FALSE(ReduceCandidates(l, u, 3).ok());
  EXPECT_TRUE(ReduceCandidates(l, u, 1).ok());
}

TEST(CandidateReductionTest, ThresholdsAreKthLargest) {
  const std::vector<double> l = {0.1, 0.5, 0.3, 0.7};
  const std::vector<double> u = {0.2, 0.9, 0.6, 0.8};
  const auto r = ReduceCandidates(l, u, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->threshold_lower, 0.5);  // 2nd largest of l
  EXPECT_DOUBLE_EQ(r->threshold_upper, 0.8);  // 2nd largest of u
}

TEST(CandidateReductionTest, RuleOneVerifies) {
  // Node 3's lower bound (0.9) beats the 1st largest upper of others.
  const std::vector<double> l = {0.1, 0.2, 0.3, 0.9};
  const std::vector<double> u = {0.4, 0.5, 0.6, 0.95};
  const auto r = ReduceCandidates(l, u, 1);
  ASSERT_TRUE(r.ok());
  // Tu = 0.95 (largest upper); pl(3)=0.9 < 0.95, so nothing verified.
  EXPECT_TRUE(r->verified.empty());
  // But with k = 1, Tl = 0.9 prunes everything with pu < 0.9 (nodes 0..2).
  EXPECT_EQ(r->candidates, (std::vector<NodeId>{3}));
}

TEST(CandidateReductionTest, DisjointBoundsVerifyExactly) {
  // Exact bounds (lower == upper) make the reduction fully decide the query.
  const std::vector<double> exact = {0.1, 0.8, 0.3, 0.6};
  const auto r = ReduceCandidates(exact, exact, 2);
  ASSERT_TRUE(r.ok());
  std::vector<NodeId> verified = r->verified;
  std::sort(verified.begin(), verified.end());
  EXPECT_EQ(verified, (std::vector<NodeId>{1, 3}));
  EXPECT_TRUE(r->candidates.empty());
}

TEST(CandidateReductionTest, VerifiedOrderedByLowerBound) {
  const std::vector<double> exact = {0.1, 0.8, 0.3, 0.6};
  const auto r = ReduceCandidates(exact, exact, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verified, (std::vector<NodeId>{1, 3}));  // 0.8 then 0.6
}

TEST(CandidateReductionTest, AllTiedCapsVerifiedAtK) {
  const std::vector<double> same(5, 0.5);
  const auto r = ReduceCandidates(same, same, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verified.size(), 2u);
  EXPECT_EQ(r->verified, (std::vector<NodeId>{0, 1}));  // id tiebreak
  // Demoted ties stay candidates.
  EXPECT_EQ(r->candidates, (std::vector<NodeId>{2, 3, 4}));
}

TEST(CandidateReductionTest, RuleTwoPrunes) {
  const std::vector<double> l = {0.6, 0.5, 0.1, 0.1};
  const std::vector<double> u = {0.9, 0.8, 0.45, 0.2};
  const auto r = ReduceCandidates(l, u, 2);
  ASSERT_TRUE(r.ok());
  // Tl = 0.5; nodes 2 (pu 0.45) and 3 (pu 0.2) are pruned.
  for (const NodeId v : r->candidates) {
    EXPECT_LT(v, 2u);
  }
}

TEST(CandidateReductionTest, VerifiedNeverAlsoCandidate) {
  const std::vector<double> l = {0.9, 0.85, 0.1};
  const std::vector<double> u = {0.92, 0.87, 0.3};
  const auto r = ReduceCandidates(l, u, 2);
  ASSERT_TRUE(r.ok());
  for (const NodeId v : r->verified) {
    EXPECT_EQ(std::count(r->candidates.begin(), r->candidates.end(), v), 0);
  }
}

// Safety property: with sound bounds, the exact top-k is always contained
// in verified ∪ candidates.
class ReductionSafetySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionSafetySweep, TrueTopKSurvivesReduction) {
  const uint64_t seed = GetParam();
  UncertainGraph g = testing::RandomSmallGraph(5, 0.35, seed);
  const auto exact = ExactDefaultProbabilities(g);
  ASSERT_TRUE(exact.ok());
  // Sound bounds: exact value +/- 0.05, clamped.
  std::vector<double> lower(g.num_nodes());
  std::vector<double> upper(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    lower[v] = std::max(0.0, (*exact)[v] - 0.05);
    upper[v] = std::min(1.0, (*exact)[v] + 0.05);
  }
  for (std::size_t k = 1; k <= g.num_nodes(); ++k) {
    const auto r = ReduceCandidates(lower, upper, k);
    ASSERT_TRUE(r.ok());
    const auto truth = ExactTopK(g, k);
    ASSERT_TRUE(truth.ok());
    for (const NodeId v : *truth) {
      const bool in_verified =
          std::count(r->verified.begin(), r->verified.end(), v) > 0;
      const bool in_candidates =
          std::count(r->candidates.begin(), r->candidates.end(), v) > 0;
      EXPECT_TRUE(in_verified || in_candidates)
          << "seed " << seed << " k " << k << " lost node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionSafetySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// Integration: reduction driven by the real bound algorithms never loses
// the exact top-k (upper bound is sound; lower-bound diamond slack is
// covered by the 0-tolerance of rule 2 only through pu, which is sound).
TEST(CandidateReductionTest, WithRealBoundsKeepsTruthOnTrees) {
  UncertainGraph g = testing::ChainGraph(0.3, 0.4);
  const auto lower = LowerBounds(g, 2);
  const auto upper = UpperBounds(g, 2);
  ASSERT_TRUE(lower.ok() && upper.ok());
  const auto r = ReduceCandidates(*lower, *upper, 1);
  ASSERT_TRUE(r.ok());
  const auto truth = ExactTopK(g, 1);
  ASSERT_TRUE(truth.ok());
  const NodeId top = (*truth)[0];
  const bool kept = std::count(r->verified.begin(), r->verified.end(), top) +
                        std::count(r->candidates.begin(), r->candidates.end(), top) >
                    0;
  EXPECT_TRUE(kept);
}

}  // namespace
}  // namespace vulnds
