// CoinColumns invariants: the carry-forward (BuildFrom) must equal a fresh
// Build no matter what delta produced the new version — reuse changes cost,
// never content — and the dynamic-commit seeding must leave the committed
// graph's derived cache holding exactly what the first query would have
// built.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dyn/dynamic_graph.h"
#include "graph/builder.h"
#include "testing/test_graphs.h"
#include "vulnds/coin_columns.h"

namespace vulnds {
namespace {

void ExpectSameColumns(const CoinColumns& a, const CoinColumns& b,
                       const std::string& what) {
  EXPECT_EQ(a.pad_offsets, b.pad_offsets) << what;
  EXPECT_EQ(a.edge_inner, b.edge_inner) << what;
  EXPECT_EQ(a.edge_threshold, b.edge_threshold) << what;
  EXPECT_EQ(a.edge_neighbor, b.edge_neighbor) << what;
  EXPECT_EQ(a.node_inner, b.node_inner) << what;
  EXPECT_EQ(a.node_threshold, b.node_threshold) << what;
  EXPECT_EQ(a.max_run, b.max_run) << what;
}

// Rebuilds a commit-shaped new version by hand: live base edges in original
// order (probabilities patched), deleted ids dropped, insertions appended —
// the exact id assignment DynamicGraph::Commit documents.
UncertainGraph ApplyDelta(const UncertainGraph& base,
                          const std::vector<EdgeId>& deleted_sorted,
                          const std::vector<std::pair<EdgeId, double>>& repriced,
                          const std::vector<UncertainEdge>& added) {
  UncertainGraphBuilder b(base.num_nodes());
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    testing::CheckOk(b.SetSelfRisk(v, base.self_risk(v)));
  }
  std::size_t next_deleted = 0;
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    if (next_deleted < deleted_sorted.size() &&
        deleted_sorted[next_deleted] == e) {
      ++next_deleted;
      continue;
    }
    UncertainEdge edge = base.edges()[e];
    for (const auto& [id, prob] : repriced) {
      if (id == e) edge.prob = prob;
    }
    testing::CheckOk(b.AddEdge(edge.src, edge.dst, edge.prob));
  }
  for (const UncertainEdge& e : added) {
    testing::CheckOk(b.AddEdge(e.src, e.dst, e.prob));
  }
  return b.Build().MoveValue();
}

TEST(CoinColumnsTest, BuildFromMatchesBuildAcrossRandomDeltas) {
  for (const uint64_t seed : {1u, 7u, 42u}) {
    const UncertainGraph base = testing::RandomSmallGraph(24, 0.3, seed);
    const CoinColumns base_cols = CoinColumns::Build(base);
    Rng rng(seed * 1000 + 5);

    // Deletions: every edge with probability 1/8, kept sorted by id.
    std::vector<EdgeId> deleted;
    for (EdgeId e = 0; e < base.num_edges(); ++e) {
      if (rng.NextBounded(8) == 0) deleted.push_back(e);
    }
    // Reprices on surviving edges with probability 1/6.
    std::vector<std::pair<EdgeId, double>> repriced;
    for (EdgeId e = 0; e < base.num_edges(); ++e) {
      if (std::find(deleted.begin(), deleted.end(), e) != deleted.end()) {
        continue;
      }
      if (rng.NextBounded(6) == 0) repriced.emplace_back(e, rng.NextDouble());
    }
    // Insertions on pairs the base does not already contain.
    std::set<std::pair<NodeId, NodeId>> pairs;
    for (const UncertainEdge& e : base.edges()) pairs.emplace(e.src, e.dst);
    std::vector<UncertainEdge> added;
    while (added.size() < 5) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(24));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(24));
      if (u == v || !pairs.emplace(u, v).second) continue;
      added.push_back({u, v, rng.NextDouble()});
    }

    const UncertainGraph next = ApplyDelta(base, deleted, repriced, added);
    ExpectSameColumns(
        CoinColumns::BuildFrom(next, base, base_cols, deleted),
        CoinColumns::Build(next), "seed=" + std::to_string(seed));
  }
}

TEST(CoinColumnsTest, BuildFromNeverTrustsAnUnrelatedBase) {
  // The contract is unconditional: handing BuildFrom a base that is NOT a
  // previous version — even with a bogus deleted list — must still yield
  // exactly Build(graph), because every copy is gated on value equality.
  const UncertainGraph g = testing::RandomSmallGraph(20, 0.25, 11);
  const UncertainGraph unrelated = testing::RandomSmallGraph(20, 0.25, 99);
  const CoinColumns unrelated_cols = CoinColumns::Build(unrelated);
  const std::vector<EdgeId> bogus_deleted = {0, 3, 4, 17};
  ExpectSameColumns(
      CoinColumns::BuildFrom(g, unrelated, unrelated_cols, bogus_deleted),
      CoinColumns::Build(g), "unrelated base");

  // Mismatched shapes fall back to a fresh build outright.
  const UncertainGraph smaller = testing::RandomSmallGraph(10, 0.25, 5);
  ExpectSameColumns(
      CoinColumns::BuildFrom(g, smaller, CoinColumns::Build(smaller), {}),
      CoinColumns::Build(g), "mismatched n");
}

TEST(CoinColumnsTest, WorthwhileFollowsDensity) {
  // ~0.3 * 23 ≈ 7 average in-degree: above the kCoinLanes gate.
  EXPECT_TRUE(CoinColumns::Worthwhile(testing::RandomSmallGraph(24, 0.3, 3)));
  // A chain has average degree < 1.
  EXPECT_FALSE(CoinColumns::Worthwhile(testing::ChainGraph(0.5, 0.5)));
}

TEST(CoinColumnsTest, CommitSeedsTheDerivedCacheWhenTheBaseWasQueried) {
  auto base = std::make_shared<UncertainGraph>(
      testing::RandomSmallGraph(24, 0.4, 77));
  ASSERT_TRUE(CoinColumns::Worthwhile(*base));
  CoinColumns::Shared(*base);  // a query against the base built its columns

  dyn::DynamicGraph overlay(base);
  const UncertainEdge first = base->edges()[0];
  const UncertainEdge third = base->edges()[3];
  ASSERT_TRUE(overlay.SetProb(first.src, first.dst, 0.123).ok());
  ASSERT_TRUE(overlay.DeleteEdge(third.src, third.dst).ok());
  const dyn::CommitSnapshot snapshot = overlay.Commit();

  const auto seeded = snapshot.graph.derived().Peek<CoinColumns>();
  ASSERT_NE(seeded, nullptr) << "commit did not carry the columns forward";
  ExpectSameColumns(*seeded, CoinColumns::Build(snapshot.graph), "seeded");
}

TEST(CoinColumnsTest, CommitStaysLazyWhenTheBaseWasNeverQueried) {
  auto base = std::make_shared<UncertainGraph>(
      testing::RandomSmallGraph(24, 0.4, 78));
  dyn::DynamicGraph overlay(base);
  const UncertainEdge first = base->edges()[0];
  ASSERT_TRUE(overlay.SetProb(first.src, first.dst, 0.5).ok());
  const dyn::CommitSnapshot snapshot = overlay.Commit();
  EXPECT_EQ(snapshot.graph.derived().Peek<CoinColumns>(), nullptr);
}

}  // namespace
}  // namespace vulnds
