#include "vulnds/bsrbk.h"

#include <gtest/gtest.h>

#include <numeric>

#include "exact/possible_world.h"
#include "testing/test_graphs.h"

namespace vulnds {
namespace {

std::vector<NodeId> AllNodes(const UncertainGraph& g) {
  std::vector<NodeId> ids(g.num_nodes());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(BsrbkTest, Validation) {
  UncertainGraph g = testing::ChainGraph(0.5, 0.5);
  EXPECT_FALSE(RunBottomKSampling(g, {0}, 100, 1, 2, 1).ok());  // bk < 3
  EXPECT_FALSE(RunBottomKSampling(g, {0}, 100, 0, 16, 1).ok()); // needed = 0
  EXPECT_TRUE(RunBottomKSampling(g, {0}, 100, 1, 16, 1).ok());
}

TEST(BsrbkTest, ZeroBudget) {
  UncertainGraph g = testing::ChainGraph(0.5, 0.5);
  const auto run = RunBottomKSampling(g, {0, 1}, 0, 1, 16, 1);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->samples_processed, 0u);
  EXPECT_FALSE(run->early_stopped);
}

TEST(BsrbkTest, EarlyStopsOnHighProbabilityNode) {
  // Node 0 defaults with probability 0.95: its counter reaches bk long
  // before the full budget is consumed.
  UncertainGraphBuilder b(5);
  ASSERT_TRUE(b.SetSelfRisk(0, 0.95).ok());
  for (NodeId v = 1; v < 5; ++v) ASSERT_TRUE(b.SetSelfRisk(v, 0.01).ok());
  UncertainGraph g = b.Build().MoveValue();
  const auto run = RunBottomKSampling(g, AllNodes(g), 5000, 1, 8, 7);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->early_stopped);
  EXPECT_LT(run->samples_processed, 200u);
  EXPECT_TRUE(run->reached_bk[0]);
}

TEST(BsrbkTest, NoEarlyStopWhenBudgetTooSmall) {
  // All probabilities tiny: counters cannot reach bk within the budget.
  UncertainGraphBuilder b(4);
  for (NodeId v = 0; v < 4; ++v) ASSERT_TRUE(b.SetSelfRisk(v, 0.01).ok());
  UncertainGraph g = b.Build().MoveValue();
  const auto run = RunBottomKSampling(g, AllNodes(g), 50, 1, 16, 3);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->early_stopped);
  EXPECT_EQ(run->samples_processed, 50u);
  for (const char r : run->reached_bk) EXPECT_EQ(r, 0);
}

TEST(BsrbkTest, FallbackEstimatesAreFrequencies) {
  UncertainGraphBuilder b(2);
  ASSERT_TRUE(b.SetSelfRisk(0, 0.5).ok());
  ASSERT_TRUE(b.SetSelfRisk(1, 0.01).ok());
  UncertainGraph g = b.Build().MoveValue();
  const auto run = RunBottomKSampling(g, AllNodes(g), 200, 2, 128, 5);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->early_stopped);
  // Node 0 frequency should be near 0.5.
  EXPECT_NEAR(run->estimates[0], 0.5, 0.15);
  EXPECT_LT(run->estimates[1], 0.1);
}

TEST(BsrbkTest, RawSketchEstimatesPreserveReachOrder) {
  // Estimates are deliberately unclamped: a candidate that reaches bk on an
  // earlier sample (smaller L) must carry a strictly larger score than one
  // that reaches it later — clamping at 1 would collapse strong candidates
  // into id-ordered ties, breaking Theorem 6's ranking.
  UncertainGraphBuilder b(2);
  ASSERT_TRUE(b.SetSelfRisk(0, 0.95).ok());
  ASSERT_TRUE(b.SetSelfRisk(1, 0.55).ok());
  UncertainGraph g = b.Build().MoveValue();
  const auto run = RunBottomKSampling(g, AllNodes(g), 2000, 2, 8, 11);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->reached_bk[0]);
  ASSERT_TRUE(run->reached_bk[1]);
  EXPECT_GE(run->estimates[0], 0.0);
  EXPECT_GT(run->estimates[0], run->estimates[1]);
}

TEST(BsrbkTest, SketchEstimateTracksTruth) {
  // Larger bk tightens the sketch estimate around the true probability.
  UncertainGraphBuilder b(1);
  ASSERT_TRUE(b.SetSelfRisk(0, 0.6).ok());
  UncertainGraph g = b.Build().MoveValue();
  const auto run = RunBottomKSampling(g, {0}, 4000, 1, 64, 13);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->reached_bk[0]);
  EXPECT_NEAR(run->estimates[0], 0.6, 0.15);
}

// Theorem 6 property: the first node to reach bk is (statistically) the
// top-1 node. Across seeds, BSRBK's top choice must usually match the
// exact top-1.
class BsrbkTop1Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BsrbkTop1Sweep, FirstToReachBkIsUsuallyTop1) {
  const uint64_t seed = GetParam();
  UncertainGraph g = testing::RandomSmallGraph(5, 0.3, seed);
  const auto exact = ExactTopK(g, 1);
  ASSERT_TRUE(exact.ok());
  const auto run = RunBottomKSampling(g, AllNodes(g), 4000, 1, 64, seed);
  ASSERT_TRUE(run.ok());
  // The argmax estimate should be the exact top node (tolerate near-ties:
  // accept if the probability gap to the true top is within ~1.5x the
  // sketch's coefficient of variation at bk = 64).
  NodeId best = 0;
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (run->estimates[v] > run->estimates[best]) best = v;
  }
  const auto probs = ExactDefaultProbabilities(g);
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR((*probs)[best], (*probs)[(*exact)[0]], 0.2)
      << "seed " << seed << " picked " << best;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BsrbkTop1Sweep,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 10));

}  // namespace
}  // namespace vulnds
