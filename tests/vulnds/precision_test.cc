#include "vulnds/precision.h"

#include <gtest/gtest.h>

namespace vulnds {
namespace {

TEST(PrecisionTest, PerfectMatch) {
  const std::vector<NodeId> r = {3, 1, 2};
  const std::vector<NodeId> t = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PrecisionAtK(r, t), 1.0);
}

TEST(PrecisionTest, NoOverlap) {
  const std::vector<NodeId> r = {4, 5};
  const std::vector<NodeId> t = {1, 2};
  EXPECT_DOUBLE_EQ(PrecisionAtK(r, t), 0.0);
}

TEST(PrecisionTest, PartialOverlap) {
  const std::vector<NodeId> r = {1, 5, 2, 9};
  const std::vector<NodeId> t = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PrecisionAtK(r, t), 0.5);
}

TEST(PrecisionTest, EmptyTruthIsOne) {
  EXPECT_DOUBLE_EQ(PrecisionAtK(std::vector<NodeId>{1}, {}), 1.0);
}

TEST(PrecisionTest, EmptyResultIsZero) {
  const std::vector<NodeId> t = {1};
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, t), 0.0);
}

TEST(PrecisionTest, OrderIrrelevant) {
  const std::vector<NodeId> a = {1, 2, 3};
  const std::vector<NodeId> b = {3, 2, 1};
  const std::vector<NodeId> t = {2, 3, 7};
  EXPECT_DOUBLE_EQ(PrecisionAtK(a, t), PrecisionAtK(b, t));
}

}  // namespace
}  // namespace vulnds
