#include "vulnds/adaptive_sampler.h"

#include <gtest/gtest.h>

#include <numeric>

#include "exact/possible_world.h"
#include "testing/test_graphs.h"
#include "vulnds/sample_size.h"

namespace vulnds {
namespace {

std::vector<NodeId> AllNodes(const UncertainGraph& g) {
  std::vector<NodeId> ids(g.num_nodes());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

AdaptiveOptions Base(std::size_t k) {
  AdaptiveOptions o;
  o.k = k;
  o.max_samples = 20000;
  return o;
}

TEST(AdaptiveTest, Validation) {
  UncertainGraph g = testing::ChainGraph(0.5, 0.5);
  EXPECT_FALSE(RunAdaptiveSampling(g, {}, Base(1)).ok());
  EXPECT_FALSE(RunAdaptiveSampling(g, {0, 1}, Base(0)).ok());
  EXPECT_FALSE(RunAdaptiveSampling(g, {0, 1}, Base(3)).ok());
  AdaptiveOptions bad = Base(1);
  bad.eps = 0.0;
  EXPECT_FALSE(RunAdaptiveSampling(g, {0, 1}, bad).ok());
  bad = Base(1);
  bad.batch = 0;
  EXPECT_FALSE(RunAdaptiveSampling(g, {0, 1}, bad).ok());
}

TEST(AdaptiveTest, WellSeparatedStopsEarly) {
  // One near-certain node among near-safe ones: separation is obvious after
  // a handful of batches, far below the worst-case Hoeffding budget.
  UncertainGraphBuilder b(6);
  ASSERT_TRUE(b.SetSelfRisk(0, 0.9).ok());
  for (NodeId v = 1; v < 6; ++v) ASSERT_TRUE(b.SetSelfRisk(v, 0.05).ok());
  UncertainGraph g = b.Build().MoveValue();
  const auto run = RunAdaptiveSampling(g, AllNodes(g), Base(1));
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->separated);
  const std::size_t hoeffding = BasicSampleSize(0.3, 0.1, 1, 6);
  EXPECT_LT(run->samples_used, hoeffding);
  // The winner is node 0.
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_GT(run->estimates[0], run->estimates[v]);
  }
}

TEST(AdaptiveTest, IndistinguishableRunsToBudget) {
  // All candidates identical: separation beyond eps = tiny is impossible,
  // so the run exhausts the budget without claiming separation... except
  // the eps slack; use a very small eps to force a full run.
  UncertainGraphBuilder b(4);
  for (NodeId v = 0; v < 4; ++v) ASSERT_TRUE(b.SetSelfRisk(v, 0.5).ok());
  UncertainGraph g = b.Build().MoveValue();
  AdaptiveOptions o = Base(1);
  o.eps = 1e-4;
  o.max_samples = 2000;
  const auto run = RunAdaptiveSampling(g, AllNodes(g), o);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->samples_used, 2000u);
  EXPECT_FALSE(run->separated);
}

TEST(AdaptiveTest, KEqualsCandidatesIsImmediatelySeparated) {
  UncertainGraph g = testing::ChainGraph(0.3, 0.3);
  const auto run = RunAdaptiveSampling(g, AllNodes(g), Base(3));
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->separated);
  EXPECT_LE(run->samples_used, 32u);  // first checkpoint
}

TEST(AdaptiveTest, EstimatesUnbiased) {
  UncertainGraph g = testing::PaperExampleGraph(0.2);
  const auto exact = ExactDefaultProbabilities(g);
  ASSERT_TRUE(exact.ok());
  AdaptiveOptions o = Base(1);
  o.eps = 1e-6;        // force a long run
  o.max_samples = 30000;
  const auto run = RunAdaptiveSampling(g, AllNodes(g), o);
  ASSERT_TRUE(run.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(run->estimates[v], (*exact)[v], 0.02) << "node " << v;
  }
}

TEST(AdaptiveTest, RadiiShrinkWithSamples) {
  UncertainGraph g = testing::PaperExampleGraph(0.3);
  AdaptiveOptions small = Base(1);
  small.eps = 1e-6;
  small.max_samples = 256;
  AdaptiveOptions large = small;
  large.max_samples = 8192;
  const auto a = RunAdaptiveSampling(g, AllNodes(g), small);
  const auto b = RunAdaptiveSampling(g, AllNodes(g), large);
  ASSERT_TRUE(a.ok() && b.ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LT(b->radii[v], a->radii[v]) << "node " << v;
  }
}

// Contract sweep: when the run claims separation, the claimed top-k must
// satisfy the (eps, delta) conditions against the exact oracle.
class AdaptiveContractSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdaptiveContractSweep, SeparationClaimIsCorrect) {
  const uint64_t seed = GetParam();
  UncertainGraph g = testing::RandomSmallGraph(5, 0.35, seed);
  const auto exact = ExactDefaultProbabilities(g);
  ASSERT_TRUE(exact.ok());
  const std::size_t k = 2;
  AdaptiveOptions o = Base(k);
  o.seed = seed * 31 + 5;
  const auto run = RunAdaptiveSampling(g, AllNodes(g), o);
  ASSERT_TRUE(run.ok());
  if (!run->separated) GTEST_SKIP() << "budget exhausted (legal)";
  // The k nodes with the largest estimates must all have exact probability
  // >= Pk - eps.
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return run->estimates[a] > run->estimates[b];
  });
  const auto truth = ExactTopK(g, k);
  ASSERT_TRUE(truth.ok());
  const double pk = (*exact)[truth->back()];
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_GE((*exact)[order[i]], pk - o.eps - 1e-9) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveContractSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace vulnds
